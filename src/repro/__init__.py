"""A-ABFT: Autonomous Algorithm-Based Fault Tolerance for matrix
multiplications on GPUs — a from-scratch Python reproduction of
Braun, Halder & Wunderlich, DSN 2014 (doi:10.1109/DSN.2014.48).

Quick start::

    import numpy as np
    from repro import aabft_matmul

    rng = np.random.default_rng(7)
    a = rng.uniform(-1, 1, (512, 512))
    b = rng.uniform(-1, 1, (512, 512))
    result = aabft_matmul(a, b)          # autonomous error bounds
    assert not result.detected           # fault-free: no false positives
    c = result.c                         # the protected product

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.abft` — encoding/checking/correction + high-level API
- :mod:`repro.bounds` — A-ABFT probabilistic bounds, SEA, fixed, analytical
- :mod:`repro.fp` / :mod:`repro.exact` — floating-point substrate + exact
  (GMP-substitute) reference arithmetic
- :mod:`repro.gpusim` / :mod:`repro.kernels` — functional GPU simulator and
  the paper's kernels (Algorithms 1-3)
- :mod:`repro.faults` — bit-flip fault injection campaigns
- :mod:`repro.workloads` — the paper's input-matrix distributions
- :mod:`repro.perfmodel` / :mod:`repro.experiments` — Table I timing model
  and the per-table/figure experiment drivers
- :mod:`repro.telemetry` — metrics registry, timing spans and sinks
  (see docs/OBSERVABILITY.md)
- :mod:`repro.serve` — micro-batching request scheduler with backpressure
  and adaptive degradation (``aabft serve`` / ``aabft loadgen``)
- :mod:`repro.backends` — pluggable compute backends (numpy / blocked /
  cupy) with capability negotiation and a backend/tile autotuner
  (``aabft backends`` / ``aabft autotune``)
- :mod:`repro.chaos` — declarative chaos recipes + SLO harness over the
  serving layer (``aabft chaos run``, the ``chaos-slo`` CI gate)
- :mod:`repro.cluster` — sharded multi-process serving cluster with
  consistent-hash plan routing, shared-memory operand transport and
  worker supervision (``aabft cluster serve`` / ``aabft loadgen
  --cluster``)
- :mod:`repro.models` — chained-GEMM model-inference workloads with
  arithmetic-intensity-planned per-layer protection and mixed-precision
  (fp16/bf16) adaptive bounds (``aabft model plan|run|bench``)
"""

from .abft import (
    AABFTPipeline,
    AbftResult,
    CheckReport,
    ErrorClass,
    ErrorClassifier,
    PipelineResult,
    ProtectedResult,
    aabft_matmul,
    correct_single_error,
    fixed_abft_matmul,
    online_abft_matmul,
    protected_lu,
    protected_qr,
    protected_solve,
    sea_abft_matmul,
    weighted_abft_matmul,
)
from .backends import (
    Autotuner,
    AutotuneCache,
    Backend,
    BackendCapabilities,
    BackendRegistry,
    TunedChoice,
    default_registry,
    get_backend,
)
from .engine import (
    EXECUTION_MODES,
    AbftConfig,
    EncodedOperand,
    EngineStats,
    ExecutionPolicy,
    MatmulEngine,
    PipelineSchedule,
    StageCost,
    StageCosts,
    default_engine,
)
from .bounds import (
    AnalyticalBound,
    BoundContext,
    BoundScheme,
    ErrorMap,
    FixedBound,
    ProbabilisticBound,
    SEABound,
    rounding_error_map,
)
from .chaos import (
    ChaosRecipe,
    ChaosReport,
    SLOSpec,
    default_quick_suite,
    run_chaos,
)
from .cluster import ClusterConfig, ClusterFrontend
from .errors import (
    BoundSchemeError,
    ChecksumMismatchError,
    ConfigurationError,
    CorrectionError,
    DeviceError,
    EncodingError,
    FaultSpecError,
    KernelLaunchError,
    ReproError,
    ShapeError,
)
from .faults import (
    CampaignConfig,
    CampaignResult,
    FaultCampaign,
    FaultInjector,
    FaultSite,
    FaultSpec,
)
from .gpusim import K20C, DeviceSpec, GpuSimulator
from .models import (
    LayerSpec,
    ModelCampaign,
    ModelPlan,
    ModelRunner,
    ModelSpec,
    ProtectionPlanner,
    attention,
    mlp,
)
from .serve import (
    MatmulRequest,
    MatmulResponse,
    MatmulServer,
    ModelRequest,
    ModelResponse,
    ServeConfig,
    VerificationStatus,
    run_loadgen,
)
from .telemetry import (
    NULL_REGISTRY,
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    PrometheusTextSink,
    get_registry,
    span,
)

__version__ = "0.1.0"

__all__ = [
    "AABFTPipeline",
    "AbftConfig",
    "AbftResult",
    "AnalyticalBound",
    "Autotuner",
    "AutotuneCache",
    "Backend",
    "BackendCapabilities",
    "BackendRegistry",
    "BoundContext",
    "BoundScheme",
    "BoundSchemeError",
    "CampaignConfig",
    "CampaignResult",
    "ChaosRecipe",
    "ChaosReport",
    "CheckReport",
    "ChecksumMismatchError",
    "ClusterConfig",
    "ClusterFrontend",
    "ConfigurationError",
    "CorrectionError",
    "DeviceError",
    "DeviceSpec",
    "EncodedOperand",
    "EncodingError",
    "EngineStats",
    "ErrorClass",
    "ErrorClassifier",
    "ExecutionPolicy",
    "EXECUTION_MODES",
    "FaultCampaign",
    "FaultInjector",
    "FaultSite",
    "FaultSpec",
    "FaultSpecError",
    "FixedBound",
    "GpuSimulator",
    "InMemorySink",
    "JsonLinesSink",
    "K20C",
    "KernelLaunchError",
    "LayerSpec",
    "MatmulEngine",
    "MatmulRequest",
    "MatmulResponse",
    "MatmulServer",
    "MetricsRegistry",
    "ModelCampaign",
    "ModelPlan",
    "ModelRequest",
    "ModelResponse",
    "ModelRunner",
    "ModelSpec",
    "ProtectionPlanner",
    "NULL_REGISTRY",
    "PrometheusTextSink",
    "PipelineResult",
    "PipelineSchedule",
    "ProbabilisticBound",
    "ProtectedResult",
    "ReproError",
    "SEABound",
    "SLOSpec",
    "ServeConfig",
    "ShapeError",
    "StageCost",
    "StageCosts",
    "TunedChoice",
    "VerificationStatus",
    "ErrorMap",
    "aabft_matmul",
    "attention",
    "mlp",
    "correct_single_error",
    "default_engine",
    "default_quick_suite",
    "default_registry",
    "get_backend",
    "fixed_abft_matmul",
    "get_registry",
    "online_abft_matmul",
    "protected_lu",
    "protected_qr",
    "protected_solve",
    "rounding_error_map",
    "run_chaos",
    "run_loadgen",
    "sea_abft_matmul",
    "span",
    "weighted_abft_matmul",
    "__version__",
]
