"""Declarative model specifications: chained-GEMM layer stacks.

A :class:`ModelSpec` describes an inference "model" as a chain of GEMM
layers — activations of shape ``(batch, d_in)`` times a weight of shape
``(d_in, d_out)``, followed by an activation stub.  The two builders
cover the workload shapes the roadmap names: :func:`mlp` (uniform hidden
stack) and :func:`attention` (projection + feed-forward block, the
chained-GEMM skeleton of a transformer layer).

Specs are frozen, hashable and JSON round-trippable, so they key plan
registries and travel through the CLI and serving layers unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..fp.constants import format_for_name

__all__ = ["ACTIVATIONS", "LayerSpec", "ModelSpec", "mlp", "attention"]

#: Supported activation stubs.  ``"none"`` is the identity — the only
#: activation under which layer ``k``'s output encoding can legally serve
#: as layer ``k+1``'s A-side encoding (checksums are linear maps).
ACTIVATIONS = ("none", "relu", "gelu", "tanh")

#: Storage dtypes a layer may declare.
LAYER_DTYPES = ("float16", "bfloat16", "float32", "float64")


def apply_activation(name: str, x: np.ndarray) -> np.ndarray:
    """Apply an activation stub (float32/float64 math, dtype-preserving)."""
    if name == "none":
        return x
    if name == "relu":
        return np.maximum(x, 0)
    if name == "tanh":
        return np.tanh(x)
    if name == "gelu":
        # The tanh approximation, standard for inference stacks.
        c = np.sqrt(2.0 / np.pi).astype(x.dtype) if x.dtype.kind == "f" else 1.0
        inner = c * (x + 0.044715 * x * x * x)
        return 0.5 * x * (1.0 + np.tanh(inner))
    raise ConfigurationError(
        f"unknown activation {name!r}; expected one of {ACTIVATIONS}"
    )


@dataclass(frozen=True)
class LayerSpec:
    """One GEMM layer: ``(batch, d_in) @ (d_in, d_out)`` + activation.

    Attributes
    ----------
    name:
        Unique (within the model) layer name; campaign injection and
        telemetry labels address layers by it.
    d_in / d_out:
        Weight shape.
    dtype:
        Storage dtype of this layer's activations and weight
        (``"float16"``/``"bfloat16"`` layers compute in float32 with
        variance-adaptive checking; see :mod:`repro.bounds.adaptive`).
    activation:
        Activation stub applied to the layer output (one of
        :data:`ACTIVATIONS`).
    """

    name: str
    d_in: int
    d_out: int
    dtype: str = "float32"
    activation: str = "none"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"layer name must be a non-empty str, got {self.name!r}"
            )
        for dim_name, value in (("d_in", self.d_in), ("d_out", self.d_out)):
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"layer {self.name!r}: {dim_name} must be a positive "
                    f"int, got {value!r}"
                )
        if self.dtype not in LAYER_DTYPES:
            raise ConfigurationError(
                f"layer {self.name!r}: unknown dtype {self.dtype!r}; "
                f"expected one of {LAYER_DTYPES}"
            )
        try:
            format_for_name(self.dtype)  # gates bfloat16 on ml_dtypes
        except KeyError as exc:
            raise ConfigurationError(
                f"layer {self.name!r}: {exc.args[0]}"
            ) from None
        if self.activation not in ACTIVATIONS:
            raise ConfigurationError(
                f"layer {self.name!r}: unknown activation "
                f"{self.activation!r}; expected one of {ACTIVATIONS}"
            )

    @property
    def is_low_precision(self) -> bool:
        return self.dtype in ("float16", "bfloat16")

    def flops(self, batch: int) -> float:
        """GEMM flops of this layer at the given batch size."""
        return 2.0 * batch * self.d_in * self.d_out

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "d_in": self.d_in,
            "d_out": self.d_out,
            "dtype": self.dtype,
            "activation": self.activation,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LayerSpec":
        return cls(
            name=data["name"],
            d_in=int(data["d_in"]),
            d_out=int(data["d_out"]),
            dtype=data.get("dtype", "float32"),
            activation=data.get("activation", "none"),
        )


@dataclass(frozen=True)
class ModelSpec:
    """A chained-GEMM model: ``x_{k+1} = act_k(x_k @ W_k)``.

    Layers chain — each layer's ``d_in`` must equal its predecessor's
    ``d_out`` — and names must be unique so per-layer accounting is
    unambiguous.
    """

    name: str
    batch: int
    layers: tuple[LayerSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"model name must be a non-empty str, got {self.name!r}"
            )
        if not isinstance(self.batch, int) or self.batch < 1:
            raise ConfigurationError(
                f"batch must be a positive int, got {self.batch!r}"
            )
        layers = tuple(self.layers)
        object.__setattr__(self, "layers", layers)
        if not layers:
            raise ConfigurationError(f"model {self.name!r} has no layers")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"model {self.name!r} has duplicate layer names: {names}"
            )
        for prev, layer in zip(layers, layers[1:]):
            if prev.d_out != layer.d_in:
                raise ConfigurationError(
                    f"model {self.name!r}: layer {layer.name!r} expects "
                    f"d_in={layer.d_in} but {prev.name!r} produces "
                    f"d_out={prev.d_out}"
                )

    @property
    def depth(self) -> int:
        return len(self.layers)

    @property
    def d_in(self) -> int:
        """Input feature width of the model."""
        return self.layers[0].d_in

    @property
    def d_out(self) -> int:
        """Output feature width of the model."""
        return self.layers[-1].d_out

    def layer(self, name: str) -> LayerSpec:
        """The layer with the given name (raises for unknown names)."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise ConfigurationError(
            f"model {self.name!r} has no layer {name!r}; layers: "
            f"{[layer.name for layer in self.layers]}"
        )

    def total_flops(self) -> float:
        """Summed GEMM flops of one forward pass."""
        return sum(layer.flops(self.batch) for layer in self.layers)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "batch": self.batch,
            "layers": [layer.to_dict() for layer in self.layers],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "ModelSpec":
        return cls(
            name=data["name"],
            batch=int(data["batch"]),
            layers=tuple(
                LayerSpec.from_dict(layer) for layer in data["layers"]
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "ModelSpec":
        return cls.from_dict(json.loads(text))


def mlp(
    name: str = "mlp",
    *,
    batch: int = 64,
    d_in: int = 256,
    hidden: int = 512,
    depth: int = 4,
    d_out: int | None = None,
    dtype: str = "float32",
    activation: str = "relu",
) -> ModelSpec:
    """A uniform MLP stack: ``d_in -> hidden * (depth-1) -> d_out``.

    The final layer is a linear head (activation ``"none"``), matching
    the usual classifier/regressor shape.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    if d_out is None:
        d_out = hidden
    layers = []
    prev = d_in
    for i in range(depth - 1):
        layers.append(
            LayerSpec(
                name=f"fc{i + 1}",
                d_in=prev,
                d_out=hidden,
                dtype=dtype,
                activation=activation,
            )
        )
        prev = hidden
    layers.append(
        LayerSpec(
            name="head", d_in=prev, d_out=d_out, dtype=dtype, activation="none"
        )
    )
    return ModelSpec(name=name, batch=batch, layers=tuple(layers))


def attention(
    name: str = "attention",
    *,
    batch: int = 64,
    d_model: int = 256,
    d_ff: int | None = None,
    dtype: str = "float32",
) -> ModelSpec:
    """An attention-shaped block as a chained-GEMM stack.

    Query/key/value/output projections (square, linear) followed by the
    feed-forward expansion and contraction — the GEMM skeleton of one
    transformer layer, with the score softmax stubbed out (it is not a
    GEMM and carries no checksum).
    """
    if d_ff is None:
        d_ff = 4 * d_model
    layers = (
        LayerSpec("wq", d_model, d_model, dtype=dtype, activation="none"),
        LayerSpec("wk", d_model, d_model, dtype=dtype, activation="none"),
        LayerSpec("wv", d_model, d_model, dtype=dtype, activation="none"),
        LayerSpec("wo", d_model, d_model, dtype=dtype, activation="none"),
        LayerSpec("ffn_up", d_model, d_ff, dtype=dtype, activation="gelu"),
        LayerSpec("ffn_down", d_ff, d_model, dtype=dtype, activation="none"),
    )
    return ModelSpec(name=name, batch=batch, layers=layers)
