"""Model-inference workloads: chained GEMMs with adaptive per-layer ABFT.

The subsystem the serving/CLI layers drive for "model" (multi-layer)
workloads:

* :mod:`repro.models.spec` — declarative :class:`ModelSpec` /
  :class:`LayerSpec` stacks (MLP- and attention-shaped builders,
  per-layer shapes, storage dtypes and activation stubs).
* :mod:`repro.models.planner` — :class:`ProtectionPlanner`, assigning
  each layer full / SEA / unchecked protection from arithmetic intensity
  under an end-to-end coverage-target constraint.
* :mod:`repro.models.runner` — :class:`ModelRunner`, executing plans
  through the protected engine with cross-layer encoding reuse,
  ``abft_model_*`` telemetry and named-layer fault injection.
* :mod:`repro.models.campaign` — :class:`ModelCampaign`, injection
  sweeps with per-layer coverage accounting for the ``model-coverage``
  ci-gate.
* :mod:`repro.models.bench` — the ``BENCH_models.json`` benchmark
  (planner-mixed vs all-full vs unchecked latency, behind
  ``aabft model bench``).
"""

from .bench import compare_to_baseline, default_baseline_path, run_model_benchmark
from .campaign import CampaignResult, LayerCoverage, ModelCampaign
from .planner import (
    PROTECTION_RUNGS,
    LayerAssignment,
    ModelPlan,
    ProtectionPlanner,
)
from .runner import (
    LayerRun,
    ModelInjection,
    ModelInputs,
    ModelRunResult,
    ModelRunner,
)
from .spec import ACTIVATIONS, LayerSpec, ModelSpec, attention, mlp

__all__ = [
    "ACTIVATIONS",
    "PROTECTION_RUNGS",
    "CampaignResult",
    "LayerAssignment",
    "LayerCoverage",
    "LayerRun",
    "LayerSpec",
    "ModelCampaign",
    "ModelInjection",
    "ModelInputs",
    "ModelPlan",
    "ModelRunResult",
    "ModelRunner",
    "ModelSpec",
    "ProtectionPlanner",
    "attention",
    "compare_to_baseline",
    "default_baseline_path",
    "mlp",
    "run_model_benchmark",
]
