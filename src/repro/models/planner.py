"""Arithmetic-intensity-guided per-layer protection planning.

Per Kosaian & Rashmi, the right amount of fault tolerance for a GEMM
depends on where it sits on the roofline: compute-bound layers (high
op/byte ratio) hide a full A-ABFT pass behind arithmetic they already do,
mid-intensity layers afford the cheaper SEA check, and memory-bound
layers pay disproportionately for any extra traffic — they run unchecked
*only if* the model's end-to-end coverage target still holds.  The
:class:`ProtectionPlanner` turns a :class:`~repro.models.spec.ModelSpec`
into a :class:`ModelPlan`: one rung and one concrete
:class:`~repro.engine.config.AbftConfig` per layer, with coverage
(protected flops / total flops) as the constraint — layers upgrade from
unchecked in descending-intensity order until the target is met.

Low-precision layers map their protected rungs onto the variance-adaptive
scheme (:mod:`repro.bounds.adaptive`): the aabft/sea bounds model compute
rounding only, and the engine refuses them for fp16/bf16 storage.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..engine.config import AbftConfig
from ..errors import ConfigurationError
from ..perfmodel.intensity import arithmetic_intensity, gemm_bytes
from .spec import LayerSpec, ModelSpec

__all__ = ["PROTECTION_RUNGS", "LayerAssignment", "ModelPlan", "ProtectionPlanner"]

#: Protection rungs in decreasing strength; mirrors the serving ladder.
PROTECTION_RUNGS = ("full", "sea", "unchecked")


def _scheme_for(rung: str, layer: LayerSpec) -> str | None:
    """The engine scheme implementing a rung for a layer's dtype."""
    if rung == "unchecked":
        return None
    if layer.is_low_precision:
        return "adaptive"
    return "aabft" if rung == "full" else "sea"


@dataclass(frozen=True)
class LayerAssignment:
    """The planner's decision for one layer.

    Attributes
    ----------
    layer:
        The layer this assignment protects.
    rung:
        ``"full"`` | ``"sea"`` | ``"unchecked"``.
    scheme:
        The engine bound scheme implementing the rung (``"aabft"``,
        ``"sea"``, ``"adaptive"``), or ``None`` for unchecked layers.
    intensity:
        The layer's arithmetic intensity (flops / byte) at the model's
        batch size and the layer's storage dtype.
    flops / bytes:
        The roofline inputs the decision was made from.
    config:
        The concrete per-layer :class:`~repro.engine.config.AbftConfig`
        the runner executes under (``None`` for unchecked layers).
    upgraded:
        Whether the coverage constraint promoted this layer above what
        its intensity alone would have chosen.
    """

    layer: LayerSpec
    rung: str
    scheme: str | None
    intensity: float
    flops: float
    bytes: float
    config: AbftConfig | None = field(repr=False, default=None)
    upgraded: bool = False

    @property
    def protected(self) -> bool:
        return self.rung != "unchecked"

    def to_dict(self) -> dict:
        return {
            "layer": self.layer.name,
            "rung": self.rung,
            "scheme": self.scheme,
            "dtype": self.layer.dtype,
            "intensity": round(self.intensity, 3),
            "flops": self.flops,
            "bytes": self.bytes,
            "upgraded": self.upgraded,
        }


@dataclass(frozen=True)
class ModelPlan:
    """Per-layer protection assignments plus the coverage they add up to."""

    model: ModelSpec
    assignments: tuple[LayerAssignment, ...]
    coverage_target: float

    @property
    def coverage(self) -> float:
        """Protected flops as a fraction of the model's total flops."""
        total = sum(a.flops for a in self.assignments)
        if total == 0:
            return 0.0
        return sum(a.flops for a in self.assignments if a.protected) / total

    @property
    def meets_target(self) -> bool:
        return self.coverage >= self.coverage_target - 1e-12

    @property
    def mixed(self) -> bool:
        """Whether the plan assigns more than one distinct rung."""
        return len({a.rung for a in self.assignments}) > 1

    def assignment(self, layer_name: str) -> LayerAssignment:
        for a in self.assignments:
            if a.layer.name == layer_name:
                return a
        raise ConfigurationError(
            f"plan for model {self.model.name!r} has no layer {layer_name!r}"
        )

    def to_dict(self) -> dict:
        return {
            "model": self.model.name,
            "batch": self.model.batch,
            "coverage_target": self.coverage_target,
            "coverage": round(self.coverage, 6),
            "assignments": [a.to_dict() for a in self.assignments],
        }

    def describe(self) -> str:
        """A human-readable per-layer decision table."""
        lines = [
            f"model {self.model.name!r} (batch={self.model.batch}): "
            f"coverage {self.coverage:.2%} "
            f"(target {self.coverage_target:.2%})"
        ]
        for a in self.assignments:
            scheme = a.scheme or "-"
            flag = " (upgraded)" if a.upgraded else ""
            lines.append(
                f"  {a.layer.name:<10} {a.layer.d_in}x{a.layer.d_out} "
                f"{a.layer.dtype:<8} ai={a.intensity:8.2f}  "
                f"{a.rung:<9} scheme={scheme}{flag}"
            )
        return "\n".join(lines)


class ProtectionPlanner:
    """Assigns per-layer protection from arithmetic intensity.

    Parameters
    ----------
    base_config:
        The config every per-layer config derives from (block size, p,
        omega, backend/fusion pins carry over).
    coverage_target:
        Minimum fraction of the model's flops that must run protected;
        unchecked layers upgrade (highest intensity first — they are the
        cheapest to protect relative to their compute) until it is met.
    full_intensity / sea_intensity:
        Intensity thresholds (flops/byte): at or above ``full_intensity``
        a layer gets the full rung, at or above ``sea_intensity`` the
        cheaper SEA rung, below it unchecked (subject to the coverage
        constraint).
    """

    def __init__(
        self,
        base_config: AbftConfig | None = None,
        *,
        coverage_target: float = 0.85,
        full_intensity: float = 48.0,
        sea_intensity: float = 16.0,
    ) -> None:
        self.base_config = base_config if base_config is not None else AbftConfig()
        if not isinstance(self.base_config, AbftConfig):
            raise ConfigurationError(
                f"base_config must be an AbftConfig, got "
                f"{type(self.base_config).__name__}"
            )
        if not (0.0 <= coverage_target <= 1.0) or not math.isfinite(
            coverage_target
        ):
            raise ConfigurationError(
                f"coverage_target must be in [0, 1], got {coverage_target}"
            )
        if sea_intensity > full_intensity:
            raise ConfigurationError(
                f"sea_intensity ({sea_intensity}) must not exceed "
                f"full_intensity ({full_intensity})"
            )
        self.coverage_target = float(coverage_target)
        self.full_intensity = float(full_intensity)
        self.sea_intensity = float(sea_intensity)

    def _layer_config(self, rung: str, layer: LayerSpec) -> AbftConfig | None:
        scheme = _scheme_for(rung, layer)
        if scheme is None:
            return None
        return self.base_config.replace(
            scheme=scheme,
            dtype=layer.dtype if layer.is_low_precision else None,
        )

    def _rung_for(self, intensity: float) -> str:
        if intensity >= self.full_intensity:
            return "full"
        if intensity >= self.sea_intensity:
            return "sea"
        return "unchecked"

    def plan(self, model: ModelSpec) -> ModelPlan:
        """Plan the model: intensity rungs + coverage-constraint upgrades."""
        decided: list[dict] = []
        for layer in model.layers:
            m, k, n = model.batch, layer.d_in, layer.d_out
            intensity = arithmetic_intensity(m, n, k, dtype=layer.dtype)
            decided.append(
                {
                    "layer": layer,
                    "rung": self._rung_for(intensity),
                    "intensity": intensity,
                    "flops": layer.flops(model.batch),
                    "bytes": gemm_bytes(m, n, k, dtype=layer.dtype),
                    "upgraded": False,
                }
            )
        total = sum(d["flops"] for d in decided)

        def coverage() -> float:
            protected = sum(
                d["flops"] for d in decided if d["rung"] != "unchecked"
            )
            return protected / total if total else 0.0

        # Coverage constraint: promote unchecked layers, highest intensity
        # first (their protection overhead is smallest relative to their
        # compute), until the end-to-end target holds.
        candidates = sorted(
            (d for d in decided if d["rung"] == "unchecked"),
            key=lambda d: d["intensity"],
            reverse=True,
        )
        for d in candidates:
            if coverage() >= self.coverage_target:
                break
            d["rung"] = "sea"
            d["upgraded"] = True

        assignments = tuple(
            LayerAssignment(
                layer=d["layer"],
                rung=d["rung"],
                scheme=_scheme_for(d["rung"], d["layer"]),
                intensity=d["intensity"],
                flops=d["flops"],
                bytes=d["bytes"],
                config=self._layer_config(d["rung"], d["layer"]),
                upgraded=d["upgraded"],
            )
            for d in decided
        )
        return ModelPlan(
            model=model,
            assignments=assignments,
            coverage_target=self.coverage_target,
        )
