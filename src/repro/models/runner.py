"""Executing model specs as chains of protected GEMMs.

The :class:`ModelRunner` walks a :class:`~repro.models.planner.ModelPlan`
layer by layer through a :class:`~repro.engine.engine.MatmulEngine`:
protected layers run as ABFT-protected multiplications under their
planned per-layer config (submitted via ``execute_batch`` so policy
negotiation applies), unchecked layers run the raw GEMM with an explicit
``unchecked`` record — never silently.

Two properties the serving and campaign layers build on:

* **Encoding reuse** — when layer ``k`` ran protected and clean, its
  activation is the identity, both layers share block size and compute
  dtype, and neither stores in low precision, the checksum rows of layer
  ``k``'s verified result are themselves a valid column-checksum encoding
  of layer ``k+1``'s input (checksums are linear maps, and the paper's
  tolerance verified them).  The runner then slices the previous
  ``c_fc`` into an A-side :class:`~repro.engine.engine.EncodedOperand` —
  recomputing only the cheap top-p/norm preprocessing — and skips the
  encode pass entirely.
* **Named-layer fault injection** — :class:`ModelInjection` flips one bit
  of the named layer's result through the engine's chaos-hook seam (or
  directly, for unchecked layers), firing exactly once; per-layer
  detection accounting feeds the ``model-coverage`` ci-gate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..abft.encoding import PartitionedLayout, strip_data_columns
from ..bounds.upper_bound import top_p_arrays
from ..engine.config import AbftConfig
from ..engine.engine import EncodedOperand, MatmulEngine, default_engine
from ..engine.policy import ExecutionPolicy
from ..errors import ConfigurationError
from ..fp.constants import format_for_dtype, format_for_name
from ..fp.bits import flip_bit
from ..telemetry import MetricsRegistry
from .planner import LayerAssignment, ModelPlan, ProtectionPlanner, _scheme_for
from .spec import ModelSpec, apply_activation

__all__ = [
    "ModelInjection",
    "ModelInputs",
    "LayerRun",
    "ModelRunResult",
    "ModelRunner",
]

#: Rung strength order used when capping (degrading) a planned rung.
_RUNG_ORDER = {"full": 0, "sea": 1, "unchecked": 2}


@dataclass(frozen=True)
class ModelInjection:
    """A single-bit fault injected into one named layer's result.

    The flip lands at data position ``(row, col)`` of the layer's result
    matrix, in the *compute* dtype (the value a faulty GEMM would have
    produced before storage).  ``bit`` is the flipped bit index (LSB = 0)
    — ``None`` picks a default per field: the top stored mantissa bit for
    ``"mantissa"``, a mid exponent bit for ``"exponent"`` (a decisively
    critical magnitude change).
    """

    layer: str
    row: int = 0
    col: int = 0
    fault_field: str = "exponent"
    bit: int | None = None

    def __post_init__(self) -> None:
        if self.fault_field not in ("mantissa", "exponent", "sign"):
            raise ConfigurationError(
                f"fault_field must be 'mantissa', 'exponent' or 'sign', "
                f"got {self.fault_field!r}"
            )

    def bit_index(self, fmt) -> int:
        """The concrete bit index for a compute format."""
        if self.bit is not None:
            return int(self.bit)
        if self.fault_field == "mantissa":
            return fmt.mantissa_bits - 1
        if self.fault_field == "exponent":
            # A low-middle exponent bit scales the value by 2^±4 — far
            # outside any tolerance yet always finite (the top exponent
            # bit would overflow values in [1, 2) to NaN, which no
            # ``|discrepancy| > eps`` comparison can flag).
            return fmt.mantissa_bits + 2
        return fmt.sign_bit_index


@dataclass(frozen=True)
class ModelInputs:
    """Deterministically generated input + weights for one model."""

    x: np.ndarray
    weights: tuple[np.ndarray, ...]

    @classmethod
    def generate(cls, model: ModelSpec, seed: int = 0) -> "ModelInputs":
        """Standard-normal input and ``1/sqrt(d_in)``-scaled weights.

        The scaling keeps activations of deep stacks in range — essential
        for float16 storage, whose max finite value is 65504.
        """
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((model.batch, model.d_in))
        x = x.astype(format_for_name(model.layers[0].dtype).dtype)
        weights = []
        for layer in model.layers:
            w = rng.standard_normal((layer.d_in, layer.d_out))
            w *= 1.0 / np.sqrt(layer.d_in)
            weights.append(w.astype(format_for_name(layer.dtype).dtype))
        return cls(x=x, weights=tuple(weights))


@dataclass
class LayerRun:
    """What actually happened to one layer during a model run."""

    layer: str
    planned_rung: str
    rung: str
    scheme: str | None
    detected: bool = False
    recomputed: bool = False
    reused_encoding: bool = False
    degraded: bool = False
    injected: bool = False
    seconds: float = 0.0
    backend: str | None = None

    @property
    def protected(self) -> bool:
        return self.rung != "unchecked"

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "planned_rung": self.planned_rung,
            "rung": self.rung,
            "scheme": self.scheme,
            "detected": self.detected,
            "recomputed": self.recomputed,
            "reused_encoding": self.reused_encoding,
            "degraded": self.degraded,
            "injected": self.injected,
            "seconds": self.seconds,
            "backend": self.backend,
        }


@dataclass
class ModelRunResult:
    """The outcome of one end-to-end model run."""

    model: ModelSpec
    output: np.ndarray
    layers: list[LayerRun] = field(default_factory=list)
    seconds: float = 0.0
    verified: bool | None = None
    max_abs_diff: float | None = None

    @property
    def detected(self) -> bool:
        return any(layer.detected for layer in self.layers)

    @property
    def degraded(self) -> bool:
        return any(layer.degraded for layer in self.layers)

    @property
    def reuse_count(self) -> int:
        return sum(1 for layer in self.layers if layer.reused_encoding)

    def layer_run(self, name: str) -> LayerRun:
        for run in self.layers:
            if run.layer == name:
                return run
        raise ConfigurationError(f"run has no layer {name!r}")

    def to_dict(self) -> dict:
        return {
            "model": self.model.name,
            "seconds": self.seconds,
            "detected": self.detected,
            "degraded": self.degraded,
            "verified": self.verified,
            "max_abs_diff": self.max_abs_diff,
            "layers": [layer.to_dict() for layer in self.layers],
        }


def _weaker(rung_a: str, rung_b: str) -> str:
    """The weaker of two protection rungs."""
    return rung_a if _RUNG_ORDER[rung_a] >= _RUNG_ORDER[rung_b] else rung_b


class ModelRunner:
    """Executes planned models through a :class:`MatmulEngine`.

    Parameters
    ----------
    engine:
        The engine protected layers run on; defaults to the process
        default engine.
    registry:
        Telemetry registry for the ``abft_model_*`` metric family;
        defaults to the engine's registry so model metrics land next to
        the engine's in one scrape.
    """

    def __init__(
        self,
        engine: MatmulEngine | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.engine = engine if engine is not None else default_engine()
        reg = registry if registry is not None else self.engine.registry
        self.registry = reg
        self._m_runs = reg.counter(
            "abft_model_runs_total", "Completed end-to-end model runs"
        )
        self._m_layers = reg.counter(
            "abft_model_layers_total",
            "Model layers executed, by protection rung and bound scheme",
            ("rung", "scheme"),
        )
        self._m_detections = reg.counter(
            "abft_model_detections_total",
            "Model layers whose check flagged a fault, by layer name",
            ("layer",),
        )
        self._m_reuses = reg.counter(
            "abft_model_encode_reuses_total",
            "Layers whose A-side encoding reused the previous layer's "
            "verified output checksums",
        )
        self._m_degraded = reg.counter(
            "abft_model_degraded_layers_total",
            "Layers served below their planned protection rung "
            "(never silently)",
        )
        self._m_injections = reg.counter(
            "abft_model_injections_total",
            "Campaign faults injected into model layers, by layer and "
            "whether the check caught them",
            ("layer", "detected"),
        )
        self._h_run = reg.histogram(
            "abft_model_run_seconds", "End-to-end model run wall seconds"
        )
        self._h_layer = reg.histogram(
            "abft_model_layer_seconds",
            "Per-layer wall seconds, by protection rung",
            ("rung",),
        )
        self._g_adaptive = reg.gauge(
            "abft_model_adaptive_threshold",
            "Mean variance-adaptive column tolerance of the last run's "
            "adaptive-checked layers, by layer name",
            ("layer",),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        model: ModelSpec,
        plan: ModelPlan | None = None,
        inputs: ModelInputs | None = None,
        *,
        seed: int = 0,
        inject: ModelInjection | None = None,
        verify: bool = False,
        rung_cap=None,
        policy: ExecutionPolicy | None = None,
    ) -> ModelRunResult:
        """One forward pass under the plan's per-layer protection.

        Parameters
        ----------
        model / plan:
            The model and its protection plan; a missing plan is built by
            a default :class:`~repro.models.planner.ProtectionPlanner`.
        inputs:
            Input activation and weights; generated deterministically
            from ``seed`` when omitted.
        inject:
            Optional single-bit fault injected into the named layer's
            result (fires once; per-layer detection is recorded).
        verify:
            Recompute the whole chain with plain numpy reference math and
            compare outputs (``verified`` / ``max_abs_diff`` on the
            result).  Meaningless together with ``inject``.
        rung_cap:
            Optional ``callable(layer_index, assignment) -> rung`` capping
            each layer's protection (the serving deadline ladder); a
            served rung below the planned one is recorded as degraded —
            never silently.
        policy:
            Execution policy for protected layers (backend pins etc.).
        """
        if plan is None:
            plan = ProtectionPlanner().plan(model)
        if plan.model != model:
            raise ConfigurationError(
                f"plan was built for model {plan.model.name!r}, "
                f"got {model.name!r}"
            )
        if inputs is None:
            inputs = ModelInputs.generate(model, seed=seed)
        if inject is not None:
            model.layer(inject.layer)  # validate the name eagerly

        t_start = time.perf_counter()
        x = inputs.x
        prev_reusable: EncodedOperand | None = None
        layer_runs: list[LayerRun] = []
        for index, assignment in enumerate(plan.assignments):
            layer = assignment.layer
            rung = assignment.rung
            if rung_cap is not None:
                capped = rung_cap(index, assignment)
                if capped not in _RUNG_ORDER:
                    raise ConfigurationError(
                        f"rung_cap returned {capped!r}; expected one of "
                        f"{tuple(_RUNG_ORDER)}"
                    )
                rung = _weaker(rung, capped)
            run = LayerRun(
                layer=layer.name,
                planned_rung=assignment.rung,
                rung=rung,
                scheme=_scheme_for(rung, layer),
                degraded=_RUNG_ORDER[rung] > _RUNG_ORDER[assignment.rung],
            )
            injection = (
                inject if inject is not None and inject.layer == layer.name
                else None
            )
            t0 = time.perf_counter()
            if rung == "unchecked":
                x, prev_reusable = self._run_unchecked(
                    layer, x, inputs.weights[index], injection, run
                )
            else:
                x, prev_reusable = self._run_protected(
                    model,
                    assignment,
                    rung,
                    x,
                    inputs.weights[index],
                    prev_reusable,
                    injection,
                    run,
                    policy,
                )
            run.seconds = time.perf_counter() - t0
            self._h_layer.labels(rung=rung).observe(run.seconds)
            self._m_layers.labels(rung=rung, scheme=run.scheme or "none").inc()
            if run.degraded:
                self._m_degraded.inc()
            if run.injected:
                self._m_injections.labels(
                    layer=layer.name, detected=str(run.detected).lower()
                ).inc()
            if run.detected:
                self._m_detections.labels(layer=layer.name).inc()
            layer_runs.append(run)

        seconds = time.perf_counter() - t_start
        self._m_runs.inc()
        self._h_run.observe(seconds)
        result = ModelRunResult(
            model=model, output=x, layers=layer_runs, seconds=seconds
        )
        if verify:
            ref = self.reference_output(model, inputs)
            diff = np.abs(
                x.astype(np.float64) - ref.astype(np.float64)
            )
            result.max_abs_diff = float(diff.max()) if diff.size else 0.0
            result.verified = bool(
                result.max_abs_diff <= _verify_tolerance(model, ref)
            )
        return result

    # ------------------------------------------------------------------
    def reference_output(
        self, model: ModelSpec, inputs: ModelInputs
    ) -> np.ndarray:
        """The unprotected reference chain with identical storage semantics.

        Each layer computes in the engine's compute dtype (float32 for
        low-precision storage, the storage dtype otherwise), stores back
        to the layer dtype, then applies the activation in compute
        precision — exactly what the protected path produces fault-free.
        """
        x = inputs.x
        for layer, w in zip(model.layers, inputs.weights):
            storage, compute = _layer_dtypes(layer)
            y = x.astype(compute) @ w.astype(compute)
            y = y.astype(storage)
            x = _activate(layer, y, storage, compute)
        return x

    # ------------------------------------------------------------------
    def _run_unchecked(self, layer, x, w, injection, run):
        storage, compute = _layer_dtypes(layer)
        y = x.astype(compute) @ w.astype(compute)
        if injection is not None:
            fmt = format_for_dtype(y.dtype)
            row, col = injection.row % y.shape[0], injection.col % y.shape[1]
            y[row, col] = flip_bit(y[row, col], injection.bit_index(fmt))
            run.injected = True
            # No check ran: an unchecked layer can never detect (the
            # explicit per-layer coverage hole the gate accounts).
        y = y.astype(storage)
        run.backend = "numpy"
        return _activate(layer, y, storage, compute), None

    def _run_protected(
        self,
        model: ModelSpec,
        assignment: LayerAssignment,
        rung: str,
        x,
        w,
        prev_reusable: EncodedOperand | None,
        injection,
        run: LayerRun,
        policy: ExecutionPolicy | None,
    ):
        layer = assignment.layer
        storage, compute = _layer_dtypes(layer)
        cfg = self._config_for(assignment, rung)
        a_operand = x
        if (
            prev_reusable is not None
            and prev_reusable.array.shape == (
                prev_reusable.layout.encoded_rows, layer.d_in,
            )
            and prev_reusable.config.block_size == cfg.block_size
            and prev_reusable.dtype == compute
            and not layer.is_low_precision
        ):
            a_operand = _rebuild_handle(prev_reusable, cfg)
            run.reused_encoding = True
            self._m_reuses.inc()

        hook_state = {"armed": injection is not None}

        def chaos_hook(event, **kwargs):
            if event != "result" or not hook_state["armed"]:
                return
            c_fc = kwargs.get("c_fc")
            if c_fc is None:
                return
            hook_state["armed"] = False
            # Layouts derived from the live result shape (encoded rows =
            # data + data/BS), so injection coordinates stay correct even
            # if negotiation reshaped the plan.
            bs = cfg.block_size
            row_layout = PartitionedLayout(
                data_rows=c_fc.shape[0] // (bs + 1) * bs, block_size=bs
            )
            col_layout = PartitionedLayout(
                data_rows=c_fc.shape[1] // (bs + 1) * bs, block_size=bs
            )
            fmt = format_for_dtype(c_fc.dtype)
            r = row_layout.to_encoded_index(injection.row % model.batch)
            c = col_layout.to_encoded_index(injection.col % layer.d_out)
            c_fc[r, c] = flip_bit(c_fc[r, c], injection.bit_index(fmt))
            run.injected = True

        installed_hook = False
        try:
            if injection is not None:
                self.engine.set_chaos_hook(chaos_hook)
                installed_hook = True
            results = self.engine.execute_batch(
                [(a_operand, w)], policy=policy, config=cfg
            )
        finally:
            if installed_hook:
                self.engine.set_chaos_hook(None)
        result = results[0]
        run.detected = bool(result.report.error_detected)
        run.backend = result.backend
        if run.scheme == "adaptive":
            self._record_adaptive_threshold(layer.name, result)
        if run.detected and injection is None:
            # A real (non-campaign) detection: recompute once, explicitly.
            results = self.engine.execute_batch([(x, w)], config=cfg)
            result = results[0]
            run.recomputed = True

        y = result.c
        reusable = None
        if (
            layer.activation == "none"
            and not layer.is_low_precision
            and not result.report.error_detected
            and not run.injected
        ):
            reusable = _reusable_from_result(result, layer, cfg, model.batch)
        return _activate(layer, y, storage, compute), reusable

    def _config_for(self, assignment: LayerAssignment, rung: str) -> AbftConfig:
        if rung == assignment.rung and assignment.config is not None:
            return assignment.config
        base = assignment.config
        if base is None:
            base = AbftConfig()
        layer = assignment.layer
        return base.replace(
            scheme=_scheme_for(rung, layer),
            dtype=layer.dtype if layer.is_low_precision else None,
        )

    def _record_adaptive_threshold(self, layer_name: str, result) -> None:
        grids = result.provider.epsilon_grids(
            result.row_layout, result.col_layout
        )
        if grids is None:
            return
        col_eps, _row_eps = grids
        self._g_adaptive.labels(layer=layer_name).set(float(col_eps.mean()))


def _layer_dtypes(layer) -> tuple[np.dtype, np.dtype]:
    """(storage, compute) dtypes of a layer, mirroring the engine's rule."""
    storage = format_for_name(layer.dtype).dtype
    if layer.is_low_precision:
        return storage, np.dtype(np.float32)
    return storage, storage


def _activate(layer, y, storage, compute):
    if layer.activation == "none":
        return y
    out = apply_activation(layer.activation, y.astype(compute))
    return out.astype(storage)


def _verify_tolerance(model: ModelSpec, ref: np.ndarray) -> float:
    """Absolute comparison tolerance scaled to dtype and magnitude."""
    eps = max(
        float(np.finfo(format_for_name(layer.dtype).dtype).eps)
        for layer in model.layers
    )
    scale = float(np.abs(ref.astype(np.float64)).max()) if ref.size else 1.0
    return 64.0 * eps * max(scale, 1.0) * model.depth


def _reusable_from_result(result, layer, cfg, batch: int) -> EncodedOperand:
    """Slice a verified result into next layer's A-side encoded operand.

    The checksum *rows* of ``c_fc`` propagate (column checksums are linear
    in the data rows and the check just verified them within tolerance);
    checksum columns and column padding are dropped, and the scheme
    preprocessing (top-p / norms) is recomputed on the slice — it depends
    on the checked layer's values, not the original operand's.  ``shape``
    and ``padding`` record the *true* batch so the next layer's strip
    removes the same zero rows this layer's encode added.
    """
    sliced = strip_data_columns(result.c_fc, result.col_layout)
    d_out = layer.d_out
    if sliced.shape[1] != d_out:
        sliced = np.ascontiguousarray(sliced[:, :d_out])
    top_values = top_indices = norms = None
    if cfg.scheme == "aabft":
        top_values, top_indices = top_p_arrays(sliced, cfg.p, axis=1)
    elif cfg.scheme in ("sea", "adaptive"):
        norms = np.linalg.norm(sliced, axis=1)
    return EncodedOperand(
        side="a",
        array=sliced,
        layout=result.row_layout,
        shape=(batch, d_out),
        padding=result.row_layout.data_rows - batch,
        config=cfg,
        top_values=top_values,
        top_indices=top_indices,
        norms=norms,
    )


def _rebuild_handle(handle: EncodedOperand, cfg: AbftConfig) -> EncodedOperand:
    """Adapt a reusable handle to the next layer's config.

    The encoded bytes only depend on the block size (already matched);
    the scheme preprocessing must match the *next* layer's scheme, so it
    is recomputed here when the schemes differ.
    """
    if handle.config.scheme == cfg.scheme and (
        cfg.scheme != "aabft" or handle.config.p == cfg.p
    ):
        if handle.config == cfg:
            return handle
        return EncodedOperand(
            side="a",
            array=handle.array,
            layout=handle.layout,
            shape=handle.shape,
            padding=handle.padding,
            config=cfg,
            top_values=handle.top_values,
            top_indices=handle.top_indices,
            norms=handle.norms,
        )
    top_values = top_indices = norms = None
    if cfg.scheme == "aabft":
        top_values, top_indices = top_p_arrays(handle.array, cfg.p, axis=1)
    elif cfg.scheme in ("sea", "adaptive"):
        norms = np.linalg.norm(handle.array, axis=1)
    return EncodedOperand(
        side="a",
        array=handle.array,
        layout=handle.layout,
        shape=handle.shape,
        padding=handle.padding,
        config=cfg,
        top_values=top_values,
        top_indices=top_indices,
        norms=norms,
    )
