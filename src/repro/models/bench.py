"""The ``BENCH_models.json`` benchmark: planner-mixed vs all-full vs unchecked.

Runs one 6-layer MLP three times — under the
:class:`~repro.models.planner.ProtectionPlanner`'s intensity-mixed plan,
under an all-full-A-ABFT plan, and fully unchecked — on one warm engine,
and records median end-to-end pass latencies plus the per-layer protection
assignments.  The committed ``BENCH_models.json`` baseline is the
acceptance record that per-layer planning actually buys latency
(``mixed_vs_full_ratio < 1``) without giving up the coverage target; the
``bench-smoke`` CI job re-measures at quick scale and compares.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from ..engine.config import AbftConfig
from ..engine.engine import MatmulEngine
from .planner import ProtectionPlanner
from .runner import ModelInputs, ModelRunner
from .spec import mlp

__all__ = [
    "BENCH_MODEL_KWARGS",
    "REPEATS",
    "QUICK_REPEATS",
    "run_model_benchmark",
    "compare_to_baseline",
    "default_baseline_path",
]

#: The benchmark workload: a 6-layer MLP whose layer mix straddles the
#: planner's intensity thresholds — the hidden layers sit in the SEA band
#: (cheap column-sum check), the skinny head is memory-bound enough to
#: run unchecked within the coverage target, so the mixed plan is
#: structurally cheaper than forcing full A-ABFT everywhere.
BENCH_MODEL_KWARGS = dict(
    name="bench-mlp", batch=128, d_in=256, hidden=512, depth=6, d_out=16
)
REPEATS = 21
QUICK_REPEATS = 7


def default_baseline_path() -> Path:
    """``BENCH_models.json`` from the cwd, else next to the package."""
    cwd_candidate = Path.cwd() / "BENCH_models.json"
    if cwd_candidate.exists():
        return cwd_candidate
    return Path(__file__).resolve().parents[3] / "BENCH_models.json"


def _median_pass_seconds(runner, model, plan, inputs, repeats: int) -> float:
    runner.run(model, plan, inputs)  # warm plan caches
    times = []
    for _ in range(repeats):
        times.append(runner.run(model, plan, inputs).seconds)
    return float(np.median(times))


def run_model_benchmark(
    *, repeats: int = REPEATS, seed: int = 2014, block_size: int = 32
) -> dict:
    """Measure the three protection variants; returns the JSON payload."""
    model = mlp(**BENCH_MODEL_KWARGS)
    cfg = AbftConfig(block_size=block_size, p=2)
    mixed_planner = ProtectionPlanner(cfg, coverage_target=0.85)
    full_planner = ProtectionPlanner(
        cfg, coverage_target=1.0, full_intensity=0.0, sea_intensity=0.0
    )
    unchecked_planner = ProtectionPlanner(
        cfg,
        coverage_target=0.0,
        full_intensity=float("inf"),
        sea_intensity=float("inf"),
    )
    inputs = ModelInputs.generate(model, seed=seed)

    with MatmulEngine(cfg) as engine:
        runner = ModelRunner(engine, registry=engine.registry)
        mixed_plan = mixed_planner.plan(model)
        full_plan = full_planner.plan(model)
        unchecked_plan = unchecked_planner.plan(model)
        t0 = time.perf_counter()
        mixed_s = _median_pass_seconds(runner, model, mixed_plan, inputs, repeats)
        full_s = _median_pass_seconds(runner, model, full_plan, inputs, repeats)
        unchecked_s = _median_pass_seconds(
            runner, model, unchecked_plan, inputs, repeats
        )
        wall_s = time.perf_counter() - t0

    return {
        "benchmark": "models",
        "model": model.to_dict(),
        "repeats": repeats,
        "block_size": block_size,
        "seed": seed,
        "mixed_seconds": mixed_s,
        "full_seconds": full_s,
        "unchecked_seconds": unchecked_s,
        "mixed_vs_full_ratio": mixed_s / full_s,
        "full_vs_unchecked_ratio": full_s / unchecked_s,
        "mixed_overhead_vs_unchecked": mixed_s / unchecked_s - 1.0,
        "full_overhead_vs_unchecked": full_s / unchecked_s - 1.0,
        "coverage": {
            "target": mixed_plan.coverage_target,
            "mixed": mixed_plan.coverage,
            "full": full_plan.coverage,
            "unchecked": unchecked_plan.coverage,
        },
        "mixed_plan": [a.to_dict() for a in mixed_plan.assignments],
        "wall_seconds": wall_s,
    }


def compare_to_baseline(
    payload: dict, baseline: dict, tolerance: float
) -> tuple[bool, str]:
    """CI smoke comparison against the committed ``BENCH_models.json``.

    Three conditions, all required (the baseline is never rewritten here):

    * the measured mixed-plan pass time must not exceed the baseline's by
      more than ``tolerance`` (absolute latency regression);
    * the live mixed/full latency ratio must not exceed the baseline's
      ratio by more than ``tolerance`` — the planner's "mixed is cheaper
      than all-full" claim, with slack for shared-runner noise (the hard
      ``ratio < 1`` acceptance is enforced when the baseline is written
      and by the ``model-coverage`` ci-gate);
    * the mixed plan must still meet its coverage target.
    """
    baseline_mixed = float(baseline["mixed_seconds"])
    measured_mixed = float(payload["mixed_seconds"])
    limit = baseline_mixed * (1.0 + tolerance)
    regressed = measured_mixed > limit
    ratio = float(payload["mixed_vs_full_ratio"])
    baseline_ratio = float(baseline["mixed_vs_full_ratio"])
    ratio_limit = baseline_ratio * (1.0 + tolerance)
    coverage_ok = payload["coverage"]["mixed"] >= payload["coverage"]["target"]
    ratio_ok = ratio <= ratio_limit
    passed = not regressed and ratio_ok and coverage_ok
    detail = (
        f"mixed pass {measured_mixed * 1e3:.2f} ms vs baseline "
        f"{baseline_mixed * 1e3:.2f} ms (limit {limit * 1e3:.2f} ms = "
        f"+{tolerance:.0%}); mixed/full ratio {ratio:.2f} "
        f"(baseline {baseline_ratio:.2f}, limit {ratio_limit:.2f}), "
        f"coverage {payload['coverage']['mixed']:.2%} "
        f"(target {payload['coverage']['target']:.2%})"
    )
    if regressed:
        detail += "; mixed-plan latency regressed"
    if not ratio_ok:
        detail += "; mixed/full ratio regressed"
    if not coverage_ok:
        detail += "; coverage target NOT met"
    return passed, detail
