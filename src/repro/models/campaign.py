"""Named-layer fault campaigns with per-layer coverage accounting.

A :class:`ModelCampaign` sweeps single-bit faults over a model's layers —
every trial names one layer and one (row, col, bit) site — and records,
per layer, how many injected faults the layer's check caught.  The result
separates *protected* coverage (what the ``model-coverage`` ci-gate
scores) from the explicit coverage holes of unchecked layers: an
unchecked layer detects nothing by construction, and the campaign reports
that as a named number rather than averaging it away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from .planner import ModelPlan, ProtectionPlanner
from .runner import ModelInjection, ModelInputs, ModelRunner
from .spec import ModelSpec

__all__ = ["LayerCoverage", "CampaignResult", "ModelCampaign"]


@dataclass
class LayerCoverage:
    """Detection accounting for one layer of the campaign."""

    layer: str
    rung: str
    scheme: str | None
    trials: int = 0
    detected: int = 0

    @property
    def protected(self) -> bool:
        return self.rung != "unchecked"

    @property
    def coverage(self) -> float:
        return self.detected / self.trials if self.trials else 0.0

    def to_dict(self) -> dict:
        return {
            "layer": self.layer,
            "rung": self.rung,
            "scheme": self.scheme,
            "trials": self.trials,
            "detected": self.detected,
            "coverage": round(self.coverage, 6),
        }


@dataclass
class CampaignResult:
    """Per-layer and aggregate outcomes of one injection campaign."""

    model: ModelSpec
    layers: list[LayerCoverage] = field(default_factory=list)
    false_positives: int = 0
    clean_trials: int = 0

    def layer_coverage(self, name: str) -> LayerCoverage:
        for cov in self.layers:
            if cov.layer == name:
                return cov
        raise ConfigurationError(f"campaign has no layer {name!r}")

    @property
    def protected_trials(self) -> int:
        return sum(c.trials for c in self.layers if c.protected)

    @property
    def protected_detected(self) -> int:
        return sum(c.detected for c in self.layers if c.protected)

    @property
    def protected_coverage(self) -> float:
        """Detection rate over faults injected into *protected* layers.

        This is the number the ci-gate scores: unchecked layers are an
        explicit, planner-accepted coverage hole, reported separately.
        """
        trials = self.protected_trials
        return self.protected_detected / trials if trials else 0.0

    @property
    def unchecked_trials(self) -> int:
        return sum(c.trials for c in self.layers if not c.protected)

    def to_dict(self) -> dict:
        return {
            "model": self.model.name,
            "protected_trials": self.protected_trials,
            "protected_detected": self.protected_detected,
            "protected_coverage": round(self.protected_coverage, 6),
            "unchecked_trials": self.unchecked_trials,
            "clean_trials": self.clean_trials,
            "false_positives": self.false_positives,
            "layers": [c.to_dict() for c in self.layers],
        }


class ModelCampaign:
    """Runs injection sweeps over a planned model.

    Parameters
    ----------
    runner:
        The :class:`~repro.models.runner.ModelRunner` executing trials;
        a default one (process default engine) is built when omitted.
    trials_per_layer:
        Faults injected into each layer.
    clean_trials:
        Fault-free runs interleaved to measure false positives (a
        detection on a clean run is a tolerance bug, and for fp16/bf16
        layers specifically an adaptive-threshold calibration bug).
    seed:
        Seeds both the input/weight generation and the injection sites.
    """

    def __init__(
        self,
        runner: ModelRunner | None = None,
        *,
        trials_per_layer: int = 8,
        clean_trials: int = 4,
        seed: int = 0,
    ) -> None:
        if trials_per_layer < 1:
            raise ConfigurationError(
                f"trials_per_layer must be >= 1, got {trials_per_layer}"
            )
        if clean_trials < 0:
            raise ConfigurationError(
                f"clean_trials must be >= 0, got {clean_trials}"
            )
        self.runner = runner if runner is not None else ModelRunner()
        self.trials_per_layer = int(trials_per_layer)
        self.clean_trials = int(clean_trials)
        self.seed = int(seed)

    def run(
        self, model: ModelSpec, plan: ModelPlan | None = None
    ) -> CampaignResult:
        """Sweep every layer; return per-layer coverage accounting."""
        if plan is None:
            plan = ProtectionPlanner().plan(model)
        inputs = ModelInputs.generate(model, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        result = CampaignResult(model=model)

        for assignment in plan.assignments:
            layer = assignment.layer
            cov = LayerCoverage(
                layer=layer.name,
                rung=assignment.rung,
                scheme=assignment.scheme,
            )
            for _ in range(self.trials_per_layer):
                inject = ModelInjection(
                    layer=layer.name,
                    row=int(rng.integers(model.batch)),
                    col=int(rng.integers(layer.d_out)),
                    fault_field="exponent",
                )
                run = self.runner.run(
                    model, plan, inputs, inject=inject
                ).layer_run(layer.name)
                cov.trials += 1
                if run.detected:
                    cov.detected += 1
            result.layers.append(cov)

        for _ in range(self.clean_trials):
            clean = self.runner.run(model, plan, inputs)
            result.clean_trials += 1
            if clean.detected:
                result.false_positives += 1
        return result
