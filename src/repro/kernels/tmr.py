"""Triple modular redundancy (TMR) baseline (paper Section VI-A).

The paper's TMR contender "executes an identical kernel three times and
performs a direct comparison of the result matrices" — no checksums, no
error bounds, but 3x the multiplication work.  The driver below runs three
plain block-matmul launches on the simulator plus an element-wise majority
compare kernel, matching that setup.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.injector import FaultInjector
from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig
from ..gpusim.memory import DeviceBuffer
from ..gpusim.simulator import GpuSimulator
from .matmul import BlockMatmulKernel

__all__ = ["TmrCompareKernel", "TmrOutcome", "run_tmr_matmul"]


class TmrCompareKernel(Kernel):
    """Element-wise 2-of-3 majority vote over three result replicas.

    Writes the majority value into ``out_buf`` and accumulates the number of
    disagreeing elements in ``mismatch_buf[0]``.  Identical replicas (the
    paper's setup: same kernel run three times) allow exact comparison.
    """

    name = "tmr_compare"
    #: Pure streaming compare — bandwidth bound, low arithmetic intensity.
    compute_efficiency = 0.10

    def __init__(
        self,
        replicas: tuple[DeviceBuffer, DeviceBuffer, DeviceBuffer],
        out_buf: DeviceBuffer,
        mismatch_buf: DeviceBuffer,
        rows_per_block: int = 64,
    ) -> None:
        shapes = {r.shape for r in replicas}
        if len(shapes) != 1:
            raise ValueError(f"replica shapes disagree: {shapes}")
        if out_buf.shape != replicas[0].shape:
            raise ValueError("output shape must match replicas")
        if mismatch_buf.shape != (1,):
            raise ValueError("mismatch buffer must have shape (1,)")
        self.replicas = replicas
        self.out_buf = out_buf
        self.mismatch_buf = mismatch_buf
        self.rows_per_block = rows_per_block

    def launch_config(self) -> LaunchConfig:
        rows = self.replicas[0].shape[0]
        grid_x = -(-rows // self.rows_per_block)
        return LaunchConfig(grid=Dim3(x=grid_x), block=Dim3(x=min(self.rows_per_block, 1024)))

    def run_block(self, ctx: BlockContext) -> None:
        r0, r1, r2 = (r.array() for r in self.replicas)
        out = self.out_buf.array()
        mismatches = self.mismatch_buf.array()
        start = ctx.block_idx.x * self.rows_per_block
        stop = min(start + self.rows_per_block, r0.shape[0])
        s = slice(start, stop)

        eq01 = r0[s] == r1[s]
        eq02 = r0[s] == r2[s]
        eq12 = r1[s] == r2[s]
        # Majority vote: r0 wherever it matches either peer, else r1 where
        # r1 matches r2, else (no majority) r0.
        out[s] = np.where(eq01 | eq02, r0[s], np.where(eq12, r1[s], r0[s]))
        mismatches[0] += float(np.sum(~(eq01 & eq02)))

        handled = (stop - start) * r0.shape[1]
        ctx.stats.flops += 3 * handled  # three compares per element
        ctx.stats.global_bytes_read += 3 * handled * 8
        ctx.stats.global_bytes_written += handled * 8


@dataclass
class TmrOutcome:
    """Result of a TMR-protected multiplication."""

    c: np.ndarray
    mismatching_elements: int

    @property
    def error_detected(self) -> bool:
        return self.mismatching_elements > 0


def run_tmr_matmul(
    sim: GpuSimulator,
    a: np.ndarray,
    b: np.ndarray,
    tile: int = 64,
    injector: FaultInjector | None = None,
    faulty_replica: int = 0,
) -> TmrOutcome:
    """Execute the TMR baseline on the simulator.

    ``injector`` (if given) strikes replica ``faulty_replica`` only — TMR
    masks any single-replica fault, which the compare kernel confirms.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    d_a = sim.upload(a)
    d_b = sim.upload(b)
    replicas = []
    for i in range(3):
        d_c = sim.alloc((a.shape[0], b.shape[1]))
        kernel = BlockMatmulKernel(
            d_a,
            d_b,
            d_c,
            tile_rows=tile,
            tile_cols=tile,
            injector=injector if i == faulty_replica else None,
        )
        if injector is not None and i == faulty_replica:
            config = kernel.launch_config()
            injector.resolve(sim.scheduler.assign(config), (tile, tile))
        sim.launch(kernel, stream="compute")
        replicas.append(d_c)

    d_out = sim.alloc((a.shape[0], b.shape[1]))
    d_mismatch = sim.alloc((1,))
    compare = TmrCompareKernel(tuple(replicas), d_out, d_mismatch)
    sim.launch(compare, stream="compute")
    return TmrOutcome(
        c=sim.download(d_out),
        mismatching_elements=int(sim.download(d_mismatch)[0]),
    )
