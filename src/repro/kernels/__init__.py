"""Simulated GPU kernels of the A-ABFT pipeline (paper Section V).

Algorithm 1 (encode + top-p), the global top-p reduction, Algorithm 3
(block matmul with fault hooks), Algorithm 2 (bounds + check), the SEA norm
kernels and the TMR baseline driver.
"""

from .check import CheckKernel
from .correct import CorrectionKernel
from .encode import EncodeColumnChecksumsKernel, EncodeRowChecksumsKernel
from .encode_fused import FusedEncodeResult, fused_encode
from .matmul import BlockMatmulKernel, sequential_inner_product
from .matmul_tiled import RegisterTiledMatmulKernel, plan_tiles, tiled_matmul
from .norms import ColumnNormKernel, RowNormKernel
from .online_fused import OnlineFusedOutcome, online_fused_matmul, plan_fused_tiles
from .reduce import TopPReduceKernel
from .tmr import TmrCompareKernel, TmrOutcome, run_tmr_matmul

__all__ = [
    "BlockMatmulKernel",
    "RegisterTiledMatmulKernel",
    "CheckKernel",
    "CorrectionKernel",
    "ColumnNormKernel",
    "EncodeColumnChecksumsKernel",
    "EncodeRowChecksumsKernel",
    "FusedEncodeResult",
    "fused_encode",
    "OnlineFusedOutcome",
    "RowNormKernel",
    "TmrCompareKernel",
    "TmrOutcome",
    "TopPReduceKernel",
    "online_fused_matmul",
    "plan_fused_tiles",
    "plan_tiles",
    "run_tmr_matmul",
    "sequential_inner_product",
    "tiled_matmul",
]
