"""Literal per-thread reference implementation of Algorithm 1.

The production encoding kernel (:mod:`repro.kernels.encode`) computes block
checksums and top-p candidates with vectorised numpy, which is functionally
equivalent to the paper's listing but structurally different.  This module
implements Algorithm 1 *literally* — per-thread column accumulation,
absolute-value replacement in shared memory, the iterative ``numMax``-round
max search with exclusion (``Asub[tid][maxID] <- 0``), and the
``localSums`` / ``maxReduce`` path for the checksum row — so tests can
assert the vectorised kernel's equivalence against the paper's own
procedure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Algorithm1Result", "algorithm1_reference"]


@dataclass(frozen=True)
class Algorithm1Result:
    """What one thread block of Algorithm 1 produces.

    Attributes
    ----------
    checksums:
        The column checksums of the block (one per thread).
    max_values / max_ids:
        Per data row: the ``numMax`` largest absolute values (descending)
        and their column indices within the block.
    checksum_max_values / checksum_max_ids:
        The ``numMax`` largest absolute checksum values of this block and
        the columns they came from (the checksum row's candidates).
    """

    checksums: np.ndarray
    max_values: np.ndarray
    max_ids: np.ndarray
    checksum_max_values: np.ndarray
    checksum_max_ids: np.ndarray


def algorithm1_reference(block: np.ndarray, num_max: int) -> Algorithm1Result:
    """Execute Algorithm 1 on one ``BS x BS`` sub-matrix, literally.

    Threads are simulated one after another; since the listing's threads
    only communicate through ``localSums`` (reduced after a sync), the
    serial order reproduces the parallel semantics exactly.
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2 or block.shape[0] != block.shape[1]:
        raise ValueError(f"Algorithm 1 processes square blocks, got {block.shape}")
    bs = block.shape[0]
    if not 1 <= num_max <= bs:
        raise ValueError(f"numMax must be in 1..{bs}, got {num_max}")

    # Phase 1: each thread tid accumulates its column top-to-bottom and
    # replaces elements by their absolute values (Figure 2).
    asub = np.empty((bs, bs))
    sums = np.zeros(bs)
    for tid in range(bs):
        s = 0.0
        for i in range(bs):
            asub[i, tid] = block[i, tid]
            s = s + asub[i, tid]
            asub[i, tid] = abs(asub[i, tid])
        sums[tid] = s
    checksums = sums.copy()

    # Phase 2: numMax rounds; thread tid scans row tid for its maximum and
    # excludes it for the next round; the block's column checksums compete
    # via localSums / maxReduce for the checksum row's candidates.
    max_values = np.zeros((bs, num_max))
    max_ids = np.zeros((bs, num_max), dtype=np.int64)
    cs_values = np.zeros(num_max)
    cs_ids = np.zeros(num_max, dtype=np.int64)
    local_sums = np.abs(sums)
    for round_idx in range(num_max):
        for tid in range(bs):
            max_val = 0.0
            max_id = 0
            for i in range(bs):
                if asub[tid, i] > max_val:
                    max_val = asub[tid, i]
                    max_id = i
            max_values[tid, round_idx] = max_val
            max_ids[tid, round_idx] = max_id
            asub[tid, max_id] = 0.0
        # maxReduce over the (remaining) column-checksum magnitudes.
        cs_id = int(np.argmax(local_sums))
        cs_values[round_idx] = local_sums[cs_id]
        cs_ids[round_idx] = cs_id
        local_sums[cs_id] = 0.0

    return Algorithm1Result(
        checksums=checksums,
        max_values=max_values,
        max_ids=max_ids,
        checksum_max_values=cs_values,
        checksum_max_ids=cs_ids,
    )
