"""Checksum-encoding kernels with fused top-p search (paper Algorithm 1).

The encoding kernel processes one ``BS x BS`` sub-matrix per thread block
and fuses two jobs (Section V-A):

a/c) compute the block's column (for ``A``) or row (for ``B``) checksums and
     write the encoded matrix;
b/d) find the ``p`` largest absolute values *per row* (for ``A``) or *per
     column* (for ``B``) within the block — including the block's checksum
     values themselves (Algorithm 1's ``localSums`` / ``maxSum`` path), so
     the checksum vectors get top-p candidates too.

Per-block candidates are merged to global per-vector top-p sets by the
reduction kernel (:mod:`repro.kernels.reduce`).

Buffer layout of the candidate outputs: ``max_vals``/``max_ids`` have shape
``(encoded_rows, num_inner_blocks, p)`` where ``encoded_rows`` indexes the
encoded vectors (data rows/cols + checksum rows/cols) and ``max_ids`` holds
*global* indices along the vector.
"""

from __future__ import annotations

import numpy as np

from ..abft.encoding import PartitionedLayout
from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig
from ..gpusim.memory import DeviceBuffer

__all__ = ["EncodeColumnChecksumsKernel", "EncodeRowChecksumsKernel"]


def _block_top_p(values: np.ndarray, p: int) -> tuple[np.ndarray, np.ndarray]:
    """Top-p |values| per row of a 2-D block: (vals desc, local indices)."""
    absolute = np.abs(values)
    length = absolute.shape[1]
    k = min(p, length)
    part = np.argpartition(absolute, length - k, axis=1)[:, length - k :]
    vals = np.take_along_axis(absolute, part, axis=1)
    order = np.argsort(-vals, axis=1)
    idx = np.take_along_axis(part, order, axis=1)
    vals = np.take_along_axis(vals, order, axis=1)
    if k < p:  # pad with -inf so padded slots never win the reduction
        pad_vals = np.full((absolute.shape[0], p - k), -np.inf)
        pad_idx = np.zeros((absolute.shape[0], p - k), dtype=np.int64)
        vals = np.hstack([vals, pad_vals])
        idx = np.hstack([idx, pad_idx])
    return vals, idx


class EncodeColumnChecksumsKernel(Kernel):
    """Encode ``A`` with partitioned column checksums + per-block top-p.

    Launch: one thread block per ``BS x BS`` sub-matrix of ``A``
    (grid = inner blocks x row blocks), ``BS x 1`` threads as in the paper.

    Parameters
    ----------
    a_buf:
        Input data matrix ``A`` (``m x n``), ``m`` divisible by ``BS``.
    out_buf:
        Output encoded matrix (``(m + m/BS) x n``), interleaved layout.
    max_vals / max_ids:
        Candidate buffers, shapes ``(encoded_rows, n/BS, p)``.
    layout:
        Row layout of the encoded output.
    p:
        Number of largest absolute values tracked (``numMax``).
    """

    name = "encode_columns"
    #: Streaming adds with a small search loop — moderate sustained rate.
    compute_efficiency = 0.25

    def __init__(
        self,
        a_buf: DeviceBuffer,
        out_buf: DeviceBuffer,
        max_vals: DeviceBuffer,
        max_ids: DeviceBuffer,
        layout: PartitionedLayout,
        p: int,
    ) -> None:
        m, n = a_buf.shape
        bs = layout.block_size
        if m != layout.data_rows:
            raise ValueError(f"A has {m} rows, layout expects {layout.data_rows}")
        if n % bs:
            raise ValueError(f"inner dimension {n} not divisible by BS={bs}")
        if out_buf.shape != (layout.encoded_rows, n):
            raise ValueError(
                f"encoded buffer shape {out_buf.shape}, expected "
                f"{(layout.encoded_rows, n)}"
            )
        expected = (layout.encoded_rows, n // bs, p)
        if max_vals.shape != expected or max_ids.shape != expected:
            raise ValueError(f"candidate buffers must have shape {expected}")
        self.a_buf = a_buf
        self.out_buf = out_buf
        self.max_vals = max_vals
        self.max_ids = max_ids
        self.layout = layout
        self.p = p

    def launch_config(self) -> LaunchConfig:
        bs = self.layout.block_size
        m, n = self.a_buf.shape
        return LaunchConfig(
            grid=Dim3(x=n // bs, y=m // bs), block=Dim3(x=bs)
        )

    def run_block(self, ctx: BlockContext) -> None:
        bs = self.layout.block_size
        blk_row = ctx.block_idx.y
        blk_col = ctx.block_idx.x
        a = self.a_buf.array()
        out = self.out_buf.array()
        vals = self.max_vals.array()
        ids = self.max_ids.array()

        rows = slice(blk_row * bs, (blk_row + 1) * bs)
        cols = slice(blk_col * bs, (blk_col + 1) * bs)
        sub = ctx.shared.declare("Asub", (bs, bs))
        sub[...] = a[rows, cols]

        # Column checksums (threads accumulate top-to-bottom, Figure 2).
        checksums = sub.sum(axis=0)
        out[self.layout.data_indices(blk_row), cols] = sub
        out[self.layout.checksum_index(blk_row), cols] = checksums

        # Top-p per data row of the block, with global column indices.
        top_vals, local_idx = _block_top_p(sub, self.p)
        global_idx = local_idx + blk_col * bs
        data_rows = self.layout.data_indices(blk_row)
        vals[data_rows, blk_col, :] = top_vals
        ids[data_rows, blk_col, :] = global_idx

        # Top-p of the checksum row from this block's column checksums
        # (Algorithm 1's localSums / maxReduce path).
        cs_vals, cs_local = _block_top_p(checksums[None, :], self.p)
        cs_row = self.layout.checksum_index(blk_row)
        vals[cs_row, blk_col, :] = cs_vals[0]
        ids[cs_row, blk_col, :] = cs_local[0] + blk_col * bs

        # Work accounting: BS^2 adds (checksums), BS^2 abs +
        # p sweeps of BS^2 comparisons (max search).
        ctx.stats.flops += bs * bs * (2 + self.p)
        ctx.stats.global_bytes_read += sub.nbytes
        ctx.stats.global_bytes_written += (
            sub.nbytes + checksums.nbytes + top_vals.nbytes * 2 + cs_vals.nbytes * 2
        )


class EncodeRowChecksumsKernel(Kernel):
    """Encode ``B`` with partitioned row checksums + per-block top-p.

    Same structure as :class:`EncodeColumnChecksumsKernel`, transposed:
    checksum *columns* are appended per ``BS``-column block and the top-p
    search runs per *column*.  Candidate buffers index the encoded columns.
    """

    name = "encode_rows"
    compute_efficiency = 0.25

    def __init__(
        self,
        b_buf: DeviceBuffer,
        out_buf: DeviceBuffer,
        max_vals: DeviceBuffer,
        max_ids: DeviceBuffer,
        layout: PartitionedLayout,
        p: int,
    ) -> None:
        n, q = b_buf.shape
        bs = layout.block_size
        if q != layout.data_rows:
            raise ValueError(f"B has {q} cols, layout expects {layout.data_rows}")
        if n % bs:
            raise ValueError(f"inner dimension {n} not divisible by BS={bs}")
        if out_buf.shape != (n, layout.encoded_rows):
            raise ValueError(
                f"encoded buffer shape {out_buf.shape}, expected "
                f"{(n, layout.encoded_rows)}"
            )
        expected = (layout.encoded_rows, n // bs, p)
        if max_vals.shape != expected or max_ids.shape != expected:
            raise ValueError(f"candidate buffers must have shape {expected}")
        self.b_buf = b_buf
        self.out_buf = out_buf
        self.max_vals = max_vals
        self.max_ids = max_ids
        self.layout = layout
        self.p = p

    def launch_config(self) -> LaunchConfig:
        bs = self.layout.block_size
        n, q = self.b_buf.shape
        return LaunchConfig(grid=Dim3(x=q // bs, y=n // bs), block=Dim3(x=bs))

    def run_block(self, ctx: BlockContext) -> None:
        bs = self.layout.block_size
        blk_inner = ctx.block_idx.y  # along the inner dimension n
        blk_col = ctx.block_idx.x  # along the encoded axis (columns of B)
        b = self.b_buf.array()
        out = self.out_buf.array()
        vals = self.max_vals.array()
        ids = self.max_ids.array()

        rows = slice(blk_inner * bs, (blk_inner + 1) * bs)
        cols = slice(blk_col * bs, (blk_col + 1) * bs)
        sub = ctx.shared.declare("Bsub", (bs, bs))
        sub[...] = b[rows, cols]

        checksums = sub.sum(axis=1)
        out[rows, self.layout.data_indices(blk_col)] = sub
        out[rows, self.layout.checksum_index(blk_col)] = checksums

        top_vals, local_idx = _block_top_p(sub.T, self.p)
        global_idx = local_idx + blk_inner * bs
        data_cols = self.layout.data_indices(blk_col)
        vals[data_cols, blk_inner, :] = top_vals
        ids[data_cols, blk_inner, :] = global_idx

        cs_vals, cs_local = _block_top_p(checksums[None, :], self.p)
        cs_col = self.layout.checksum_index(blk_col)
        vals[cs_col, blk_inner, :] = cs_vals[0]
        ids[cs_col, blk_inner, :] = cs_local[0] + blk_inner * bs

        ctx.stats.flops += bs * bs * (2 + self.p)
        ctx.stats.global_bytes_read += sub.nbytes
        ctx.stats.global_bytes_written += (
            sub.nbytes + checksums.nbytes + top_vals.nbytes * 2 + cs_vals.nbytes * 2
        )
