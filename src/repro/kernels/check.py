"""Checking kernel: bounds + reference checksums + comparison
(paper Algorithm 2).

One thread block processes one ``(BS+1) x (BS+1)`` result sub-matrix: it
loads the top-p indices/values produced by the encoding/reduction kernels,
derives the rounding-error bound for each checksum comparison (the
three-case ``y`` rule + the probabilistic model), recomputes the reference
row/column checksums from the result data, and writes the discrepancy and
tolerance of every comparison to global buffers.  The host turns those
buffers into a :class:`~repro.abft.checking.CheckReport`.

The kernel is generic over the epsilon provider, so the same launch code
serves the A-ABFT scheme (top-p based), the SEA baseline (norm based) and
fixed bounds.
"""

from __future__ import annotations

import numpy as np

from ..abft.checking import EpsilonProvider
from ..abft.encoding import PartitionedLayout
from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig
from ..gpusim.memory import DeviceBuffer

__all__ = ["CheckKernel"]


class CheckKernel(Kernel):
    """Per-block bound determination, reference checksums and comparison.

    Parameters
    ----------
    c_buf:
        The full-checksum result matrix.
    row_layout / col_layout:
        Encoded layouts of the result.
    epsilons:
        Per-comparison tolerance provider.
    col_disc_buf / col_eps_buf:
        Outputs for column checks, shape ``(num_row_blocks, encoded_cols)``.
    row_disc_buf / row_eps_buf:
        Outputs for row checks, shape ``(encoded_rows, num_col_blocks)``.
    """

    name = "abft_check"
    #: Checksum sums + a handful of bound evaluations per block.
    compute_efficiency = 0.20

    def __init__(
        self,
        c_buf: DeviceBuffer,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        epsilons: EpsilonProvider,
        col_disc_buf: DeviceBuffer,
        col_eps_buf: DeviceBuffer,
        row_disc_buf: DeviceBuffer,
        row_eps_buf: DeviceBuffer,
    ) -> None:
        expected_c = (row_layout.encoded_rows, col_layout.encoded_rows)
        if c_buf.shape != expected_c:
            raise ValueError(f"result buffer shape {c_buf.shape}, expected {expected_c}")
        expected_col = (row_layout.num_blocks, col_layout.encoded_rows)
        expected_row = (row_layout.encoded_rows, col_layout.num_blocks)
        if col_disc_buf.shape != expected_col or col_eps_buf.shape != expected_col:
            raise ValueError(f"column outputs must have shape {expected_col}")
        if row_disc_buf.shape != expected_row or row_eps_buf.shape != expected_row:
            raise ValueError(f"row outputs must have shape {expected_row}")
        self.c_buf = c_buf
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.epsilons = epsilons
        self.col_disc_buf = col_disc_buf
        self.col_eps_buf = col_eps_buf
        self.row_disc_buf = row_disc_buf
        self.row_eps_buf = row_eps_buf

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(
            grid=Dim3(x=self.col_layout.num_blocks, y=self.row_layout.num_blocks),
            block=Dim3(x=self.col_layout.stride),
        )

    def run_block(self, ctx: BlockContext) -> None:
        blk_row = ctx.block_idx.y
        blk_col = ctx.block_idx.x
        rows = self.row_layout
        cols = self.col_layout
        c = self.c_buf.array()

        row_idx = slice(blk_row * rows.stride, (blk_row + 1) * rows.stride)
        col_idx = slice(blk_col * cols.stride, (blk_col + 1) * cols.stride)
        sub = ctx.shared.declare("Csub", (rows.stride, cols.stride))
        sub[...] = c[row_idx, col_idx]

        # Column checks for this block's encoded columns.
        ref_cols = sub[: rows.block_size, :].sum(axis=0)
        orig_cols = sub[rows.block_size, :]
        col_disc = np.abs(ref_cols - orig_cols)
        for j in range(cols.stride):
            encoded_col = blk_col * cols.stride + j
            self.col_disc_buf.array()[blk_row, encoded_col] = col_disc[j]
            self.col_eps_buf.array()[blk_row, encoded_col] = (
                self.epsilons.column_epsilon(blk_row, encoded_col)
            )

        # Row checks for this block's encoded rows.
        ref_rows = sub[:, : cols.block_size].sum(axis=1)
        orig_rows = sub[:, cols.block_size]
        row_disc = np.abs(ref_rows - orig_rows)
        for i in range(rows.stride):
            encoded_row = blk_row * rows.stride + i
            self.row_disc_buf.array()[encoded_row, blk_col] = row_disc[i]
            self.row_eps_buf.array()[encoded_row, blk_col] = self.epsilons.row_epsilon(
                encoded_row, blk_col
            )

        bs = rows.block_size
        # Reference sums (2 * BS * stride adds), comparisons, bound evals.
        ctx.stats.flops += 2 * bs * (rows.stride + cols.stride) + 8 * (
            rows.stride + cols.stride
        )
        ctx.stats.global_bytes_read += sub.nbytes
        ctx.stats.global_bytes_written += (rows.stride + cols.stride) * 16
