"""Device-side single-error correction kernel.

Algorithm 2's listing ends with "write back error location **or start
correction**".  This kernel implements that correction path on the
simulated device: one thread block per result block re-derives the signed
column discrepancy at every located error position and subtracts it —
the same arithmetic as the host-side
:func:`repro.abft.correction.correct_single_error`, but running where the
data already lives, so the corrected matrix never has to round-trip
through the host.

The kernel corrects one error per result block (the ABFT single-error
model); blocks with multiple candidate positions are left untouched and
reported, since the intersection is ambiguous there.
"""

from __future__ import annotations

from ..abft.encoding import PartitionedLayout
from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig
from ..gpusim.memory import DeviceBuffer

__all__ = ["CorrectionKernel"]


class CorrectionKernel(Kernel):
    """Correct located single errors in a full-checksum result, in place.

    Parameters
    ----------
    c_buf:
        The full-checksum result to patch.
    locations:
        Encoded ``(row, col)`` error positions (from a check report).
    row_layout / col_layout:
        Encoding layouts of the result.
    status_buf:
        Output of shape ``(num_row_blocks, num_col_blocks)``: 0 = clean,
        1 = corrected, 2 = ambiguous (multiple candidates; untouched).
    """

    name = "abft_correct"
    compute_efficiency = 0.10

    def __init__(
        self,
        c_buf: DeviceBuffer,
        locations: list[tuple[int, int]],
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        status_buf: DeviceBuffer,
    ) -> None:
        expected = (row_layout.encoded_rows, col_layout.encoded_rows)
        if c_buf.shape != expected:
            raise ValueError(f"result buffer shape {c_buf.shape}, expected {expected}")
        status_shape = (row_layout.num_blocks, col_layout.num_blocks)
        if status_buf.shape != status_shape:
            raise ValueError(f"status buffer must have shape {status_shape}")
        self.c_buf = c_buf
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.status_buf = status_buf
        self._by_block: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for row, col in locations:
            key = (row // row_layout.stride, col // col_layout.stride)
            self._by_block.setdefault(key, []).append((row, col))

    def launch_config(self) -> LaunchConfig:
        return LaunchConfig(
            grid=Dim3(
                x=self.col_layout.num_blocks, y=self.row_layout.num_blocks
            ),
            block=Dim3(x=self.col_layout.stride),
        )

    def run_block(self, ctx: BlockContext) -> None:
        key = (ctx.block_idx.y, ctx.block_idx.x)
        status = self.status_buf.array()
        candidates = self._by_block.get(key, [])
        if not candidates:
            status[key] = 0.0
            return
        if len(candidates) > 1:
            status[key] = 2.0
            ctx.stats.flops += 1
            return

        c = self.c_buf.array()
        rows = self.row_layout
        row, col = candidates[0]
        blk = row // rows.stride
        data = c[rows.data_indices(blk), col]
        original = c[rows.checksum_index(blk), col]
        if rows.is_checksum_index(row):
            delta = float(original - data.sum())
        else:
            delta = float(data.sum() - original)
        c[row, col] -= delta
        status[key] = 1.0

        ctx.stats.flops += rows.block_size + 2
        ctx.stats.global_bytes_read += (rows.block_size + 1) * 8
        ctx.stats.global_bytes_written += 16
