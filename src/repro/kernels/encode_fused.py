"""Fused host-side encode kernel: checksums + top-p + norms in one pass.

This is the array-level analog of the paper's Algorithm 1, which fuses the
partitioned checksum encoding with the top-p max search so the operand is
read once.  :func:`fused_encode` performs, for one operand, in a single
kernel invocation:

* the partitioned checksum encoding (block-reshaped copy + reduction, no
  per-block Python loop) — bitwise identical to the reference loop kernels
  ``encode_partitioned_*_reference``;
* the top-p absolute values/indices of every encoded vector for the
  ``aabft`` scheme, via ``p`` rounds of a strict vectorised max search
  (Algorithm 1's tie semantics: first occurrence wins);
* the Euclidean norms of every encoded vector for the ``sea`` scheme.

All scratch buffers — including the encoded output itself — can come from
a :class:`~repro.engine.plan.WorkspacePool`, so warm engine calls and
fused batches run allocation-free on the encode path.  The cycle-level
simulated GPU kernels live in :mod:`repro.kernels.encode`;
``encode_reference.algorithm1_reference`` remains the per-block oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..abft.encoding import (
    PartitionedLayout,
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from ..bounds.upper_bound import top_p_arrays
from ..errors import ConfigurationError

__all__ = ["FusedEncodeResult", "fused_encode"]


@dataclass(frozen=True)
class FusedEncodeResult:
    """Everything one operand contributes to the protected multiplication.

    ``encoded`` may be a pooled buffer when a ``pool`` was passed: the
    caller owns it and decides whether to give it back (the engine does so
    after the multiply has consumed it) or let it escape (never pooled
    again once handed to user code).
    """

    encoded: np.ndarray
    layout: PartitionedLayout
    top_values: np.ndarray | None = None
    top_indices: np.ndarray | None = None
    norms: np.ndarray | None = None


def fused_encode(
    matrix: np.ndarray,
    side: str,
    block_size: int,
    *,
    p: int | None = None,
    norms: bool = False,
    pool=None,
) -> FusedEncodeResult:
    """Encode one operand and compute its bound-scheme preprocessing.

    Parameters
    ----------
    matrix:
        The (already padded, dtype-resolved) operand.
    side:
        ``"a"`` encodes checksum rows and searches the encoded *rows*;
        ``"b"`` encodes checksum columns and searches the encoded *columns*.
    block_size:
        The partitioned-encoding block size ``BS``.
    p:
        When given, compute the top-``p`` values/indices of every encoded
        vector (``aabft``).  Mutually exclusive with ``norms``.
    norms:
        When true, compute every encoded vector's Euclidean norm (``sea``).
    pool:
        Optional :class:`~repro.engine.plan.WorkspacePool` supplying the
        encoded output buffer and the top-p search workspace.
    """
    if side not in ("a", "b"):
        raise ConfigurationError(f"side must be 'a' or 'b', got {side!r}")
    if p is not None and norms:
        raise ConfigurationError("p and norms are mutually exclusive")
    matrix = np.asarray(matrix)
    axis = 1 if side == "a" else 0
    if side == "a":
        out = None
        if pool is not None:
            layout = PartitionedLayout(matrix.shape[0], block_size)
            out = pool.take((layout.encoded_rows, matrix.shape[1]), matrix.dtype)
        encoded, layout = encode_partitioned_columns(matrix, block_size, out=out)
    else:
        out = None
        if pool is not None:
            layout = PartitionedLayout(matrix.shape[1], block_size)
            out = pool.take((matrix.shape[0], layout.encoded_rows), matrix.dtype)
        encoded, layout = encode_partitioned_rows(matrix, block_size, out=out)
    top_vals = top_idx = vec_norms = None
    if p is not None:
        top_vals, top_idx = top_p_arrays(encoded, p, axis=axis, pool=pool)
    elif norms:
        vec_norms = np.linalg.norm(encoded, axis=axis)
    return FusedEncodeResult(
        encoded=encoded,
        layout=layout,
        top_values=top_vals,
        top_indices=top_idx,
        norms=vec_norms,
    )
