"""Block-based matrix-multiplication kernel with fault-injection hooks
(paper Algorithm 3).

One thread block computes one ``(BS+1) x (BS+1)`` full-checksum result block
``C_block = A_rows @ B_cols`` over the full inner dimension.  The simulated
kernel preserves the two properties the experiments observe:

* **block-to-SM mapping** — the simulator's scheduler decides which SM runs
  which block, and the fault injector strikes one block on the targeted SM;
* **sequential accumulation order** — within one thread, the inner products
  accumulate in ascending ``k`` order; the element struck by a fault is
  replayed exactly in that order with the XOR applied at ``kInjection``
  (inner-loop multiplication / inner-loop addition) or at the final merge.

Blocks without a strike use the vectorised fast path (``np.matmul``), which
is numerically equivalent up to rounding; ``faithful=True`` forces the
sequential k-order for every element of every block (slow, used by tests).
"""

from __future__ import annotations

import numpy as np

from ..faults.injector import FaultInjector
from ..faults.model import FaultSite
from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig
from ..gpusim.memory import DeviceBuffer

__all__ = ["BlockMatmulKernel", "sequential_inner_product"]


def sequential_inner_product(
    a_vec: np.ndarray,
    b_vec: np.ndarray,
    injector: FaultInjector | None = None,
) -> float:
    """Inner product accumulated in ascending-k order, with optional faults.

    This is the reference accumulation order of one simulated GPU thread;
    the injector's hooks fire exactly as in Algorithm 3 (multiplication
    before accumulation, accumulation result, final merge).
    """
    a_list = np.asarray(a_vec, dtype=np.float64).tolist()
    b_list = np.asarray(b_vec, dtype=np.float64).tolist()
    if len(a_list) != len(b_list):
        raise ValueError("vectors must have equal length")
    accum = 0.0
    for k, (x, y) in enumerate(zip(a_list, b_list)):
        prod = x * y
        if injector is not None and injector.strikes(FaultSite.INNER_MUL, k):
            prod = injector.apply(prod)
        accum = accum + prod
        if injector is not None and injector.strikes(FaultSite.INNER_ADD, k):
            accum = injector.apply(accum)
    if injector is not None and injector.strikes(FaultSite.MERGE_ADD):
        accum = injector.apply(accum)
    return accum


class BlockMatmulKernel(Kernel):
    """``C = A @ B`` computed block-by-block on the simulated device.

    Parameters
    ----------
    a_buf / b_buf / c_buf:
        Device buffers holding the (encoded) operands and result.  Shapes
        must satisfy ``C (M x Q) = A (M x N) @ B (N x Q)`` with ``M`` and
        ``Q`` divisible by the tile sizes.
    tile_rows / tile_cols:
        Result-tile dimensions per thread block — ``BS + 1`` for
        partitioned-encoded operands.
    injector:
        Optional fault injector (resolved against the launch by
        :meth:`launch_config` + the pipeline; see
        :class:`~repro.faults.injector.FaultInjector`).
    faithful:
        Compute *every* element in sequential k-order (slow; tests only).
    """

    name = "matmul_block"
    #: Dense matmul sustains a high fraction of peak on Kepler (Tan et al.).
    compute_efficiency = 0.90

    def __init__(
        self,
        a_buf: DeviceBuffer,
        b_buf: DeviceBuffer,
        c_buf: DeviceBuffer,
        tile_rows: int,
        tile_cols: int,
        injector: FaultInjector | None = None,
        faithful: bool = False,
    ) -> None:
        m, n = a_buf.shape
        n2, q = b_buf.shape
        if n != n2:
            raise ValueError(f"inner dimensions disagree: {a_buf.shape} x {b_buf.shape}")
        if c_buf.shape != (m, q):
            raise ValueError(f"result buffer shape {c_buf.shape}, expected {(m, q)}")
        if m % tile_rows or q % tile_cols:
            raise ValueError(
                f"result {m}x{q} not divisible into {tile_rows}x{tile_cols} tiles"
            )
        self.a_buf = a_buf
        self.b_buf = b_buf
        self.c_buf = c_buf
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.injector = injector
        self.faithful = faithful

    def launch_config(self) -> LaunchConfig:
        m, _ = self.a_buf.shape
        _, q = self.b_buf.shape
        grid = Dim3(x=q // self.tile_cols, y=m // self.tile_rows)
        return LaunchConfig(grid=grid, block=Dim3(x=self.tile_cols))

    # ------------------------------------------------------------------
    def run_block(self, ctx: BlockContext) -> None:
        a = self.a_buf.array()
        b = self.b_buf.array()
        c = self.c_buf.array()
        n = a.shape[1]

        rows = slice(
            ctx.block_idx.y * self.tile_rows, (ctx.block_idx.y + 1) * self.tile_rows
        )
        cols = slice(
            ctx.block_idx.x * self.tile_cols, (ctx.block_idx.x + 1) * self.tile_cols
        )
        a_tile = a[rows, :]
        b_tile = b[:, cols]

        # Shared-memory staging as in Algorithm 3 (one BK-slice of each
        # operand resident at a time); functionally we only track the
        # footprint, the arithmetic below reads the staged values.
        bk = min(n, 16)
        sm_a = ctx.shared.declare("smA", (self.tile_rows, bk))
        sm_b = ctx.shared.declare("smB", (bk, self.tile_cols))
        del sm_a, sm_b

        if self.faithful:
            tile = np.empty((self.tile_rows, self.tile_cols))
            for r in range(self.tile_rows):
                for col in range(self.tile_cols):
                    tile[r, col] = sequential_inner_product(
                        a_tile[r, :], b_tile[:, col]
                    )
            c[rows, cols] = tile
        else:
            c[rows, cols] = a_tile @ b_tile

        injector = self.injector
        if injector is not None and injector.targets_block(ctx.linear_block_index):
            act = injector.activation
            r, col = act.element_row, act.element_col
            c[rows, cols][r, col] = sequential_inner_product(
                a_tile[r, :], b_tile[:, col], injector
            )

        ctx.stats.flops += 2 * self.tile_rows * self.tile_cols * n
        ctx.stats.global_bytes_read += (a_tile.nbytes + b_tile.nbytes)
        ctx.stats.global_bytes_written += self.tile_rows * self.tile_cols * 8
