"""Vector-norm kernels for the SEA-ABFT baseline.

SEA tolerances need the Euclidean norm of every encoded row of ``A_cc`` and
every encoded column of ``B_rc``.  On the GPU these norm computations "use
only a small fraction of the available GPU threads" (paper Section VI-A) —
one thread block per strip of vectors — which is why SEA-ABFT's throughput
trails A-ABFT's in Table I.  The kernel's low ``compute_efficiency`` encodes
exactly that utilisation penalty for the timing model.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig
from ..gpusim.memory import DeviceBuffer

__all__ = ["RowNormKernel", "ColumnNormKernel"]


class RowNormKernel(Kernel):
    """Euclidean norms of every row of a matrix buffer."""

    name = "row_norms"
    #: Reduction-style kernel with poor SM utilisation (paper Section VI-A).
    compute_efficiency = 0.06

    def __init__(
        self,
        in_buf: DeviceBuffer,
        out_buf: DeviceBuffer,
        rows_per_block: int = 32,
    ) -> None:
        if len(in_buf.shape) != 2:
            raise ValueError(f"expected a matrix buffer, got shape {in_buf.shape}")
        if out_buf.shape != (in_buf.shape[0],):
            raise ValueError(
                f"output must have shape {(in_buf.shape[0],)}, got {out_buf.shape}"
            )
        if rows_per_block < 1:
            raise ValueError("rows_per_block must be >= 1")
        self.in_buf = in_buf
        self.out_buf = out_buf
        self.rows_per_block = rows_per_block

    def launch_config(self) -> LaunchConfig:
        rows = self.in_buf.shape[0]
        grid_x = -(-rows // self.rows_per_block)
        return LaunchConfig(grid=Dim3(x=grid_x), block=Dim3(x=self.rows_per_block))

    def run_block(self, ctx: BlockContext) -> None:
        matrix = self.in_buf.array()
        out = self.out_buf.array()
        start = ctx.block_idx.x * self.rows_per_block
        stop = min(start + self.rows_per_block, matrix.shape[0])
        out[start:stop] = np.linalg.norm(matrix[start:stop, :], axis=1)

        handled = stop - start
        cols = matrix.shape[1]
        ctx.stats.flops += handled * (2 * cols + 1)  # squares + adds + sqrt
        ctx.stats.global_bytes_read += handled * cols * 8
        ctx.stats.global_bytes_written += handled * 8


class ColumnNormKernel(RowNormKernel):
    """Euclidean norms of every column of a matrix buffer."""

    name = "column_norms"

    def __init__(
        self,
        in_buf: DeviceBuffer,
        out_buf: DeviceBuffer,
        cols_per_block: int = 32,
    ) -> None:
        if len(in_buf.shape) != 2:
            raise ValueError(f"expected a matrix buffer, got shape {in_buf.shape}")
        if out_buf.shape != (in_buf.shape[1],):
            raise ValueError(
                f"output must have shape {(in_buf.shape[1],)}, got {out_buf.shape}"
            )
        if cols_per_block < 1:
            raise ValueError("cols_per_block must be >= 1")
        self.in_buf = in_buf
        self.out_buf = out_buf
        self.rows_per_block = cols_per_block

    def launch_config(self) -> LaunchConfig:
        cols = self.in_buf.shape[1]
        grid_x = -(-cols // self.rows_per_block)
        return LaunchConfig(grid=Dim3(x=grid_x), block=Dim3(x=self.rows_per_block))

    def run_block(self, ctx: BlockContext) -> None:
        matrix = self.in_buf.array()
        out = self.out_buf.array()
        start = ctx.block_idx.x * self.rows_per_block
        stop = min(start + self.rows_per_block, matrix.shape[1])
        out[start:stop] = np.linalg.norm(matrix[:, start:stop], axis=0)

        handled = stop - start
        rows = matrix.shape[0]
        ctx.stats.flops += handled * (2 * rows + 1)
        ctx.stats.global_bytes_read += handled * rows * 8
        ctx.stats.global_bytes_written += handled * 8
