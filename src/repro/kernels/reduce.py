"""Global top-p reduction kernel (paper Section V-A, step 3).

The encoding kernels produce ``(inner_blocks * p)`` top-p candidates per
encoded vector; this kernel reduces them "to the required p per
row/column".  On the real GPU it runs in a separate stream concurrently
with the matrix multiplication; the pipeline submits it to a different
simulated stream so the timing model can overlap it.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig
from ..gpusim.memory import DeviceBuffer

__all__ = ["TopPReduceKernel"]


class TopPReduceKernel(Kernel):
    """Reduce per-block top-p candidates to global per-vector top-p sets.

    Parameters
    ----------
    cand_vals / cand_ids:
        Candidate buffers from an encoding kernel, shape
        ``(num_vectors, num_inner_blocks, p)``.
    out_vals / out_ids:
        Reduced outputs, shape ``(num_vectors, p)``; values descending,
        ids are global indices along the vector.
    vectors_per_block:
        How many vectors one thread block reduces (launch-shaping knob).
    """

    name = "top_p_reduce"
    #: Small comparison-dominated kernel with poor utilisation.
    compute_efficiency = 0.05

    def __init__(
        self,
        cand_vals: DeviceBuffer,
        cand_ids: DeviceBuffer,
        out_vals: DeviceBuffer,
        out_ids: DeviceBuffer,
        vectors_per_block: int = 32,
    ) -> None:
        if cand_vals.shape != cand_ids.shape:
            raise ValueError("candidate buffers must have identical shapes")
        if len(cand_vals.shape) != 3:
            raise ValueError(
                f"candidates must be (vectors, blocks, p), got {cand_vals.shape}"
            )
        num_vectors, _, p = cand_vals.shape
        if out_vals.shape != (num_vectors, p) or out_ids.shape != (num_vectors, p):
            raise ValueError(
                f"outputs must have shape {(num_vectors, p)}, got "
                f"{out_vals.shape} / {out_ids.shape}"
            )
        if vectors_per_block < 1:
            raise ValueError("vectors_per_block must be >= 1")
        self.cand_vals = cand_vals
        self.cand_ids = cand_ids
        self.out_vals = out_vals
        self.out_ids = out_ids
        self.vectors_per_block = vectors_per_block

    def launch_config(self) -> LaunchConfig:
        num_vectors = self.cand_vals.shape[0]
        grid_x = -(-num_vectors // self.vectors_per_block)  # ceil division
        return LaunchConfig(grid=Dim3(x=grid_x), block=Dim3(x=self.vectors_per_block))

    def run_block(self, ctx: BlockContext) -> None:
        vals = self.cand_vals.array()
        ids = self.cand_ids.array()
        out_vals = self.out_vals.array()
        out_ids = self.out_ids.array()

        num_vectors, num_blocks, p = vals.shape
        start = ctx.block_idx.x * self.vectors_per_block
        stop = min(start + self.vectors_per_block, num_vectors)
        for v in range(start, stop):
            flat_vals = vals[v].ravel()
            flat_ids = ids[v].ravel()
            order = np.argsort(-flat_vals, kind="stable")[:p]
            out_vals[v, :] = flat_vals[order]
            out_ids[v, :] = flat_ids[order]

        reduced = stop - start
        ctx.stats.flops += reduced * num_blocks * p  # comparison sweeps
        ctx.stats.global_bytes_read += reduced * num_blocks * p * 16
        ctx.stats.global_bytes_written += reduced * p * 16
