"""Online-ABFT fused into the tiled GEMM: per-tile checksums, early abort.

The separate execution path streams the result three times: once to
multiply, once for :func:`~repro.abft.checking.column_discrepancies` and
once for :func:`~repro.abft.checking.row_discrepancies`.  Following the
online-fault-tolerance GEMM literature (Wu/Zhai et al., PAPERS.md), this
kernel folds the checksum comparison into the tile loop itself: each
result tile is checked against its tolerance slice while its bytes are
still hot, so a corrupted tile is flagged — and recomputed — *before* the
remaining tiles run.

Bitwise reconciliation
----------------------
Fused tiles are **stride-aligned**: the tile edge is a whole number of
``(BS+1)``-wide encoded blocks per axis, and the encoded result dims are
themselves stride multiples, so every tile (clipped edge tiles included)
covers whole checksum blocks.  A tile's discrepancy reduction is then the
exact same per-element accumulation the full-matrix reduction performs on
that slice — ``np.asarray(..., float64)`` cast included — so the
concatenated per-tile grids are bitwise equal to the one-shot grids, and
the tile GEMMs reuse :func:`~repro.kernels.matmul_tiled.tiled_matmul`'s
per-tile BLAS calls so result bytes reconcile against ``tiled_matmul``
over the same tile list.  Both properties are hypothesis-tested.

Abort semantics
---------------
Tiles are checked in row-major plan order.  A failing tile is recomputed
in place up to ``max_recomputes`` times (a transient strike heals and the
run continues clean).  A *persistent* failure aborts checking: the kernel
records the failed tile, finishes the remaining GEMM tiles unchecked (the
caller still needs the full product for the canonical report/correction
path) and returns ``early_abort=True`` so the caller rebuilds the full
report with the separate-path oracle.  Nothing is ever dropped silently.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..abft.encoding import PartitionedLayout
from ..errors import ShapeError
from .matmul_tiled import tiled_matmul

__all__ = ["OnlineFusedOutcome", "online_fused_matmul", "plan_fused_tiles"]

# An inject hook receives (tile_index, attempt, tile_view) and may mutate
# the tile in place — the chaos/fault-campaign seam.
InjectHook = Callable[[int, int, np.ndarray], None]


def plan_fused_tiles(
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    tile_blocks: int | None,
) -> list[tuple[int, int, int, int]]:
    """Stride-aligned tile decomposition of the encoded result.

    The tile edge along each axis is ``tile_blocks`` whole encoded blocks
    (``tile_blocks * (BS+1)`` encoded rows/cols), so every tile owns its
    checksum rows and columns outright and can be checked independently.
    Encoded dims are stride multiples, hence clipped edge tiles still
    cover whole blocks.  ``tile_blocks=None`` yields the single
    full-result tile — the degenerate fused mode whose result bytes and
    discrepancy grids are bitwise equal to the separate default path.
    """
    m_enc = row_layout.encoded_rows
    q_enc = col_layout.encoded_rows
    if tile_blocks is None:
        return [(0, m_enc, 0, q_enc)]
    if tile_blocks < 1:
        raise ValueError(f"tile_blocks must be >= 1, got {tile_blocks}")
    row_edge = tile_blocks * row_layout.stride
    col_edge = tile_blocks * col_layout.stride
    return [
        (i0, min(i0 + row_edge, m_enc), j0, min(j0 + col_edge, q_enc))
        for i0 in range(0, m_enc, row_edge)
        for j0 in range(0, q_enc, col_edge)
    ]


@dataclass
class OnlineFusedOutcome:
    """What :func:`online_fused_matmul` did, besides the product itself.

    ``col_disc`` / ``row_disc`` hold the full discrepancy grids in the
    clean case (``early_abort=False``); after an early abort only the
    tiles up to and including the failed one were checked, so the caller
    must rebuild the grids with the separate-path oracle before reporting.
    """

    out: np.ndarray
    col_disc: np.ndarray
    row_disc: np.ndarray
    tiles: list[tuple[int, int, int, int]]
    tiles_total: int
    tiles_checked: int = 0
    failed_tile: int | None = None
    early_abort: bool = False
    recomputed_tiles: list[int] = field(default_factory=list)
    check_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return self.failed_tile is None


def _tile_bad(
    tile: np.ndarray,
    bounds: tuple[int, int, int, int],
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    col_eps: np.ndarray,
    row_eps: np.ndarray,
    col_disc: np.ndarray,
    row_disc: np.ndarray,
) -> bool:
    """Check one stride-aligned tile; record its grid slices; report failure.

    The reductions replicate :func:`~repro.abft.checking.column_discrepancies`
    and :func:`~repro.abft.checking.row_discrepancies` on the tile view.
    Narrow inputs reduce with ``dtype=np.float64`` instead of materialising
    the cast first — numpy casts each element on the fly into the same
    pairwise accumulation, so the written slices stay bitwise equal to the
    full-matrix grids while the float32 check skips a full cast pass.
    """
    i0, i1, j0, j1 = bounds
    rows = i1 - i0
    cols = j1 - j0
    r_bs = row_layout.block_size
    c_bs = col_layout.block_size
    br0 = i0 // row_layout.stride
    br1 = i1 // row_layout.stride
    bc0 = j0 // col_layout.stride
    bc1 = j1 // col_layout.stride

    view = tile.reshape(br1 - br0, row_layout.stride, cols)
    cd = col_disc[br0:br1, j0:j1]
    np.sum(view[:, :r_bs, :], axis=1, dtype=np.float64, out=cd)
    cd -= view[:, r_bs, :]
    np.abs(cd, out=cd)

    view = tile.reshape(rows, bc1 - bc0, col_layout.stride)
    rd = row_disc[i0:i1, bc0:bc1]
    np.sum(view[:, :, :c_bs], axis=2, dtype=np.float64, out=rd)
    rd -= view[:, :, c_bs]
    np.abs(rd, out=rd)

    ce = col_eps[br0:br1, j0:j1]
    re = row_eps[i0:i1, bc0:bc1]
    return bool(
        ((cd > ce) | ~np.isfinite(cd)).any()
        or ((rd > re) | ~np.isfinite(rd)).any()
    )


def online_fused_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    col_eps: np.ndarray,
    row_eps: np.ndarray,
    tile_blocks: int | None = None,
    gemm_tile: int | None = None,
    out: np.ndarray | None = None,
    pool=None,
    executor=None,
    abort_on_failure: bool = True,
    max_recomputes: int = 2,
    inject_hook: InjectHook | None = None,
) -> OnlineFusedOutcome:
    """``a @ b`` with the partitioned checksum check fused into the tiles.

    Parameters
    ----------
    col_eps / row_eps:
        Dense tolerance grids from the provider's ``epsilon_grids`` —
        computed *before* the multiply, which is what makes the in-loop
        comparison possible.
    tile_blocks:
        Fused tile edge in whole encoded blocks per axis
        (:func:`plan_fused_tiles`); ``None`` is the degenerate
        single-tile mode.
    gemm_tile:
        The plan's canonical GEMM tile edge, honoured **only** in the
        degenerate single-fused-tile mode: the one fused tile's GEMM then
        runs :func:`~repro.kernels.matmul_tiled.tiled_matmul` over the
        canonical tile list, so its result bytes are identical to the
        separate path for *every* plan tile geometry.  Multi-tile fused
        plans own their geometry and ignore it (the documented byte
        change, exactly like changing ``gemm_tile`` itself).
    pool:
        Optional :class:`~repro.engine.plan.WorkspacePool` for tile
        staging buffers — the same staging :func:`tiled_matmul` performs,
        so result bytes stay reconcilable.
    executor:
        Optional ``concurrent.futures``-style executor.  When given, the
        next tile's GEMM is speculatively submitted while the current
        tile is being checked (one-tile lookahead); tile writes are
        disjoint so the bytes are unchanged, and check order — hence
        abort order — stays serial.
    abort_on_failure:
        ``False`` checks every tile but never recomputes or aborts (the
        autotuner's timing mode).
    max_recomputes:
        Recompute attempts per failing tile before declaring the failure
        persistent and aborting.
    inject_hook:
        ``(tile_index, attempt, tile_view) -> None`` called after each
        tile GEMM (and after each recompute, with the attempt number
        incremented) — the fault-campaign / chaos injection seam.
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError("online_fused_matmul operands must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )
    m_enc, q_enc = a.shape[0], b.shape[1]
    if m_enc != row_layout.encoded_rows or q_enc != col_layout.encoded_rows:
        raise ShapeError(
            f"encoded result {m_enc}x{q_enc} does not match layouts "
            f"({row_layout.encoded_rows} x {col_layout.encoded_rows})"
        )
    if out is None:
        out = np.empty((m_enc, q_enc), dtype=np.result_type(a, b))
    elif out.shape != (m_enc, q_enc):
        raise ShapeError(f"out has shape {out.shape}, expected {(m_enc, q_enc)}")
    if col_eps.shape != (row_layout.num_blocks, q_enc):
        raise ShapeError(
            f"col_eps has shape {col_eps.shape}, expected "
            f"{(row_layout.num_blocks, q_enc)}"
        )
    if row_eps.shape != (m_enc, col_layout.num_blocks):
        raise ShapeError(
            f"row_eps has shape {row_eps.shape}, expected "
            f"{(m_enc, col_layout.num_blocks)}"
        )

    tiles = plan_fused_tiles(row_layout, col_layout, tile_blocks)
    outcome = OnlineFusedOutcome(
        out=out,
        col_disc=np.empty((row_layout.num_blocks, q_enc)),
        row_disc=np.empty((m_enc, col_layout.num_blocks)),
        tiles=tiles,
        tiles_total=len(tiles),
    )

    def run_gemm_tile(bounds: tuple[int, int, int, int]):
        """Compute one tile; returns ``(hot, buf)``.

        ``hot`` is a contiguous array holding the tile's bytes — the
        staging buffer while it is still cache-hot from the GEMM, which
        is what makes the in-loop check cheaper than the separate
        path's strided full-matrix passes.  ``buf`` is the pool buffer
        to recycle once the tile is checked (``None`` without staging).
        """
        i0, i1, j0, j1 = bounds
        dst = out[i0:i1, j0:j1]
        if len(tiles) == 1:
            # Degenerate mode: the separate path's exact GEMM (canonical
            # tile list, same staging) — bitwise identical bytes.
            tiled_matmul(
                a, b, tile=gemm_tile, out=out, pool=pool, executor=executor
            )
            return out, None
        if pool is not None:
            buf = pool.take((i1 - i0, j1 - j0), out.dtype)
            np.matmul(a[i0:i1, :], b[:, j0:j1], out=buf)
            dst[...] = buf
            return buf, buf
        np.matmul(a[i0:i1, :], b[:, j0:j1], out=dst)
        return dst, None

    aborted = False
    lookahead = None  # (index, future) of the speculatively running tile
    for idx, bounds in enumerate(tiles):
        if lookahead is not None and lookahead[0] == idx:
            hot, buf = lookahead[1].result()
            lookahead = None
        else:
            hot, buf = run_gemm_tile(bounds)
        if aborted:
            if buf is not None:
                pool.give(buf)
            continue  # finish the product unchecked after an early abort

        if executor is not None and idx + 1 < len(tiles):
            lookahead = (
                idx + 1, executor.submit(run_gemm_tile, tiles[idx + 1])
            )

        i0, i1, j0, j1 = bounds
        attempt = 0
        while True:
            if inject_hook is not None:
                # Faults are injected into the result view, so the check
                # must read the result view too, not the staging copy.
                inject_hook(idx, attempt, out[i0:i1, j0:j1])
                hot = out[i0:i1, j0:j1]
            t0 = time.perf_counter()
            bad = _tile_bad(
                hot, bounds, row_layout, col_layout,
                col_eps, row_eps, outcome.col_disc, outcome.row_disc,
            )
            outcome.check_seconds += time.perf_counter() - t0
            if not bad or not abort_on_failure:
                break
            if attempt >= max_recomputes:
                outcome.failed_tile = idx
                outcome.early_abort = True
                aborted = True
                break
            if buf is not None:
                pool.give(buf)
            hot, buf = run_gemm_tile(bounds)
            if idx not in outcome.recomputed_tiles:
                outcome.recomputed_tiles.append(idx)
            attempt += 1
        if buf is not None:
            pool.give(buf)
        outcome.tiles_checked += 1
    if lookahead is not None:
        hot, buf = lookahead[1].result()
        if buf is not None:
            pool.give(buf)
    return outcome
