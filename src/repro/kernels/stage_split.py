"""Stage-split kernel entry points for the pipelined batch executor.

The fused host kernels (:mod:`repro.kernels.encode_fused`) process one
operand per invocation.  The stage-pipelined executor
(:mod:`repro.engine.pipeline`) instead works on *chunks* of right
operands at a time, so its encode stage can run on chunk ``i+1`` while
the multiply stage consumes chunk ``i``.  This module provides the
chunk-level entry points that make that overlap safe:

* :func:`encode_b_chunk` concatenates a chunk of right operands along
  their column axis and encodes the concatenation in **one** partitioned
  pass.  Because the padded per-item width is a multiple of the block
  size, every checksum block of the concatenation lies entirely inside
  one item — slicing the concatenated encoding (or its top-p arrays)
  reproduces the per-item encodings bit for bit.
* :func:`chunk_discrepancies` evaluates both checksum-discrepancy
  kernels over a chunk's concatenated full-checksum result; the same
  block-locality argument makes the per-item slices bitwise equal to
  per-item evaluation.

Buffer-aliasing discipline: every pooled buffer used here is obtained by
a fresh :meth:`~repro.engine.plan.WorkspacePool.take` (never handed out
twice while in flight) and is only given back by the pipeline once the
consuming stage has finished with it, so the encode of chunk ``i+1``
can never alias the encoded buffer the multiply of chunk ``i`` is still
reading.  The concatenated raw workspace is recycled *inside*
:func:`encode_b_chunk`; the encoded output is owned by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..abft.checking import column_discrepancies, row_discrepancies
from ..abft.encoding import PartitionedLayout, encode_partitioned_rows
from ..bounds.upper_bound import top_p_arrays
from ..errors import ShapeError

__all__ = ["ChunkEncodedB", "encode_b_chunk", "chunk_discrepancies"]


@dataclass(frozen=True)
class ChunkEncodedB:
    """One chunk of right operands, encoded as a single concatenation.

    Attributes
    ----------
    encoded:
        The concatenated row-checksum encoding, shape
        ``(n, count * item_width)``.  May be a pooled buffer — the
        pipeline gives it back once the multiply has consumed it.
    layout:
        Partitioned layout of the concatenated encoded columns.
    item_layout:
        Partitioned layout of one item's encoded columns.
    item_width:
        Encoded columns per item (``item_layout.encoded_rows``).
    count:
        Number of right operands in the chunk.
    padding:
        Zero columns appended to each item to reach a block multiple.
    top_values / top_indices:
        Top-p data of every concatenated encoded column, shape
        ``(count * item_width, p)``; rows ``[j*w:(j+1)*w]`` are item
        ``j``'s per-column top-p data.  Always freshly allocated (they
        escape into epsilon providers).
    """

    encoded: np.ndarray
    layout: PartitionedLayout
    item_layout: PartitionedLayout
    item_width: int
    count: int
    padding: int
    top_values: np.ndarray
    top_indices: np.ndarray

    def item_encoded(self, j: int) -> np.ndarray:
        """Item ``j``'s encoded columns (a view of the concatenation)."""
        return self.encoded[:, j * self.item_width : (j + 1) * self.item_width]

    def item_tops(self, j: int) -> tuple[np.ndarray, np.ndarray]:
        """Item ``j``'s per-column top-p values/indices (views)."""
        lo, hi = j * self.item_width, (j + 1) * self.item_width
        return self.top_values[lo:hi], self.top_indices[lo:hi]


def encode_b_chunk(
    items: list[np.ndarray],
    block_size: int,
    *,
    q: int,
    p: int,
    dtype: np.dtype,
    pool=None,
) -> ChunkEncodedB:
    """Encode a chunk of same-shape right operands in one partitioned pass.

    Parameters
    ----------
    items:
        The raw ``(n, q)`` right operands (dtype-resolved by the caller).
    block_size:
        The partitioned-encoding block size.
    q:
        The unpadded column count every item must have.
    p:
        Top-``p`` depth of the ``aabft`` scheme.
    dtype:
        The resolved computation dtype.
    pool:
        Optional :class:`~repro.engine.plan.WorkspacePool`.  Supplies the
        concatenated raw workspace (recycled before returning) and the
        encoded output buffer (owned by the caller); the top-p outputs
        are always fresh.
    """
    if not items:
        raise ShapeError("encode_b_chunk needs at least one operand")
    n = items[0].shape[0]
    padding = (-q) % block_size
    padded_q = q + padding
    count = len(items)
    item_layout = PartitionedLayout(data_rows=padded_q, block_size=block_size)
    layout = PartitionedLayout(
        data_rows=count * padded_q, block_size=block_size
    )

    # One contiguous concatenation of the (zero-padded) raw operands: the
    # encode reduction and the top-p search then each run once per chunk
    # instead of once per item.
    if pool is not None:
        raw_cat = pool.take((n, count * padded_q), dtype)
    else:
        raw_cat = np.empty((n, count * padded_q), dtype=dtype)
    for j, item in enumerate(items):
        if item.shape != (n, q):
            raise ShapeError(
                f"chunk operands must all be ({n}, {q}), got {item.shape}"
            )
        lo = j * padded_q
        raw_cat[:, lo : lo + q] = item
        if padding:
            raw_cat[:, lo + q : lo + padded_q] = 0.0

    out = None
    if pool is not None:
        out = pool.take((n, layout.encoded_rows), dtype)
    encoded, _ = encode_partitioned_rows(raw_cat, block_size, out=out)
    top_values, top_indices = top_p_arrays(encoded, p, axis=0, pool=pool)
    if pool is not None:
        pool.give(raw_cat)
    return ChunkEncodedB(
        encoded=encoded,
        layout=layout,
        item_layout=item_layout,
        item_width=item_layout.encoded_rows,
        count=count,
        padding=padding,
        top_values=top_values,
        top_indices=top_indices,
    )


def chunk_discrepancies(
    c_cat: np.ndarray,
    row_layout: PartitionedLayout,
    cat_col_layout: PartitionedLayout,
) -> tuple[np.ndarray, np.ndarray]:
    """Both checksum-discrepancy grids of a chunk's concatenated result.

    Returns ``(col_disc, row_disc)`` over the whole concatenation; the
    pipeline slices them per item (column ranges for ``col_disc``,
    block-column ranges for ``row_disc``).  The outputs are fresh arrays
    (they escape into check reports) — never pooled.
    """
    return (
        column_discrepancies(c_cat, row_layout),
        row_discrepancies(c_cat, cat_col_layout),
    )
