"""Register-tiled matrix multiplication — Algorithm 3, structure-faithful.

:class:`~repro.kernels.matmul.BlockMatmulKernel` preserves what the
experiments observe (block->SM mapping, k-sequential accumulation of the
struck element).  This kernel goes further and mirrors Algorithm 3's
*loop structure* exactly:

* one thread block computes a ``BM x BN`` block of ``C``;
* the inner dimension advances in ``BK``-wide shared-memory slices
  (``smA[BK][BM]``, ``smB[BK][BN]``), with an outer ``while K > 0`` loop
  and an inner ``ki`` loop;
* each thread owns an ``RX x RY`` register tile ``accum``; per ``ki`` it
  loads ``rA[RX]`` / ``rB[RY]`` and performs the rank-1 update;
* the three fault-injection points are exactly the paper's: the inner-loop
  multiplication, the inner-loop accumulation, and the final merge of
  ``accum`` into ``C`` — ``errorVecMult`` / ``errorVecAdd1`` /
  ``errorVecAdd2`` in the listing.

All threads execute in lockstep (SIMD), so the whole block's rank-1 update
per ``ki`` is one vectorised outer product — numerically identical to every
thread's sequential k-order.  The struck element is patched scalar-exactly
at its ``kInjection``.
"""

from __future__ import annotations

import numpy as np

from ..faults.injector import FaultInjector
from ..faults.model import FaultSite
from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig

__all__ = ["RegisterTiledMatmulKernel"]


class RegisterTiledMatmulKernel(Kernel):
    """Algorithm 3 with explicit BM/BN/BK/RX/RY tiling.

    Parameters
    ----------
    a_buf / b_buf / c_buf:
        Device buffers; ``C (M x Q) = A (M x N) @ B (N x Q)``.
    bm, bn:
        Result-block dimensions per thread block (must divide M / Q).
    bk:
        Shared-memory slice width along the inner dimension.
    rx, ry:
        Register-tile dimensions per thread (must divide bm / bn).
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; its module
        offsets address the register tile of the struck thread, exactly as
        the paper's ``module-ID`` parameter selects "which of the
        ``RX x RY`` adders or multipliers shall be affected".
    """

    name = "matmul_tiled"
    compute_efficiency = 0.90

    def __init__(
        self,
        a_buf,
        b_buf,
        c_buf,
        bm: int = 32,
        bn: int = 32,
        bk: int = 8,
        rx: int = 4,
        ry: int = 4,
        injector: FaultInjector | None = None,
    ) -> None:
        m, n = a_buf.shape
        n2, q = b_buf.shape
        if n != n2:
            raise ValueError(f"inner dimensions disagree: {a_buf.shape} x {b_buf.shape}")
        if c_buf.shape != (m, q):
            raise ValueError(f"result buffer shape {c_buf.shape}, expected {(m, q)}")
        if m % bm or q % bn:
            raise ValueError(f"result {m}x{q} not divisible into {bm}x{bn} blocks")
        if bm % rx or bn % ry:
            raise ValueError(
                f"block {bm}x{bn} not divisible into {rx}x{ry} register tiles"
            )
        if bk < 1:
            raise ValueError("bk must be >= 1")
        self.a_buf = a_buf
        self.b_buf = b_buf
        self.c_buf = c_buf
        self.bm, self.bn, self.bk = bm, bn, bk
        self.rx, self.ry = rx, ry
        self.injector = injector

    def launch_config(self) -> LaunchConfig:
        m, _ = self.a_buf.shape
        _, q = self.b_buf.shape
        threads = (self.bm // self.rx) * (self.bn // self.ry)
        return LaunchConfig(
            grid=Dim3(x=q // self.bn, y=m // self.bm),
            block=Dim3(x=min(threads, 1024)),
        )

    # ------------------------------------------------------------------
    def _target_element(self, ctx: BlockContext) -> tuple[int, int] | None:
        """Struck element's (row, col) within this block, if any."""
        injector = self.injector
        if injector is None or not injector.targets_block(ctx.linear_block_index):
            return None
        act = injector.activation
        # The module offsets address the register tile of the struck
        # thread; the thread itself was folded into element_row/col by the
        # injector's resolution against the block shape.
        return act.element_row % self.bm, act.element_col % self.bn

    def run_block(self, ctx: BlockContext) -> None:
        a = self.a_buf.array()
        b = self.b_buf.array()
        c = self.c_buf.array()
        n = a.shape[1]
        bm, bn, bk = self.bm, self.bn, self.bk

        row0 = ctx.block_idx.y * bm
        col0 = ctx.block_idx.x * bn
        sm_a = ctx.shared.declare("smA", (bk, bm))
        sm_b = ctx.shared.declare("smB", (bk, bn))

        accum = np.zeros((bm, bn))
        target = self._target_element(ctx)
        injector = self.injector

        k = 0
        while k < n:  # the listing's `while K > 0` outer loop
            width = min(bk, n - k)
            sm_a[:width, :] = a[row0 : row0 + bm, k : k + width].T
            sm_b[:width, :] = b[k : k + width, col0 : col0 + bn]
            for ki in range(width):
                r_a = sm_a[ki, :]  # one column of A's slice
                r_b = sm_b[ki, :]  # one row of B's slice
                global_k = k + ki
                if target is None:
                    accum += np.outer(r_a, r_b)
                    continue
                tr, tc = target
                prod = r_a[tr] * r_b[tc]
                old = accum[tr, tc]
                accum += np.outer(r_a, r_b)
                # Redo the struck element scalar-exactly so the injector's
                # hooks fire in the listing's order (mult, then add1) with
                # the thread's true sequential rounding.
                if injector.strikes(FaultSite.INNER_MUL, global_k):
                    prod = injector.apply(prod)
                accum[tr, tc] = old + prod
                if injector.strikes(FaultSite.INNER_ADD, global_k):
                    accum[tr, tc] = injector.apply(accum[tr, tc])
            k += width

        # Merge accum into C (errorVecAdd2 in the listing).
        if target is not None and injector.strikes(FaultSite.MERGE_ADD):
            tr, tc = target
            accum[tr, tc] = injector.apply(accum[tr, tc])
        c[row0 : row0 + bm, col0 : col0 + bn] = accum

        ctx.stats.flops += 2 * bm * bn * n
        ctx.stats.global_bytes_read += (bm + bn) * n * 8
        ctx.stats.global_bytes_written += bm * bn * 8
