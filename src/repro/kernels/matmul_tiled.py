"""Register-tiled matrix multiplication — Algorithm 3, structure-faithful.

:class:`~repro.kernels.matmul.BlockMatmulKernel` preserves what the
experiments observe (block->SM mapping, k-sequential accumulation of the
struck element).  This kernel goes further and mirrors Algorithm 3's
*loop structure* exactly:

* one thread block computes a ``BM x BN`` block of ``C``;
* the inner dimension advances in ``BK``-wide shared-memory slices
  (``smA[BK][BM]``, ``smB[BK][BN]``), with an outer ``while K > 0`` loop
  and an inner ``ki`` loop;
* each thread owns an ``RX x RY`` register tile ``accum``; per ``ki`` it
  loads ``rA[RX]`` / ``rB[RY]`` and performs the rank-1 update;
* the three fault-injection points are exactly the paper's: the inner-loop
  multiplication, the inner-loop accumulation, and the final merge of
  ``accum`` into ``C`` — ``errorVecMult`` / ``errorVecAdd1`` /
  ``errorVecAdd2`` in the listing.

All threads execute in lockstep (SIMD), so the whole block's rank-1 update
per ``ki`` is one vectorised outer product — numerically identical to every
thread's sequential k-order.  The struck element is patched scalar-exactly
at its ``kInjection``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..faults.injector import FaultInjector
from ..faults.model import FaultSite
from ..gpusim.kernel import BlockContext, Dim3, Kernel, LaunchConfig

__all__ = ["RegisterTiledMatmulKernel", "plan_tiles", "tiled_matmul"]


def plan_tiles(m: int, q: int, tile: int | None) -> list[tuple[int, int, int, int]]:
    """The canonical row-major tile decomposition of an ``m x q`` result.

    Returns ``(row_start, row_end, col_start, col_end)`` quadruples covering
    the result exactly once.  ``tile=None`` yields the single full-result
    tile — the engine's historical one-BLAS-call behaviour.  Edge tiles are
    clipped, never padded.

    Every compute backend executes *this* list (serially, on a thread pool,
    or on a device); because the per-tile BLAS calls are identical across
    backends and their output regions are disjoint, results are bitwise
    identical by construction.  (Subdividing a BLAS call is **not** bitwise
    neutral — OpenBLAS edge handling is shape-dependent — which is exactly
    why the tile geometry is part of the execution plan rather than a
    backend-private choice.)
    """
    if tile is None:
        return [(0, m, 0, q)]
    if tile < 1:
        raise ValueError(f"tile must be >= 1, got {tile}")
    if tile >= m and tile >= q:
        # Fast path: a tile covering the whole result is the full-result
        # tile — identical to tile=None, skipping the staging machinery.
        return [(0, m, 0, q)]
    return [
        (i0, min(i0 + tile, m), j0, min(j0 + tile, q))
        for i0 in range(0, m, tile)
        for j0 in range(0, q, tile)
    ]


def tiled_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *,
    tile: int | None = None,
    out: np.ndarray | None = None,
    executor=None,
    pool=None,
) -> np.ndarray:
    """``a @ b`` over the canonical tile list of :func:`plan_tiles`.

    This is the host-level execution primitive shared by every compute
    backend: the ``numpy`` backend runs the tiles serially, the ``blocked``
    backend maps them over a ``ThreadPoolExecutor`` (the paper's CUDA grid
    of result blocks, one worker per block).  Tile writes are disjoint, so
    concurrent execution is race-free and bitwise identical to the serial
    order.

    Parameters
    ----------
    tile:
        Result-tile edge length; ``None`` executes one full-result BLAS
        call (bitwise equal to ``a @ b``).
    out:
        Optional preallocated result buffer.
    executor:
        An object with ``map(fn, iterable)`` (e.g. a
        ``concurrent.futures.ThreadPoolExecutor``) to run tiles
        concurrently; ``None`` runs them in order.
    pool:
        Optional :class:`~repro.engine.plan.WorkspacePool`; when given,
        each tile is computed into a pooled contiguous staging buffer and
        copied into place (identical bytes — numpy buffers non-contiguous
        gufunc outputs the same way internally).
    """
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError("tiled_matmul operands must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )
    m, q = a.shape[0], b.shape[1]
    if out is None:
        out = np.empty((m, q), dtype=np.result_type(a, b))
    elif out.shape != (m, q):
        raise ShapeError(f"out has shape {out.shape}, expected {(m, q)}")
    tiles = plan_tiles(m, q, tile)
    if len(tiles) == 1:
        np.matmul(a, b, out=out)
        return out

    def run_tile(bounds: tuple[int, int, int, int]) -> None:
        i0, i1, j0, j1 = bounds
        dst = out[i0:i1, j0:j1]
        if pool is not None:
            buf = pool.take((i1 - i0, j1 - j0), out.dtype)
            np.matmul(a[i0:i1, :], b[:, j0:j1], out=buf)
            dst[...] = buf
            pool.give(buf)
        else:
            np.matmul(a[i0:i1, :], b[:, j0:j1], out=dst)

    if executor is None:
        for bounds in tiles:
            run_tile(bounds)
    else:
        # Draining the map iterator propagates the first tile exception.
        for _ in executor.map(run_tile, tiles):
            pass
    return out


class RegisterTiledMatmulKernel(Kernel):
    """Algorithm 3 with explicit BM/BN/BK/RX/RY tiling.

    Parameters
    ----------
    a_buf / b_buf / c_buf:
        Device buffers; ``C (M x Q) = A (M x N) @ B (N x Q)``.
    bm, bn:
        Result-block dimensions per thread block (must divide M / Q).
    bk:
        Shared-memory slice width along the inner dimension.
    rx, ry:
        Register-tile dimensions per thread (must divide bm / bn).
    injector:
        Optional :class:`~repro.faults.injector.FaultInjector`; its module
        offsets address the register tile of the struck thread, exactly as
        the paper's ``module-ID`` parameter selects "which of the
        ``RX x RY`` adders or multipliers shall be affected".
    """

    name = "matmul_tiled"
    compute_efficiency = 0.90

    def __init__(
        self,
        a_buf,
        b_buf,
        c_buf,
        bm: int = 32,
        bn: int = 32,
        bk: int = 8,
        rx: int = 4,
        ry: int = 4,
        injector: FaultInjector | None = None,
    ) -> None:
        m, n = a_buf.shape
        n2, q = b_buf.shape
        if n != n2:
            raise ValueError(f"inner dimensions disagree: {a_buf.shape} x {b_buf.shape}")
        if c_buf.shape != (m, q):
            raise ValueError(f"result buffer shape {c_buf.shape}, expected {(m, q)}")
        if m % bm or q % bn:
            raise ValueError(f"result {m}x{q} not divisible into {bm}x{bn} blocks")
        if bm % rx or bn % ry:
            raise ValueError(
                f"block {bm}x{bn} not divisible into {rx}x{ry} register tiles"
            )
        if bk < 1:
            raise ValueError("bk must be >= 1")
        self.a_buf = a_buf
        self.b_buf = b_buf
        self.c_buf = c_buf
        self.bm, self.bn, self.bk = bm, bn, bk
        self.rx, self.ry = rx, ry
        self.injector = injector

    def launch_config(self) -> LaunchConfig:
        m, _ = self.a_buf.shape
        _, q = self.b_buf.shape
        threads = (self.bm // self.rx) * (self.bn // self.ry)
        return LaunchConfig(
            grid=Dim3(x=q // self.bn, y=m // self.bm),
            block=Dim3(x=min(threads, 1024)),
        )

    # ------------------------------------------------------------------
    def _target_element(self, ctx: BlockContext) -> tuple[int, int] | None:
        """Struck element's (row, col) within this block, if any."""
        injector = self.injector
        if injector is None or not injector.targets_block(ctx.linear_block_index):
            return None
        act = injector.activation
        # The module offsets address the register tile of the struck
        # thread; the thread itself was folded into element_row/col by the
        # injector's resolution against the block shape.
        return act.element_row % self.bm, act.element_col % self.bn

    def run_block(self, ctx: BlockContext) -> None:
        a = self.a_buf.array()
        b = self.b_buf.array()
        c = self.c_buf.array()
        n = a.shape[1]
        bm, bn, bk = self.bm, self.bn, self.bk

        row0 = ctx.block_idx.y * bm
        col0 = ctx.block_idx.x * bn
        sm_a = ctx.shared.declare("smA", (bk, bm))
        sm_b = ctx.shared.declare("smB", (bk, bn))

        accum = np.zeros((bm, bn))
        target = self._target_element(ctx)
        injector = self.injector

        k = 0
        while k < n:  # the listing's `while K > 0` outer loop
            width = min(bk, n - k)
            sm_a[:width, :] = a[row0 : row0 + bm, k : k + width].T
            sm_b[:width, :] = b[k : k + width, col0 : col0 + bn]
            for ki in range(width):
                r_a = sm_a[ki, :]  # one column of A's slice
                r_b = sm_b[ki, :]  # one row of B's slice
                global_k = k + ki
                if target is None:
                    accum += np.outer(r_a, r_b)
                    continue
                tr, tc = target
                prod = r_a[tr] * r_b[tc]
                old = accum[tr, tc]
                accum += np.outer(r_a, r_b)
                # Redo the struck element scalar-exactly so the injector's
                # hooks fire in the listing's order (mult, then add1) with
                # the thread's true sequential rounding.
                if injector.strikes(FaultSite.INNER_MUL, global_k):
                    prod = injector.apply(prod)
                accum[tr, tc] = old + prod
                if injector.strikes(FaultSite.INNER_ADD, global_k):
                    accum[tr, tc] = injector.apply(accum[tr, tc])
            k += width

        # Merge accum into C (errorVecAdd2 in the listing).
        if target is not None and injector.strikes(FaultSite.MERGE_ADD):
            tr, tc = target
            accum[tr, tc] = injector.apply(accum[tr, tc])
        c[row0 : row0 + bm, col0 : col0 + bn] = accum

        ctx.stats.flops += 2 * bm * bn * n
        ctx.stats.global_bytes_read += (bm + bn) * n * 8
        ctx.stats.global_bytes_written += bm * bn * 8
