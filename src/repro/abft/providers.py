"""Epsilon providers: adapting bound schemes to the partitioned check.

A bound scheme (:mod:`repro.bounds`) is a pure function of a per-comparison
context; a provider owns the *preprocessed runtime data* — top-p sets for
A-ABFT, vector norms for SEA — and builds that context for every comparison
the checker performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.adaptive import AdaptiveBound, adaptive_epsilon_array
from ..bounds.base import BoundContext, BoundScheme
from ..bounds.sea import SEABound, sea_epsilon_array
from ..bounds.upper_bound import TopP, determine_upper_bound, upper_bound_grid_arrays
from .encoding import PartitionedLayout

__all__ = [
    "ConstantEpsilonProvider",
    "AABFTEpsilonProvider",
    "SEAEpsilonProvider",
    "AdaptiveEpsilonProvider",
]


@dataclass
class ConstantEpsilonProvider:
    """Same tolerance for every comparison (manual fixed-bound ABFT)."""

    epsilon_value: float

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        return self.epsilon_value

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        return self.epsilon_value

    def epsilon_grids(
        self,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        *,
        pool=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(column, row)`` tolerance grids for the fast check path.

        ``pool`` (a :class:`~repro.engine.plan.WorkspacePool`) supplies the
        grid buffers when given; the engine gives them back after checking.
        """
        col_shape = (row_layout.num_blocks, col_layout.encoded_rows)
        row_shape = (row_layout.encoded_rows, col_layout.num_blocks)
        if pool is None:
            return (
                np.full(col_shape, self.epsilon_value),
                np.full(row_shape, self.epsilon_value),
            )
        col = pool.take(col_shape)
        col.fill(self.epsilon_value)
        row = pool.take(row_shape)
        row.fill(self.epsilon_value)
        return col, row


class AABFTEpsilonProvider:
    """Autonomous tolerances from runtime top-p data (the A-ABFT scheme).

    Parameters
    ----------
    scheme:
        The probabilistic bound scheme (or any scheme consuming
        ``upper_bound``).
    row_tops:
        Top-p of every *encoded* row of ``A_cc`` (data and checksum rows).
    col_tops:
        Top-p of every *encoded* column of ``B_rc``.
    row_layout / col_layout:
        Partitioned layouts of the encoded operands.
    inner_dim:
        Length ``n`` of the inner products (the shared dimension of the
        multiplication).
    epsilon_floor:
        Absolute lower bound on every tolerance.  The paper's model bounds
        the rounding of the checksum *that went through the multiplication*;
        when a checksum vector cancels to exactly zero (structured inputs
        such as full-encoding graph Laplacians, whose column sums vanish),
        its ``y`` — and hence the modelled tolerance — is zero, while the
        *reference* summation still carries rounding noise.  A small floor
        (e.g. ``n * eps_M * max|C|``) absorbs that; the default 0 is
        paper-faithful.
    """

    def __init__(
        self,
        scheme: BoundScheme,
        row_tops: list[TopP],
        col_tops: list[TopP],
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        inner_dim: int,
        epsilon_floor: float = 0.0,
    ) -> None:
        if len(row_tops) != row_layout.encoded_rows:
            raise ValueError(
                f"expected {row_layout.encoded_rows} row top-p sets, "
                f"got {len(row_tops)}"
            )
        if len(col_tops) != col_layout.encoded_rows:
            raise ValueError(
                f"expected {col_layout.encoded_rows} column top-p sets, "
                f"got {len(col_tops)}"
            )
        if epsilon_floor < 0.0:
            raise ValueError(f"epsilon_floor must be >= 0, got {epsilon_floor}")
        self.scheme = scheme
        self._row_tops = list(row_tops)
        self._col_tops = list(col_tops)
        self._stacked = None
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.inner_dim = inner_dim
        self.epsilon_floor = epsilon_floor

    @classmethod
    def from_arrays(
        cls,
        scheme: BoundScheme,
        row_values: np.ndarray,
        row_indices: np.ndarray,
        col_values: np.ndarray,
        col_indices: np.ndarray,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        inner_dim: int,
        epsilon_floor: float = 0.0,
    ) -> "AABFTEpsilonProvider":
        """Build a provider directly from stacked ``(k, p)`` top-p arrays.

        This is the array-native fast path: :func:`~repro.bounds.
        upper_bound.top_p_arrays` output (what :class:`~repro.engine.engine.
        EncodedOperand` stores) feeds the vectorised grids without ever
        materialising per-vector :class:`TopP` objects.  The scalar
        ``row_tops`` / ``col_tops`` views are built lazily on first access,
        so the hot check path never pays for them.  Tolerances are bitwise
        identical to the list-based constructor.
        """
        if row_values.shape[0] != row_layout.encoded_rows:
            raise ValueError(
                f"expected {row_layout.encoded_rows} row top-p sets, "
                f"got {row_values.shape[0]}"
            )
        if col_values.shape[0] != col_layout.encoded_rows:
            raise ValueError(
                f"expected {col_layout.encoded_rows} column top-p sets, "
                f"got {col_values.shape[0]}"
            )
        if epsilon_floor < 0.0:
            raise ValueError(f"epsilon_floor must be >= 0, got {epsilon_floor}")
        self = cls.__new__(cls)
        self.scheme = scheme
        self._row_tops = None
        self._col_tops = None
        self._stacked = (row_values, row_indices, col_values, col_indices)
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.inner_dim = inner_dim
        self.epsilon_floor = epsilon_floor
        return self

    @property
    def row_tops(self) -> list[TopP]:
        """Per-vector top-p of every encoded row (materialised lazily)."""
        if self._row_tops is None:
            row_vals, row_idx, _, _ = self._stacked
            self._row_tops = [
                TopP(values=v, indices=i) for v, i in zip(row_vals, row_idx)
            ]
        return self._row_tops

    @property
    def col_tops(self) -> list[TopP]:
        """Per-vector top-p of every encoded column (materialised lazily)."""
        if self._col_tops is None:
            _, _, col_vals, col_idx = self._stacked
            self._col_tops = [
                TopP(values=v, indices=i) for v, i in zip(col_vals, col_idx)
            ]
        return self._col_tops

    def _epsilon(self, row_top: TopP, col_top: TopP) -> float:
        y = determine_upper_bound(row_top, col_top)
        ctx = BoundContext(
            n=self.inner_dim,
            m=self.row_layout.block_size,
            upper_bound=y,
        )
        return max(self.scheme.epsilon(ctx), self.epsilon_floor)

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        cs_row = self.row_layout.checksum_index(block_row)
        return self._epsilon(self.row_tops[cs_row], self.col_tops[encoded_col])

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        cs_col = self.col_layout.checksum_index(block_col)
        return self._epsilon(self.row_tops[encoded_row], self.col_tops[cs_col])

    def upper_bound(self, encoded_row: int, encoded_col: int) -> float:
        """The runtime ``y`` for an arbitrary result element (diagnostics)."""
        return determine_upper_bound(
            self.row_tops[encoded_row], self.col_tops[encoded_col]
        )

    def _stacked_tops(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Top-p data stacked into ``(k, p)`` arrays (cached after first use)."""
        cached = self._stacked
        if cached is None:
            cached = (
                np.stack([t.values for t in self.row_tops]),
                np.stack([t.indices for t in self.row_tops]),
                np.stack([t.values for t in self.col_tops]),
                np.stack([t.indices for t in self.col_tops]),
            )
            self._stacked = cached
        return cached

    def epsilon_grids(
        self,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        *,
        pool=None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Dense tolerance grids, vectorised (the engine's fast check path).

        Returns ``(column, row)`` epsilon arrays bitwise equal to looping
        :meth:`column_epsilon` / :meth:`row_epsilon` over every comparison,
        or ``None`` when the bound scheme has no array form (the caller then
        falls back to the scalar check).  The provider's own layouts are
        authoritative; the arguments are accepted for interface uniformity.
        ``pool`` (a :class:`~repro.engine.plan.WorkspacePool`) recycles the
        intermediate upper-bound grids; the returned epsilon arrays are
        freshly owned either way (the engine gives them back itself).
        """
        epsilon_array = getattr(self.scheme, "epsilon_array", None)
        if epsilon_array is None:
            return None
        row_vals, row_idx, col_vals, col_idx = self._stacked_tops()
        cs_rows = self.row_layout.all_checksum_indices()
        cs_cols = self.col_layout.all_checksum_indices()
        col_y = row_y = None
        if pool is not None:
            col_y = pool.take((cs_rows.size, col_vals.shape[0]))
            row_y = pool.take((row_vals.shape[0], cs_cols.size))
        col_y = upper_bound_grid_arrays(
            row_vals[cs_rows], row_idx[cs_rows], col_vals, col_idx, out=col_y
        )
        row_y = upper_bound_grid_arrays(
            row_vals, row_idx, col_vals[cs_cols], col_idx[cs_cols], out=row_y
        )
        col_eps = epsilon_array(self.inner_dim, col_y)
        row_eps = epsilon_array(self.inner_dim, row_y)
        if pool is not None:
            pool.give(col_y)
            pool.give(row_y)
        if self.epsilon_floor > 0.0:
            np.maximum(col_eps, self.epsilon_floor, out=col_eps)
            np.maximum(row_eps, self.epsilon_floor, out=row_eps)
        return col_eps, row_eps


class SEAEpsilonProvider:
    """Tolerances from the simplified error analysis (SEA-ABFT baseline).

    Owns the Euclidean norms of all encoded rows of ``A_cc`` and columns of
    ``B_rc`` (what the paper's norm kernels compute) and feeds the per-block
    norm groups into :class:`~repro.bounds.sea.SEABound`.
    """

    def __init__(
        self,
        scheme: BoundScheme,
        a_row_norms: np.ndarray,
        b_col_norms: np.ndarray,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        inner_dim: int,
    ) -> None:
        a_row_norms = np.asarray(a_row_norms, dtype=np.float64).ravel()
        b_col_norms = np.asarray(b_col_norms, dtype=np.float64).ravel()
        if a_row_norms.size != row_layout.encoded_rows:
            raise ValueError(
                f"expected {row_layout.encoded_rows} row norms, got {a_row_norms.size}"
            )
        if b_col_norms.size != col_layout.encoded_rows:
            raise ValueError(
                f"expected {col_layout.encoded_rows} column norms, "
                f"got {b_col_norms.size}"
            )
        self.scheme = scheme
        self.a_row_norms = a_row_norms
        self.b_col_norms = b_col_norms
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.inner_dim = inner_dim

    def _group_norms(self, block_row: int) -> np.ndarray:
        """Norms of block ``block_row``'s data rows plus its checksum row."""
        idx = np.concatenate(
            [
                self.row_layout.data_indices(block_row),
                [self.row_layout.checksum_index(block_row)],
            ]
        )
        return self.a_row_norms[idx]

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        ctx = BoundContext(
            n=self.inner_dim,
            m=self.row_layout.block_size,
            a_norms=self._group_norms(block_row),
            b_norm=float(self.b_col_norms[encoded_col]),
        )
        return self.scheme.epsilon(ctx)

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        # The row check is the column check of the transposed problem: the
        # roles of A-rows and B-columns swap.
        idx = np.concatenate(
            [
                self.col_layout.data_indices(block_col),
                [self.col_layout.checksum_index(block_col)],
            ]
        )
        ctx = BoundContext(
            n=self.inner_dim,
            m=self.col_layout.block_size,
            a_norms=self.b_col_norms[idx],
            b_norm=float(self.a_row_norms[encoded_row]),
        )
        return self.scheme.epsilon(ctx)

    def epsilon_grids(
        self,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        *,
        pool=None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Dense tolerance grids, vectorised (the engine's fast check path).

        Bitwise equal to looping the scalar methods; ``None`` when the bound
        scheme is not the plain :class:`~repro.bounds.sea.SEABound` (custom
        schemes fall back to the scalar check).  ``pool`` supplies the grid
        buffers when given (every element is overwritten below).
        """
        if type(self.scheme) is not SEABound:
            return None
        t = self.scheme.fmt.t
        n = self.inner_dim
        col_shape = (self.row_layout.num_blocks, self.col_layout.encoded_rows)
        col_eps = np.empty(col_shape) if pool is None else pool.take(col_shape)
        m = self.row_layout.block_size
        for blk in range(self.row_layout.num_blocks):
            data_norms = self.a_row_norms[self.row_layout.data_indices(blk)]
            col_eps[blk, :] = sea_epsilon_array(
                n=n,
                m=m,
                data_norm_sum=float(data_norms.sum()),
                checksum_row_norm=float(
                    self.a_row_norms[self.row_layout.checksum_index(blk)]
                ),
                b_norms=self.b_col_norms,
                t=t,
            )
        row_shape = (self.row_layout.encoded_rows, self.col_layout.num_blocks)
        row_eps = np.empty(row_shape) if pool is None else pool.take(row_shape)
        m_t = self.col_layout.block_size
        for blk in range(self.col_layout.num_blocks):
            data_norms = self.b_col_norms[self.col_layout.data_indices(blk)]
            row_eps[:, blk] = sea_epsilon_array(
                n=n,
                m=m_t,
                data_norm_sum=float(data_norms.sum()),
                checksum_row_norm=float(
                    self.b_col_norms[self.col_layout.checksum_index(blk)]
                ),
                b_norms=self.a_row_norms,
                t=t,
            )
        return col_eps, row_eps


class AdaptiveEpsilonProvider(SEAEpsilonProvider):
    """Variance-adaptive tolerances for low-precision storage (V-ABFT).

    Owns the same encoded-vector norms as :class:`SEAEpsilonProvider` and
    produces the SEA compute-dtype tolerance *plus* the per-block
    quantisation term of :class:`~repro.bounds.adaptive.AdaptiveBound`.
    The scalar methods are inherited — they delegate to the bound scheme,
    which reads the same context fields — so only the dense grid path is
    specialised here.
    """

    def epsilon_grids(
        self,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        *,
        pool=None,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Dense tolerance grids, vectorised (the engine's fast check path).

        Bitwise equal to looping the scalar methods; ``None`` when the
        bound scheme is not the plain
        :class:`~repro.bounds.adaptive.AdaptiveBound`.
        """
        if type(self.scheme) is not AdaptiveBound:
            return None
        t = self.scheme.fmt.t
        u_s = self.scheme.storage_fmt.unit_roundoff
        k = self.scheme.effective_k
        n = self.inner_dim
        col_shape = (self.row_layout.num_blocks, self.col_layout.encoded_rows)
        col_eps = np.empty(col_shape) if pool is None else pool.take(col_shape)
        m = self.row_layout.block_size
        for blk in range(self.row_layout.num_blocks):
            data_norms = self.a_row_norms[self.row_layout.data_indices(blk)]
            col_eps[blk, :] = adaptive_epsilon_array(
                n=n,
                m=m,
                data_norm_sum=float(data_norms.sum()),
                checksum_row_norm=float(
                    self.a_row_norms[self.row_layout.checksum_index(blk)]
                ),
                b_norms=self.b_col_norms,
                t_compute=t,
                u_storage=u_s,
                k=k,
            )
        row_shape = (self.row_layout.encoded_rows, self.col_layout.num_blocks)
        row_eps = np.empty(row_shape) if pool is None else pool.take(row_shape)
        m_t = self.col_layout.block_size
        for blk in range(self.col_layout.num_blocks):
            data_norms = self.b_col_norms[self.col_layout.data_indices(blk)]
            row_eps[:, blk] = adaptive_epsilon_array(
                n=n,
                m=m_t,
                data_norm_sum=float(data_norms.sum()),
                checksum_row_norm=float(
                    self.b_col_norms[self.col_layout.checksum_index(blk)]
                ),
                b_norms=self.a_row_norms,
                t_compute=t,
                u_storage=u_s,
                k=k,
            )
        return col_eps, row_eps
