"""Epsilon providers: adapting bound schemes to the partitioned check.

A bound scheme (:mod:`repro.bounds`) is a pure function of a per-comparison
context; a provider owns the *preprocessed runtime data* — top-p sets for
A-ABFT, vector norms for SEA — and builds that context for every comparison
the checker performs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.base import BoundContext, BoundScheme
from ..bounds.upper_bound import TopP, determine_upper_bound
from .encoding import PartitionedLayout

__all__ = [
    "ConstantEpsilonProvider",
    "AABFTEpsilonProvider",
    "SEAEpsilonProvider",
]


@dataclass
class ConstantEpsilonProvider:
    """Same tolerance for every comparison (manual fixed-bound ABFT)."""

    epsilon_value: float

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        return self.epsilon_value

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        return self.epsilon_value


class AABFTEpsilonProvider:
    """Autonomous tolerances from runtime top-p data (the A-ABFT scheme).

    Parameters
    ----------
    scheme:
        The probabilistic bound scheme (or any scheme consuming
        ``upper_bound``).
    row_tops:
        Top-p of every *encoded* row of ``A_cc`` (data and checksum rows).
    col_tops:
        Top-p of every *encoded* column of ``B_rc``.
    row_layout / col_layout:
        Partitioned layouts of the encoded operands.
    inner_dim:
        Length ``n`` of the inner products (the shared dimension of the
        multiplication).
    epsilon_floor:
        Absolute lower bound on every tolerance.  The paper's model bounds
        the rounding of the checksum *that went through the multiplication*;
        when a checksum vector cancels to exactly zero (structured inputs
        such as full-encoding graph Laplacians, whose column sums vanish),
        its ``y`` — and hence the modelled tolerance — is zero, while the
        *reference* summation still carries rounding noise.  A small floor
        (e.g. ``n * eps_M * max|C|``) absorbs that; the default 0 is
        paper-faithful.
    """

    def __init__(
        self,
        scheme: BoundScheme,
        row_tops: list[TopP],
        col_tops: list[TopP],
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        inner_dim: int,
        epsilon_floor: float = 0.0,
    ) -> None:
        if len(row_tops) != row_layout.encoded_rows:
            raise ValueError(
                f"expected {row_layout.encoded_rows} row top-p sets, "
                f"got {len(row_tops)}"
            )
        if len(col_tops) != col_layout.encoded_rows:
            raise ValueError(
                f"expected {col_layout.encoded_rows} column top-p sets, "
                f"got {len(col_tops)}"
            )
        if epsilon_floor < 0.0:
            raise ValueError(f"epsilon_floor must be >= 0, got {epsilon_floor}")
        self.scheme = scheme
        self.row_tops = row_tops
        self.col_tops = col_tops
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.inner_dim = inner_dim
        self.epsilon_floor = epsilon_floor

    def _epsilon(self, row_top: TopP, col_top: TopP) -> float:
        y = determine_upper_bound(row_top, col_top)
        ctx = BoundContext(
            n=self.inner_dim,
            m=self.row_layout.block_size,
            upper_bound=y,
        )
        return max(self.scheme.epsilon(ctx), self.epsilon_floor)

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        cs_row = self.row_layout.checksum_index(block_row)
        return self._epsilon(self.row_tops[cs_row], self.col_tops[encoded_col])

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        cs_col = self.col_layout.checksum_index(block_col)
        return self._epsilon(self.row_tops[encoded_row], self.col_tops[cs_col])

    def upper_bound(self, encoded_row: int, encoded_col: int) -> float:
        """The runtime ``y`` for an arbitrary result element (diagnostics)."""
        return determine_upper_bound(
            self.row_tops[encoded_row], self.col_tops[encoded_col]
        )


class SEAEpsilonProvider:
    """Tolerances from the simplified error analysis (SEA-ABFT baseline).

    Owns the Euclidean norms of all encoded rows of ``A_cc`` and columns of
    ``B_rc`` (what the paper's norm kernels compute) and feeds the per-block
    norm groups into :class:`~repro.bounds.sea.SEABound`.
    """

    def __init__(
        self,
        scheme: BoundScheme,
        a_row_norms: np.ndarray,
        b_col_norms: np.ndarray,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        inner_dim: int,
    ) -> None:
        a_row_norms = np.asarray(a_row_norms, dtype=np.float64).ravel()
        b_col_norms = np.asarray(b_col_norms, dtype=np.float64).ravel()
        if a_row_norms.size != row_layout.encoded_rows:
            raise ValueError(
                f"expected {row_layout.encoded_rows} row norms, got {a_row_norms.size}"
            )
        if b_col_norms.size != col_layout.encoded_rows:
            raise ValueError(
                f"expected {col_layout.encoded_rows} column norms, "
                f"got {b_col_norms.size}"
            )
        self.scheme = scheme
        self.a_row_norms = a_row_norms
        self.b_col_norms = b_col_norms
        self.row_layout = row_layout
        self.col_layout = col_layout
        self.inner_dim = inner_dim

    def _group_norms(self, block_row: int) -> np.ndarray:
        """Norms of block ``block_row``'s data rows plus its checksum row."""
        idx = np.concatenate(
            [
                self.row_layout.data_indices(block_row),
                [self.row_layout.checksum_index(block_row)],
            ]
        )
        return self.a_row_norms[idx]

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        ctx = BoundContext(
            n=self.inner_dim,
            m=self.row_layout.block_size,
            a_norms=self._group_norms(block_row),
            b_norm=float(self.b_col_norms[encoded_col]),
        )
        return self.scheme.epsilon(ctx)

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        # The row check is the column check of the transposed problem: the
        # roles of A-rows and B-columns swap.
        idx = np.concatenate(
            [
                self.col_layout.data_indices(block_col),
                [self.col_layout.checksum_index(block_col)],
            ]
        )
        ctx = BoundContext(
            n=self.inner_dim,
            m=self.col_layout.block_size,
            a_norms=self.b_col_norms[idx],
            b_norm=float(self.a_row_norms[encoded_row]),
        )
        return self.scheme.epsilon(ctx)
