"""ABFT core: checksum encoding, checking, correction, classification, and
the high-level protected multiplication API."""

from .checking import (
    CheckFinding,
    CheckReport,
    EpsilonProvider,
    build_report,
    check_partitioned,
    column_discrepancies,
    row_discrepancies,
)
from .classify import Classification, ErrorClass, ErrorClassifier
from .correction import CorrectionResult, correct_single_error
from .encoding import (
    PartitionedLayout,
    encode_column_checksums,
    encode_full,
    encode_partitioned_columns,
    encode_partitioned_rows,
    encode_row_checksums,
    pad_to_block_multiple,
    strip_encoding,
)
from .multiply import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_P,
    aabft_matmul,
    fixed_abft_matmul,
    sea_abft_matmul,
)
from .result import AbftResult, ProtectedResult
from .lu import LuReport, ProtectedLuResult, SingularPivotError, plain_lu, protected_lu
from .online import OnlineAbftResult, PanelEvent, online_abft_matmul
from .pipeline import AABFTPipeline, PipelineResult
from .qr import ProtectedQrResult, QrReport, plain_qr, protected_qr
from .solve import ProtectedSolveResult, SolveReport, protected_solve
from .providers import (
    AABFTEpsilonProvider,
    ConstantEpsilonProvider,
    SEAEpsilonProvider,
)
from .weighted_partitioned import (
    BlockWeightedFinding,
    PartitionedWeightedChecker,
    PartitionedWeightedLayout,
    PartitionedWeightedResult,
    encode_partitioned_weighted_columns,
    partitioned_weighted_matmul,
)
from .weighted import (
    WeightedAbftResult,
    WeightedChecker,
    WeightedCheckOutcome,
    encode_weighted_columns,
    linear_weights,
    weighted_abft_matmul,
)

__all__ = [
    "AABFTEpsilonProvider",
    "AABFTPipeline",
    "AbftResult",
    "CheckFinding",
    "CheckReport",
    "Classification",
    "ConstantEpsilonProvider",
    "CorrectionResult",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_P",
    "EpsilonProvider",
    "ErrorClass",
    "ErrorClassifier",
    "LuReport",
    "OnlineAbftResult",
    "PanelEvent",
    "ProtectedLuResult",
    "ProtectedQrResult",
    "ProtectedSolveResult",
    "SolveReport",
    "QrReport",
    "SingularPivotError",
    "BlockWeightedFinding",
    "PartitionedWeightedChecker",
    "PartitionedWeightedLayout",
    "PartitionedWeightedResult",
    "WeightedAbftResult",
    "WeightedChecker",
    "WeightedCheckOutcome",
    "PartitionedLayout",
    "PipelineResult",
    "ProtectedResult",
    "SEAEpsilonProvider",
    "aabft_matmul",
    "build_report",
    "check_partitioned",
    "column_discrepancies",
    "correct_single_error",
    "encode_column_checksums",
    "encode_full",
    "encode_partitioned_columns",
    "encode_partitioned_rows",
    "encode_row_checksums",
    "fixed_abft_matmul",
    "pad_to_block_multiple",
    "strip_encoding",
    "online_abft_matmul",
    "plain_lu",
    "plain_qr",
    "protected_qr",
    "protected_solve",
    "protected_lu",
    "row_discrepancies",
    "sea_abft_matmul",
    "encode_partitioned_weighted_columns",
    "encode_weighted_columns",
    "partitioned_weighted_matmul",
    "linear_weights",
    "weighted_abft_matmul",
]
