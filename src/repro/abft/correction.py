"""Single-error correction from checksum mismatch intersections.

ABFT locates an erroneous element at the intersection of a failing row check
and a failing column check (paper Section II).  The correction magnitude is
the signed column discrepancy ``reference - original``; subtracting it from
the located element restores the correct value up to rounding.  The row
discrepancy provides an independent estimate — if the two disagree by more
than the combined tolerances, the pattern is not a correctable single error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import CorrectionError
from .checking import CheckReport, check_partitioned
from .encoding import PartitionedLayout

__all__ = ["CorrectionResult", "correct_single_error"]


@dataclass(frozen=True)
class CorrectionResult:
    """Outcome of a correction attempt."""

    corrected: np.ndarray
    position: tuple[int, int]
    magnitude: float
    row_estimate: float
    column_estimate: float

    @property
    def estimate_gap(self) -> float:
        """Disagreement between the two independent delta estimates."""
        return abs(self.row_estimate - self.column_estimate)


def _signed_column_delta(
    c_fc: np.ndarray, row_layout: PartitionedLayout, row: int, col: int
) -> float:
    blk = row // row_layout.stride
    data = c_fc[row_layout.data_indices(blk), col]
    original = c_fc[row_layout.checksum_index(blk), col]
    if row_layout.is_checksum_index(row):
        # The checksum element itself is corrupted: it deviates from the
        # (correct) data sum by -delta.
        return float(original - data.sum())
    return float(data.sum() - original)


def correct_single_error(
    c_fc: np.ndarray,
    report: CheckReport,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    epsilons,
    verify: bool = True,
) -> CorrectionResult:
    """Correct a single located error in a full-checksum result matrix.

    Parameters
    ----------
    c_fc:
        The (possibly corrupted) full-checksum result; not modified.
    report:
        The check report that located the error.
    row_layout / col_layout:
        Encoding layouts of the result.
    epsilons:
        Epsilon provider, used to re-verify the corrected matrix.
    verify:
        Re-run the full check on the corrected matrix and fail loudly if
        mismatches remain.

    Raises
    ------
    CorrectionError
        If zero or multiple error locations were found, the two delta
        estimates disagree wildly, or verification still fails.
    """
    if not report.located_errors:
        raise CorrectionError("no located errors to correct")
    if len(report.located_errors) > 1:
        raise CorrectionError(
            f"{len(report.located_errors)} candidate locations; "
            "single-error correction requires exactly one"
        )
    row, col = report.located_errors[0]

    col_delta = _signed_column_delta(c_fc, row_layout, row, col)
    row_delta = _signed_column_delta(c_fc.T, col_layout, col, row)

    corrected = np.array(c_fc, dtype=np.float64, copy=True)
    corrected[row, col] -= col_delta

    result = CorrectionResult(
        corrected=corrected,
        position=(row, col),
        magnitude=col_delta,
        row_estimate=row_delta,
        column_estimate=col_delta,
    )
    if verify:
        recheck = check_partitioned(corrected, row_layout, col_layout, epsilons)
        if recheck.error_detected:
            raise CorrectionError(
                f"correction at {result.position} did not clear the check: "
                f"{recheck.num_failed} comparisons still failing"
            )
    return result
