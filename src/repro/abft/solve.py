"""Protected dense linear solve: checksum LU + residual verification.

The paper's motivation is end-to-end dependable scientific computing; a
solver is the canonical consumer.  ``protected_solve`` composes the
library's pieces into that story:

1. **factorisation** — checksum-protected LU (:mod:`repro.abft.lu`): value
   errors during elimination are caught by the row-sum invariant;
2. **solution verification** — the residual ``r = b - A x`` is itself a
   batch of inner products, so the probabilistic model prices its rounding:
   each ``|r_i|`` is compared against an autonomous tolerance built from
   the top-p data of ``[A | b]`` and the solution magnitude.  A residual
   beyond tolerance means *some* step (factorisation, triangular solves,
   or a silent corruption in between) produced a wrong ``x``;
3. **recovery** — one step of iterative refinement
   (``x += solve(L, U, r)``) repairs small corruptions; persistent
   violations raise.

The residual tolerance must absorb the *algorithmic* forward error of LU
(growth factor, conditioning), not just one inner product's rounding: the
per-row scale ``y`` therefore uses the elimination's tracked update scale,
the solver's own growth diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.base import BoundContext, BoundScheme
from ..bounds.probabilistic import ProbabilisticBound
from ..errors import ReproError, ShapeError
from .lu import ProtectedLuResult, protected_lu

__all__ = ["SolveReport", "ProtectedSolveResult", "protected_solve"]


class SolveVerificationError(ReproError):
    """The residual check failed and refinement could not repair it."""


@dataclass
class SolveReport:
    """Verification outcome of one solve."""

    residual_norm: float
    tolerance: float
    refinement_steps: int

    @property
    def verified(self) -> bool:
        return self.residual_norm <= self.tolerance


@dataclass
class ProtectedSolveResult:
    """Solution plus the factorisation and verification evidence."""

    x: np.ndarray
    lu: ProtectedLuResult
    report: SolveReport


def _forward_substitute(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L y = b`` for unit-lower-triangular ``L``."""
    n = b.shape[0]
    y = b.astype(np.float64).copy()
    for i in range(1, n):
        y[i] -= l[i, :i] @ y[:i]
    return y


def _back_substitute(u: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Solve ``U x = y`` for upper-triangular ``U``."""
    n = y.shape[0]
    x = np.empty(n)
    for i in range(n - 1, -1, -1):
        x[i] = (y[i] - u[i, i + 1 :] @ x[i + 1 :]) / u[i, i]
    return x


def protected_solve(
    a: np.ndarray,
    b: np.ndarray,
    omega: float = 3.0,
    scheme: BoundScheme | None = None,
    max_refinements: int = 2,
    fault_hook=None,
) -> ProtectedSolveResult:
    """Solve ``A x = b`` with ABFT-protected factorisation and a verified
    residual.

    Parameters
    ----------
    a:
        Square system matrix (unpivoted elimination: diagonally dominant or
        similarly well-behaved, as for :func:`repro.abft.lu.protected_lu`).
    b:
        Right-hand side vector.
    omega:
        Confidence scale for both the factorisation check and the residual
        tolerance.
    max_refinements:
        Iterative-refinement steps attempted when the residual check fails
        before declaring the solve unverifiable.
    fault_hook:
        Forwarded to the factorisation (fault-injection surface).

    Raises
    ------
    SolveVerificationError
        If the residual stays beyond tolerance after refinement.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"solve requires a square matrix, got {a.shape}")
    n = a.shape[0]
    if b.shape != (n,):
        raise ShapeError(f"rhs must have shape ({n},), got {b.shape}")

    lu = protected_lu(a, omega=omega, scheme=scheme, fault_hook=fault_hook)
    if lu.detected:
        raise SolveVerificationError(
            f"factorisation checksum check failed in rows "
            f"{lu.report.failed_rows[:5]}"
        )

    bound_scheme = scheme or ProbabilisticBound(omega=omega)
    x = _back_substitute(lu.u, _forward_substitute(lu.l, b))

    refinements = 0
    while True:
        residual = b - a @ x
        residual_norm = float(np.max(np.abs(residual)))
        # Each residual entry is an (n+1)-term inner product whose terms
        # are bounded by the elimination's tracked scale times the solution
        # magnitude — the solver's own growth diagnostic.
        x_scale = float(np.max(np.abs(x))) if x.size else 0.0
        y = max(
            lu.update_scale * max(x_scale, 1.0),
            float(np.max(np.abs(b))) if b.size else 0.0,
        )
        tolerance = bound_scheme.epsilon(
            BoundContext(n=n + 1, m=n, upper_bound=y)
        )
        if residual_norm <= tolerance:
            break
        if refinements >= max_refinements:
            raise SolveVerificationError(
                f"residual {residual_norm:.3e} exceeds tolerance "
                f"{tolerance:.3e} after {refinements} refinement steps"
            )
        x = x + _back_substitute(lu.u, _forward_substitute(lu.l, residual))
        refinements += 1

    return ProtectedSolveResult(
        x=x,
        lu=lu,
        report=SolveReport(
            residual_norm=residual_norm,
            tolerance=tolerance,
            refinement_steps=refinements,
        ),
    )
