"""Checksum verification for partitioned full-checksum result matrices.

After the multiplication ``C_fc = A_cc @ B_rc`` every ``(BS+1) x (BS+1)``
result block carries a checksum row and column that "went through" the
multiplication.  Checking (paper Eq. 4-6, Algorithm 2) recomputes reference
checksums from the result data and compares::

    |c*_ref - c_original| < epsilon

with a per-comparison tolerance from an error-bound scheme.  Mismatching
column and row checks intersect at the erroneous element (error location).

All coordinates in this module are *encoded* coordinates of ``C_fc`` (the
product of the encoded operands); :class:`~repro.abft.encoding.PartitionedLayout`
maps them back to data coordinates.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..errors import ShapeError
from .encoding import PartitionedLayout

__all__ = [
    "EpsilonProvider",
    "CheckFinding",
    "CheckReport",
    "column_discrepancies",
    "row_discrepancies",
    "check_partitioned",
    "build_report",
]


class EpsilonProvider(Protocol):
    """Supplies the tolerance for each checksum comparison.

    Implementations adapt the bound schemes of :mod:`repro.bounds` to the
    per-block/per-vector context of the partitioned check (see
    :mod:`repro.abft.providers`).
    """

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        """Tolerance for the column check of ``encoded_col`` in ``block_row``."""
        ...

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        """Tolerance for the row check of ``encoded_row`` in ``block_col``."""
        ...


@dataclass(frozen=True)
class CheckFinding:
    """One failed checksum comparison."""

    axis: str  # "column" or "row"
    block_row: int
    block_col: int
    encoded_row: int  # for axis="row": the checked row; else the checksum row
    encoded_col: int  # for axis="column": the checked column; else the checksum col
    discrepancy: float
    epsilon: float


@dataclass
class CheckReport:
    """Outcome of checking one full-checksum result matrix.

    Attributes
    ----------
    findings:
        Every failed comparison.
    num_checks:
        Total comparisons performed (columns + rows).
    located_errors:
        Encoded ``(row, col)`` positions where a failing row check and a
        failing column check intersect within the same block — the ABFT
        error-location rule.
    column_disc / row_disc:
        Dense discrepancy arrays (useful for analysis), shapes
        ``(num_row_blocks, encoded_cols)`` and ``(encoded_rows,
        num_col_blocks)``.
    """

    findings: list[CheckFinding] = field(default_factory=list)
    num_checks: int = 0
    located_errors: list[tuple[int, int]] = field(default_factory=list)
    column_disc: np.ndarray | None = None
    row_disc: np.ndarray | None = None

    @property
    def error_detected(self) -> bool:
        """Whether any comparison failed."""
        return bool(self.findings)

    @property
    def num_failed(self) -> int:
        return len(self.findings)

    def findings_by_axis(self, axis: str) -> list[CheckFinding]:
        return [f for f in self.findings if f.axis == axis]


def column_discrepancies(
    c_fc: np.ndarray, row_layout: PartitionedLayout
) -> np.ndarray:
    """|reference - original| for every (block-row, encoded column) pair.

    ``reference`` is the sum of the block's data rows; ``original`` the
    checksum row that went through the multiplication (Eq. 4).
    """
    c_fc = np.asarray(c_fc, dtype=np.float64)
    if c_fc.shape[0] != row_layout.encoded_rows:
        raise ShapeError(
            f"result has {c_fc.shape[0]} rows, layout expects "
            f"{row_layout.encoded_rows}"
        )
    out = np.empty((row_layout.num_blocks, c_fc.shape[1]))
    for blk in range(row_layout.num_blocks):
        data = c_fc[row_layout.data_indices(blk), :]
        original = c_fc[row_layout.checksum_index(blk), :]
        out[blk, :] = np.abs(data.sum(axis=0) - original)
    return out


def row_discrepancies(c_fc: np.ndarray, col_layout: PartitionedLayout) -> np.ndarray:
    """|reference - original| for every (encoded row, block-column) pair."""
    return column_discrepancies(np.asarray(c_fc, dtype=np.float64).T, col_layout).T


def check_partitioned(
    c_fc: np.ndarray,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    epsilons: EpsilonProvider,
) -> CheckReport:
    """Full check of a partitioned full-checksum result matrix.

    Performs every column and row comparison with tolerances from
    ``epsilons``, collects failures, and intersects them per block to locate
    erroneous elements.
    """
    c_fc = np.asarray(c_fc, dtype=np.float64)
    if c_fc.shape != (row_layout.encoded_rows, col_layout.encoded_rows):
        raise ShapeError(
            f"result shape {c_fc.shape} does not match layouts "
            f"({row_layout.encoded_rows} x {col_layout.encoded_rows})"
        )
    col_disc = column_discrepancies(c_fc, row_layout)
    row_disc = row_discrepancies(c_fc, col_layout)

    col_eps = np.empty_like(col_disc)
    for blk_row in range(row_layout.num_blocks):
        for col in range(col_layout.encoded_rows):
            col_eps[blk_row, col] = epsilons.column_epsilon(blk_row, col)
    row_eps = np.empty_like(row_disc)
    for blk_col in range(col_layout.num_blocks):
        for row in range(row_layout.encoded_rows):
            row_eps[row, blk_col] = epsilons.row_epsilon(row, blk_col)

    return build_report(col_disc, col_eps, row_disc, row_eps, row_layout, col_layout)


def build_report(
    col_disc: np.ndarray,
    col_eps: np.ndarray,
    row_disc: np.ndarray,
    row_eps: np.ndarray,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
) -> CheckReport:
    """Assemble a :class:`CheckReport` from dense discrepancy/tolerance arrays.

    Used both by the host-side checker and by the GPU pipeline, whose
    checking kernel writes exactly these arrays to device buffers.
    A comparison fails when the discrepancy exceeds its tolerance *or* is
    non-finite (a NaN result must never pass the check silently).
    """
    report = CheckReport(column_disc=col_disc, row_disc=row_disc)
    report.num_checks = col_disc.size + row_disc.size

    stride_cols = col_layout.stride
    stride_rows = row_layout.stride

    # Column checks: one per (block-row, encoded column).
    for blk_row in range(row_layout.num_blocks):
        cs_row = row_layout.checksum_index(blk_row)
        for col in range(col_layout.encoded_rows):
            disc = float(col_disc[blk_row, col])
            eps = float(col_eps[blk_row, col])
            if disc > eps or not math.isfinite(disc):
                report.findings.append(
                    CheckFinding(
                        axis="column",
                        block_row=blk_row,
                        block_col=col // stride_cols,
                        encoded_row=cs_row,
                        encoded_col=col,
                        discrepancy=disc,
                        epsilon=eps,
                    )
                )

    # Row checks: one per (encoded row, block-column).
    for blk_col in range(col_layout.num_blocks):
        cs_col = col_layout.checksum_index(blk_col)
        for row in range(row_layout.encoded_rows):
            disc = float(row_disc[row, blk_col])
            eps = float(row_eps[row, blk_col])
            if disc > eps or not math.isfinite(disc):
                report.findings.append(
                    CheckFinding(
                        axis="row",
                        block_row=row // stride_rows,
                        block_col=blk_col,
                        encoded_row=row,
                        encoded_col=cs_col,
                        discrepancy=disc,
                        epsilon=eps,
                    )
                )

    report.located_errors = _locate(report, row_layout, col_layout)
    return report


def _locate(
    report: CheckReport,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
) -> list[tuple[int, int]]:
    """Intersect failing row/column checks block-by-block (error location)."""
    cols_by_block: dict[tuple[int, int], list[int]] = {}
    rows_by_block: dict[tuple[int, int], list[int]] = {}
    for f in report.findings:
        key = (f.block_row, f.block_col)
        if f.axis == "column":
            cols_by_block.setdefault(key, []).append(f.encoded_col)
        else:
            rows_by_block.setdefault(key, []).append(f.encoded_row)
    located: list[tuple[int, int]] = []
    for key in sorted(set(cols_by_block) & set(rows_by_block)):
        for row in sorted(rows_by_block[key]):
            for col in sorted(cols_by_block[key]):
                located.append((row, col))
    return located
