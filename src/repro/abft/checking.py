"""Checksum verification for partitioned full-checksum result matrices.

After the multiplication ``C_fc = A_cc @ B_rc`` every ``(BS+1) x (BS+1)``
result block carries a checksum row and column that "went through" the
multiplication.  Checking (paper Eq. 4-6, Algorithm 2) recomputes reference
checksums from the result data and compares::

    |c*_ref - c_original| < epsilon

with a per-comparison tolerance from an error-bound scheme.  Mismatching
column and row checks intersect at the erroneous element (error location).

All coordinates in this module are *encoded* coordinates of ``C_fc`` (the
product of the encoded operands); :class:`~repro.abft.encoding.PartitionedLayout`
maps them back to data coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from ..errors import ShapeError
from .encoding import PartitionedLayout

__all__ = [
    "EpsilonProvider",
    "CheckFinding",
    "CheckReport",
    "column_discrepancies",
    "row_discrepancies",
    "check_partitioned",
    "build_report",
]


class EpsilonProvider(Protocol):
    """Supplies the tolerance for each checksum comparison.

    Implementations adapt the bound schemes of :mod:`repro.bounds` to the
    per-block/per-vector context of the partitioned check (see
    :mod:`repro.abft.providers`).
    """

    def column_epsilon(self, block_row: int, encoded_col: int) -> float:
        """Tolerance for the column check of ``encoded_col`` in ``block_row``."""
        ...

    def row_epsilon(self, encoded_row: int, block_col: int) -> float:
        """Tolerance for the row check of ``encoded_row`` in ``block_col``."""
        ...


@dataclass(frozen=True)
class CheckFinding:
    """One failed checksum comparison."""

    axis: str  # "column" or "row"
    block_row: int
    block_col: int
    encoded_row: int  # for axis="row": the checked row; else the checksum row
    encoded_col: int  # for axis="column": the checked column; else the checksum col
    discrepancy: float
    epsilon: float


@dataclass
class CheckReport:
    """Outcome of checking one full-checksum result matrix.

    Attributes
    ----------
    findings:
        Every failed comparison.
    num_checks:
        Total comparisons performed (columns + rows).
    located_errors:
        Encoded ``(row, col)`` positions where a failing row check and a
        failing column check intersect within the same block — the ABFT
        error-location rule.
    column_disc / row_disc:
        Dense discrepancy arrays (useful for analysis), shapes
        ``(num_row_blocks, encoded_cols)`` and ``(encoded_rows,
        num_col_blocks)``.
    """

    findings: list[CheckFinding] = field(default_factory=list)
    num_checks: int = 0
    located_errors: list[tuple[int, int]] = field(default_factory=list)
    column_disc: np.ndarray | None = None
    row_disc: np.ndarray | None = None

    @property
    def error_detected(self) -> bool:
        """Whether any comparison failed."""
        return bool(self.findings)

    @property
    def num_failed(self) -> int:
        return len(self.findings)

    def findings_by_axis(self, axis: str) -> list[CheckFinding]:
        return [f for f in self.findings if f.axis == axis]


def column_discrepancies(
    c_fc: np.ndarray, row_layout: PartitionedLayout
) -> np.ndarray:
    """|reference - original| for every (block-row, encoded column) pair.

    ``reference`` is the sum of the block's data rows; ``original`` the
    checksum row that went through the multiplication (Eq. 4).  One
    block-reshaped reduction over the whole result — bitwise identical to
    the per-block loop it replaced (same sequential accumulation over each
    block's data rows).
    """
    c_fc = np.asarray(c_fc, dtype=np.float64)
    if c_fc.shape[0] != row_layout.encoded_rows:
        raise ShapeError(
            f"result has {c_fc.shape[0]} rows, layout expects "
            f"{row_layout.encoded_rows}"
        )
    bs = row_layout.block_size
    cols = c_fc.shape[1]
    view = c_fc.reshape(row_layout.num_blocks, row_layout.stride, cols)
    out = np.empty((row_layout.num_blocks, cols))
    np.sum(view[:, :bs, :], axis=1, out=out)
    out -= view[:, bs, :]
    np.abs(out, out=out)
    return out


def row_discrepancies(c_fc: np.ndarray, col_layout: PartitionedLayout) -> np.ndarray:
    """|reference - original| for every (encoded row, block-column) pair.

    Computed directly on the result — the checked sums run along each
    row's contiguous block columns, the same reduction the GPU check
    kernel performs — instead of transposing ``c_fc`` into
    :func:`column_discrepancies` (which forced two full copies).
    """
    c_fc = np.asarray(c_fc, dtype=np.float64)
    if c_fc.shape[1] != col_layout.encoded_rows:
        raise ShapeError(
            f"result has {c_fc.shape[1]} columns, layout expects "
            f"{col_layout.encoded_rows}"
        )
    bs = col_layout.block_size
    rows = c_fc.shape[0]
    view = c_fc.reshape(rows, col_layout.num_blocks, col_layout.stride)
    out = np.empty((rows, col_layout.num_blocks))
    np.sum(view[:, :, :bs], axis=2, out=out)
    out -= view[:, :, bs]
    np.abs(out, out=out)
    return out


def check_partitioned(
    c_fc: np.ndarray,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    epsilons: EpsilonProvider,
    *,
    use_grids: bool = True,
) -> CheckReport:
    """Full check of a partitioned full-checksum result matrix.

    Performs every column and row comparison with tolerances from
    ``epsilons``, collects failures, and intersects them per block to locate
    erroneous elements.  ``use_grids=False`` forces the scalar
    per-comparison tolerance loop even for providers with an array form
    (the reference path property tests compare against).
    """
    c_fc = np.asarray(c_fc, dtype=np.float64)
    if c_fc.shape != (row_layout.encoded_rows, col_layout.encoded_rows):
        raise ShapeError(
            f"result shape {c_fc.shape} does not match layouts "
            f"({row_layout.encoded_rows} x {col_layout.encoded_rows})"
        )
    col_disc = column_discrepancies(c_fc, row_layout)
    row_disc = row_discrepancies(c_fc, col_layout)

    # Providers exposing the array form supply both dense tolerance grids in
    # one vectorised evaluation (bitwise equal to the scalar loops below);
    # scalar-only providers fall back to one call per comparison.
    grids = None
    epsilon_grids = getattr(epsilons, "epsilon_grids", None)
    if use_grids and epsilon_grids is not None:
        try:
            grids = epsilon_grids(row_layout, col_layout)
        except Exception:
            # The array form may reject inputs the scalar path tolerates
            # (e.g. non-finite upper bounds from corrupted operands, where
            # the scalar loop yields NaN tolerances and the non-finite
            # discrepancy still fails the comparison).  The scalar loop is
            # the semantic reference, so fall back to it.
            grids = None
    if grids is not None:
        col_eps, row_eps = grids
    else:
        col_eps = np.empty_like(col_disc)
        for blk_row in range(row_layout.num_blocks):
            for col in range(col_layout.encoded_rows):
                col_eps[blk_row, col] = epsilons.column_epsilon(blk_row, col)
        row_eps = np.empty_like(row_disc)
        for blk_col in range(col_layout.num_blocks):
            for row in range(row_layout.encoded_rows):
                row_eps[row, blk_col] = epsilons.row_epsilon(row, blk_col)

    return build_report(col_disc, col_eps, row_disc, row_eps, row_layout, col_layout)


def build_report(
    col_disc: np.ndarray,
    col_eps: np.ndarray,
    row_disc: np.ndarray,
    row_eps: np.ndarray,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
) -> CheckReport:
    """Assemble a :class:`CheckReport` from dense discrepancy/tolerance arrays.

    Used both by the host-side checker and by the GPU pipeline, whose
    checking kernel writes exactly these arrays to device buffers.
    A comparison fails when the discrepancy exceeds its tolerance *or* is
    non-finite (a NaN result must never pass the check silently).
    """
    report = CheckReport(column_disc=col_disc, row_disc=row_disc)
    report.num_checks = col_disc.size + row_disc.size

    stride_cols = col_layout.stride
    stride_rows = row_layout.stride

    # Failures are masked out in two vectorised comparisons; CheckFinding
    # objects are only materialised for the (rare) flagged entries.  The
    # elementwise ``>`` matches the scalar ``disc > eps`` (NaN compares
    # false, so the explicit non-finite term keeps NaNs failing loudly).
    col_bad = (col_disc > col_eps) | ~np.isfinite(col_disc)
    if col_bad.any():
        # argwhere walks row-major: block-row outer, column inner — the
        # order the scalar loop appended findings in.
        for blk_row, col in np.argwhere(col_bad):
            blk_row = int(blk_row)
            col = int(col)
            report.findings.append(
                CheckFinding(
                    axis="column",
                    block_row=blk_row,
                    block_col=col // stride_cols,
                    encoded_row=row_layout.checksum_index(blk_row),
                    encoded_col=col,
                    discrepancy=float(col_disc[blk_row, col]),
                    epsilon=float(col_eps[blk_row, col]),
                )
            )

    row_bad = (row_disc > row_eps) | ~np.isfinite(row_disc)
    if row_bad.any():
        # Transposed argwhere: block-column outer, encoded row inner.
        for blk_col, row in np.argwhere(row_bad.T):
            blk_col = int(blk_col)
            row = int(row)
            report.findings.append(
                CheckFinding(
                    axis="row",
                    block_row=row // stride_rows,
                    block_col=blk_col,
                    encoded_row=row,
                    encoded_col=col_layout.checksum_index(blk_col),
                    discrepancy=float(row_disc[row, blk_col]),
                    epsilon=float(row_eps[row, blk_col]),
                )
            )

    report.located_errors = _locate(report, row_layout, col_layout)
    return report


def _locate(
    report: CheckReport,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
) -> list[tuple[int, int]]:
    """Intersect failing row/column checks block-by-block (error location)."""
    cols_by_block: dict[tuple[int, int], list[int]] = {}
    rows_by_block: dict[tuple[int, int], list[int]] = {}
    for f in report.findings:
        key = (f.block_row, f.block_col)
        if f.axis == "column":
            cols_by_block.setdefault(key, []).append(f.encoded_col)
        else:
            rows_by_block.setdefault(key, []).append(f.encoded_row)
    located: list[tuple[int, int]] = []
    for key in sorted(set(cols_by_block) & set(rows_by_block)):
        for row in sorted(rows_by_block[key]):
            for col in sorted(cols_by_block[key]):
                located.append((row, col))
    return located
