"""High-level ABFT matrix multiplication — the library's main entry points.

These functions run the complete scheme on the host (pure numpy): encode,
multiply, determine bounds, check, optionally locate/correct.  They are the
API a downstream user calls; the GPU-simulated pipeline in
:mod:`repro.abft.pipeline` executes the same mathematics kernel-by-kernel for
the performance and fault-injection experiments.

Since the engine redesign they are thin shims over a shared
:class:`repro.engine.MatmulEngine` (see :func:`repro.engine.default_engine`):
each call builds an :class:`repro.engine.AbftConfig` from its keyword
arguments and routes through the module-level engine, so repeated same-shape
calls reuse cached execution plans.  Results are bitwise identical to the
pre-engine implementation.  New code should prefer constructing an engine
and config directly — especially for batches or operand reuse.

Example
-------
>>> import numpy as np
>>> from repro.abft import aabft_matmul
>>> rng = np.random.default_rng(0)
>>> a = rng.uniform(-1, 1, (256, 256)); b = rng.uniform(-1, 1, (256, 256))
>>> result = aabft_matmul(a, b, block_size=64, p=2)
>>> result.report.error_detected
False
>>> np.allclose(result.c, a @ b)
True
"""

from __future__ import annotations

import warnings

import numpy as np

from ..engine.config import AbftConfig
from .result import AbftResult, ProtectedResult

__all__ = [
    "AbftResult",
    "ProtectedResult",
    "aabft_matmul",
    "sea_abft_matmul",
    "fixed_abft_matmul",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_P",
]

#: Encoding block size matching the paper's kernel configuration.
DEFAULT_BLOCK_SIZE = 64
#: Number of tracked largest absolute values (paper Section VI-B: p = 2).
DEFAULT_P = 2


def _warn_positional(func: str, names: list[str]) -> None:
    warnings.warn(
        f"passing {', '.join(names)} to {func}() positionally is deprecated; "
        "use keyword arguments or an AbftConfig",
        DeprecationWarning,
        stacklevel=3,
    )


def _consume_positional(func: str, args: tuple, names: list[str]) -> dict:
    """Map legacy positional tuning arguments onto their keyword names."""
    if not args:
        return {}
    if len(args) > len(names):
        raise TypeError(
            f"{func}() takes at most {2 + len(names)} positional arguments "
            f"({2 + len(args)} given)"
        )
    used = names[: len(args)]
    _warn_positional(func, used)
    return dict(zip(used, args))


def _build_config(
    func: str, base: AbftConfig | None, scheme: str, overrides: dict
) -> AbftConfig:
    """Resolve the effective config: explicit kwargs override ``base``."""
    changes = {k: v for k, v in overrides.items() if v is not None}
    changes["scheme"] = scheme
    if base is None:
        return AbftConfig(**changes)
    if not isinstance(base, AbftConfig):
        raise TypeError(
            f"{func}() config must be an AbftConfig, got {type(base).__name__}"
        )
    return base.replace(**changes)


def aabft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *args,
    config: AbftConfig | None = None,
    block_size: int | None = None,
    p: int | None = None,
    omega: float | None = None,
    fma: bool | None = None,
    epsilon_floor: float | None = None,
) -> AbftResult:
    """ABFT matmul with autonomous probabilistic error bounds (A-ABFT).

    Parameters
    ----------
    a, b:
        Operand matrices, ``(m, n)`` and ``(n, q)``; dimensions need not be
        block multiples (zero padding is applied and stripped transparently).
        When both operands are float32 the whole scheme runs in binary32
        (GPU single precision) with bounds for ``t = 24``; otherwise
        binary64.
    config:
        An :class:`repro.engine.AbftConfig` carrying every tuning knob.
        Individual keyword arguments below override its fields.
    block_size:
        Partitioned-encoding block size ``BS``.
    p:
        Number of largest absolute values tracked per vector (Section IV-E).
    omega:
        Confidence scale of the bound (paper default: 3).
    fma:
        Model a fused-multiply-add pipeline (Section IV-D).
    epsilon_floor:
        Absolute tolerance floor for inputs whose checksum vectors cancel
        to (near) zero — e.g. mean-centred data or graph Laplacians.  The
        paper's model scales the tolerance with the checksum magnitude, so
        exact cancellation drives it to zero while the reference summation
        still carries rounding noise, causing false positives.  A floor of
        ``n * 2**-t * max|C|`` restores zero false positives; the default 0
        is paper-faithful.  See docs/THEORY.md.

    Passing the tuning arguments positionally (the pre-engine signature) is
    deprecated; calls go through the shared :func:`repro.engine.default_engine`.
    """
    overrides = _consume_positional(
        "aabft_matmul", args, ["block_size", "p", "omega", "fma", "epsilon_floor"]
    )
    overrides.update(
        block_size=block_size if block_size is not None else overrides.get("block_size"),
        p=p if p is not None else overrides.get("p"),
        omega=omega if omega is not None else overrides.get("omega"),
        fma=fma if fma is not None else overrides.get("fma"),
        epsilon_floor=(
            epsilon_floor if epsilon_floor is not None else overrides.get("epsilon_floor")
        ),
    )
    cfg = _build_config("aabft_matmul", config, "aabft", overrides)
    from ..engine import default_engine

    return default_engine().matmul(a, b, config=cfg)


def sea_abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    *args,
    config: AbftConfig | None = None,
    block_size: int | None = None,
) -> AbftResult:
    """ABFT matmul with simplified-error-analysis bounds (SEA-ABFT baseline)."""
    overrides = _consume_positional("sea_abft_matmul", args, ["block_size"])
    overrides.update(
        block_size=block_size if block_size is not None else overrides.get("block_size"),
    )
    cfg = _build_config("sea_abft_matmul", config, "sea", overrides)
    from ..engine import default_engine

    return default_engine().matmul(a, b, config=cfg)


def fixed_abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    epsilon: float | None = None,
    *args,
    config: AbftConfig | None = None,
    block_size: int | None = None,
) -> AbftResult:
    """ABFT matmul with a manually chosen absolute tolerance (baseline).

    ``epsilon`` must be supplied by the user (directly or as
    ``config.fixed_epsilon``) — the scheme the paper's Table I lists as
    "ABFT", fast but not autonomous.
    """
    overrides = _consume_positional("fixed_abft_matmul", args, ["block_size"])
    overrides.update(
        block_size=block_size if block_size is not None else overrides.get("block_size"),
    )
    if epsilon is not None:
        overrides["fixed_epsilon"] = epsilon
    elif config is None or config.fixed_epsilon is None:
        raise TypeError("fixed_abft_matmul() missing required argument: 'epsilon'")
    cfg = _build_config("fixed_abft_matmul", config, "fixed", overrides)
    from ..engine import default_engine

    return default_engine().matmul(a, b, config=cfg)
