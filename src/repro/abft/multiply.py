"""High-level ABFT matrix multiplication — the library's main entry points.

These functions run the complete scheme on the host (pure numpy): encode,
multiply, determine bounds, check, optionally locate/correct.  They are the
API a downstream user calls; the GPU-simulated pipeline in
:mod:`repro.abft.pipeline` executes the same mathematics kernel-by-kernel for
the performance and fault-injection experiments.

Example
-------
>>> import numpy as np
>>> from repro.abft import aabft_matmul
>>> rng = np.random.default_rng(0)
>>> a = rng.uniform(-1, 1, (256, 256)); b = rng.uniform(-1, 1, (256, 256))
>>> result = aabft_matmul(a, b, block_size=64, p=2)
>>> result.report.error_detected
False
>>> np.allclose(result.c, a @ b)
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.fixed import FixedBound
from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.sea import SEABound
from ..fp.constants import format_for_dtype
from ..bounds.upper_bound import top_p_of_columns, top_p_of_rows
from ..errors import ShapeError
from .checking import CheckReport, EpsilonProvider, check_partitioned
from .encoding import (
    PartitionedLayout,
    encode_partitioned_columns,
    encode_partitioned_rows,
    pad_to_block_multiple,
)
from .providers import (
    AABFTEpsilonProvider,
    ConstantEpsilonProvider,
    SEAEpsilonProvider,
)

__all__ = [
    "AbftResult",
    "aabft_matmul",
    "sea_abft_matmul",
    "fixed_abft_matmul",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_P",
]

#: Encoding block size matching the paper's kernel configuration.
DEFAULT_BLOCK_SIZE = 64
#: Number of tracked largest absolute values (paper Section VI-B: p = 2).
DEFAULT_P = 2


@dataclass
class AbftResult:
    """Everything an ABFT-protected multiplication produced.

    Attributes
    ----------
    c:
        The data result matrix (checksums and padding stripped) — what an
        unprotected ``a @ b`` would have returned.
    c_fc:
        The raw full-checksum result (encoded coordinates).
    report:
        The checksum check report.
    row_layout / col_layout:
        Layouts of the encoded result (for error location / correction).
    provider:
        The epsilon provider used for the check (reusable for re-checks and
        correction verification).
    """

    c: np.ndarray
    c_fc: np.ndarray
    report: CheckReport
    row_layout: PartitionedLayout
    col_layout: PartitionedLayout
    provider: EpsilonProvider

    @property
    def detected(self) -> bool:
        """Whether the check flagged any comparison."""
        return self.report.error_detected


def _prepare(
    a: np.ndarray, b: np.ndarray, block_size: int
) -> tuple[np.ndarray, np.ndarray, tuple[int, int], tuple[int, int]]:
    a = np.asarray(a)
    b = np.asarray(b)
    # Compute in the caller's precision (binary32 or binary64); anything
    # else is promoted to binary64.
    if a.dtype != np.float32 or b.dtype != np.float32:
        a = a.astype(np.float64, copy=False)
        b = b.astype(np.float64, copy=False)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError("operands must be 2-D matrices")
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )
    a_pad, a_added = pad_to_block_multiple(a, block_size, axis=0)
    b_pad, b_added = pad_to_block_multiple(b, block_size, axis=1)
    return a_pad, b_pad, a_added, b_added


def _extract_data(
    c_fc: np.ndarray,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    rows_added: int,
    cols_added: int,
) -> np.ndarray:
    data = c_fc[np.ix_(row_layout.all_data_indices(), col_layout.all_data_indices())]
    rows = data.shape[0] - rows_added
    cols = data.shape[1] - cols_added
    return np.ascontiguousarray(data[:rows, :cols])


def aabft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    p: int = DEFAULT_P,
    omega: float = 3.0,
    fma: bool = False,
    epsilon_floor: float = 0.0,
) -> AbftResult:
    """ABFT matmul with autonomous probabilistic error bounds (A-ABFT).

    Parameters
    ----------
    a, b:
        Operand matrices, ``(m, n)`` and ``(n, q)``; dimensions need not be
        block multiples (zero padding is applied and stripped transparently).
        When both operands are float32 the whole scheme runs in binary32
        (GPU single precision) with bounds for ``t = 24``; otherwise
        binary64.
    block_size:
        Partitioned-encoding block size ``BS``.
    p:
        Number of largest absolute values tracked per vector (Section IV-E).
    omega:
        Confidence scale of the bound (paper default: 3).
    fma:
        Model a fused-multiply-add pipeline (Section IV-D).
    epsilon_floor:
        Absolute tolerance floor for inputs whose checksum vectors cancel
        to (near) zero — e.g. mean-centred data or graph Laplacians.  The
        paper's model scales the tolerance with the checksum magnitude, so
        exact cancellation drives it to zero while the reference summation
        still carries rounding noise, causing false positives.  A floor of
        ``n * 2**-t * max|C|`` restores zero false positives; the default 0
        is paper-faithful.  See docs/THEORY.md.
    """
    a_pad, b_pad, (rows_added, _), (_, cols_added) = _prepare(a, b, block_size)
    a_cc, row_layout = encode_partitioned_columns(a_pad, block_size)
    b_rc, col_layout = encode_partitioned_rows(b_pad, block_size)

    # Runtime top-p determination over the encoded operands (the encoding
    # kernel tracks checksum magnitudes too — Algorithm 1's localSums).
    row_tops = top_p_of_rows(a_cc, p)
    col_tops = top_p_of_columns(b_rc, p)

    c_fc = a_cc @ b_rc
    provider = AABFTEpsilonProvider(
        scheme=ProbabilisticBound(
            omega=omega, fma=fma, fmt=format_for_dtype(c_fc.dtype)
        ),
        row_tops=row_tops,
        col_tops=col_tops,
        row_layout=row_layout,
        col_layout=col_layout,
        inner_dim=a_pad.shape[1],
        epsilon_floor=epsilon_floor,
    )
    report = check_partitioned(c_fc, row_layout, col_layout, provider)
    c = _extract_data(c_fc, row_layout, col_layout, rows_added, cols_added)
    return AbftResult(
        c=c,
        c_fc=c_fc,
        report=report,
        row_layout=row_layout,
        col_layout=col_layout,
        provider=provider,
    )


def sea_abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> AbftResult:
    """ABFT matmul with simplified-error-analysis bounds (SEA-ABFT baseline)."""
    a_pad, b_pad, (rows_added, _), (_, cols_added) = _prepare(a, b, block_size)
    a_cc, row_layout = encode_partitioned_columns(a_pad, block_size)
    b_rc, col_layout = encode_partitioned_rows(b_pad, block_size)

    a_row_norms = np.linalg.norm(a_cc, axis=1)
    b_col_norms = np.linalg.norm(b_rc, axis=0)

    c_fc = a_cc @ b_rc
    provider = SEAEpsilonProvider(
        scheme=SEABound(fmt=format_for_dtype(c_fc.dtype)),
        a_row_norms=a_row_norms,
        b_col_norms=b_col_norms,
        row_layout=row_layout,
        col_layout=col_layout,
        inner_dim=a_pad.shape[1],
    )
    report = check_partitioned(c_fc, row_layout, col_layout, provider)
    c = _extract_data(c_fc, row_layout, col_layout, rows_added, cols_added)
    return AbftResult(
        c=c,
        c_fc=c_fc,
        report=report,
        row_layout=row_layout,
        col_layout=col_layout,
        provider=provider,
    )


def fixed_abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    epsilon: float,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> AbftResult:
    """ABFT matmul with a manually chosen absolute tolerance (baseline).

    ``epsilon`` must be supplied by the user — the scheme the paper's
    Table I lists as "ABFT", fast but not autonomous.
    """
    FixedBound(epsilon)  # validate the tolerance eagerly
    a_pad, b_pad, (rows_added, _), (_, cols_added) = _prepare(a, b, block_size)
    a_cc, row_layout = encode_partitioned_columns(a_pad, block_size)
    b_rc, col_layout = encode_partitioned_rows(b_pad, block_size)
    c_fc = a_cc @ b_rc
    provider = ConstantEpsilonProvider(epsilon)
    report = check_partitioned(c_fc, row_layout, col_layout, provider)
    c = _extract_data(c_fc, row_layout, col_layout, rows_added, cols_added)
    return AbftResult(
        c=c,
        c_fc=c_fc,
        report=report,
        row_layout=row_layout,
        col_layout=col_layout,
        provider=provider,
    )
