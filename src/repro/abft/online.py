"""Online ABFT: panel-wise checking with early detection and recovery.

The paper's related work (Ding et al., "Matrix Multiplication on GPUs with
On-Line Fault Tolerance") checks *during* the multiplication instead of
once at the end, bounding both detection latency and the amount of work a
recovery must redo.  This module provides that execution style on top of
the A-ABFT machinery:

* the inner dimension is split into panels; the full-checksum result
  accumulates one panel product at a time (checksum consistency is linear,
  so it holds for every partial sum);
* after each panel the accumulated result is checked with probabilistic
  bounds for the *processed* inner length (plus the inter-panel
  accumulation steps);
* on a mismatch, the implicated result blocks are recomputed from the
  inputs over the processed panels and re-checked — a corrupted partial
  product is healed without redoing the whole multiplication.

The bounds stay autonomous: the same top-p data serves every panel check
(the full-row ``y`` dominates every prefix's ``y``, so prefix checks are
sound, merely a whisker conservative).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.upper_bound import top_p_of_columns, top_p_of_rows
from ..errors import CorrectionError, ShapeError
from .checking import CheckReport, check_partitioned
from .encoding import (
    PartitionedLayout,
    encode_partitioned_columns,
    encode_partitioned_rows,
)
from .providers import AABFTEpsilonProvider

__all__ = ["PanelEvent", "OnlineAbftResult", "online_abft_matmul"]


@dataclass(frozen=True)
class PanelEvent:
    """What happened after accumulating one panel."""

    panel: int
    processed_inner: int
    detected: bool
    recovered_blocks: tuple[tuple[int, int], ...] = ()


@dataclass
class OnlineAbftResult:
    """Outcome of an online protected multiplication."""

    c_fc: np.ndarray
    row_layout: PartitionedLayout
    col_layout: PartitionedLayout
    events: list[PanelEvent] = field(default_factory=list)
    final_report: CheckReport | None = None

    @property
    def c(self) -> np.ndarray:
        rows = self.row_layout.all_data_indices()
        cols = self.col_layout.all_data_indices()
        return np.ascontiguousarray(self.c_fc[np.ix_(rows, cols)])

    @property
    def any_detected(self) -> bool:
        return any(e.detected for e in self.events)

    @property
    def detection_panel(self) -> int | None:
        """First panel whose check flagged — the detection latency."""
        for e in self.events:
            if e.detected:
                return e.panel
        return None

    @property
    def recovered(self) -> bool:
        return any(e.recovered_blocks for e in self.events)


def online_abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    block_size: int = 64,
    num_panels: int = 4,
    p: int = 2,
    omega: float = 3.0,
    corrupt_hook=None,
    max_recoveries: int = 2,
) -> OnlineAbftResult:
    """Panel-wise protected multiplication with in-flight recovery.

    Parameters
    ----------
    a, b:
        Operands; dimensions must be multiples of ``block_size`` (mirrors
        the raw-kernel contract of :class:`~repro.abft.pipeline.AABFTPipeline`).
    num_panels:
        How many inner-dimension panels to accumulate/check.
    corrupt_hook:
        Optional ``(panel_index, c_fc) -> None`` invoked after each panel's
        accumulation with the live result — the fault-injection surface.
    max_recoveries:
        Recomputation attempts per panel before declaring the fault
        persistent (:class:`~repro.errors.CorrectionError`).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"incompatible operands: {a.shape} x {b.shape}")
    if a.shape[0] % block_size or b.shape[1] % block_size:
        raise ShapeError(
            f"operand dimensions must be multiples of block size {block_size}"
        )
    n = a.shape[1]
    if not 1 <= num_panels <= n:
        raise ValueError(f"num_panels must be in 1..{n}, got {num_panels}")

    a_cc, row_layout = encode_partitioned_columns(a, block_size)
    b_rc, col_layout = encode_partitioned_rows(b, block_size)
    row_tops = top_p_of_rows(a_cc, min(p, n))
    col_tops = top_p_of_columns(b_rc, min(p, n))

    bounds = np.linspace(0, n, num_panels + 1).astype(int)
    c_fc = np.zeros((row_layout.encoded_rows, col_layout.encoded_rows))

    result = OnlineAbftResult(
        c_fc=c_fc, row_layout=row_layout, col_layout=col_layout
    )

    for panel in range(num_panels):
        lo, hi = bounds[panel], bounds[panel + 1]
        c_fc += a_cc[:, lo:hi] @ b_rc[lo:hi, :]
        if corrupt_hook is not None:
            corrupt_hook(panel, c_fc)

        provider = AABFTEpsilonProvider(
            scheme=ProbabilisticBound(omega=omega),
            row_tops=row_tops,
            col_tops=col_tops,
            row_layout=row_layout,
            col_layout=col_layout,
            # Processed inner length plus the inter-panel accumulations.
            inner_dim=int(hi) + panel,
        )
        report = check_partitioned(c_fc, row_layout, col_layout, provider)
        recovered: list[tuple[int, int]] = []
        attempts = 0
        while report.error_detected:
            if attempts >= max_recoveries:
                raise CorrectionError(
                    f"panel {panel}: fault persists after "
                    f"{max_recoveries} recomputations"
                )
            attempts += 1
            blocks = _implicated_blocks(report)
            for blk_row, blk_col in blocks:
                _recompute_block(
                    c_fc, a_cc, b_rc, row_layout, col_layout, blk_row, blk_col, hi
                )
                recovered.append((blk_row, blk_col))
            report = check_partitioned(c_fc, row_layout, col_layout, provider)
        result.events.append(
            PanelEvent(
                panel=panel,
                processed_inner=int(hi),
                detected=attempts > 0,
                recovered_blocks=tuple(recovered),
            )
        )
        result.final_report = report
    return result


def _implicated_blocks(report: CheckReport) -> set[tuple[int, int]]:
    """Result blocks touched by any failing comparison."""
    return {(f.block_row, f.block_col) for f in report.findings}


def _recompute_block(
    c_fc: np.ndarray,
    a_cc: np.ndarray,
    b_rc: np.ndarray,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    blk_row: int,
    blk_col: int,
    processed: int,
) -> None:
    """Redo one result block's contribution over the processed prefix."""
    rows = slice(blk_row * row_layout.stride, (blk_row + 1) * row_layout.stride)
    cols = slice(blk_col * col_layout.stride, (blk_col + 1) * col_layout.stride)
    c_fc[rows, cols] = a_cc[rows, :processed] @ b_rc[:processed, cols]
