"""Runtime error classification (paper Section VI-C).

A-ABFT distinguishes three classes of value errors:

1. **inevitable rounding errors** — in the magnitude of the expectation
   value of the rounding error; not counted as errors at all;
2. **tolerable compute errors** — within the ``omega * sigma`` confidence
   band of the probabilistic rounding-error model; they differ from the
   correct result but insignificantly;
3. **intolerable critical compute errors** — larger than the confidence
   band; these must be detected (and corrected).

The fault-injection evaluation uses this classification as its ground-truth
baseline: an injected fault only counts against the detection rate if the
error it induced in the affected element is *critical* under the model of
that element's own rounding error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..bounds.probabilistic import (
    inner_product_mean_bound,
    inner_product_sigma_bound,
)
from ..fp.constants import BINARY64, FloatFormat

__all__ = ["ErrorClass", "ErrorClassifier", "Classification"]


class ErrorClass(enum.Enum):
    """The three error classes of Section VI-C."""

    ROUNDING = "rounding"
    TOLERABLE = "tolerable"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Classification:
    """Outcome of classifying one induced element error."""

    error_class: ErrorClass
    magnitude: float
    expectation: float
    sigma: float
    omega: float

    @property
    def is_critical(self) -> bool:
        return self.error_class is ErrorClass.CRITICAL


@dataclass
class ErrorClassifier:
    """Classifies induced element errors against the probabilistic model.

    Parameters
    ----------
    omega:
        Confidence scale of the critical threshold (paper: ``3 sigma``).
    fma:
        Whether the accumulation pipeline fuses multiply-add.
    fmt:
        Floating-point format of the computation.
    """

    omega: float = 3.0
    fma: bool = False
    fmt: FloatFormat = BINARY64

    def classify(self, induced_error: float, n: int, y: float) -> Classification:
        """Classify the absolute ``induced_error`` of one result element.

        Parameters
        ----------
        induced_error:
            Signed or absolute difference between the faulty and fault-free
            value of the affected element.
        n:
            Inner-product length of the element.
        y:
            Upper bound on the element's intermediate products (its own
            three-case ``y``, not the checksum's).
        """
        t = self.fmt.t
        ev = inner_product_mean_bound(n, y, t, self.fma)
        sigma = inner_product_sigma_bound(n, y, t, self.fma)
        magnitude = abs(induced_error)
        if magnitude <= abs(ev):
            cls = ErrorClass.ROUNDING
        elif magnitude <= self.omega * sigma:
            cls = ErrorClass.TOLERABLE
        else:
            cls = ErrorClass.CRITICAL
        return Classification(
            error_class=cls,
            magnitude=magnitude,
            expectation=ev,
            sigma=sigma,
            omega=self.omega,
        )
