"""The complete A-ABFT pipeline on the simulated GPU (paper Section V).

Orchestrates the algorithmic steps exactly as the paper schedules them:

1. encoding kernels for ``A`` and ``B`` (checksums + per-block top-p);
2. the matrix-multiplication kernel (with optional fault injection), with
3. the top-p reduction kernels submitted to a *concurrent* stream (the paper
   overlaps the reduction with the multiplication);
4. the checking kernel (bound determination + reference checksums +
   comparison).

The pipeline supports three bound schemes — ``"aabft"`` (autonomous),
``"sea"`` (norm kernels instead of top-p machinery) and ``"fixed"`` — which
is what the Table I performance comparison sweeps over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.sea import SEABound
from ..bounds.upper_bound import TopP
from ..errors import ConfigurationError, ShapeError
from ..faults.injector import FaultInjector
from ..gpusim.simulator import GpuSimulator
from ..kernels.check import CheckKernel
from ..kernels.correct import CorrectionKernel
from ..kernels.encode import EncodeColumnChecksumsKernel, EncodeRowChecksumsKernel
from ..kernels.matmul import BlockMatmulKernel
from ..kernels.matmul_tiled import RegisterTiledMatmulKernel
from ..kernels.norms import ColumnNormKernel, RowNormKernel
from ..kernels.reduce import TopPReduceKernel
from ..telemetry import MetricsRegistry, get_registry, span
from .checking import CheckReport, build_report
from .encoding import PartitionedLayout
from .providers import (
    AABFTEpsilonProvider,
    ConstantEpsilonProvider,
    SEAEpsilonProvider,
)

__all__ = ["PipelineResult", "AABFTPipeline"]


def _tile_divisor(stride: int, preferred_max: int = 8) -> int:
    """Largest register-tile dimension <= preferred_max dividing ``stride``.

    Partitioned blocks have odd strides (``BS + 1``); register tiles must
    divide them (e.g. stride 65 -> 5, stride 33 -> 3).
    """
    for candidate in range(min(preferred_max, stride), 0, -1):
        if stride % candidate == 0:
            return candidate
    return 1


@dataclass
class PipelineResult:
    """Output of one simulated protected multiplication.

    Exposes the same read-only core (``.c``, ``.detected``, ``.report``) as
    the host path's :class:`~repro.abft.result.AbftResult`, so it satisfies
    the :class:`~repro.abft.result.ProtectedResult` protocol and the two
    paths are interchangeable to downstream code.
    """

    c_fc: np.ndarray
    report: CheckReport
    row_layout: PartitionedLayout
    col_layout: PartitionedLayout
    provider: object
    #: Modelled wall-clock seconds of the protected operation (streams
    #: overlapped as on the real device).
    modelled_seconds: float
    #: Result blocks the device-side correction kernel patched
    #: (``auto_correct=True`` runs only).
    corrected_blocks: tuple[tuple[int, int], ...] = ()

    @property
    def c(self) -> np.ndarray:
        """The data result (checksums stripped)."""
        rows = self.row_layout.all_data_indices()
        cols = self.col_layout.all_data_indices()
        return np.ascontiguousarray(self.c_fc[np.ix_(rows, cols)])

    @property
    def detected(self) -> bool:
        return self.report.error_detected


class AABFTPipeline:
    """Runs protected multiplications kernel-by-kernel on a simulator.

    Parameters
    ----------
    sim:
        The GPU simulator instance (device choice, profiling).
    block_size:
        Partitioned-encoding block size ``BS``.
    p:
        Tracked largest-absolute-value count (A-ABFT scheme only).
    omega:
        Confidence scale of the probabilistic bound.
    scheme:
        ``"aabft"``, ``"sea"`` or ``"fixed"``.
    fixed_epsilon:
        The manual tolerance when ``scheme="fixed"``.
    matmul_kernel:
        ``"block"`` (fast path, default) or ``"tiled"`` (the
        structure-faithful register-tiled Algorithm 3 kernel; slower).
    registry:
        Telemetry target of the per-stage spans (``pipeline.encode`` /
        ``pipeline.multiply`` / ``pipeline.check`` / ``pipeline.correct``
        under ``pipeline.run``).  Defaults to the process-wide registry;
        pass :data:`repro.telemetry.NULL_REGISTRY` to run unmetered.
    """

    def __init__(
        self,
        sim: GpuSimulator,
        block_size: int = 64,
        p: int = 2,
        omega: float = 3.0,
        scheme: str = "aabft",
        fixed_epsilon: float | None = None,
        fma: bool = False,
        matmul_kernel: str = "block",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if scheme not in ("aabft", "sea", "fixed"):
            raise ConfigurationError(
                f"unknown scheme {scheme!r}; expected aabft/sea/fixed"
            )
        if scheme == "fixed" and fixed_epsilon is None:
            raise ConfigurationError("scheme='fixed' requires fixed_epsilon")
        if matmul_kernel not in ("block", "tiled"):
            raise ConfigurationError(
                f"unknown matmul_kernel {matmul_kernel!r}; expected block/tiled"
            )
        self.sim = sim
        self.block_size = block_size
        self.p = p
        self.omega = omega
        self.scheme = scheme
        self.fixed_epsilon = fixed_epsilon
        self.fma = fma
        self.matmul_kernel = matmul_kernel
        self.registry = registry if registry is not None else get_registry()

    # ------------------------------------------------------------------
    def run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        injector: FaultInjector | None = None,
        auto_correct: bool = False,
    ) -> PipelineResult:
        """Protected multiplication of ``a @ b`` with checking.

        Operand dimensions must be multiples of the block size (the
        host-side API in :mod:`repro.abft.multiply` pads transparently; the
        pipeline mirrors the raw kernels, which require padded inputs).

        With ``auto_correct`` the device-side correction kernel patches
        uniquely located single errors (Algorithm 2's "start correction"
        path) and the check re-runs; the returned report reflects the
        corrected state.
        """
        with span("pipeline.run", registry=self.registry, scheme=self.scheme):
            return self._run(a, b, injector, auto_correct)

    def _run(
        self,
        a: np.ndarray,
        b: np.ndarray,
        injector: FaultInjector | None,
        auto_correct: bool,
    ) -> PipelineResult:
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        bs = self.block_size
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError(f"incompatible operands: {a.shape} x {b.shape}")
        if a.shape[0] % bs or a.shape[1] % bs or b.shape[1] % bs:
            raise ShapeError(
                f"operand dimensions {a.shape} x {b.shape} must be multiples "
                f"of the block size {bs} (pad first)"
            )
        sim = self.sim
        row_layout = PartitionedLayout(data_rows=a.shape[0], block_size=bs)
        col_layout = PartitionedLayout(data_rows=b.shape[1], block_size=bs)
        n = a.shape[1]
        inner_blocks = n // bs

        d_a = sim.upload(a)
        d_b = sim.upload(b)
        d_a_cc = sim.alloc((row_layout.encoded_rows, n))
        d_b_rc = sim.alloc((n, col_layout.encoded_rows))

        with span("pipeline.encode", registry=self.registry):
            provider, upload_seconds = self._encode_and_prepare(
                d_a, d_b, d_a_cc, d_b_rc, row_layout, col_layout, n, inner_blocks
            )

        # Matrix multiplication (stream "compute"), overlapped with the
        # top-p reduction which _encode_and_prepare put on stream "reduce".
        d_c = sim.alloc((row_layout.encoded_rows, col_layout.encoded_rows))
        if self.matmul_kernel == "tiled":
            matmul = RegisterTiledMatmulKernel(
                d_a_cc,
                d_b_rc,
                d_c,
                bm=row_layout.stride,
                bn=col_layout.stride,
                bk=8,
                rx=_tile_divisor(row_layout.stride),
                ry=_tile_divisor(col_layout.stride),
                injector=injector,
            )
        else:
            matmul = BlockMatmulKernel(
                d_a_cc,
                d_b_rc,
                d_c,
                tile_rows=row_layout.stride,
                tile_cols=col_layout.stride,
                injector=injector,
            )
        with span("pipeline.multiply", registry=self.registry,
                  kernel=self.matmul_kernel):
            if injector is not None:
                config = matmul.launch_config()
                injector.resolve(
                    sim.scheduler.assign(config),
                    (row_layout.stride, col_layout.stride),
                )
            sim.launch(matmul, stream="compute")

        # Checking kernel (Algorithm 2).
        with span("pipeline.check", registry=self.registry):
            d_col_disc = sim.alloc((row_layout.num_blocks, col_layout.encoded_rows))
            d_col_eps = sim.alloc((row_layout.num_blocks, col_layout.encoded_rows))
            d_row_disc = sim.alloc((row_layout.encoded_rows, col_layout.num_blocks))
            d_row_eps = sim.alloc((row_layout.encoded_rows, col_layout.num_blocks))
            check = CheckKernel(
                d_c,
                row_layout,
                col_layout,
                provider,
                d_col_disc,
                d_col_eps,
                d_row_disc,
                d_row_eps,
            )
            sim.launch(check, stream="compute")

            report = build_report(
                sim.download(d_col_disc),
                sim.download(d_col_eps),
                sim.download(d_row_disc),
                sim.download(d_row_eps),
                row_layout,
                col_layout,
            )

        corrected_blocks: tuple[tuple[int, int], ...] = ()
        if auto_correct and report.located_errors:
            with span("pipeline.correct", registry=self.registry):
                d_status = sim.alloc(
                    (row_layout.num_blocks, col_layout.num_blocks)
                )
                sim.launch(
                    CorrectionKernel(
                        d_c, report.located_errors, row_layout, col_layout,
                        d_status
                    ),
                    stream="compute",
                )
                status = sim.download(d_status)
                corrected_blocks = tuple(
                    (int(i), int(j)) for i, j in np.argwhere(status == 1.0)
                )
                sim.launch(check, stream="compute")
                report = build_report(
                    sim.download(d_col_disc),
                    sim.download(d_col_eps),
                    sim.download(d_row_disc),
                    sim.download(d_row_eps),
                    row_layout,
                    col_layout,
                )

        modelled = sim.concurrent_wall_seconds("compute", "reduce") + upload_seconds
        return PipelineResult(
            c_fc=sim.download(d_c),
            report=report,
            row_layout=row_layout,
            col_layout=col_layout,
            provider=provider,
            modelled_seconds=modelled,
            corrected_blocks=corrected_blocks,
        )

    # ------------------------------------------------------------------
    def _encode_and_prepare(
        self,
        d_a,
        d_b,
        d_a_cc,
        d_b_rc,
        row_layout: PartitionedLayout,
        col_layout: PartitionedLayout,
        n: int,
        inner_blocks: int,
    ):
        """Run the scheme-specific preprocessing kernels; build the provider."""
        sim = self.sim
        if self.scheme == "aabft":
            d_av = sim.alloc((row_layout.encoded_rows, inner_blocks, self.p))
            d_ai = sim.alloc((row_layout.encoded_rows, inner_blocks, self.p))
            d_bv = sim.alloc((col_layout.encoded_rows, inner_blocks, self.p))
            d_bi = sim.alloc((col_layout.encoded_rows, inner_blocks, self.p))
            sim.launch(
                EncodeColumnChecksumsKernel(
                    d_a, d_a_cc, d_av, d_ai, row_layout, self.p
                ),
                stream="compute",
            )
            sim.launch(
                EncodeRowChecksumsKernel(d_b, d_b_rc, d_bv, d_bi, col_layout, self.p),
                stream="compute",
            )
            d_rav = sim.alloc((row_layout.encoded_rows, self.p))
            d_rai = sim.alloc((row_layout.encoded_rows, self.p))
            d_rbv = sim.alloc((col_layout.encoded_rows, self.p))
            d_rbi = sim.alloc((col_layout.encoded_rows, self.p))
            # The reductions overlap the matmul on the real device: put
            # them on their own stream.
            sim.launch(TopPReduceKernel(d_av, d_ai, d_rav, d_rai), stream="reduce")
            sim.launch(TopPReduceKernel(d_bv, d_bi, d_rbv, d_rbi), stream="reduce")
            row_tops = [
                TopP(values=v, indices=i.astype(np.int64))
                for v, i in zip(sim.download(d_rav), sim.download(d_rai))
            ]
            col_tops = [
                TopP(values=v, indices=i.astype(np.int64))
                for v, i in zip(sim.download(d_rbv), sim.download(d_rbi))
            ]
            provider = AABFTEpsilonProvider(
                scheme=ProbabilisticBound(omega=self.omega, fma=self.fma),
                row_tops=row_tops,
                col_tops=col_tops,
                row_layout=row_layout,
                col_layout=col_layout,
                inner_dim=n,
            )
            return provider, 0.0

        if self.scheme == "sea":
            self._encode_plain(d_a, d_b, d_a_cc, d_b_rc, row_layout, col_layout)
            d_an = sim.alloc((row_layout.encoded_rows,))
            d_bn = sim.alloc((col_layout.encoded_rows,))
            sim.launch(RowNormKernel(d_a_cc, d_an), stream="compute")
            sim.launch(ColumnNormKernel(d_b_rc, d_bn), stream="compute")
            provider = SEAEpsilonProvider(
                scheme=SEABound(),
                a_row_norms=sim.download(d_an),
                b_col_norms=sim.download(d_bn),
                row_layout=row_layout,
                col_layout=col_layout,
                inner_dim=n,
            )
            return provider, 0.0

        # fixed
        self._encode_plain(d_a, d_b, d_a_cc, d_b_rc, row_layout, col_layout)
        return ConstantEpsilonProvider(float(self.fixed_epsilon)), 0.0

    def _encode_plain(
        self, d_a, d_b, d_a_cc, d_b_rc, row_layout, col_layout
    ) -> None:
        """Checksum encoding without top-p tracking (SEA / fixed schemes).

        Reuses the encoding kernels with ``p = 1`` into throwaway candidate
        buffers; the extra max-search work is negligible and the timing
        model only sees the streaming adds either way.
        """
        sim = self.sim
        inner_blocks = d_a.shape[1] // row_layout.block_size
        d_av = sim.alloc((row_layout.encoded_rows, inner_blocks, 1))
        d_ai = sim.alloc((row_layout.encoded_rows, inner_blocks, 1))
        d_bv = sim.alloc((col_layout.encoded_rows, inner_blocks, 1))
        d_bi = sim.alloc((col_layout.encoded_rows, inner_blocks, 1))
        sim.launch(
            EncodeColumnChecksumsKernel(d_a, d_a_cc, d_av, d_ai, row_layout, 1),
            stream="compute",
        )
        sim.launch(
            EncodeRowChecksumsKernel(d_b, d_b_rc, d_bv, d_bi, col_layout, 1),
            stream="compute",
        )
