"""Partitioned weighted checksums: block-granular location, column-side only.

Combines the two encodings this library implements:

* the paper's **partitioned** layout (Section II) — per-``BS``-row-block
  checksums, matching GPU thread-block granularity;
* **weighted** checksums (Jou/Abraham) — a second, weighted checksum row
  whose discrepancy ratio reveals the erroneous row.

Every block-row of ``A`` carries *two* extra rows (plain + weighted block
checksums), so each result block can locate a single error to an exact
``(row, column)`` position from column-side encoding alone — no row
checksums on ``B``, no transposed pass — with the weights running only
``1..BS`` (numerically gentler than global weights ``1..m``).  All
tolerances come from the same autonomous machinery: the two checksum rows
per block are ordinary tracked rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.base import BoundContext, BoundScheme
from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.upper_bound import determine_upper_bound, top_p_of_columns, top_p_of_rows
from ..errors import CorrectionError, EncodingError, ShapeError
from .weighted import linear_weights

__all__ = [
    "PartitionedWeightedLayout",
    "encode_partitioned_weighted_columns",
    "PartitionedWeightedChecker",
    "BlockWeightedFinding",
    "PartitionedWeightedResult",
    "partitioned_weighted_matmul",
]


@dataclass(frozen=True)
class PartitionedWeightedLayout:
    """Index arithmetic for the [BS data | plain cs | weighted cs] layout."""

    data_rows: int
    block_size: int

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise EncodingError(f"block size must be >= 1, got {self.block_size}")
        if self.data_rows < 1 or self.data_rows % self.block_size:
            raise EncodingError(
                f"{self.data_rows} data rows not divisible by block size "
                f"{self.block_size}"
            )

    @property
    def num_blocks(self) -> int:
        return self.data_rows // self.block_size

    @property
    def stride(self) -> int:
        return self.block_size + 2

    @property
    def encoded_rows(self) -> int:
        return self.num_blocks * self.stride

    def data_indices(self, block: int) -> np.ndarray:
        self._check(block)
        start = block * self.stride
        return np.arange(start, start + self.block_size)

    def plain_index(self, block: int) -> int:
        self._check(block)
        return block * self.stride + self.block_size

    def weighted_index(self, block: int) -> int:
        self._check(block)
        return block * self.stride + self.block_size + 1

    def all_data_indices(self) -> np.ndarray:
        return np.concatenate(
            [self.data_indices(b) for b in range(self.num_blocks)]
        )

    def _check(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range 0..{self.num_blocks - 1}")


def encode_partitioned_weighted_columns(a: np.ndarray, block_size: int):
    """Encode ``A`` with per-block plain and weighted column-checksum rows."""
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
    layout = PartitionedWeightedLayout(data_rows=a.shape[0], block_size=block_size)
    w = linear_weights(block_size)
    out = np.empty((layout.encoded_rows, a.shape[1]))
    for blk in range(layout.num_blocks):
        rows = slice(blk * block_size, (blk + 1) * block_size)
        out[layout.data_indices(blk), :] = a[rows, :]
        out[layout.plain_index(blk), :] = a[rows, :].sum(axis=0)
        out[layout.weighted_index(blk), :] = w @ a[rows, :]
    return out, layout


@dataclass(frozen=True)
class BlockWeightedFinding:
    """One flagged (block-row, column) comparison with its located element."""

    block_row: int
    column: int
    plain_discrepancy: float
    weighted_discrepancy: float
    plain_epsilon: float
    weighted_epsilon: float
    located_row: int | None  # *global* data-row index when the ratio resolves


@dataclass
class PartitionedWeightedResult:
    """Outcome of a partitioned weighted-checksum multiplication."""

    c: np.ndarray
    c_wc: np.ndarray
    layout: PartitionedWeightedLayout
    findings: list[BlockWeightedFinding]

    @property
    def detected(self) -> bool:
        return bool(self.findings)

    def correct(self) -> np.ndarray:
        """Correct one located single error; returns the fixed data matrix."""
        if not self.findings:
            raise CorrectionError("no findings to correct")
        if len(self.findings) > 1:
            raise CorrectionError(
                f"{len(self.findings)} comparisons flagged; single-error "
                "correction requires exactly one"
            )
        f = self.findings[0]
        if f.located_row is None:
            raise CorrectionError(
                f"block {f.block_row}, column {f.column}: ratio does not "
                "resolve a single row"
            )
        fixed = self.c.copy()
        fixed[f.located_row, f.column] -= f.plain_discrepancy
        return fixed


class PartitionedWeightedChecker:
    """Checks products of one prepared (A_wc, B) pair, block by block."""

    def __init__(
        self,
        a_wc: np.ndarray,
        layout: PartitionedWeightedLayout,
        b: np.ndarray,
        scheme: BoundScheme | None = None,
        p: int = 2,
        ratio_slack: float = 0.25,
    ) -> None:
        a_wc = np.asarray(a_wc, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a_wc.shape != (layout.encoded_rows, b.shape[0]):
            raise ShapeError(
                f"encoded operand {a_wc.shape} does not match layout/inner dim"
            )
        self.layout = layout
        self.weights = linear_weights(layout.block_size)
        self.scheme = scheme or ProbabilisticBound()
        self.ratio_slack = ratio_slack
        self.n = a_wc.shape[1]
        self._row_tops = top_p_of_rows(a_wc, min(p, self.n))
        self._col_tops = top_p_of_columns(b, min(p, b.shape[0]))

    def _epsilon(self, encoded_row: int, col: int) -> float:
        return self.scheme.epsilon(
            BoundContext(
                n=self.n,
                m=self.layout.block_size,
                upper_bound=determine_upper_bound(
                    self._row_tops[encoded_row], self._col_tops[col]
                ),
            )
        )

    def check(self, c_wc: np.ndarray) -> PartitionedWeightedResult:
        """Check a (possibly corrupted) product of the prepared operands."""
        c_wc = np.asarray(c_wc, dtype=np.float64)
        layout = self.layout
        if c_wc.shape[0] != layout.encoded_rows:
            raise ShapeError(
                f"product must have {layout.encoded_rows} rows, got {c_wc.shape[0]}"
            )
        findings: list[BlockWeightedFinding] = []
        for blk in range(layout.num_blocks):
            data = c_wc[layout.data_indices(blk), :]
            d_plain = data.sum(axis=0) - c_wc[layout.plain_index(blk), :]
            d_weighted = self.weights @ data - c_wc[layout.weighted_index(blk), :]
            for j in range(c_wc.shape[1]):
                eps_p = self._epsilon(layout.plain_index(blk), j)
                eps_w = self._epsilon(layout.weighted_index(blk), j)
                p_hit = abs(d_plain[j]) > eps_p or not np.isfinite(d_plain[j])
                w_hit = abs(d_weighted[j]) > eps_w or not np.isfinite(d_weighted[j])
                if not (p_hit or w_hit):
                    continue
                located: int | None = None
                if (
                    p_hit
                    and np.isfinite(d_plain[j])
                    and np.isfinite(d_weighted[j])
                    and d_plain[j] != 0.0
                ):
                    ratio = d_weighted[j] / d_plain[j]
                    cand = int(round(ratio))
                    if (
                        1 <= cand <= layout.block_size
                        and abs(ratio - cand) < self.ratio_slack
                    ):
                        located = blk * layout.block_size + (cand - 1)
                findings.append(
                    BlockWeightedFinding(
                        block_row=blk,
                        column=j,
                        plain_discrepancy=float(d_plain[j]),
                        weighted_discrepancy=float(d_weighted[j]),
                        plain_epsilon=eps_p,
                        weighted_epsilon=eps_w,
                        located_row=located,
                    )
                )
        data_rows = layout.all_data_indices()
        return PartitionedWeightedResult(
            c=np.ascontiguousarray(c_wc[data_rows, :]),
            c_wc=c_wc,
            layout=layout,
            findings=findings,
        )


def partitioned_weighted_matmul(
    a: np.ndarray,
    b: np.ndarray,
    block_size: int = 64,
    p: int = 2,
    omega: float = 3.0,
) -> tuple[PartitionedWeightedResult, PartitionedWeightedChecker]:
    """Protected multiplication with per-block plain + weighted checksums.

    Returns the check result and the reusable checker.  Errors are located
    to exact positions from column-side encoding alone, with block-local
    weights (``1..BS``).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"incompatible operands: {a.shape} x {b.shape}")
    a_wc, layout = encode_partitioned_weighted_columns(a, block_size)
    checker = PartitionedWeightedChecker(
        a_wc, layout, b, scheme=ProbabilisticBound(omega=omega), p=p
    )
    return checker.check(a_wc @ b), checker
