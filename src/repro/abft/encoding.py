"""Checksum encoding for ABFT matrix multiplication (paper Section II).

Two encodings are provided:

* **Full encoding** (Huang/Abraham): one checksum row appended to ``A``
  (column checksums, Eq. 1) and one checksum column appended to ``B`` (row
  checksums, Eq. 2).  Their product is a full-checksum matrix (Eq. 3).

* **Partitioned encoding** (Rexford/Jha, used by A-ABFT): ``A`` and ``B``
  are subdivided into ``BS x BS`` sub-matrices; every block-row of ``A``
  gets a checksum row and every block-column of ``B`` a checksum column.
  The encoded matrices interleave data and checksums, so a single ordinary
  matrix multiplication of the encoded operands yields all full-checksum
  result blocks at once — exactly what the block-based GPU kernels compute.

Layout of the partitioned encoding (``BS = 2`` shown)::

    A (4 x n)            A_cc (6 x n)
    a a a a              a a a a   <- block-row 0 data
    a a a a              a a a a
    b b b b              s s s s   <- checksums of block-row 0
    b b b b              b b b b   <- block-row 1 data
                         b b b b
                         s s s s   <- checksums of block-row 1

Helper predicates/indices make it easy to address data vs. checksum rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EncodingError, ShapeError

__all__ = [
    "encode_column_checksums",
    "encode_row_checksums",
    "encode_full",
    "PartitionedLayout",
    "encode_partitioned_columns",
    "encode_partitioned_rows",
    "encode_partitioned_columns_reference",
    "encode_partitioned_rows_reference",
    "pad_to_block_multiple",
    "strip_encoding",
    "strip_data_rows",
    "strip_data_columns",
]


def encode_column_checksums(a: np.ndarray) -> np.ndarray:
    """Append the column-checksum row (Eq. 1): returns ``(m+1) x n``."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
    return np.vstack([a, a.sum(axis=0, keepdims=True)])


def encode_row_checksums(b: np.ndarray) -> np.ndarray:
    """Append the row-checksum column (Eq. 2): returns ``n x (q+1)``."""
    b = np.asarray(b)
    if b.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {b.shape}")
    return np.hstack([b, b.sum(axis=1, keepdims=True)])


def encode_full(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode an operand pair with the unpartitioned Huang/Abraham scheme."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[1] != b.shape[0]:
        raise ShapeError(
            f"inner dimensions disagree: A is {a.shape}, B is {b.shape}"
        )
    return encode_column_checksums(a), encode_row_checksums(b)


@dataclass(frozen=True)
class PartitionedLayout:
    """Index arithmetic for the interleaved partitioned encoding.

    Parameters
    ----------
    data_rows:
        Number of data rows of the *un-encoded* matrix along the encoded
        axis (``m`` for ``A``'s rows, ``q`` for ``B``'s columns).
    block_size:
        The encoding block size ``BS``.
    """

    data_rows: int
    block_size: int

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise EncodingError(f"block size must be >= 1, got {self.block_size}")
        if self.data_rows < 1:
            raise EncodingError(f"need at least one data row, got {self.data_rows}")
        if self.data_rows % self.block_size != 0:
            raise EncodingError(
                f"{self.data_rows} data rows not divisible by block size "
                f"{self.block_size}; pad first (see pad_to_block_multiple)"
            )

    @property
    def num_blocks(self) -> int:
        """Number of ``BS``-row blocks along the encoded axis."""
        return self.data_rows // self.block_size

    @property
    def encoded_rows(self) -> int:
        """Total rows of the encoded matrix: ``data_rows + num_blocks``."""
        return self.data_rows + self.num_blocks

    @property
    def stride(self) -> int:
        """Rows per encoded block: ``BS`` data rows + 1 checksum row."""
        return self.block_size + 1

    def checksum_index(self, block: int) -> int:
        """Encoded index of the checksum row of ``block``."""
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range 0..{self.num_blocks - 1}")
        return block * self.stride + self.block_size

    def data_indices(self, block: int) -> np.ndarray:
        """Encoded indices of the data rows of ``block``."""
        if not 0 <= block < self.num_blocks:
            raise IndexError(f"block {block} out of range 0..{self.num_blocks - 1}")
        start = block * self.stride
        return np.arange(start, start + self.block_size)

    def all_checksum_indices(self) -> np.ndarray:
        """Encoded indices of every checksum row."""
        return np.arange(self.num_blocks) * self.stride + self.block_size

    def all_data_indices(self) -> np.ndarray:
        """Encoded indices of every data row, in original order."""
        mask = np.ones(self.encoded_rows, dtype=bool)
        mask[self.all_checksum_indices()] = False
        return np.flatnonzero(mask)

    def is_checksum_index(self, encoded_index: int) -> bool:
        """Whether an encoded row index addresses a checksum row."""
        if not 0 <= encoded_index < self.encoded_rows:
            raise IndexError(
                f"encoded index {encoded_index} out of range 0..{self.encoded_rows - 1}"
            )
        return encoded_index % self.stride == self.block_size

    def to_data_index(self, encoded_index: int) -> int:
        """Original (un-encoded) row index of an encoded data row."""
        if self.is_checksum_index(encoded_index):
            raise EncodingError(
                f"encoded index {encoded_index} is a checksum row"
            )
        block, offset = divmod(encoded_index, self.stride)
        return block * self.block_size + offset

    def to_encoded_index(self, data_index: int) -> int:
        """Encoded row index of an original data row."""
        if not 0 <= data_index < self.data_rows:
            raise IndexError(
                f"data index {data_index} out of range 0..{self.data_rows - 1}"
            )
        block, offset = divmod(data_index, self.block_size)
        return block * self.stride + offset


def encode_partitioned_columns(
    a: np.ndarray, block_size: int, *, out: np.ndarray | None = None
) -> tuple[np.ndarray, PartitionedLayout]:
    """Partitioned column-checksum encoding of ``A`` (checksum rows).

    Every ``BS``-row block is followed by the column sums of that block.
    Computed with one block-reshaped copy and one block-reshaped reduction
    over the whole matrix; bitwise identical to
    :func:`encode_partitioned_columns_reference` (the numpy accumulation
    order per checksum element is the same sequential walk over the block's
    rows).  ``out``, when given, receives the encoding in place — it must
    be a C-contiguous ``(encoded_rows, n)`` array of ``a``'s dtype (the
    engine passes a pooled workspace here).
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
    layout = PartitionedLayout(data_rows=a.shape[0], block_size=block_size)
    n = a.shape[1]
    if out is None:
        out = np.empty((layout.encoded_rows, n), dtype=a.dtype)
    elif out.shape != (layout.encoded_rows, n) or out.dtype != a.dtype:
        raise ShapeError(
            f"out must be {(layout.encoded_rows, n)} of {a.dtype}, got "
            f"{out.shape} of {out.dtype}"
        )
    view = out.reshape(layout.num_blocks, layout.stride, n)
    blocks = a.reshape(layout.num_blocks, block_size, n)
    view[:, :block_size, :] = blocks
    np.sum(blocks, axis=1, out=view[:, block_size, :])
    return out, layout


def encode_partitioned_rows(
    b: np.ndarray, block_size: int, *, out: np.ndarray | None = None
) -> tuple[np.ndarray, PartitionedLayout]:
    """Partitioned row-checksum encoding of ``B`` (checksum columns).

    Every ``BS``-column block is followed by the row sums of that block.
    The returned layout indexes the encoded *columns*.  Computed directly
    in the row dimension of ``b`` — no transpose round-trip — and bitwise
    identical to :func:`encode_partitioned_rows_reference`.
    """
    b = np.asarray(b)
    if b.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {b.shape}")
    layout = PartitionedLayout(data_rows=b.shape[1], block_size=block_size)
    rows = b.shape[0]
    if out is None:
        out = np.empty((rows, layout.encoded_rows), dtype=b.dtype)
    elif out.shape != (rows, layout.encoded_rows) or out.dtype != b.dtype:
        raise ShapeError(
            f"out must be {(rows, layout.encoded_rows)} of {b.dtype}, got "
            f"{out.shape} of {out.dtype}"
        )
    view = out.reshape(rows, layout.num_blocks, layout.stride)
    blocks = b.reshape(rows, layout.num_blocks, block_size)
    view[:, :, :block_size] = blocks
    np.sum(blocks, axis=2, out=view[:, :, block_size])
    return out, layout


def encode_partitioned_columns_reference(
    a: np.ndarray, block_size: int
) -> tuple[np.ndarray, PartitionedLayout]:
    """Per-block loop encoding of ``A`` — the oracle for the fast kernel."""
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
    layout = PartitionedLayout(data_rows=a.shape[0], block_size=block_size)
    out = np.empty((layout.encoded_rows, a.shape[1]), dtype=a.dtype)
    for blk in range(layout.num_blocks):
        rows = slice(blk * block_size, (blk + 1) * block_size)
        out[layout.data_indices(blk), :] = a[rows, :]
        out[layout.checksum_index(blk), :] = a[rows, :].sum(axis=0)
    return out, layout


def encode_partitioned_rows_reference(
    b: np.ndarray, block_size: int
) -> tuple[np.ndarray, PartitionedLayout]:
    """Transpose round-trip encoding of ``B`` — the oracle for the fast kernel."""
    b = np.asarray(b)
    if b.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {b.shape}")
    encoded_t, layout = encode_partitioned_columns_reference(b.T, block_size)
    return np.ascontiguousarray(encoded_t.T), layout


def strip_encoding(
    c_fc: np.ndarray,
    row_layout: PartitionedLayout,
    col_layout: PartitionedLayout,
    rows_added: int = 0,
    cols_added: int = 0,
) -> np.ndarray:
    """Extract the data result from a full-checksum matrix.

    Removes the checksum rows/columns addressed by the layouts and strips
    the zero padding that :func:`pad_to_block_multiple` appended, returning
    what an unprotected ``a @ b`` would have produced (contiguous copy).
    """
    c_fc = np.asarray(c_fc)
    expected = (row_layout.encoded_rows, col_layout.encoded_rows)
    if c_fc.shape == expected:
        # Fast path: the 4-D block view gathers every data element with two
        # strided slices instead of a fancy-index pass per axis (~13x).
        view = c_fc.reshape(
            row_layout.num_blocks, row_layout.stride,
            col_layout.num_blocks, col_layout.stride,
        )[:, : row_layout.block_size, :, : col_layout.block_size]
        data = np.empty(
            (row_layout.data_rows, col_layout.data_rows), dtype=c_fc.dtype
        )
        data.reshape(view.shape)[...] = view
    else:
        data = c_fc[
            np.ix_(row_layout.all_data_indices(), col_layout.all_data_indices())
        ]
    rows = data.shape[0] - rows_added
    cols = data.shape[1] - cols_added
    return np.ascontiguousarray(data[:rows, :cols])


def strip_data_rows(
    encoded: np.ndarray, layout: PartitionedLayout
) -> np.ndarray:
    """The data rows of a column-checksum encoded matrix, in original order.

    The block-view equivalent of ``encoded[layout.all_data_indices()]``
    without the fancy-index gather (contiguous copy).
    """
    encoded = np.asarray(encoded)
    if encoded.shape[0] != layout.encoded_rows:
        raise ShapeError(
            f"encoded matrix has {encoded.shape[0]} rows, layout expects "
            f"{layout.encoded_rows}"
        )
    bs = layout.block_size
    cols = encoded.shape[1]
    view = encoded.reshape(layout.num_blocks, layout.stride, cols)[:, :bs, :]
    out = np.empty((layout.data_rows, cols), dtype=encoded.dtype)
    out.reshape(view.shape)[...] = view
    return out


def strip_data_columns(
    encoded: np.ndarray, layout: PartitionedLayout
) -> np.ndarray:
    """The data columns of a row-checksum encoded matrix, in original order.

    The block-view equivalent of ``encoded[:, layout.all_data_indices()]``
    without the fancy-index gather (contiguous copy).
    """
    encoded = np.asarray(encoded)
    if encoded.shape[1] != layout.encoded_rows:
        raise ShapeError(
            f"encoded matrix has {encoded.shape[1]} columns, layout expects "
            f"{layout.encoded_rows}"
        )
    bs = layout.block_size
    rows = encoded.shape[0]
    view = encoded.reshape(rows, layout.num_blocks, layout.stride)[:, :, :bs]
    out = np.empty((rows, layout.data_rows), dtype=encoded.dtype)
    out.reshape(view.shape)[...] = view
    return out


def pad_to_block_multiple(
    matrix: np.ndarray, block_size: int, axis: int | tuple[int, ...] = (0, 1)
) -> tuple[np.ndarray, tuple[int, int]]:
    """Zero-pad ``matrix`` so the chosen axes are multiples of ``block_size``.

    Returns the padded matrix and the ``(rows_added, cols_added)`` amounts so
    callers can strip the padding from results.  Zero padding is exact for
    checksum arithmetic: padded rows/columns contribute nothing.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {matrix.shape}")
    axes = (axis,) if isinstance(axis, int) else tuple(axis)
    pad_rows = pad_cols = 0
    if 0 in axes:
        pad_rows = (-matrix.shape[0]) % block_size
    if 1 in axes:
        pad_cols = (-matrix.shape[1]) % block_size
    if pad_rows == 0 and pad_cols == 0:
        return matrix, (0, 0)
    return (
        np.pad(matrix, ((0, pad_rows), (0, pad_cols)), mode="constant"),
        (pad_rows, pad_cols),
    )
