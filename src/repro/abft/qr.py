"""ABFT-protected QR factorisation with autonomous rounding-error bounds.

Reddy/Banerjee (the paper's reference [12]) protect orthogonal
factorisations with checksums.  The invariant: augment ``A`` with the
row-sum column ``c = A.e``.  Householder QR applies orthogonal
transformations from the *left*; for any left transform ``H``,
``H [A | A e] = [H A | (H A) e]`` — the augmented column remains the exact
row sum of the transformed matrix.  After the factorisation the upper
factor can therefore be checked row by row::

    | c'_i - sum_j r_{i,j} |  <  eps_i

with the same probabilistic tolerance structure as the multiplication: row
``i`` absorbs one Householder update per elimination step (each update is a
dot product + AXPY over the remaining columns), and the update scale is
tracked live (autonomy).

As with :mod:`repro.abft.lu`, value errors in the active matrix (which
carries ``R`` and the checksum column) are detected; errors confined to the
stored Householder vectors are outside this invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.base import BoundContext, BoundScheme
from ..bounds.probabilistic import ProbabilisticBound
from ..errors import ShapeError

__all__ = ["QrReport", "ProtectedQrResult", "protected_qr", "plain_qr"]


@dataclass
class QrReport:
    """Checksum-invariant verification of one QR factorisation."""

    discrepancies: np.ndarray
    epsilons: np.ndarray
    failed_rows: list[int]

    @property
    def error_detected(self) -> bool:
        return bool(self.failed_rows)


@dataclass
class ProtectedQrResult:
    """Factors plus the ABFT report."""

    q: np.ndarray
    r: np.ndarray
    report: QrReport
    update_scale: float

    @property
    def detected(self) -> bool:
        return self.report.error_detected


def plain_qr(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unprotected Householder QR (reference implementation)."""
    result = protected_qr(a, check=False)
    return result.q, result.r


def protected_qr(
    a: np.ndarray,
    omega: float = 3.0,
    scheme: BoundScheme | None = None,
    check: bool = True,
    fault_hook=None,
) -> ProtectedQrResult:
    """Checksum-protected Householder QR of an ``m x n`` matrix, m >= n.

    Parameters
    ----------
    a:
        The matrix to factorise.
    omega:
        Confidence scale of the probabilistic bound.
    scheme:
        Override the bound scheme (must consume ``upper_bound``).
    check:
        Skip the verification when ``False``.
    fault_hook:
        Optional ``(k, matrix) -> None`` called after Householder step
        ``k`` with the live augmented working matrix (fault-injection
        surface; mutate in place).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"QR requires a matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"QR here requires m >= n, got {a.shape}")
    if n == 0:
        raise ShapeError("empty matrix")

    # Row-sum checksum augmentation; Householder transforms preserve it.
    work = np.hstack([a, a.sum(axis=1, keepdims=True)])
    q = np.eye(m)
    y_track = float(np.max(np.abs(work))) if work.size else 0.0

    for k in range(min(n, m - 1)):
        x = work[k:, k]
        norm_x = float(np.linalg.norm(x))
        if norm_x == 0.0:
            continue
        v = x.copy()
        v[0] += np.sign(x[0]) * norm_x if x[0] != 0.0 else norm_x
        v_norm = float(np.linalg.norm(v))
        if v_norm == 0.0:
            continue
        v /= v_norm
        # Apply H = I - 2 v v^T to the trailing panel (checksum col incl.).
        tail = work[k:, k:]
        coeffs = 2.0 * (v @ tail)
        y_track = max(
            y_track,
            float(np.max(np.abs(v))) * float(np.max(np.abs(coeffs)))
            if coeffs.size
            else 0.0,
        )
        tail -= np.outer(v, coeffs)
        work[k + 1 :, k] = 0.0
        # Accumulate Q (for callers that need it).
        q_tail = q[:, k:]
        q_tail -= np.outer(q_tail @ v, 2.0 * v)
        if fault_hook is not None:
            fault_hook(k, work)

    r = np.triu(work[:, :n])

    if not check:
        return ProtectedQrResult(
            q=q,
            r=r,
            report=QrReport(
                discrepancies=np.zeros(m), epsilons=np.zeros(m), failed_rows=[]
            ),
            update_scale=y_track,
        )

    bound_scheme = scheme or ProbabilisticBound(omega=omega)
    discrepancies = np.empty(m)
    epsilons = np.empty(m)
    failed: list[int] = []
    # Every row absorbed up to min(n, m-1) Householder updates, each a
    # 2-op (dot + AXPY) pass over the n surviving columns: the rounding
    # process has the shape of a (2n + n)-term inner product at the tracked
    # scale.  Use the conservative n + min(n, m) effective length.
    effective_n = n + min(n, m)
    for i in range(m):
        reference = float(r[i, :].sum()) if i < n else float(work[i, :n].sum())
        discrepancies[i] = abs(reference - work[i, n])
        epsilons[i] = bound_scheme.epsilon(
            BoundContext(n=effective_n, m=m, upper_bound=y_track)
        )
        if discrepancies[i] > epsilons[i] or not np.isfinite(discrepancies[i]):
            failed.append(i)

    return ProtectedQrResult(
        q=q,
        r=r,
        report=QrReport(
            discrepancies=discrepancies, epsilons=epsilons, failed_rows=failed
        ),
        update_scale=y_track,
    )
