"""ABFT-protected LU decomposition with autonomous rounding-error bounds.

ABFT for LU factorisation goes back to Huang/Abraham (the paper's reference
[10]): augment ``A`` with a row-sum checksum column ``c = A.e``.  Row
operations preserve the invariant "checksum column = row sum of the active
matrix" *exactly* in linear algebra, so after (or during) elimination every
row of the upper factor can be checked::

    | c'_i  -  sum_j u_{i,j} |  <  eps_i                       (cf. Eq. 6)

In floating point the invariant erodes by rounding, so — exactly as for the
matrix multiplication — the check needs rounding-error bounds.  This module
applies the paper's probabilistic machinery: row ``i`` of the factorisation
accumulates ``i`` multiply-subtract updates and the reference checksum sums
``n - i`` elements, a rounding process with the same structure as an
``n``-term inner product; the scale ``y`` (largest update product) is
tracked *during* elimination, keeping the scheme autonomous.

Scope mirrors the classical scheme: value errors in the active matrix
(which contains U and the evolving checksum column) are detected; errors
that only corrupt already-stored multipliers of ``L`` are outside the
invariant (they would be caught by the analogous column-checksum variant).
Elimination runs without pivoting — the standard setting for checksum LU,
suitable for diagonally dominant / positive definite systems; a singular or
badly conditioned pivot raises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.base import BoundContext, BoundScheme
from ..bounds.probabilistic import ProbabilisticBound
from ..errors import ReproError, ShapeError

__all__ = ["LuReport", "ProtectedLuResult", "protected_lu", "plain_lu"]


class SingularPivotError(ReproError):
    """Elimination hit a (near-)zero pivot; the scheme runs unpivoted."""


@dataclass
class LuReport:
    """Checksum-invariant verification of one factorisation.

    Attributes
    ----------
    discrepancies:
        Per-row ``|c'_i - sum_j u_{i,j}|``.
    epsilons:
        Per-row autonomous tolerances.
    failed_rows:
        Rows whose discrepancy exceeds the tolerance (or is non-finite).
    """

    discrepancies: np.ndarray
    epsilons: np.ndarray
    failed_rows: list[int]

    @property
    def error_detected(self) -> bool:
        return bool(self.failed_rows)


@dataclass
class ProtectedLuResult:
    """Factors plus the ABFT report."""

    l: np.ndarray
    u: np.ndarray
    report: LuReport
    #: The runtime-tracked scale of the elimination updates (autonomy).
    update_scale: float

    @property
    def detected(self) -> bool:
        return self.report.error_detected


def plain_lu(a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unprotected Doolittle LU without pivoting (reference implementation)."""
    result = protected_lu(a, check=False)
    return result.l, result.u


def protected_lu(
    a: np.ndarray,
    omega: float = 3.0,
    scheme: BoundScheme | None = None,
    pivot_rtol: float = 1e-12,
    check: bool = True,
    fault_hook=None,
) -> ProtectedLuResult:
    """Checksum-protected LU factorisation of a square matrix.

    Parameters
    ----------
    a:
        Square matrix; elimination runs without pivoting, so ``a`` should be
        diagonally dominant or otherwise safely factorable.
    omega:
        Confidence scale of the probabilistic bound.
    scheme:
        Override the bound scheme (must consume ``upper_bound``).
    pivot_rtol:
        A pivot below ``pivot_rtol * max|a|`` raises
        :class:`SingularPivotError`.
    check:
        Skip the checksum verification when ``False`` (plain LU).
    fault_hook:
        Optional callable ``(k, matrix) -> None`` invoked after elimination
        step ``k`` with the live augmented working matrix — the
        fault-injection surface used by the tests (mutate in place).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"LU requires a square matrix, got {a.shape}")
    n = a.shape[0]
    if n == 0:
        raise ShapeError("empty matrix")
    scale = float(np.max(np.abs(a)))
    if scale == 0.0:
        raise SingularPivotError("zero matrix")

    # Row-sum checksum augmentation (Huang/Abraham).
    work = np.hstack([a, a.sum(axis=1, keepdims=True)])
    lower = np.eye(n)
    y_track = float(np.max(np.abs(work)))

    for k in range(n):
        pivot = work[k, k]
        if abs(pivot) < pivot_rtol * scale:
            raise SingularPivotError(
                f"pivot {pivot:.3e} at step {k} below {pivot_rtol:g} * max|A|"
            )
        if k + 1 < n:
            mult = work[k + 1 :, k] / pivot
            lower[k + 1 :, k] = mult
            # Track the update scale autonomously: the largest product
            # magnitude any element absorbs this step.
            row_max = float(np.max(np.abs(work[k, k:])))
            if mult.size:
                y_track = max(y_track, float(np.max(np.abs(mult))) * row_max)
            work[k + 1 :, k:] -= np.outer(mult, work[k, k:])
            work[k + 1 :, k] = 0.0
        if fault_hook is not None:
            fault_hook(k, work)

    u = np.triu(work[:, :n])

    if not check:
        return ProtectedLuResult(
            l=lower,
            u=u,
            report=LuReport(
                discrepancies=np.zeros(n), epsilons=np.zeros(n), failed_rows=[]
            ),
            update_scale=y_track,
        )

    bound_scheme = scheme or ProbabilisticBound(omega=omega)
    discrepancies = np.empty(n)
    epsilons = np.empty(n)
    failed: list[int] = []
    for i in range(n):
        reference = float(u[i, i:].sum())
        discrepancies[i] = abs(reference - work[i, n])
        # Row i absorbed i multiply-subtract updates across n - i + 1
        # surviving entries plus the reference summation: an n-term
        # inner-product-shaped rounding process at scale y_track.
        epsilons[i] = bound_scheme.epsilon(
            BoundContext(n=n, m=n, upper_bound=y_track)
        )
        if discrepancies[i] > epsilons[i] or not np.isfinite(discrepancies[i]):
            failed.append(i)

    return ProtectedLuResult(
        l=lower,
        u=u,
        report=LuReport(
            discrepancies=discrepancies, epsilons=epsilons, failed_rows=failed
        ),
        update_scale=y_track,
    )
