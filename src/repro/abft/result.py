"""Result objects of protected multiplications and their shared surface.

Every protected-multiplication path in the library — the host path
(:mod:`repro.abft.multiply` / :class:`repro.engine.MatmulEngine`) and the
simulated GPU pipeline (:mod:`repro.abft.pipeline`) — returns an object with
the same read-only core: ``.c`` (the data result), ``.detected`` (whether
any checksum comparison failed) and ``.report`` (the full
:class:`~repro.abft.checking.CheckReport`).  :class:`ProtectedResult` names
that contract as a structural protocol, so callers can swap the host path
and the simulated pipeline without branching::

    def run_protected(mult) -> np.ndarray:
        result: ProtectedResult = mult()      # host or pipeline, same code
        if result.detected:
            raise RuntimeError(result.report.findings)
        return result.c
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .checking import CheckReport, EpsilonProvider
from .encoding import PartitionedLayout

__all__ = ["ProtectedResult", "AbftResult"]


@runtime_checkable
class ProtectedResult(Protocol):
    """Read-only surface shared by every protected-multiplication result.

    Both :class:`AbftResult` (host path) and
    :class:`~repro.abft.pipeline.PipelineResult` (simulated GPU pipeline)
    satisfy this protocol structurally; ``isinstance`` checks work because
    the protocol is runtime-checkable.
    """

    @property
    def c(self) -> np.ndarray:
        """The data result matrix (checksums and padding stripped)."""
        ...

    @property
    def detected(self) -> bool:
        """Whether the check flagged any comparison."""
        ...

    @property
    def report(self) -> CheckReport:
        """The checksum check report."""
        ...


@dataclass
class AbftResult:
    """Everything an ABFT-protected multiplication produced.

    Attributes
    ----------
    c:
        The data result matrix (checksums and padding stripped) — what an
        unprotected ``a @ b`` would have returned.
    c_fc:
        The raw full-checksum result (encoded coordinates).
    report:
        The checksum check report.
    row_layout / col_layout:
        Layouts of the encoded result (for error location / correction).
    provider:
        The epsilon provider used for the check (reusable for re-checks and
        correction verification).
    backend:
        The compute backend that executed the GEMM stage (``None`` for
        paths predating backend dispatch, e.g. fabricated results).
    backend_fallback:
        ``None`` when the selected backend served the call; otherwise the
        never-silent record of why execution fell back to ``numpy``
        (selection-time rejection or dispatch-time failure).
    fused:
        Whether the multiply+check ran through the fused online-ABFT tile
        loop (per-tile checks, early abort, tile-granular recompute)
        instead of the separate passes.
    fused_fallback:
        ``None`` when the requested fusion strategy ran; otherwise the
        never-silent record of why a fused request executed separately.
    """

    c: np.ndarray
    c_fc: np.ndarray
    report: CheckReport
    row_layout: PartitionedLayout
    col_layout: PartitionedLayout
    provider: EpsilonProvider
    backend: str | None = None
    backend_fallback: str | None = None
    fused: bool = False
    fused_fallback: str | None = None

    @property
    def detected(self) -> bool:
        """Whether the check flagged any comparison."""
        return self.report.error_detected
