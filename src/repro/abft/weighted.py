"""Weighted-checksum ABFT (Jou/Abraham) with autonomous A-ABFT bounds.

The paper's reference [11] (Jou & Abraham, "Fault-Tolerant Matrix Operations
on Multiple Processor Systems using Weighted Checksums") augments the plain
column checksum ``sum_i a_{i,j}`` with a *weighted* checksum
``sum_i w_i * a_{i,j}``.  A single error of magnitude ``delta`` in row ``i``
then shifts the plain discrepancy by ``delta`` and the weighted one by
``w_i * delta`` — the ratio reveals the row index, so errors can be located
and corrected from column-side encoding alone (no row checksums, no second
pass over ``B``).

This module combines that classical scheme with the paper's autonomous
bound determination: both checksum rows are ordinary rows of the encoded
operand, so the top-p/three-case machinery (Section IV-E) and the
probabilistic confidence interval (Section IV) supply their tolerances with
no extra theory.  The row-location ratio test carries its own integer-
closeness tolerance.

Weights are ``w_i = i + 1`` (linear weights; exact in binary floating point
for all practical row counts, so the weighted encoding itself adds no
unusual rounding behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bounds.base import BoundContext, BoundScheme
from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.upper_bound import determine_upper_bound, top_p_of_columns, top_p_of_rows
from ..errors import CorrectionError, ShapeError

__all__ = [
    "linear_weights",
    "encode_weighted_columns",
    "WeightedCheckOutcome",
    "WeightedAbftResult",
    "WeightedChecker",
    "weighted_abft_matmul",
]


def linear_weights(m: int) -> np.ndarray:
    """The weight vector ``w_i = i + 1`` for ``m`` data rows."""
    if m < 1:
        raise ValueError(f"need at least one row, got {m}")
    return np.arange(1.0, m + 1.0)


def encode_weighted_columns(a: np.ndarray, weights: np.ndarray | None = None):
    """Append plain and weighted column-checksum rows to ``A``.

    Returns the ``(m+2) x n`` encoded matrix and the weight vector.  Row
    ``m`` is the plain checksum, row ``m+1`` the weighted one.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got shape {a.shape}")
    m = a.shape[0]
    w = linear_weights(m) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != (m,):
        raise ShapeError(f"weights must have shape ({m},), got {w.shape}")
    return np.vstack([a, a.sum(axis=0), w @ a]), w


@dataclass(frozen=True)
class WeightedCheckOutcome:
    """One flagged column of the weighted-checksum product."""

    column: int
    plain_discrepancy: float
    weighted_discrepancy: float
    plain_epsilon: float
    weighted_epsilon: float
    located_row: int | None  # data-row index, when the ratio test succeeds


@dataclass
class WeightedAbftResult:
    """Outcome of a weighted-checksum protected multiplication."""

    c: np.ndarray
    c_wc: np.ndarray
    weights: np.ndarray
    outcomes: list[WeightedCheckOutcome]

    @property
    def detected(self) -> bool:
        return bool(self.outcomes)

    @property
    def flagged_columns(self) -> list[WeightedCheckOutcome]:
        return self.outcomes

    def correct(self) -> np.ndarray:
        """Correct a single located error and return the fixed data matrix.

        Raises
        ------
        CorrectionError
            If no error is flagged, several columns are flagged, or the
            ratio test could not resolve the row (e.g. multiple errors in
            one column).
        """
        if not self.outcomes:
            raise CorrectionError("no flagged columns to correct")
        if len(self.outcomes) > 1:
            raise CorrectionError(
                f"{len(self.outcomes)} columns flagged; weighted single-error "
                "correction handles exactly one"
            )
        outcome = self.outcomes[0]
        if outcome.located_row is None:
            raise CorrectionError(
                f"column {outcome.column}: the weighted/plain discrepancy "
                "ratio does not match any single row — not a correctable "
                "single error"
            )
        fixed = self.c.copy()
        fixed[outcome.located_row, outcome.column] -= outcome.plain_discrepancy
        return fixed


class WeightedChecker:
    """Checks weighted-checksum products of one prepared operand pair.

    Owns the runtime-determined bound data (top-p of the encoded rows of
    ``A`` and the columns of ``B``), so a corrupted product can be rechecked
    without re-deriving anything — the campaign/correction workflow.

    Parameters
    ----------
    a_wc:
        The weighted-encoded left operand (``(m+2) x n``).
    weights:
        The weight vector used in the encoding.
    b:
        The right operand.
    scheme:
        Bound scheme consuming ``BoundContext.upper_bound``; the
        probabilistic A-ABFT scheme by default.
    p:
        Tracked largest-absolute-value count.
    ratio_slack:
        Acceptance distance of the row-location ratio from an integer.
    """

    def __init__(
        self,
        a_wc: np.ndarray,
        weights: np.ndarray,
        b: np.ndarray,
        scheme: BoundScheme | None = None,
        p: int = 2,
        ratio_slack: float = 0.25,
    ) -> None:
        a_wc = np.asarray(a_wc, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        if a_wc.shape[1] != b.shape[0]:
            raise ShapeError(
                f"inner dimensions disagree: {a_wc.shape} x {b.shape}"
            )
        if not 0.0 < ratio_slack < 0.5:
            raise ValueError("ratio_slack must be in (0, 0.5)")
        self.m = a_wc.shape[0] - 2
        self.n = a_wc.shape[1]
        self.weights = np.asarray(weights, dtype=np.float64)
        self.scheme = scheme or ProbabilisticBound()
        self.ratio_slack = ratio_slack
        self._row_tops = top_p_of_rows(a_wc, min(p, self.n))
        self._col_tops = top_p_of_columns(b, min(p, b.shape[0]))

    def column_epsilons(self, j: int) -> tuple[float, float]:
        """(plain, weighted) tolerances for result column ``j``."""
        plain = self.scheme.epsilon(
            BoundContext(
                n=self.n,
                m=self.m,
                upper_bound=determine_upper_bound(
                    self._row_tops[self.m], self._col_tops[j]
                ),
            )
        )
        weighted = self.scheme.epsilon(
            BoundContext(
                n=self.n,
                m=self.m,
                upper_bound=determine_upper_bound(
                    self._row_tops[self.m + 1], self._col_tops[j]
                ),
            )
        )
        return plain, weighted

    def check(self, c_wc: np.ndarray) -> WeightedAbftResult:
        """Check a (possibly corrupted) weighted-checksum product."""
        c_wc = np.asarray(c_wc, dtype=np.float64)
        m = self.m
        if c_wc.shape[0] != m + 2:
            raise ShapeError(
                f"product must have {m + 2} rows, got {c_wc.shape[0]}"
            )
        data = c_wc[:m, :]
        ref_plain = data.sum(axis=0)
        ref_weighted = self.weights @ data

        outcomes: list[WeightedCheckOutcome] = []
        for j in range(c_wc.shape[1]):
            eps_plain, eps_weighted = self.column_epsilons(j)
            d_plain = float(ref_plain[j] - c_wc[m, j])
            d_weighted = float(ref_weighted[j] - c_wc[m + 1, j])

            plain_hit = abs(d_plain) > eps_plain or not np.isfinite(d_plain)
            weighted_hit = (
                abs(d_weighted) > eps_weighted or not np.isfinite(d_weighted)
            )
            if not (plain_hit or weighted_hit):
                continue
            located: int | None = None
            if (
                plain_hit
                and np.isfinite(d_plain)
                and np.isfinite(d_weighted)
                and d_plain != 0.0
            ):
                ratio = d_weighted / d_plain
                candidate = int(round(ratio))
                if 1 <= candidate <= m and abs(ratio - candidate) < self.ratio_slack:
                    located = candidate - 1
            outcomes.append(
                WeightedCheckOutcome(
                    column=j,
                    plain_discrepancy=d_plain,
                    weighted_discrepancy=d_weighted,
                    plain_epsilon=eps_plain,
                    weighted_epsilon=eps_weighted,
                    located_row=located,
                )
            )
        return WeightedAbftResult(
            c=np.ascontiguousarray(data),
            c_wc=c_wc,
            weights=self.weights,
            outcomes=outcomes,
        )


def weighted_abft_matmul(
    a: np.ndarray,
    b: np.ndarray,
    p: int = 2,
    omega: float = 3.0,
    fma: bool = False,
) -> tuple[WeightedAbftResult, WeightedChecker]:
    """Protected multiplication with plain + weighted column checksums.

    Returns the check result and the reusable checker (for rechecking a
    corrupted product or verifying a correction).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"incompatible operands: {a.shape} x {b.shape}")
    a_wc, w = encode_weighted_columns(a)
    checker = WeightedChecker(
        a_wc, w, b, scheme=ProbabilisticBound(omega=omega, fma=fma), p=p
    )
    return checker.check(a_wc @ b), checker
