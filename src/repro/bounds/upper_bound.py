"""Runtime determination of the upper bound ``y`` (paper Section IV-E).

The probabilistic model needs, for every checked element ``c_{i,j}``, an
upper bound ``y >= |a_{i,k} * b_{k,j}|`` on every intermediate product.  The
autonomous scheme pre-computes, during encoding, the ``p`` elements with the
largest absolute values (and their indices) of every row of ``A`` and every
column of ``B``.  At check time ``y`` is the **maximum of three cases**:

1. shared indices ``S = A_idx ∩ B_idx ≠ ∅``: candidate ``max_{s∈S} |a_s b_s|``
   — two large values actually meet;
2. the largest ``|a|`` pairs with some element outside ``B``'s top-p, which
   is at most ``min_{s∈B_idx} |b_s|``: candidate ``max|a| * min_top|b|``;
3. symmetrically ``max|b| * min_top|a|``.

Cases 2 and 3 are always valid bounds for products whose index is missing
from one of the top-p sets, so the overall ``y`` is the maximum of all
candidates.  Larger ``p`` tightens cases 2/3 (the ``min`` shrinks) at higher
pre-processing cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TopP",
    "top_p_of_rows",
    "top_p_of_columns",
    "top_p_arrays",
    "determine_upper_bound",
    "upper_bound_grid_arrays",
    "exact_upper_bound",
]


@dataclass(frozen=True)
class TopP:
    """The ``p`` largest absolute values (descending) and their indices
    for one vector.

    ``values[0]`` is the global maximum of the vector's absolute values;
    ``values[-1]`` is the ``p``-th largest (the ``min`` of cases 2/3).
    """

    values: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != self.indices.shape:
            raise ValueError("values and indices must have matching shapes")
        if self.values.ndim != 1 or self.values.size == 0:
            raise ValueError("TopP requires a non-empty 1-D value array")

    @property
    def p(self) -> int:
        return int(self.values.size)

    @property
    def max(self) -> float:
        return float(self.values[0])

    @property
    def min(self) -> float:
        return float(self.values[-1])


def top_p_arrays(
    matrix: np.ndarray, p: int, axis: int, *, pool=None
) -> tuple[np.ndarray, np.ndarray]:
    """Stacked top-p values and indices of every vector along ``axis``.

    Returns ``(values, indices)`` of shape ``(k, p)`` where ``k`` is the
    number of vectors (rows for ``axis=1``, columns for ``axis=0``) and each
    row holds the vector's ``p`` largest absolute values in descending order.
    This is the array form of :func:`top_p_of_rows` /
    :func:`top_p_of_columns`; the engine's vectorised checking path consumes
    it directly without materialising per-vector :class:`TopP` objects.

    The search runs ``p`` rounds of a strict maximum over all vectors at
    once — the array analog of Algorithm 1's max search — so ties in
    absolute value resolve to the *lowest* index, exactly like the
    reference kernel's ``>`` comparison.  Both axes share one row-major
    core (``axis=0`` searches a contiguous transpose copy), so
    :func:`top_p_of_rows` of ``M.T`` and :func:`top_p_of_columns` of ``M``
    agree bitwise.

    ``pool``, when given, must provide ``take(shape, dtype)`` / ``give(buf)``
    (see :class:`repro.engine.plan.WorkspacePool`); the absolute-value
    scratch buffer is then recycled instead of allocated per call.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    length = matrix.shape[axis]
    if not 1 <= p <= length:
        raise ValueError(f"p must be in 1..{length}, got {p}")
    if axis == 1:
        work = _take(pool, matrix.shape)
        np.abs(matrix, out=work)
    else:
        # One contiguous transpose copy keeps every search round on the
        # fast row-major argmax loop (a strided column argmax is ~10x
        # slower and ufuncs would otherwise propagate the F-order).
        work = _take(pool, (matrix.shape[1], matrix.shape[0]))
        np.copyto(work, matrix.T)
        np.abs(work, out=work)
    # NaNs are never selected (they lose every strict ``>`` comparison in
    # the reference kernel), but np.argmax would propagate them — mask them
    # out.  The probe is a single cheap reduction; work holds |values| >= 0,
    # so its sum is NaN iff a NaN is present.
    if np.isnan(np.sum(work)):
        work[np.isnan(work)] = -np.inf
    k = work.shape[0]
    vals = np.empty((k, p))
    idx = np.empty((k, p), dtype=np.intp)
    rows = np.arange(k)
    for j in range(p):
        best = np.argmax(work, axis=1)
        idx[:, j] = best
        vals[:, j] = work[rows, best]
        if j + 1 < p:
            work[rows, best] = -np.inf
    _give(pool, work)
    return vals, idx


def _take(pool, shape: tuple[int, int]) -> np.ndarray:
    if pool is None:
        return np.empty(shape)
    return pool.take(shape, np.float64)


def _give(pool, buffer: np.ndarray) -> None:
    if pool is not None:
        pool.give(buffer)


def _top_p_along(matrix: np.ndarray, p: int, axis: int) -> list[TopP]:
    vals, idx = top_p_arrays(matrix, p, axis)
    return [TopP(values=v, indices=i) for v, i in zip(vals, idx)]


def top_p_of_rows(matrix: np.ndarray, p: int) -> list[TopP]:
    """Top-p absolute values of every row (for the rows of ``A``)."""
    return _top_p_along(matrix, p, axis=1)


def top_p_of_columns(matrix: np.ndarray, p: int) -> list[TopP]:
    """Top-p absolute values of every column (for the columns of ``B``)."""
    return _top_p_along(matrix, p, axis=0)


def determine_upper_bound(row_top: TopP, col_top: TopP) -> float:
    """The three-case maximum ``y`` for one (row of A, column of B) pair."""
    # Cases 2 and 3 are valid bounds regardless of the intersection.
    candidates = [row_top.max * col_top.min, col_top.max * row_top.min]
    # Case 1: indices present in both top-p sets pair their actual values.
    shared, a_pos, b_pos = np.intersect1d(
        row_top.indices, col_top.indices, return_indices=True
    )
    if shared.size:
        candidates.append(float(np.max(row_top.values[a_pos] * col_top.values[b_pos])))
    return max(candidates)


def upper_bound_grid_arrays(
    row_vals: np.ndarray,
    row_idx: np.ndarray,
    col_vals: np.ndarray,
    col_idx: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised three-case ``y`` for every (row, column) pair.

    Array form of :func:`determine_upper_bound`: ``row_vals``/``row_idx`` are
    the stacked ``(k_rows, p)`` top-p data of the row vectors (as produced by
    :func:`top_p_arrays`), ``col_vals``/``col_idx`` of the column vectors.
    Returns the ``(k_rows, k_cols)`` grid of upper bounds, bitwise equal to
    calling :func:`determine_upper_bound` on every pair.  ``out``, when
    given, receives the grid in place (it must be float64 of the right
    shape); two scratch arrays are reused across all ``p x p`` rounds of
    the shared-index case instead of allocating three per round.
    """
    shape = (row_vals.shape[0], col_vals.shape[0])
    if out is None:
        out = np.empty(shape)
    # Cases 2 and 3: max of one side times the p-th largest of the other.
    np.multiply(row_vals[:, 0][:, None], col_vals[:, -1][None, :], out=out)
    np.maximum(out, row_vals[:, -1][:, None] * col_vals[:, 0][None, :], out=out)
    # Case 1: shared indices pair their actual values.  ``where=match``
    # leaves non-matching entries untouched — bitwise the old
    # ``np.where(match, candidate, -inf)`` masking without its temporary.
    candidate = np.empty(shape)
    match = np.empty(shape, dtype=bool)
    for ri in range(row_vals.shape[1]):
        for ci in range(col_vals.shape[1]):
            np.equal(row_idx[:, ri][:, None], col_idx[:, ci][None, :], out=match)
            if np.any(match):
                np.multiply(
                    row_vals[:, ri][:, None], col_vals[:, ci][None, :],
                    out=candidate,
                )
                np.maximum(out, candidate, out=out, where=match)
    return out


def exact_upper_bound(a_row: np.ndarray, b_col: np.ndarray) -> float:
    """Ground truth ``max_k |a_k * b_k|`` for validating the three-case rule."""
    a_row = np.asarray(a_row, dtype=np.float64).ravel()
    b_col = np.asarray(b_col, dtype=np.float64).ravel()
    if a_row.shape != b_col.shape:
        raise ValueError("vectors must have equal length")
    return float(np.max(np.abs(a_row * b_col)))
