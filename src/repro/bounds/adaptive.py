"""Variance-adaptive tolerances for low-precision (fp16/bf16) storage.

The probabilistic and SEA bounds model rounding noise of the *compute*
dtype.  When operands and results are stored in a narrower dtype but the
GEMM and the checksums accumulate in float32/float64 (the mixed-precision
discipline this library follows, after V-ABFT), every stored result
element additionally carries a quantisation error of up to ``u_s * |c|``
(``u_s`` the storage unit roundoff), while the checksum values — which
never round-trip through storage — do not.  A checksum comparison over an
encoding block of ``m`` elements therefore sees an extra discrepancy term
the compute-dtype bounds cannot explain, and a naive check false-positives
on every fault-free low-precision run.

V-ABFT's remedy is a variance-based adaptive threshold: estimate the
per-block quantisation noise scale sigma from data the encode pass already
produced, and widen the tolerance by ``k * sigma`` with ``k`` calibrated
per dtype.  Here sigma is estimated from the same Euclidean norms the SEA
scheme computes: by Cauchy–Schwarz every block element satisfies
``|c_ij| <= ||a_i|| * ||b_j||``, so the summed absolute quantisation error
over one block is at most::

    sum_i u_s * |c_ij| <= u_s * ||b_j|| * sum_i ||a_i||

With ``k = 1`` this is a deterministic worst case (zero false positives by
construction, up to subnormal rounding); the per-dtype calibration table
:data:`ADAPTIVE_K` keeps a small safety margin on top.  The full adaptive
tolerance is the SEA compute-dtype term plus the quantisation term::

    eps = sea_epsilon(...t_compute...) + k * u_s * ||b_j|| * sum_i ||a_i||
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import BoundSchemeError
from ..fp.constants import BINARY32, FloatFormat
from .base import BoundContext, BoundScheme
from .sea import sea_epsilon, sea_epsilon_array

__all__ = [
    "ADAPTIVE_K",
    "adaptive_k_for",
    "quantization_epsilon",
    "quantization_epsilon_array",
    "adaptive_epsilon",
    "adaptive_epsilon_array",
    "AdaptiveBound",
]

#: Calibrated threshold scale ``k`` per storage dtype (the V-ABFT knob).
#: ``k = 1`` is the deterministic Cauchy–Schwarz worst case; the margins
#: absorb subnormal quantisation (absolute, not relative, rounding) and
#: bf16's coarser mantissa without giving up detection headroom.
ADAPTIVE_K = {
    "binary16": 1.25,
    "bfloat16": 1.25,
    "binary32": 1.0,
    "binary64": 1.0,
}


def adaptive_k_for(storage_fmt: FloatFormat) -> float:
    """The calibrated ``k`` for a storage format (1.0 for unknown names)."""
    return ADAPTIVE_K.get(storage_fmt.name, 1.0)


def quantization_epsilon(
    data_norm_sum: float, b_norm: float, u_storage: float, k: float
) -> float:
    """The ``k * sigma`` quantisation term of one checksum comparison.

    ``data_norm_sum`` is the summed Euclidean norm of the block's data
    rows of ``A``, ``b_norm`` the norm of the checked column of ``B`` and
    ``u_storage`` the unit roundoff of the storage dtype.
    """
    if u_storage < 0.0:
        raise ValueError(f"u_storage must be >= 0, got {u_storage}")
    if k < 0.0:
        raise ValueError(f"k must be >= 0, got {k}")
    return k * u_storage * data_norm_sum * b_norm


def quantization_epsilon_array(
    data_norm_sum: float, b_norms: np.ndarray, u_storage: float, k: float
) -> np.ndarray:
    """Vectorised :func:`quantization_epsilon` over many checked columns."""
    if u_storage < 0.0:
        raise ValueError(f"u_storage must be >= 0, got {u_storage}")
    if k < 0.0:
        raise ValueError(f"k must be >= 0, got {k}")
    b_norms = np.asarray(b_norms, dtype=np.float64)
    return (k * u_storage * data_norm_sum) * b_norms


def adaptive_epsilon(
    n: int,
    data_row_norms: np.ndarray,
    checksum_row_norm: float,
    b_norm: float,
    t_compute: int,
    u_storage: float,
    k: float,
) -> float:
    """One adaptive tolerance: SEA compute term + quantisation term."""
    norms = np.asarray(data_row_norms, dtype=np.float64).ravel()
    base = sea_epsilon(
        n=n,
        data_row_norms=norms,
        checksum_row_norm=checksum_row_norm,
        b_norm=b_norm,
        t=t_compute,
    )
    return base + quantization_epsilon(
        float(norms.sum()), b_norm, u_storage, k
    )


def adaptive_epsilon_array(
    n: int,
    m: int,
    data_norm_sum: float,
    checksum_row_norm: float,
    b_norms: np.ndarray,
    t_compute: int,
    u_storage: float,
    k: float,
) -> np.ndarray:
    """Vectorised :func:`adaptive_epsilon` over many checked columns.

    Operation order mirrors the scalar form (SEA term first, quantisation
    term added last), so scalar and array paths agree bitwise.
    """
    base = sea_epsilon_array(
        n=n,
        m=m,
        data_norm_sum=data_norm_sum,
        checksum_row_norm=checksum_row_norm,
        b_norms=b_norms,
        t=t_compute,
    )
    return base + quantization_epsilon_array(
        data_norm_sum, b_norms, u_storage, k
    )


@dataclass
class AdaptiveBound(BoundScheme):
    """Variance-adaptive bound for low-precision storage (V-ABFT style).

    Parameters
    ----------
    fmt:
        The *compute* format (checksums accumulate in it — float32 or
        float64).
    storage_fmt:
        The *storage* format of operands and results (float16/bfloat16;
        using the compute format degenerates to a slightly padded SEA).
    k:
        Calibrated threshold scale; defaults to the
        :data:`ADAPTIVE_K` entry for ``storage_fmt``.

    Consumes the same :class:`~repro.bounds.base.BoundContext` fields as
    :class:`~repro.bounds.sea.SEABound` (``n``, ``a_norms``, ``b_norm``).
    """

    fmt: FloatFormat = BINARY32
    storage_fmt: FloatFormat = BINARY32
    k: float | None = None
    name: str = "adaptive"
    _k: float = field(init=False, repr=False, default=1.0)

    def __post_init__(self) -> None:
        self._k = (
            adaptive_k_for(self.storage_fmt) if self.k is None else float(self.k)
        )
        if self._k < 0.0 or not math.isfinite(self._k):
            raise ValueError(f"k must be >= 0 and finite, got {self._k}")

    @property
    def effective_k(self) -> float:
        """The resolved threshold scale (explicit ``k`` or the table's)."""
        return self._k

    def epsilon(self, ctx: BoundContext) -> float:
        if ctx.a_norms is None or ctx.b_norm is None:
            raise BoundSchemeError(
                "AdaptiveBound requires row norms of A (data rows + "
                "checksum row) and the norm of the checked column of B"
            )
        norms = np.asarray(ctx.a_norms, dtype=np.float64).ravel()
        if norms.size < 2:
            raise BoundSchemeError(
                "a_norms must contain at least one data row and the checksum row"
            )
        return adaptive_epsilon(
            n=ctx.n,
            data_row_norms=norms[:-1],
            checksum_row_norm=float(norms[-1]),
            b_norm=float(ctx.b_norm),
            t_compute=self.fmt.t,
            u_storage=self.storage_fmt.unit_roundoff,
            k=self._k,
        )

    def describe(self) -> str:
        return (
            f"variance-adaptive low-precision bound "
            f"(compute t={self.fmt.t}, storage {self.storage_fmt.name}, "
            f"k={self._k:g})"
        )
