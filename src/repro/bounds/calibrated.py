"""Calibration-run bounds — the related-work baseline A-ABFT replaces.

Section III of the paper describes the oldest approach to the tolerance
problem (Banerjee et al.; Balasubramanian): "the experimental evaluation of
error bounds ... by performing multiple calibration runs of the target
operation on similar data sets.  An initial error bound is set and increased
after each operation until no more false-positives are detected."  The paper
dismisses it: besides the calibration cost, "the determined error bounds are
dependent on the problem size and very likely to fail if slightest changes
happen to the characteristic of the input data".

This module implements that baseline honestly — calibrate on sample inputs,
apply the learned constant everywhere — so the criticism can be measured:
``benchmarks/bench_calibration_baseline.py`` shows the learned bound turning
into mass false positives or missed errors the moment the input
distribution or the matrix size moves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..abft.checking import column_discrepancies, row_discrepancies
from ..abft.encoding import encode_partitioned_columns, encode_partitioned_rows
from ..errors import BoundSchemeError
from ..workloads.suites import WorkloadSuite
from .base import BoundContext, BoundScheme

__all__ = ["CalibratedBound", "calibrate"]


@dataclass
class CalibratedBound(BoundScheme):
    """A constant tolerance learned from calibration runs.

    Attributes
    ----------
    value:
        The learned tolerance (max observed fault-free discrepancy times
        the safety factor).
    calibrated_n:
        Matrix dimension of the calibration runs — the learned constant is
        only meaningful there, which is the point.
    calibrated_suite:
        Name of the input distribution calibrated on.
    safety:
        Multiplier applied to the worst observed discrepancy.
    """

    value: float
    calibrated_n: int
    calibrated_suite: str
    safety: float
    name: str = "abft-calibrated"

    def __post_init__(self) -> None:
        if not np.isfinite(self.value) or self.value <= 0.0:
            raise BoundSchemeError(
                f"calibrated bound must be positive and finite, got {self.value}"
            )

    def epsilon(self, ctx: BoundContext) -> float:
        return self.value

    def describe(self) -> str:
        return (
            f"calibrated bound (eps={self.value:.3e}, learned on "
            f"{self.calibrated_suite} at n={self.calibrated_n}, "
            f"safety={self.safety:g})"
        )


def calibrate(
    suite: WorkloadSuite,
    n: int,
    rng: np.random.Generator,
    runs: int = 5,
    block_size: int = 64,
    safety: float = 2.0,
) -> CalibratedBound:
    """Learn a tolerance from fault-free calibration multiplications.

    Runs ``runs`` multiplications on fresh inputs from ``suite``, records
    the largest checksum discrepancy any comparison produced, and returns
    that worst case scaled by ``safety`` — the classical procedure.

    Parameters
    ----------
    suite:
        The input distribution calibrated against ("similar data sets").
    n:
        Matrix dimension of the calibration runs.
    runs:
        Number of fault-free multiplications (the calibration overhead the
        paper criticises scales linearly here).
    safety:
        Headroom multiplier above the worst observed discrepancy.
    """
    if runs < 1:
        raise ValueError("at least one calibration run is required")
    if safety < 1.0:
        raise ValueError("safety factor below 1 would flag the calibration data")
    worst = 0.0
    for _ in range(runs):
        pair = suite.generate(n, rng)
        a_cc, rows = encode_partitioned_columns(pair.a, block_size)
        b_rc, cols = encode_partitioned_rows(pair.b, block_size)
        c_fc = a_cc @ b_rc
        worst = max(
            worst,
            float(column_discrepancies(c_fc, rows).max()),
            float(row_discrepancies(c_fc, cols).max()),
        )
    if worst == 0.0:
        raise BoundSchemeError(
            "calibration observed zero discrepancies (exact-arithmetic "
            "inputs?); the learned bound would flag everything"
        )
    return CalibratedBound(
        value=safety * worst,
        calibrated_n=n,
        calibrated_suite=suite.name,
        safety=safety,
    )
