"""Simplified Error Analysis (SEA) bounds — the paper's main baseline.

Roy-Chowdhury/Banerjee (FTCS'93) derive ABFT tolerances by a first-order
rounding-error analysis over groups of variables.  For the matrix-vector
product ``A . b = c`` with an ``(m+1) x n`` column-checksum matrix ``A`` the
paper states the SEA tolerance (Section III) as::

    |c_{n+1} - c*_{n+1}| < ( (n + 2m - 2) * ||b||_2 * sum_{i=1}^m ||a_i||_2
                             + n * ||a_{m+1}||_2 * ||b||_2 ) * eps_M

where ``a_i`` are the data rows, ``a_{m+1}`` the checksum row, and
``eps_M = 2**-t`` the unit rounding error.  In the partitioned (block-based)
scheme ``m`` is the encoding block size and ``n`` the full inner dimension.

The scheme needs the Euclidean norms of all participating row vectors and of
the checked column — the "compute-intensive evaluation of numerous vector
norms" whose poor GPU utilisation shows up in the paper's Table I.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import BoundSchemeError
from ..fp.constants import BINARY64, FloatFormat
from .base import BoundContext, BoundScheme

__all__ = ["sea_epsilon", "sea_epsilon_array", "SEABound"]


def sea_epsilon(
    n: int,
    data_row_norms: np.ndarray,
    checksum_row_norm: float,
    b_norm: float,
    t: int,
) -> float:
    """The SEA tolerance for one checksum comparison.

    Parameters
    ----------
    n:
        Inner-product length (inner dimension of the multiplication).
    data_row_norms:
        Euclidean norms of the ``m`` data rows folded into the checksum.
    checksum_row_norm:
        Euclidean norm of the checksum row vector ``a_{m+1}``.
    b_norm:
        Euclidean norm of the checked column vector of ``B``.
    t:
        Significand precision in bits.
    """
    norms = np.asarray(data_row_norms, dtype=np.float64).ravel()
    m = norms.size
    if m < 1:
        raise ValueError("at least one data row norm is required")
    if n < 1:
        raise ValueError(f"inner dimension must be >= 1, got {n}")
    eps_m = math.ldexp(1.0, -t)
    first = (n + 2 * m - 2) * b_norm * float(norms.sum())
    second = n * checksum_row_norm * b_norm
    return (first + second) * eps_m


def sea_epsilon_array(
    n: int,
    m: int,
    data_norm_sum: float,
    checksum_row_norm: float,
    b_norms: np.ndarray,
    t: int,
) -> np.ndarray:
    """Vectorised :func:`sea_epsilon` over many checked columns at once.

    ``data_norm_sum`` is the summed Euclidean norm of the ``m`` data rows of
    one checksum group and ``b_norms`` the norms of all checked columns.
    Operation order mirrors the scalar form exactly, so results are bitwise
    equal; used by the engine's plan-cached fast checking path.
    """
    if m < 1:
        raise ValueError("at least one data row norm is required")
    if n < 1:
        raise ValueError(f"inner dimension must be >= 1, got {n}")
    b_norms = np.asarray(b_norms, dtype=np.float64)
    eps_m = math.ldexp(1.0, -t)
    first = (n + 2 * m - 2) * b_norms * data_norm_sum
    second = n * checksum_row_norm * b_norms
    return (first + second) * eps_m


@dataclass
class SEABound(BoundScheme):
    """SEA-ABFT bound scheme over a :class:`~repro.bounds.base.BoundContext`.

    Reads ``ctx.n``, ``ctx.a_norms`` (data rows first, checksum row last)
    and ``ctx.b_norm``.
    """

    fmt: FloatFormat = BINARY64
    name: str = "sea-abft"

    def epsilon(self, ctx: BoundContext) -> float:
        if ctx.a_norms is None or ctx.b_norm is None:
            raise BoundSchemeError(
                "SEABound requires row norms of A (data rows + checksum row) "
                "and the norm of the checked column of B"
            )
        norms = np.asarray(ctx.a_norms, dtype=np.float64).ravel()
        if norms.size < 2:
            raise BoundSchemeError(
                "a_norms must contain at least one data row and the checksum row"
            )
        return sea_epsilon(
            n=ctx.n,
            data_row_norms=norms[:-1],
            checksum_row_norm=float(norms[-1]),
            b_norm=float(ctx.b_norm),
            t=self.fmt.t,
        )

    def describe(self) -> str:
        return f"SEA-ABFT simplified-error-analysis bound (t={self.fmt.t})"
