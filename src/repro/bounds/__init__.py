"""Error-bound schemes for ABFT checksum comparison.

The paper's contribution (:class:`ProbabilisticBound`, autonomous at
runtime), its baselines (:class:`SEABound`, :class:`FixedBound`) and the
classic worst-case :class:`AnalyticalBound`, all behind the common
:class:`BoundScheme` interface.
"""

from .analytical import AnalyticalBound, dot_product_bound, gamma_factor
from .base import BoundContext, BoundScheme
from .calibrated import CalibratedBound, calibrate
from .errormap import ErrorMap, rounding_error_map, upper_bound_grid
from .fixed import FixedBound, RelativeFixedBound
from .probabilistic import (
    ProbabilisticBound,
    confidence_interval,
    inner_product_mean_bound,
    inner_product_sigma_bound,
    inner_product_variance_bound,
    mantissa_error_moments,
    prod_mean_bound,
    prod_variance_bound,
    sum_sigma_bound,
    sum_variance_bound,
)
from .sea import SEABound, sea_epsilon
from .upper_bound import (
    TopP,
    determine_upper_bound,
    exact_upper_bound,
    top_p_of_columns,
    top_p_of_rows,
)

__all__ = [
    "AnalyticalBound",
    "BoundContext",
    "BoundScheme",
    "CalibratedBound",
    "calibrate",
    "ErrorMap",
    "FixedBound",
    "ProbabilisticBound",
    "RelativeFixedBound",
    "SEABound",
    "TopP",
    "confidence_interval",
    "determine_upper_bound",
    "dot_product_bound",
    "exact_upper_bound",
    "gamma_factor",
    "inner_product_mean_bound",
    "inner_product_sigma_bound",
    "inner_product_variance_bound",
    "mantissa_error_moments",
    "prod_mean_bound",
    "prod_variance_bound",
    "rounding_error_map",
    "sea_epsilon",
    "sum_sigma_bound",
    "sum_variance_bound",
    "top_p_of_columns",
    "top_p_of_rows",
    "upper_bound_grid",
]
