"""Per-element rounding-error analysis maps — the paper's by-product.

Section I: "As a by-product, A-ABFT is able to deliver error functions or
rounding error analyses for the performed operation with little additional
overhead."  This module delivers exactly that: from the same top-p data the
checksum bounds use, it derives, for *every* element of a product ``A @ B``,
the probabilistic expectation value, standard deviation, and confidence
bound of the rounding error — a dense error function of the operation.

The three-case upper-bound rule is evaluated vectorised over the whole
element grid (outer products for cases 2/3; ``p^2`` index-match sweeps for
case 1), so the analysis costs O(p^2 · m · q) on top of the multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fp.constants import BINARY64, FloatFormat
from .probabilistic import (
    inner_product_mean_bound,
    inner_product_sigma_bound,
)
from .upper_bound import (
    TopP,
    top_p_of_columns,
    top_p_of_rows,
    upper_bound_grid_arrays,
)

__all__ = ["ErrorMap", "upper_bound_grid", "rounding_error_map"]


@dataclass
class ErrorMap:
    """Dense rounding-error analysis of one matrix product.

    Attributes
    ----------
    y:
        Per-element upper bounds on the intermediate products (Sec. IV-E).
    expectation:
        Per-element expectation value of the rounding error (the bias from
        multiplication rounding; zero under FMA).
    sigma:
        Per-element standard deviation of the rounding error.
    epsilon:
        Per-element confidence bound ``|EV| + omega * sigma``.
    omega:
        The confidence scale the map was built with.
    """

    y: np.ndarray
    expectation: np.ndarray
    sigma: np.ndarray
    epsilon: np.ndarray
    omega: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.y.shape

    def worst_elements(self, count: int = 5) -> list[tuple[int, int, float]]:
        """The ``count`` elements with the largest error bound."""
        flat = np.argsort(self.epsilon, axis=None)[::-1][:count]
        rows, cols = np.unravel_index(flat, self.epsilon.shape)
        return [
            (int(r), int(c), float(self.epsilon[r, c]))
            for r, c in zip(rows, cols)
        ]

    def summary(self) -> str:
        """One-paragraph description of the error landscape."""
        return (
            f"rounding-error map {self.shape[0]}x{self.shape[1]}: "
            f"sigma in [{self.sigma.min():.3e}, {self.sigma.max():.3e}], "
            f"bound (omega={self.omega:g}) in "
            f"[{self.epsilon.min():.3e}, {self.epsilon.max():.3e}]"
        )


def upper_bound_grid(row_tops: list[TopP], col_tops: list[TopP]) -> np.ndarray:
    """Vectorised three-case ``y`` for every (row, column) pair.

    Equivalent to calling
    :func:`~repro.bounds.upper_bound.determine_upper_bound` on each pair,
    evaluated with array operations.
    """
    if not row_tops or not col_tops:
        raise ValueError("need at least one row and one column top-p set")
    row_vals = np.stack([t.values for t in row_tops])  # (m, p)
    row_idx = np.stack([t.indices for t in row_tops])
    col_vals = np.stack([t.values for t in col_tops])  # (q, p)
    col_idx = np.stack([t.indices for t in col_tops])
    return upper_bound_grid_arrays(row_vals, row_idx, col_vals, col_idx)


def rounding_error_map(
    a: np.ndarray,
    b: np.ndarray,
    p: int = 2,
    omega: float = 3.0,
    fma: bool = False,
    fmt: FloatFormat = BINARY64,
) -> ErrorMap:
    """Build the dense rounding-error analysis of ``a @ b``.

    Returns per-element expectation, standard deviation and confidence
    bound of the rounding error the multiplication will incur — without
    computing the product itself.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible operands: {a.shape} x {b.shape}")
    n = a.shape[1]
    t = fmt.t

    y = upper_bound_grid(
        top_p_of_rows(a, min(p, n)), top_p_of_columns(b, min(p, n))
    )
    # The closed forms are linear in y, so one unit-scale evaluation serves
    # the whole grid.
    ev_unit = inner_product_mean_bound(n, 1.0, t, fma)
    sigma_unit = inner_product_sigma_bound(n, 1.0, t, fma)
    expectation = ev_unit * y
    sigma = sigma_unit * y
    return ErrorMap(
        y=y,
        expectation=expectation,
        sigma=sigma,
        epsilon=np.abs(expectation) + omega * sigma,
        omega=omega,
    )
