"""Manually set (fixed) error bounds — the paper's non-autonomous baseline.

The "standard ABFT scheme for matrix multiplications on GPUs, whose error
bounds have to be set manually by the user" (Section VI-A).  It has the
lowest runtime overhead but requires the user to know the input
characteristics; a bound chosen too tight causes false positives, too loose
causes false negatives — the failure mode A-ABFT removes.

Two variants are provided:

* :class:`FixedBound` — one absolute tolerance for every comparison;
* :class:`RelativeFixedBound` — tolerance relative to the checksum magnitude,
  a common practitioner heuristic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import BoundSchemeError
from .base import BoundContext, BoundScheme

__all__ = ["FixedBound", "RelativeFixedBound"]


@dataclass
class FixedBound(BoundScheme):
    """A single user-chosen absolute tolerance."""

    value: float
    name: str = "abft-fixed"

    def __post_init__(self) -> None:
        if not math.isfinite(self.value) or self.value < 0.0:
            raise BoundSchemeError(
                f"fixed bound must be finite and non-negative, got {self.value}"
            )

    def epsilon(self, ctx: BoundContext) -> float:
        return self.value

    def describe(self) -> str:
        return f"manually fixed bound (epsilon={self.value:.3e})"


@dataclass
class RelativeFixedBound(BoundScheme):
    """Tolerance proportional to a user-supplied magnitude estimate.

    ``epsilon = rel_tol * scale * n`` — the practitioner's rule of thumb of
    budgeting ``rel_tol`` per accumulated term.  ``scale`` plays the role of
    the expected checksum magnitude and must be supplied by the user, which
    is exactly the non-autonomy A-ABFT eliminates.
    """

    rel_tol: float
    scale: float
    name: str = "abft-relative"

    def __post_init__(self) -> None:
        if self.rel_tol <= 0.0 or not math.isfinite(self.rel_tol):
            raise BoundSchemeError(f"rel_tol must be positive, got {self.rel_tol}")
        if self.scale <= 0.0 or not math.isfinite(self.scale):
            raise BoundSchemeError(f"scale must be positive, got {self.scale}")

    def epsilon(self, ctx: BoundContext) -> float:
        return self.rel_tol * self.scale * ctx.n

    def describe(self) -> str:
        return (
            f"relative fixed bound (rel_tol={self.rel_tol:.3e}, "
            f"scale={self.scale:.3e})"
        )
