"""Classic deterministic (worst-case) rounding-error bounds.

Section III of the paper discusses "the evaluation of classic analytical
error estimations" (Higham; Golub/Van Loan) as an alternative source of
tolerances and dismisses them as "in most cases very pessimistic".  We
implement the standard forward bound so that claim can be checked
quantitatively (see the bound-quality ablation benchmark):

For a dot product of length ``n`` computed in precision ``u = 2**-t``
(Higham, *Accuracy and Stability of Numerical Algorithms*, Section 3.1):

    |fl(x^T y) - x^T y| <= gamma_n * |x|^T |y|,
    gamma_n = n*u / (1 - n*u)

Applied to an ABFT checksum comparison, both the checksum element and the
reference recomputation contribute, so the tolerance doubles conservatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import BoundSchemeError
from ..fp.constants import BINARY64, FloatFormat
from .base import BoundContext, BoundScheme

__all__ = ["gamma_factor", "dot_product_bound", "AnalyticalBound"]


def gamma_factor(n: int, t: int) -> float:
    """Higham's ``gamma_n = n*u / (1 - n*u)`` with ``u = 2**-t``.

    Raises
    ------
    ValueError
        If ``n*u >= 1`` (the bound is vacuous there).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    u = math.ldexp(1.0, -t)
    nu = n * u
    if nu >= 1.0:
        raise ValueError(f"gamma_n undefined: n*u = {nu} >= 1")
    return nu / (1.0 - nu)


def dot_product_bound(abs_inner_product: float, n: int, t: int) -> float:
    """Worst-case forward error of a length-``n`` dot product.

    ``abs_inner_product`` is ``|x|^T |y|`` (the inner product of absolute
    values), the natural condition measure of the bound.
    """
    if abs_inner_product < 0.0:
        raise ValueError("|x|^T|y| must be non-negative")
    return gamma_factor(n, t) * abs_inner_product


@dataclass
class AnalyticalBound(BoundScheme):
    """Deterministic Higham-style tolerance for checksum comparisons.

    Uses ``ctx.n`` and ``ctx.upper_bound`` (as the per-term product bound,
    so ``|x|^T|y| <= n * y``); doubled to cover the reference-recomputation
    side as well.  Deliberately pessimistic — it exists as the quantitative
    backdrop for the paper's claim that analytical bounds are too loose.
    """

    fmt: FloatFormat = BINARY64
    name: str = "analytical"

    def epsilon(self, ctx: BoundContext) -> float:
        if ctx.upper_bound is None:
            raise BoundSchemeError(
                "AnalyticalBound requires BoundContext.upper_bound as the "
                "per-term product magnitude bound"
            )
        abs_ip = ctx.n * float(np.abs(ctx.upper_bound))
        return 2.0 * dot_product_bound(abs_ip, ctx.n, self.fmt.t)

    def describe(self) -> str:
        return f"deterministic gamma_n worst-case bound (t={self.fmt.t})"
