"""The A-ABFT probabilistic rounding-error model (paper Section IV).

Implements the Barlow/Bareiss moments of floating-point rounding errors and
their propagation through summations and inner products, culminating in the
confidence-interval tolerance

    epsilon = |EV(Delta s_n)| + omega * sigma(Delta s_n)          (Eq. 7)

with the closed forms

    sigma_sum(n)    <= sqrt(n(n+1)(2n+1)/48)           * 2**-t * y   (Eq. 28)
    sigma_inprod(n) <= sqrt((n(n+1)(n+1/2) + 2n) / 24) * 2**-t * y   (Eq. 45)
    EV_prod(n)      <= (n/3) * 2**-2t * y                            (Eq. 43)

where ``t`` is the significand precision, ``y`` the runtime-determined upper
bound on intermediate products (Section IV-E, :mod:`repro.bounds.upper_bound`)
and ``omega`` the confidence scale (the paper evaluates with the conservative
``omega = 3``).

For fused multiply-add pipelines (Section IV-D) the multiplication
contributes no rounding error, so only the summation terms remain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import BoundSchemeError
from ..fp.constants import BINARY64, FloatFormat
from .base import BoundContext, BoundScheme

__all__ = [
    "mantissa_error_moments",
    "sum_variance_bound",
    "sum_sigma_bound",
    "prod_variance_bound",
    "prod_mean_bound",
    "inner_product_variance_bound",
    "inner_product_sigma_bound",
    "inner_product_mean_bound",
    "confidence_interval",
    "ProbabilisticBound",
]


def mantissa_error_moments(op: str, t: int) -> tuple[float, float]:
    """Mean and variance of the mantissa error ``beta`` for one operation.

    Per Barlow/Bareiss (paper Eqs. 20/21 and 34/35), for symmetric rounding:

    * addition/subtraction: ``EV = 0``, ``Var <= (1/8) 2**-2t``
    * multiplication/division: ``EV = (1/3) 2**-2t``, ``Var = (1/12) 2**-2t``

    Parameters
    ----------
    op:
        One of ``"add"``, ``"sub"``, ``"mul"``, ``"div"``.
    t:
        Significand precision in bits (53 for binary64).
    """
    if t <= 0:
        raise ValueError(f"precision t must be positive, got {t}")
    scale = math.ldexp(1.0, -2 * t)
    if op in ("add", "sub"):
        return 0.0, scale / 8.0
    if op in ("mul", "div"):
        return scale / 3.0, scale / 12.0
    raise ValueError(f"unknown operation {op!r}; expected add/sub/mul/div")


def _require_positive_n(n: int) -> None:
    if n < 1:
        raise ValueError(f"summation length must be >= 1, got {n}")


def sum_variance_bound(n: int, y: float, t: int) -> float:
    """Variance bound of the summation rounding error (pre-Eq. 28).

    ``Var_Sum(Delta s_n) <= (1/8) 2**-2t (n(n+1)(2n+1)/6) y**2`` where ``y``
    bounds the summands so that partial sums obey ``|s_k| <= k*y``.
    """
    _require_positive_n(n)
    poly = n * (n + 1) * (2 * n + 1) / 6.0
    return math.ldexp(poly * y * y / 8.0, -2 * t)


def sum_sigma_bound(n: int, y: float, t: int) -> float:
    """Standard-deviation bound for an ``n``-term summation (Eq. 28)."""
    _require_positive_n(n)
    return math.sqrt(n * (n + 1) * (2 * n + 1) / 48.0) * math.ldexp(abs(y), -t)


def prod_variance_bound(n: int, y: float, t: int) -> float:
    """Variance bound of ``n`` multiplication rounding errors (Eq. 41).

    ``Var_Prod(Delta s_n) <= (n/12) 2**-2t y**2`` with ``y`` bounding the
    largest product magnitude.
    """
    _require_positive_n(n)
    return math.ldexp(n * y * y / 12.0, -2 * t)


def prod_mean_bound(n: int, y: float, t: int) -> float:
    """Mean bound of ``n`` multiplication rounding errors (Eq. 43).

    ``EV_Prod(Delta s_n) <= (n/3) 2**-2t y``.
    """
    _require_positive_n(n)
    return math.ldexp(n * abs(y) / 3.0, -2 * t)


def inner_product_variance_bound(n: int, y: float, t: int, fma: bool = False) -> float:
    """Variance bound for an ``n``-term inner product (Eq. 33).

    The sum of the summation and multiplication variance contributions; with
    ``fma`` the multiplication term vanishes (Section IV-D).
    """
    var = sum_variance_bound(n, y, t)
    if not fma:
        var += prod_variance_bound(n, y, t)
    return var


def inner_product_sigma_bound(n: int, y: float, t: int, fma: bool = False) -> float:
    """Standard-deviation bound for an ``n``-term inner product (Eq. 45).

    Without FMA this is the paper's closed form
    ``sqrt((n(n+1)(n+1/2) + 2n)/24) * 2**-t * y``.
    """
    return math.sqrt(inner_product_variance_bound(n, abs(y), t, fma))


def inner_product_mean_bound(n: int, y: float, t: int, fma: bool = False) -> float:
    """Mean (bias) bound for an ``n``-term inner product (Eqs. 31/43)."""
    if fma:
        return 0.0  # addition errors are zero-mean, multiplication exact
    return prod_mean_bound(n, y, t)


def confidence_interval(
    n: int, y: float, t: int, omega: float = 3.0, fma: bool = False
) -> tuple[float, float]:
    """Confidence interval ``[EV - omega*sigma, EV + omega*sigma]`` (Eq. 7)."""
    ev = inner_product_mean_bound(n, y, t, fma)
    sigma = inner_product_sigma_bound(n, y, t, fma)
    return ev - omega * sigma, ev + omega * sigma


@dataclass
class ProbabilisticBound(BoundScheme):
    """The autonomous A-ABFT bound scheme.

    Consumes ``ctx.n`` and the runtime-determined ``ctx.upper_bound`` ``y``
    and returns ``epsilon = |EV| + omega * sigma`` for the inner products
    forming the checked checksum elements.

    Parameters
    ----------
    omega:
        Confidence scale; the paper's evaluation uses the conservative 3.
    fma:
        Whether the target pipeline fuses multiply-add (Section IV-D).
    fmt:
        Floating-point format (binary64 by default, as in the paper).
    """

    omega: float = 3.0
    fma: bool = False
    fmt: FloatFormat = BINARY64
    name: str = "a-abft"

    def __post_init__(self) -> None:
        if self.omega <= 0.0:
            raise BoundSchemeError(f"omega must be positive, got {self.omega}")

    def epsilon(self, ctx: BoundContext) -> float:
        if ctx.upper_bound is None:
            raise BoundSchemeError(
                "ProbabilisticBound requires the runtime upper bound y "
                "(BoundContext.upper_bound)"
            )
        if ctx.upper_bound < 0.0 or not math.isfinite(ctx.upper_bound):
            raise BoundSchemeError(
                f"upper bound y must be finite and non-negative, got {ctx.upper_bound}"
            )
        t = self.fmt.t
        ev = inner_product_mean_bound(ctx.n, ctx.upper_bound, t, self.fma)
        sigma = inner_product_sigma_bound(ctx.n, ctx.upper_bound, t, self.fma)
        return abs(ev) + self.omega * sigma

    def epsilon_array(self, n: int, y: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`epsilon` over a grid of upper bounds ``y``.

        Evaluates the same closed forms elementwise (identical operation
        order, so results are bitwise equal to scalar calls); used by the
        engine's plan-cached fast checking path.
        """
        y = np.asarray(y, dtype=np.float64)
        if np.any(y < 0.0) or not np.all(np.isfinite(y)):
            raise BoundSchemeError(
                "upper bound y must be finite and non-negative everywhere"
            )
        _require_positive_n(n)
        t = self.fmt.t
        poly = n * (n + 1) * (2 * n + 1) / 6.0
        variance = np.ldexp(poly * y * y / 8.0, -2 * t)
        if self.fma:
            return self.omega * np.sqrt(variance)
        variance = variance + np.ldexp(n * y * y / 12.0, -2 * t)
        ev = np.ldexp(n * y / 3.0, -2 * t)
        return ev + self.omega * np.sqrt(variance)

    def describe(self) -> str:
        fma = ", fma" if self.fma else ""
        return f"A-ABFT probabilistic bound (omega={self.omega:g}{fma}, t={self.fmt.t})"
