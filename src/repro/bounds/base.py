"""Common interface for error-bound schemes.

An ABFT check compares the absolute discrepancy between an original checksum
element (that went through the multiplication) and a freshly computed
reference checksum against a tolerance ``epsilon`` (paper Eq. 6).  The
library's bound schemes — fixed/manual, SEA, and the A-ABFT probabilistic
scheme — all implement :class:`BoundScheme`, so the checking code and the
experiments are generic over the scheme.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["BoundContext", "BoundScheme"]


@dataclass(frozen=True)
class BoundContext:
    """Everything a bound scheme may consult for one checksum comparison.

    Not every scheme uses every field; each documents what it reads.

    Attributes
    ----------
    n:
        Length of the inner products forming the checked elements (the inner
        dimension of the multiplication).
    m:
        Number of data elements folded into one checksum (the block size of
        the partitioned encoding, or the full row/column count for
        unpartitioned ABFT).
    upper_bound:
        The runtime-determined bound ``y`` on the magnitude of any
        intermediate product contributing to the checked element
        (Section IV-E).  ``None`` for schemes that do not use it.
    a_norms:
        Euclidean norms of the relevant row vectors of ``A`` (data rows
        first, checksum row last) — consumed by the SEA scheme.
    b_norm:
        Euclidean norm of the relevant column vector of ``B`` — SEA scheme.
    """

    n: int
    m: int
    upper_bound: float | None = None
    a_norms: np.ndarray | None = None
    b_norm: float | None = None


class BoundScheme(abc.ABC):
    """Produces the tolerance ``epsilon`` for a checksum comparison."""

    #: Identifier used in reports and experiment tables.
    name: str = "bound"

    @abc.abstractmethod
    def epsilon(self, ctx: BoundContext) -> float:
        """Tolerance for one checksum comparison described by ``ctx``.

        Must be non-negative and finite; raising
        :class:`~repro.errors.BoundSchemeError` is the correct response to a
        context missing required fields.
        """

    def describe(self) -> str:
        """One-line human-readable description (scheme + parameters)."""
        return self.name
