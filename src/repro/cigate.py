"""CI quality gates: detection coverage and warm-engine throughput.

``aabft ci-gate`` is the machine-checkable contract the CI jobs consume.
It runs two gates and exits nonzero when either fails:

* **coverage** — a quick fault-injection campaign (mantissa single-bit
  flips, the paper's Figure 4 setup at reduced scale) must detect at
  least ``coverage_floor`` of the *critical* errors with the A-ABFT
  tolerances, and the fault-free workload must pass every scheme's check
  (no baseline false positives).  The gate runs once per compute backend
  (numpy plus every available non-numpy backend by default) so the
  detection floor holds inside backend-dispatched tile compute too;
* **pipeline-coverage** — faults injected into results produced by the
  stage-pipelined ``execute_batch`` executor must be detected by the
  results' own providers at the same ``coverage_floor``: the pipelined
  fast path shares the serial path's bytes, so its detection coverage
  must not regress either;
* **fused-coverage** — faults injected *inside the fused online tile
  loop* (persistent per-tile mantissa flips through the ``tile_result``
  chaos seam) must be detected at the same ``coverage_floor`` **and**
  provably early-aborted: every detected critical injection must show an
  ``abft_fused_early_aborts_total`` increment and an in-loop
  tiles-checked count strictly below the tile total — evidence the
  corrupted tile was flagged before the remaining tiles were checked;
* **model-coverage** — named-layer fault campaigns over the
  :mod:`repro.models` workloads (a mixed-plan float32 MLP and a float16
  attention block) must detect at least ``coverage_floor`` of the faults
  injected into *protected* layers, fault-free passes — including every
  float16 layer under the variance-adaptive tolerance — must report zero
  false positives, and the planner-mixed plan must run the model
  measurably faster than protecting every layer with full A-ABFT
  (otherwise per-layer planning buys nothing);
* **throughput** — a warm plan-cached :class:`~repro.engine.MatmulEngine`
  micro-benchmark must stay within ``throughput_tolerance`` of the
  committed per-call baseline in ``BENCH_engine.json``;
* **chaos-slo** — a quick chaos-recipe suite (stage stalls, backend
  dispatch failures, queue bursts, kernel bit-flips, deadline clock
  skew, plus worker-process kills against a sharded cluster frontend)
  runs against live serving stacks under closed-loop load and every
  declared SLO must hold: the p99 ceiling, the zero-silent-wrong-answer
  invariant, exact ``abft_serve_*`` counter reconciliation and the
  multi-window error-budget burn-rate limit.

All gates publish their measurements as ``abft_ci_gate_*`` gauges, so a
``--telemetry-out`` JSON-lines artifact records exactly what CI saw.
Thresholds and the local repro commands are documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .errors import ConfigurationError
from .telemetry import MetricsRegistry, get_registry, span

__all__ = [
    "GateResult",
    "coverage_gate",
    "default_gate_backends",
    "fused_coverage_gate",
    "model_coverage_gate",
    "pipeline_coverage_gate",
    "throughput_gate",
    "chaos_slo_gate",
    "run_ci_gate",
    "DEFAULT_COVERAGE_FLOOR",
    "DEFAULT_THROUGHPUT_TOLERANCE",
]

#: Minimum fraction of critical errors A-ABFT must detect.  Single-bit
#: mantissa campaigns measure ~90-91% across sizes (Figure 4 territory);
#: the floor leaves head room for sampling noise at the quick campaign's
#: injection count while still catching a broken tolerance path cold.
DEFAULT_COVERAGE_FLOOR = 0.85

#: Allowed slowdown of the warm per-call time versus the committed
#: baseline (0.30 = +30%; generous so shared-runner noise doesn't flap).
DEFAULT_THROUGHPUT_TOLERANCE = 0.30


@dataclass(frozen=True)
class GateResult:
    """Outcome of one gate."""

    gate: str
    passed: bool
    #: The measured quantity (detection rate, or warm seconds per call).
    measured: float
    #: The pass threshold the measurement was held against.
    threshold: float
    detail: str

    def describe(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.gate}: {self.detail}"


def _default_baseline() -> Path:
    """``BENCH_engine.json`` from the cwd, else next to the package."""
    cwd_candidate = Path.cwd() / "BENCH_engine.json"
    if cwd_candidate.exists():
        return cwd_candidate
    return Path(__file__).resolve().parents[2] / "BENCH_engine.json"


def coverage_gate(
    *,
    floor: float = DEFAULT_COVERAGE_FLOOR,
    quick: bool = True,
    seed: int = 2014,
    n: int | None = None,
    num_injections: int | None = None,
    backend: str = "numpy",
    registry: MetricsRegistry | None = None,
) -> GateResult:
    """Run a fault-injection campaign and gate on A-ABFT's detection rate.

    ``n``/``num_injections`` override the quick/full campaign scale (the
    tests use tiny campaigns; CI uses the defaults).  ``backend`` routes
    the campaign's reference multiplication through a named compute
    backend so injection sites land inside backend tile compute; the gate
    is named ``coverage`` for numpy and ``coverage[<backend>]``
    otherwise.
    """
    from .faults.campaign import CampaignConfig, FaultCampaign
    from .workloads import SUITE_UNIT

    reg = registry if registry is not None else get_registry()
    if n is None:
        n = 256 if quick else 512
    if num_injections is None:
        num_injections = 400 if quick else 1000
    config = CampaignConfig(
        n=n,
        suite=SUITE_UNIT,
        num_injections=num_injections,
        block_size=64,
        p=2,
        seed=seed,
        schemes=("aabft", "sea"),
        backend=backend,
    )
    with span(
        "ci_gate.coverage",
        registry=reg,
        n=n,
        injections=num_injections,
        backend=backend,
    ):
        campaign = FaultCampaign(config, registry=reg)
        result = campaign.run()
    rate = result.detection_rate("aabft")
    rate = 0.0 if math.isnan(rate) else rate
    critical = result.num_critical()
    baseline_clean = all(result.false_positive_free.values())
    backend_used = campaign.backend_used

    if backend == "numpy":
        gauges = reg.gauge(
            "abft_ci_gate_coverage",
            "Coverage-gate measurements of the last ci-gate run",
            ("quantity",),
        )
        gauges.labels(quantity="detection_rate").set(rate)
        gauges.labels(quantity="critical_errors").set(critical)
        gauges.labels(quantity="floor").set(floor)
        gauges.labels(quantity="baseline_clean").set(
            1.0 if baseline_clean else 0.0
        )
    by_backend = reg.gauge(
        "abft_ci_gate_coverage_by_backend",
        "Coverage-gate measurements per compute backend",
        ("backend", "quantity"),
    )
    by_backend.labels(backend=backend, quantity="detection_rate").set(rate)
    by_backend.labels(backend=backend, quantity="critical_errors").set(critical)
    by_backend.labels(backend=backend, quantity="floor").set(floor)
    by_backend.labels(backend=backend, quantity="baseline_clean").set(
        1.0 if baseline_clean else 0.0
    )

    # The per-backend gate exists to exercise that backend's tile compute;
    # a fallback means it silently re-measured numpy, so fail loudly.
    fell_back = backend_used != backend
    passed = baseline_clean and critical > 0 and rate >= floor and not fell_back
    detail = (
        f"A-ABFT detected {rate:.1%} of {critical} critical errors "
        f"(floor {floor:.1%}, {num_injections} injections at n={n}, "
        f"backend {backend_used!r}, "
        f"fault-free baseline {'clean' if baseline_clean else 'FLAGGED'})"
    )
    if fell_back:
        detail += f"; backend fell back: {campaign.backend_fallback}"
    gate_name = "coverage" if backend == "numpy" else f"coverage[{backend}]"
    return GateResult(
        gate=gate_name, passed=passed, measured=rate, threshold=floor,
        detail=detail,
    )


def pipeline_coverage_gate(
    *,
    floor: float = DEFAULT_COVERAGE_FLOOR,
    quick: bool = True,
    seed: int = 2014,
    n: int | None = None,
    num_injections: int | None = None,
    registry: MetricsRegistry | None = None,
) -> GateResult:
    """Gate detection coverage of the stage-pipelined batch executor.

    Runs a shared-weight batch through ``execute_batch`` under
    ``ExecutionPolicy(mode="pipelined")``, then injects single-bit
    mantissa flips into copies of the full-checksum results and re-checks
    each with the result's *own* provider (the tolerances the pipelined
    path computed).  Injections whose induced element error is critical
    under the probabilistic rounding-error model must be detected at
    ``floor`` — the same bar the serial campaign is held to — and the
    fault-free batch must be clean.  Fails loudly if the batch did not
    actually run pipelined (a silent fallback would gate nothing).
    """
    from .abft.checking import check_partitioned
    from .abft.classify import ErrorClassifier
    from .engine import AbftConfig, ExecutionPolicy, MatmulEngine

    reg = registry if registry is not None else get_registry()
    if n is None:
        n = 128 if quick else 256
    q = 64
    batch = 8
    if num_injections is None:
        num_injections = 200 if quick else 500
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n))
    bs = [rng.uniform(-1.0, 1.0, (n, q)) for _ in range(batch)]
    config = AbftConfig(block_size=64, p=2)

    with span(
        "ci_gate.pipeline_coverage",
        registry=reg,
        n=n,
        injections=num_injections,
    ):
        with MatmulEngine(config) as engine:
            results = engine.execute_batch(
                [(a, b) for b in bs],
                policy=ExecutionPolicy(mode="pipelined"),
            )
            modes = engine.registry.counter(
                "abft_engine_execute_batch_total", labelnames=("mode",)
            )
            pipelined_ran = modes.labels(mode="pipelined").get() >= 1.0
        baseline_clean = all(not r.detected for r in results)

        classifier = ErrorClassifier(omega=config.omega)
        # conservative per-element product bound: overestimating y shrinks
        # the critical set to the strongest errors, never inflates it
        y = float(np.abs(a).max()) * max(
            float(np.abs(b).max()) for b in bs
        )
        critical = detected_critical = 0
        for _ in range(num_injections):
            res = results[int(rng.integers(len(results)))]
            c_fc = res.c_fc.copy()
            # restrict to data elements so the inner-product length and
            # the y bound of the classifier apply to the flipped value
            while True:
                r = int(rng.integers(c_fc.shape[0]))
                c = int(rng.integers(c_fc.shape[1]))
                if not res.row_layout.is_checksum_index(
                    r
                ) and not res.col_layout.is_checksum_index(c):
                    break
            bit = int(rng.integers(52))  # binary64 mantissa bits
            bits = c_fc[r, c : c + 1].view(np.uint64)
            bits ^= np.uint64(1) << np.uint64(bit)
            delta = float(c_fc[r, c]) - float(res.c_fc[r, c])
            if not classifier.classify(delta, n, y).is_critical:
                continue
            critical += 1
            report = check_partitioned(
                c_fc, res.row_layout, res.col_layout, res.provider
            )
            if report.error_detected:
                detected_critical += 1
    rate = detected_critical / critical if critical else 0.0

    gauges = reg.gauge(
        "abft_ci_gate_pipeline_coverage",
        "Pipeline-coverage-gate measurements of the last ci-gate run",
        ("quantity",),
    )
    gauges.labels(quantity="detection_rate").set(rate)
    gauges.labels(quantity="critical_errors").set(critical)
    gauges.labels(quantity="floor").set(floor)
    gauges.labels(quantity="baseline_clean").set(
        1.0 if baseline_clean else 0.0
    )
    gauges.labels(quantity="pipelined_ran").set(1.0 if pipelined_ran else 0.0)

    passed = (
        baseline_clean and pipelined_ran and critical > 0 and rate >= floor
    )
    detail = (
        f"pipelined batch detected {rate:.1%} of {critical} critical "
        f"errors (floor {floor:.1%}, {num_injections} injections at "
        f"n={n}, batch {batch}, "
        f"fault-free batch {'clean' if baseline_clean else 'FLAGGED'}"
        f"{'' if pipelined_ran else ', did NOT run pipelined'})"
    )
    return GateResult(
        gate="pipeline-coverage", passed=passed, measured=rate,
        threshold=floor, detail=detail,
    )


def fused_coverage_gate(
    *,
    floor: float = DEFAULT_COVERAGE_FLOOR,
    quick: bool = True,
    seed: int = 2014,
    n: int | None = None,
    num_injections: int | None = None,
    registry: MetricsRegistry | None = None,
) -> GateResult:
    """Gate in-loop detection and early abort of the fused online path.

    Each trial picks a result tile of a ``fusion="fused"`` multiplication
    and flips one mantissa bit of a data element *inside the tile loop*
    through the ``tile_result`` chaos seam — persistently, re-applying
    the flip after every tile recompute, so a critical flip cannot heal.
    Detection is judged by the result's canonical report; the early-abort
    proof is per-trial counter deltas: every detected critical injection
    must increment ``abft_fused_early_aborts_total`` exactly once and
    check strictly fewer tiles than the tile total (the corrupted tile
    stopped the in-loop checking before the remaining tiles ran).  The
    fault-free baseline must be clean and must actually run fused.
    """
    from .abft.classify import ErrorClassifier
    from .engine import AbftConfig, MatmulEngine
    from .kernels.online_fused import plan_fused_tiles

    reg = registry if registry is not None else get_registry()
    if n is None:
        n = 128 if quick else 256
    q = 64
    if num_injections is None:
        num_injections = 200 if quick else 500
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (n, n))
    b = rng.uniform(-1.0, 1.0, (n, q))
    # A small block size gives the quick shapes a real multi-tile grid,
    # so "checked fewer tiles than the total" is demonstrable.
    config = AbftConfig(
        block_size=32, p=2, fusion="fused", fused_tile_blocks=1
    )

    with span(
        "ci_gate.fused_coverage",
        registry=reg,
        n=n,
        injections=num_injections,
    ):
        with MatmulEngine(config) as engine:
            baseline = engine.matmul(a, b)
            fused_ran = baseline.fused
            baseline_clean = not baseline.detected
            tiles_total = len(
                plan_fused_tiles(
                    baseline.row_layout, baseline.col_layout,
                    config.fused_tile_blocks,
                )
            )
            aborts = engine.registry.counter("abft_fused_early_aborts_total")
            checked = engine.registry.counter("abft_fused_tiles_checked_total")

            classifier = ErrorClassifier(omega=config.omega)
            # conservative per-element product bound (see pipeline gate)
            y = float(np.abs(a).max()) * float(np.abs(b).max())
            critical = detected_critical = early_aborted = 0
            for _ in range(num_injections):
                # Never the last tile: an abort there leaves no tile
                # unchecked, so "cut short" would be unprovable.
                target = int(rng.integers(tiles_total - 1))
                bit = int(rng.integers(52))  # binary64 mantissa bits
                trial = {"delta": None}

                def hook(event, **kwargs):
                    if event != "tile_result":
                        return
                    if kwargs["tile_index"] != target:
                        return
                    tile = kwargs["c_tile"]
                    if trial["delta"] is None:
                        # First firing picks a data element of the tile
                        # (checksum flips are detectable too, but only
                        # data flips fit the criticality model).
                        while True:
                            r = int(rng.integers(tile.shape[0]))
                            c = int(rng.integers(tile.shape[1]))
                            if tile[r, c] != 0.0:
                                break
                        trial["site"] = (r, c)
                        trial["before"] = float(tile[r, c])
                    r, c = trial["site"]
                    bits = np.ascontiguousarray(
                        tile[r, c : c + 1]
                    ).view(np.uint64)
                    bits ^= np.uint64(1) << np.uint64(bit)
                    tile[r, c] = float(bits.view(np.float64)[0])
                    trial["delta"] = tile[r, c] - trial["before"]

                aborts_before = aborts.get()
                checked_before = checked.get()
                engine.set_chaos_hook(hook)
                try:
                    result = engine.matmul(a, b)
                finally:
                    engine.set_chaos_hook(None)
                if trial["delta"] is None or not classifier.classify(
                    trial["delta"], n, y
                ).is_critical:
                    continue
                critical += 1
                if not result.detected:
                    continue
                detected_critical += 1
                aborted = aborts.get() - aborts_before == 1.0
                cut_short = checked.get() - checked_before < tiles_total
                if aborted and cut_short:
                    early_aborted += 1
    rate = detected_critical / critical if critical else 0.0
    abort_rate = early_aborted / critical if critical else 0.0

    gauges = reg.gauge(
        "abft_ci_gate_fused_coverage",
        "Fused-coverage-gate measurements of the last ci-gate run",
        ("quantity",),
    )
    gauges.labels(quantity="detection_rate").set(rate)
    gauges.labels(quantity="critical_errors").set(critical)
    gauges.labels(quantity="floor").set(floor)
    gauges.labels(quantity="baseline_clean").set(
        1.0 if baseline_clean else 0.0
    )
    gauges.labels(quantity="fused_ran").set(1.0 if fused_ran else 0.0)
    gauges.labels(quantity="early_abort_rate").set(abort_rate)
    gauges.labels(quantity="tiles_total").set(tiles_total)

    # Every detected critical injection must be backed by an early abort
    # that stopped the in-loop checking short — detection without the
    # abort evidence means the fused path gated nothing.
    passed = (
        baseline_clean
        and fused_ran
        and critical > 0
        and rate >= floor
        and early_aborted == detected_critical
    )
    detail = (
        f"fused tile loop detected {rate:.1%} of {critical} critical "
        f"in-loop errors, all early-aborted: "
        f"{early_aborted == detected_critical} "
        f"(floor {floor:.1%}, {num_injections} injections at n={n}, "
        f"{tiles_total} tiles, "
        f"fault-free baseline {'clean' if baseline_clean else 'FLAGGED'}"
        f"{'' if fused_ran else ', did NOT run fused'})"
    )
    return GateResult(
        gate="fused-coverage", passed=passed, measured=rate,
        threshold=floor, detail=detail,
    )


def model_coverage_gate(
    *,
    floor: float = DEFAULT_COVERAGE_FLOOR,
    quick: bool = True,
    seed: int = 2014,
    trials_per_layer: int | None = None,
    clean_trials: int | None = None,
    latency_repeats: int | None = None,
    registry: MetricsRegistry | None = None,
) -> GateResult:
    """Gate the model workloads' per-layer detection, false positives and
    the planner's latency advantage.

    Three checks, all of which must hold:

    * faults injected at named *protected* layers of a mixed-plan float32
      MLP and a float16 attention block are detected at ``floor``
      (unchecked layers are an explicit planner-accepted hole, accounted
      separately, never averaged in);
    * every fault-free pass is clean — for the float16 model this pins
      the variance-adaptive tolerance's zero-false-positive calibration;
    * the planner-mixed plan runs the MLP measurably faster (median over
      ``latency_repeats`` warm passes) than an all-full-A-ABFT plan of
      the same model — the roofline argument the planner exists for.
    """
    from .engine import AbftConfig, MatmulEngine
    from .models import ModelCampaign, ModelRunner, ProtectionPlanner, attention, mlp

    reg = registry if registry is not None else get_registry()
    if trials_per_layer is None:
        trials_per_layer = 6 if quick else 16
    if clean_trials is None:
        clean_trials = 3 if quick else 8
    if latency_repeats is None:
        latency_repeats = 7 if quick else 15

    cfg = AbftConfig(block_size=32, p=2)
    model32 = mlp(
        name="gate-mlp", batch=96, d_in=192, hidden=384, depth=6, d_out=48
    )
    model16 = attention(
        name="gate-attn16", batch=64, d_model=128, dtype="float16"
    )
    # ``floor`` is the *detection-rate* threshold and may deliberately be
    # set unreachable (> 1) to exercise the failure path; the planner's
    # flop-coverage target is a fraction by definition, so clamp it.
    planner = ProtectionPlanner(
        cfg, coverage_target=min(max(floor, 0.0), 1.0)
    )
    full_planner = ProtectionPlanner(
        cfg, coverage_target=1.0, full_intensity=0.0, sea_intensity=0.0
    )

    with span(
        "ci_gate.model_coverage",
        registry=reg,
        trials_per_layer=trials_per_layer,
    ):
        with MatmulEngine(cfg) as engine:
            runner = ModelRunner(engine, registry=reg)
            campaign = ModelCampaign(
                runner,
                trials_per_layer=trials_per_layer,
                clean_trials=clean_trials,
                seed=seed,
            )
            plan32 = planner.plan(model32)
            plan16 = planner.plan(model16)
            res32 = campaign.run(model32, plan32)
            res16 = campaign.run(model16, plan16)

            # Latency: planner-mixed vs all-full on the same warm engine.
            full32 = full_planner.plan(model32)
            runner.run(model32, plan32)  # warm plan caches for both plans
            runner.run(model32, full32)
            mixed_times, full_times = [], []
            for _ in range(latency_repeats):
                mixed_times.append(runner.run(model32, plan32).seconds)
                full_times.append(runner.run(model32, full32).seconds)
            mixed_s = float(np.median(mixed_times))
            full_s = float(np.median(full_times))

    protected_trials = res32.protected_trials + res16.protected_trials
    protected_detected = res32.protected_detected + res16.protected_detected
    rate = protected_detected / protected_trials if protected_trials else 0.0
    false_positives = res32.false_positives + res16.false_positives
    clean_runs = res32.clean_trials + res16.clean_trials
    latency_ratio = mixed_s / full_s if full_s else math.inf
    mixed_faster = mixed_s < full_s and plan32.mixed

    gauges = reg.gauge(
        "abft_ci_gate_model_coverage",
        "Model-coverage-gate measurements of the last ci-gate run",
        ("quantity",),
    )
    gauges.labels(quantity="detection_rate").set(rate)
    gauges.labels(quantity="protected_trials").set(protected_trials)
    gauges.labels(quantity="floor").set(floor)
    gauges.labels(quantity="false_positives").set(false_positives)
    gauges.labels(quantity="clean_runs").set(clean_runs)
    gauges.labels(quantity="latency_ratio").set(latency_ratio)
    gauges.labels(quantity="mixed_seconds").set(mixed_s)
    gauges.labels(quantity="full_seconds").set(full_s)
    gauges.labels(quantity="plan_coverage").set(plan32.coverage)

    passed = (
        protected_trials > 0
        and rate >= floor
        and false_positives == 0
        and clean_runs > 0
        and mixed_faster
    )
    detail = (
        f"protected layers detected {rate:.1%} of {protected_trials} "
        f"injected faults (floor {floor:.1%}; fp32 MLP + fp16 attention), "
        f"{false_positives} false positives over {clean_runs} clean passes, "
        f"mixed/full latency {latency_ratio:.2f} "
        f"({mixed_s * 1e3:.1f} vs {full_s * 1e3:.1f} ms"
        f"{'' if plan32.mixed else ', plan NOT mixed'})"
    )
    return GateResult(
        gate="model-coverage", passed=passed, measured=rate,
        threshold=floor, detail=detail,
    )


def throughput_gate(
    *,
    tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
    quick: bool = True,
    seed: int = 20140623,
    baseline_path: str | Path | None = None,
    repeats: int | None = None,
    registry: MetricsRegistry | None = None,
) -> GateResult:
    """Micro-benchmark the warm engine and gate on per-call regression.

    The baseline is the ``engine_seconds / repeats`` per-call time in
    ``BENCH_engine.json`` (same size, block size and ``p``); the gate
    fails when the measured warm per-call time exceeds it by more than
    ``tolerance``.
    """
    from .engine import AbftConfig, MatmulEngine

    reg = registry if registry is not None else get_registry()
    path = Path(baseline_path) if baseline_path is not None else _default_baseline()
    if not path.exists():
        raise ConfigurationError(
            f"throughput baseline {path} not found; pass --baseline or run "
            "benchmarks/bench_engine_throughput.py first"
        )
    baseline = json.loads(path.read_text())
    baseline_per_call = baseline["engine_seconds"] / baseline["repeats"]
    if repeats is None:
        repeats = 15 if quick else 50

    rng = np.random.default_rng(seed)
    size = int(baseline["size"])
    config = AbftConfig(block_size=int(baseline["block_size"]), p=int(baseline["p"]))
    a = rng.uniform(-1, 1, (size, size))
    bs = [rng.uniform(-1, 1, (size, size)) for _ in range(repeats)]
    with span("ci_gate.throughput", registry=reg, repeats=repeats):
        with MatmulEngine(config, registry=reg) as engine:
            engine.matmul(a, bs[0])  # warm the plan cache
            start = time.perf_counter()
            for b in bs:
                engine.matmul(a, b)
            measured_per_call = (time.perf_counter() - start) / repeats

    threshold = baseline_per_call * (1.0 + tolerance)
    gauges = reg.gauge(
        "abft_ci_gate_throughput",
        "Throughput-gate measurements of the last ci-gate run (seconds/call)",
        ("quantity",),
    )
    gauges.labels(quantity="measured_per_call").set(measured_per_call)
    gauges.labels(quantity="baseline_per_call").set(baseline_per_call)
    gauges.labels(quantity="threshold_per_call").set(threshold)

    passed = measured_per_call <= threshold
    detail = (
        f"warm engine {measured_per_call * 1e3:.2f} ms/call vs baseline "
        f"{baseline_per_call * 1e3:.2f} ms/call "
        f"(limit {threshold * 1e3:.2f} ms/call = +{tolerance:.0%}, "
        f"{repeats} calls at {size}x{size})"
    )
    return GateResult(
        gate="throughput", passed=passed, measured=measured_per_call,
        threshold=threshold, detail=detail,
    )


def chaos_slo_gate(
    *,
    quick: bool = True,
    recipes_path: str | Path | None = None,
    slo=None,
    seed: int = 2014,
    report_dir: str | Path | None = None,
    registry: MetricsRegistry | None = None,
    cluster_workers: int = 2,
) -> GateResult:
    """Run a chaos-recipe suite under live load and gate on the SLOs.

    Replays ``recipes_path`` (default: the built-in quick suite — one
    recipe per fault kind) via :func:`repro.chaos.run_chaos` — most kinds
    against a private single-process server, ``worker_kill`` recipes
    against a ``cluster_workers``-shard
    :class:`~repro.cluster.frontend.ClusterFrontend` — and fails on
    **any** SLO breach: a p99 past the ceiling, a silent wrong answer, a
    client/counter accounting mismatch, a dropped request or a sustained
    multi-window burn-rate overrun.  The suite must also actually inject
    faults — a run with zero injections gates nothing and fails.
    ``report_dir`` additionally writes the dated VALIDATION_REPORT pair
    there (what the ``chaos-soak`` CI job uploads).
    """
    from .chaos import SLOSpec, default_quick_suite, load_recipes, run_chaos

    reg = registry if registry is not None else get_registry()
    recipes = (
        load_recipes(recipes_path)
        if recipes_path is not None
        else default_quick_suite()
    )
    slo = slo if slo is not None else SLOSpec()
    requests_per_wave = 24 if quick else 64
    with span("ci_gate.chaos", registry=reg, recipes=len(recipes)):
        report = run_chaos(
            recipes,
            slo,
            seed=seed,
            requests_per_wave=requests_per_wave,
            registry=reg,
            cluster_workers=cluster_workers,
        )
    if report_dir is not None:
        report.write(report_dir)

    injections = sum(o.injections for o in report.recipes)
    traffic = report.result
    gauges = reg.gauge(
        "abft_ci_gate_chaos",
        "Chaos-SLO-gate measurements of the last ci-gate run",
        ("quantity",),
    )
    gauges.labels(quantity="p99_s").set(traffic.p99_s)
    gauges.labels(quantity="p99_ceiling_s").set(slo.p99_latency_s)
    gauges.labels(quantity="breaches").set(len(report.breaches))
    gauges.labels(quantity="silent_wrong").set(traffic.silent_wrong)
    gauges.labels(quantity="dropped").set(traffic.dropped)
    gauges.labels(quantity="reconciled").set(
        0.0 if report.reconciliation_diffs else 1.0
    )
    gauges.labels(quantity="burn_worst").set(
        report.burn.get("worst_multi_window", 0.0)
    )
    gauges.labels(quantity="burn_limit").set(slo.burn_rate_limit)
    gauges.labels(quantity="injections").set(injections)

    passed = report.ok and injections > 0
    detail = (
        f"{len(recipes)} recipes / {injections} injections over "
        f"{traffic.submitted} requests in {report.wall_s:.1f}s: "
        f"p99 {traffic.p99_s * 1e3:.1f} ms "
        f"(ceiling {slo.p99_latency_s * 1e3:.1f} ms), "
        f"silent wrong {traffic.silent_wrong}, dropped {traffic.dropped}, "
        f"worst burn {report.burn.get('worst_multi_window', 0.0):.2f} "
        f"(limit {slo.burn_rate_limit:g}), "
        f"accounting {'reconciled' if not report.reconciliation_diffs else 'MISMATCH'}"
    )
    if not injections:
        detail += "; suite injected NOTHING — gate cannot attest anything"
    if report.breaches:
        detail += "; breaches: " + "; ".join(
            f"{b.slo} ({b.measured:g} vs {b.threshold:g})"
            for b in report.breaches
        )
    return GateResult(
        gate="chaos-slo",
        passed=passed,
        measured=float(len(report.breaches)),
        threshold=0.0,
        detail=detail,
    )


def default_gate_backends() -> tuple[str, ...]:
    """``numpy`` plus every available deterministic non-numpy backend."""
    from .backends import default_registry

    registry = default_registry()
    names = ["numpy"]
    for name in registry.names():
        if name == "numpy":
            continue
        backend = registry.get(name)
        available, _ = backend.availability()
        if available and backend.capabilities().deterministic:
            names.append(name)
    return tuple(names)


def run_ci_gate(
    *,
    quick: bool = True,
    coverage_floor: float = DEFAULT_COVERAGE_FLOOR,
    throughput_tolerance: float = DEFAULT_THROUGHPUT_TOLERANCE,
    baseline_path: str | Path | None = None,
    seed: int = 2014,
    backends: tuple[str, ...] | None = None,
    chaos: bool = True,
    chaos_recipes_path: str | Path | None = None,
    chaos_slo=None,
    chaos_report_dir: str | Path | None = None,
    registry: MetricsRegistry | None = None,
) -> tuple[int, list[GateResult]]:
    """Run all gates; returns ``(exit_code, results)`` with 0 == all pass.

    The coverage gate runs once per entry of ``backends`` (default:
    :func:`default_gate_backends` — numpy plus every available
    deterministic backend), so the detection floor is held inside each
    backend's dispatched tile compute, not just the serial path.  The
    chaos-SLO gate runs last (``chaos=False`` skips it; pass
    ``chaos_recipes_path`` / ``chaos_slo`` to override the built-in quick
    suite and default :class:`~repro.chaos.SLOSpec`).
    """
    reg = registry if registry is not None else get_registry()
    if backends is None:
        backends = default_gate_backends()
    results = [
        coverage_gate(
            floor=coverage_floor,
            quick=quick,
            seed=seed,
            backend=backend,
            registry=reg,
        )
        for backend in backends
    ]
    results.append(
        pipeline_coverage_gate(
            floor=coverage_floor,
            quick=quick,
            seed=seed,
            registry=reg,
        )
    )
    results.append(
        fused_coverage_gate(
            floor=coverage_floor,
            quick=quick,
            seed=seed,
            registry=reg,
        )
    )
    results.append(
        model_coverage_gate(
            floor=coverage_floor,
            quick=quick,
            seed=seed,
            registry=reg,
        )
    )
    results.append(
        throughput_gate(
            tolerance=throughput_tolerance,
            quick=quick,
            baseline_path=baseline_path,
            registry=reg,
        )
    )
    if chaos:
        results.append(
            chaos_slo_gate(
                quick=quick,
                recipes_path=chaos_recipes_path,
                slo=chaos_slo,
                seed=seed,
                report_dir=chaos_report_dir,
                registry=reg,
            )
        )
    pass_gauge = reg.gauge(
        "abft_ci_gate_pass", "1 when the gate passed, 0 when it failed", ("gate",)
    )
    for result in results:
        pass_gauge.labels(gate=result.gate).set(1.0 if result.passed else 0.0)
    return (0 if all(r.passed for r in results) else 1), results
