"""Pluggable compute backends with capability negotiation and autotuning.

The engine's heavy GEMM stage dispatches through this subsystem instead
of a hard-wired ``a @ b``:

* :class:`Backend` / :class:`BackendCapabilities` — the execution
  contract and the capability descriptor negotiation consults;
* :class:`BackendRegistry` / :func:`negotiate` — name -> backend mapping
  and the selection policy (config pin > ``AABFT_BACKEND`` env pin >
  autotuned winner > ``numpy``), with a never-silent fallback to
  ``numpy`` recorded on results and in ``abft_backend_*`` telemetry;
* three shipped backends — :class:`NumpyBackend` (serial bitwise
  reference), :class:`BlockedBackend` (tile-parallel thread-pool GEMM
  mapping the paper's CUDA result-block grid onto workers) and
  :class:`CupyBackend` (guarded-import device GEMM, capability-gated);
* :class:`Autotuner` / :class:`AutotuneCache` — per-``(shape, dtype,
  scheme)`` timing of candidate ``(backend, tile)`` configs with winners
  persisted on disk and fed into execution plans.

The load-bearing invariant: tile geometry is a *plan* property
(``AbftConfig.gemm_tile``), and every deterministic backend executes the
same canonical tile list (:func:`repro.kernels.matmul_tiled.plan_tiles`)
— so ``numpy`` and ``blocked`` results are bitwise identical by
construction, for every tile size, including clipped edge tiles.

Example
-------
>>> import numpy as np
>>> from repro.backends import get_backend
>>> a = np.ones((8, 4)); b = np.ones((4, 6))
>>> serial = get_backend("numpy").matmul(a, b, tile=3)
>>> parallel = get_backend("blocked").matmul(a, b, tile=3)
>>> bool((serial == parallel).all())
True
"""

from .autotune import (
    ENV_AUTOTUNE_CACHE,
    Autotuner,
    AutotuneCache,
    TunedChoice,
    default_cache_path,
)
from .base import Backend, BackendCapabilities, BackendUnavailable
from .blocked import BlockedBackend
from .cupy_backend import CupyBackend
from .numpy_backend import NumpyBackend
from .registry import (
    DEFAULT_BACKEND,
    ENV_BACKEND,
    ENV_FUSION,
    BackendRegistry,
    BackendSelection,
    default_registry,
    get_backend,
    negotiate,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendRegistry",
    "BackendSelection",
    "BackendUnavailable",
    "BlockedBackend",
    "CupyBackend",
    "NumpyBackend",
    "Autotuner",
    "AutotuneCache",
    "TunedChoice",
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "ENV_AUTOTUNE_CACHE",
    "ENV_FUSION",
    "default_cache_path",
    "default_registry",
    "get_backend",
    "negotiate",
]
