"""Backend/tile autotuner with a persisted on-disk winner cache.

In the spirit of A-ABFT's "autonomous, no user-provided tuning": for each
``(shape, dtype, scheme, block_size, p)`` key the tuner times candidate
``(backend, tile)`` configurations on warm-up calls over synthetic
operands of the *encoded* GEMM shapes (checksum rows/columns included, so
the timed problem is exactly what the engine dispatches), picks the
fastest, and persists the winner to a JSON cache
(``AABFT_AUTOTUNE_CACHE``, default ``~/.cache/aabft/autotune.json``).

The ``numpy`` single-tile reference is always timed in the same session,
and a non-``numpy`` winner must beat it by the hysteresis margin —
otherwise the reference wins.  The autotuner therefore *cannot* select a
configuration slower than the ``numpy`` default (the
``BENCH_backends.json`` acceptance criterion holds by construction, and
the benchmark re-verifies it empirically).

Trials only run through the explicit entry points
(:meth:`Autotuner.tune`, ``aabft autotune``,
``MatmulEngine.autotune()``); ordinary engine calls consult the cache via
:meth:`Autotuner.lookup` and never pay timing overhead inline.

Automatic selection only considers *deterministic* backends, so an
autotuned winner never changes result bytes — it only changes how fast
they are produced.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

import numpy as np

from ..abft.encoding import PartitionedLayout
from ..telemetry import MetricsRegistry
from .registry import BackendRegistry, default_registry

__all__ = [
    "Autotuner",
    "AutotuneCache",
    "TunedChoice",
    "ENV_AUTOTUNE_CACHE",
    "default_cache_path",
]

#: Environment variable overriding the on-disk cache location.
ENV_AUTOTUNE_CACHE = "AABFT_AUTOTUNE_CACHE"


def default_cache_path() -> Path:
    """``$AABFT_AUTOTUNE_CACHE``, else ``~/.cache/aabft/autotune.json``."""
    env = os.environ.get(ENV_AUTOTUNE_CACHE, "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "aabft" / "autotune.json"


@dataclass(frozen=True)
class TunedChoice:
    """One cached autotune winner.

    Attributes
    ----------
    backend / tile:
        The winning configuration (``tile=None`` = one full-result tile).
    per_call_s:
        The winner's best-of-repeats GEMM seconds.
    baseline_per_call_s:
        The ``numpy`` single-tile reference timed in the same session.
    fusion / fused_tile_blocks:
        The winning fusion strategy: ``"fused"`` when the online-ABFT
        tile loop (GEMM + in-loop check) beat the separate GEMM + grid
        check by the hysteresis margin on this backend, else
        ``"separate"``.
    fused_per_call_s / separate_check_s:
        The timed evidence behind the fusion decision: best fused
        multiply+check seconds, and the separate grid-check seconds that
        ride on top of ``per_call_s`` in the separate strategy.
    """

    backend: str
    tile: int | None
    per_call_s: float
    baseline_per_call_s: float
    fusion: str = "separate"
    fused_tile_blocks: int | None = None
    fused_per_call_s: float | None = None
    separate_check_s: float | None = None

    @property
    def speedup(self) -> float:
        """Reference seconds over winner seconds (>= 1 by construction)."""
        if self.per_call_s <= 0.0:
            return float("inf")
        return self.baseline_per_call_s / self.per_call_s


class _FileLock:
    """An advisory ``flock`` over ``<path>.lock`` (no-op without fcntl).

    Serialises cross-process cache writers.  Platforms without ``fcntl``
    (or filesystems refusing locks) degrade to the old last-writer-wins
    behaviour instead of failing — the cache is a performance artefact,
    never a correctness one.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self._handle = None

    def __enter__(self) -> "_FileLock":
        try:
            import fcntl

            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a+")
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
        except (ImportError, OSError):
            if self._handle is not None:
                self._handle.close()
            self._handle = None
        return self

    def __exit__(self, *exc_info) -> None:
        if self._handle is not None:
            try:
                import fcntl

                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except (ImportError, OSError):
                pass
            self._handle.close()
            self._handle = None


def _parse_entries(text: str) -> dict[str, TunedChoice]:
    """Decode a cache file's entries; corrupt or missing data reads empty."""
    entries: dict[str, TunedChoice] = {}
    try:
        raw = json.loads(text)
        for key, payload in raw.get("entries", {}).items():
            entries[key] = TunedChoice(
                backend=str(payload["backend"]),
                tile=(
                    None
                    if payload.get("tile") is None
                    else int(payload["tile"])
                ),
                per_call_s=float(payload["per_call_s"]),
                baseline_per_call_s=float(payload["baseline_per_call_s"]),
                # Fusion fields arrived later; pre-existing cache files
                # read as the historical separate strategy.
                fusion=str(payload.get("fusion", "separate")),
                fused_tile_blocks=(
                    None
                    if payload.get("fused_tile_blocks") is None
                    else int(payload["fused_tile_blocks"])
                ),
                fused_per_call_s=(
                    None
                    if payload.get("fused_per_call_s") is None
                    else float(payload["fused_per_call_s"])
                ),
                separate_check_s=(
                    None
                    if payload.get("separate_check_s") is None
                    else float(payload["separate_check_s"])
                ),
            )
    except (ValueError, KeyError, TypeError):
        entries = {}
    return entries


class AutotuneCache:
    """Thread- and process-safe, crash-tolerant JSON store of winners.

    Writes are atomic (temp file + rename) and **merge-on-write** under
    an advisory file lock: a writer re-reads the file inside the lock,
    folds its new winner into whatever other processes persisted since
    this process last looked, and only then rewrites — so concurrent
    workers (e.g. cluster shards sharing one cache) cannot clobber each
    other's winners.  A corrupt or missing file reads as empty instead of
    failing, so a broken cache can only cost re-tuning, never
    correctness.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_cache_path()
        self._lock = threading.Lock()
        self._entries: dict[str, TunedChoice] | None = None

    def _read_disk(self) -> dict[str, TunedChoice]:
        try:
            text = self.path.read_text()
        except OSError:
            return {}
        return _parse_entries(text)

    def _load_locked(self) -> dict[str, TunedChoice]:
        if self._entries is None:
            self._entries = self._read_disk()
        return self._entries

    def get(self, key: str) -> TunedChoice | None:
        """The cached winner for a key, or ``None``."""
        with self._lock:
            return self._load_locked().get(key)

    def put(self, key: str, choice: TunedChoice) -> None:
        """Store a winner; persist atomically via read-merge-write."""
        with self._lock:
            self._load_locked()
            with _FileLock(self.path.with_name(self.path.name + ".lock")):
                # Fold in winners other processes persisted since our
                # last read — their keys survive, ours lands on top.
                merged = self._read_disk()
                merged.update(self._entries)
                merged[key] = choice
                self._entries = merged
                payload = {
                    "version": 1,
                    "entries": {
                        k: asdict(v) for k, v in sorted(merged.items())
                    },
                }
                try:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    tmp = self.path.with_name(self.path.name + ".tmp")
                    tmp.write_text(json.dumps(payload, indent=2) + "\n")
                    os.replace(tmp, self.path)
                except OSError:
                    # An unwritable cache degrades to in-memory only.
                    pass

    def keys(self) -> list[str]:
        """All cached keys (sorted)."""
        with self._lock:
            return sorted(self._load_locked())

    def __len__(self) -> int:
        with self._lock:
            return len(self._load_locked())

    def clear(self) -> None:
        """Drop every entry (and the on-disk file, if any)."""
        with self._lock:
            self._entries = {}
            try:
                self.path.unlink(missing_ok=True)
            except OSError:
                pass


def _encoded_dims(m: int, q: int, block_size: int) -> tuple[int, int]:
    """Encoded result dims (data + checksum rows/cols) for an m x q result."""
    m_pad = m + (-m) % block_size
    q_pad = q + (-q) % block_size
    rows = PartitionedLayout(data_rows=m_pad, block_size=block_size)
    cols = PartitionedLayout(data_rows=q_pad, block_size=block_size)
    return rows.encoded_rows, cols.encoded_rows


class Autotuner:
    """Times candidate ``(backend, tile)`` configs and caches the winner.

    Parameters
    ----------
    cache:
        The :class:`AutotuneCache`; defaults to the on-disk cache at
        :func:`default_cache_path`.
    registry:
        Backend registry supplying candidates; defaults to the process
        registry.
    repeats:
        Timed calls per candidate (best-of is kept).
    hysteresis:
        Fractional margin a non-``numpy`` winner must beat the reference
        by (guards against noise-driven flapping and guarantees the
        winner is never slower than the default).
    metrics_registry:
        Target for the ``abft_backend_autotune_total`` counter.
    """

    def __init__(
        self,
        cache: AutotuneCache | None = None,
        *,
        registry: BackendRegistry | None = None,
        repeats: int = 3,
        hysteresis: float = 0.05,
        metrics_registry: MetricsRegistry | None = None,
    ) -> None:
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if not 0.0 <= hysteresis < 1.0:
            raise ValueError(f"hysteresis must be in [0, 1), got {hysteresis}")
        self.cache = cache if cache is not None else AutotuneCache()
        self.registry = registry if registry is not None else default_registry()
        self.repeats = repeats
        self.hysteresis = hysteresis
        reg = metrics_registry if metrics_registry is not None else MetricsRegistry()
        self._m_events = reg.counter(
            "abft_backend_autotune_total",
            "Autotuner events (cache_hit / cache_miss / tuned)",
            ("event",),
        )
        self._m_fusion = reg.counter(
            "abft_fused_autotune_total",
            "Fusion-strategy autotune decisions (fused / separate / "
            "unsupported)",
            ("decision",),
        )

    # ------------------------------------------------------------------
    def key(self, m: int, n: int, q: int, dtype, config) -> str:
        """The cache key: shape, dtype, scheme, block size and p."""
        return (
            f"{m}x{n}x{q}/{np.dtype(dtype).name}/{config.scheme}"
            f"/bs{config.block_size}/p{config.p}"
        )

    def lookup(self, m: int, n: int, q: int, dtype, config) -> TunedChoice | None:
        """The cached winner for a call signature (no timing, ever)."""
        choice = self.cache.get(self.key(m, n, q, dtype, config))
        self._m_events.labels(
            event="cache_hit" if choice is not None else "cache_miss"
        ).inc()
        return choice

    def candidate_tiles(self, m: int, q: int, block_size: int) -> list[int]:
        """Tile-edge candidates: the encoding block and small multiples,
        capped to tiles that actually subdivide the encoded result."""
        rows_enc, cols_enc = _encoded_dims(m, q, block_size)
        largest = max(rows_enc, cols_enc)
        tiles = [
            t
            for t in (block_size, 2 * block_size, 4 * block_size)
            if t < largest
        ]
        return tiles or [block_size]

    def tune(
        self,
        m: int,
        n: int,
        q: int,
        *,
        dtype=np.float64,
        config=None,
        backends: tuple[str, ...] | None = None,
        force: bool = False,
        seed: int = 20140101,
    ) -> TunedChoice:
        """Time candidates for one call signature and persist the winner.

        Returns the cached winner without timing when one exists (pass
        ``force=True`` to re-tune).  Candidate backends default to every
        registered backend that is available and deterministic (automatic
        selection must never change result bytes).
        """
        from ..engine.config import AbftConfig

        cfg = config if config is not None else AbftConfig()
        cache_key = self.key(m, n, q, dtype, cfg)
        if not force:
            cached = self.cache.get(cache_key)
            if cached is not None:
                self._m_events.labels(event="cache_hit").inc()
                return cached

        rows_enc, cols_enc = _encoded_dims(m, q, cfg.block_size)
        rng = np.random.default_rng(seed)
        dt = np.dtype(dtype)
        a = rng.standard_normal((rows_enc, n)).astype(dt, copy=False)
        b = rng.standard_normal((n, cols_enc)).astype(dt, copy=False)

        baseline = self._time("numpy", None, a, b)
        best = TunedChoice(
            backend="numpy",
            tile=cfg.gemm_tile,
            per_call_s=baseline,
            baseline_per_call_s=baseline,
        )
        if backends is None:
            names = [
                name
                for name in self.registry.names()
                if name != "numpy"
                and self.registry.get(name).availability()[0]
                and self.registry.get(name).capabilities().deterministic
            ]
        else:
            names = [n_ for n_ in backends if n_ != "numpy"]
        for name in names:
            for tile in self.candidate_tiles(m, q, cfg.block_size):
                seconds = self._time(name, tile, a, b)
                if seconds < best.per_call_s:
                    best = TunedChoice(
                        backend=name,
                        tile=tile,
                        per_call_s=seconds,
                        baseline_per_call_s=baseline,
                    )
        if (
            best.backend != "numpy"
            and best.per_call_s > baseline * (1.0 - self.hysteresis)
        ):
            # Not convincingly faster than the reference: keep numpy.
            best = TunedChoice(
                backend="numpy",
                tile=cfg.gemm_tile,
                per_call_s=baseline,
                baseline_per_call_s=baseline,
            )
        best = self._tune_fusion(best, cfg, a, b, m, q)
        self.cache.put(cache_key, best)
        self._m_events.labels(event="tuned").inc()
        return best

    def candidate_tile_blocks(self, m: int, q: int, block_size: int) -> list[int]:
        """Fused tile-edge candidates in whole encoded blocks per axis,
        capped to edges that actually subdivide the encoded result."""
        rows_enc, cols_enc = _encoded_dims(m, q, block_size)
        stride = block_size + 1
        largest = max(rows_enc, cols_enc)
        return [tb for tb in (2, 4, 8) if tb * stride < largest]

    def _tune_fusion(
        self, best: TunedChoice, cfg, a: np.ndarray, b: np.ndarray,
        m: int, q: int,
    ) -> TunedChoice:
        """Time fused online tiles against the separate GEMM + grid check.

        Multi-tile candidates win only when their whole multiply+check
        wall time beats the winner's GEMM *plus* the separate grid check
        by the same never-slower hysteresis margin — on the backend that
        actually won, with the tolerance grids forced to ``inf`` so the
        random timing operands never trigger a recompute.  The degenerate
        single-tile candidate (``fused_tile_blocks=None``) runs the exact
        same GEMM as the separate path, so only its in-loop check time is
        compared (hysteresis applies to the component that can differ,
        not to the GEMM term that is equal by construction).
        """
        from ..abft.checking import column_discrepancies, row_discrepancies
        from ..kernels.online_fused import online_fused_matmul

        backend = self.registry.get(best.backend)
        if not backend.capabilities().fused_online:
            self._m_fusion.labels(decision="unsupported").inc()
            return best
        tile_blocks = self.candidate_tile_blocks(m, q, cfg.block_size)

        m_pad = m + (-m) % cfg.block_size
        q_pad = q + (-q) % cfg.block_size
        row_layout = PartitionedLayout(data_rows=m_pad, block_size=cfg.block_size)
        col_layout = PartitionedLayout(data_rows=q_pad, block_size=cfg.block_size)
        c = backend.matmul(a, b, tile=best.tile)
        check_s = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            column_discrepancies(c, row_layout)
            row_discrepancies(c, col_layout)
            check_s = min(check_s, time.perf_counter() - t0)

        col_eps = np.full(
            (row_layout.num_blocks, col_layout.encoded_rows), np.inf
        )
        row_eps = np.full(
            (row_layout.encoded_rows, col_layout.num_blocks), np.inf
        )
        executor = backend.tile_executor()

        # Degenerate single-tile fusion: the GEMM is the separate path's
        # own (identical bytes and schedule), so only the self-timed
        # in-loop check cost matters.
        degenerate_check_s = float("inf")
        for i in range(self.repeats + 1):
            outcome = online_fused_matmul(
                a, b,
                row_layout=row_layout,
                col_layout=col_layout,
                col_eps=col_eps,
                row_eps=row_eps,
                tile_blocks=None,
                gemm_tile=best.tile,
                executor=executor,
                abort_on_failure=False,
            )
            if i > 0:  # first call is the warm-up
                degenerate_check_s = min(
                    degenerate_check_s, outcome.check_seconds
                )

        fused_s = float("inf")
        fused_tb: int | None = None
        for tb in tile_blocks:
            seconds = float("inf")
            for i in range(self.repeats + 1):
                t0 = time.perf_counter()
                online_fused_matmul(
                    a, b,
                    row_layout=row_layout,
                    col_layout=col_layout,
                    col_eps=col_eps,
                    row_eps=row_eps,
                    tile_blocks=tb,
                    executor=executor,
                    abort_on_failure=False,
                )
                if i > 0:  # first call is the warm-up
                    seconds = min(seconds, time.perf_counter() - t0)
            if seconds < fused_s:
                fused_s, fused_tb = seconds, tb

        separate_s = best.per_call_s + check_s
        degenerate_s = best.per_call_s + degenerate_check_s
        degenerate_wins = degenerate_check_s < check_s * (1.0 - self.hysteresis)
        multi_tile_wins = fused_s < separate_s * (1.0 - self.hysteresis)
        if multi_tile_wins and (not degenerate_wins or fused_s < degenerate_s):
            self._m_fusion.labels(decision="fused").inc()
            return replace(
                best,
                fusion="fused",
                fused_tile_blocks=fused_tb,
                fused_per_call_s=fused_s,
                separate_check_s=check_s,
            )
        if degenerate_wins:
            self._m_fusion.labels(decision="fused").inc()
            return replace(
                best,
                fusion="fused",
                fused_tile_blocks=None,
                fused_per_call_s=degenerate_s,
                separate_check_s=check_s,
            )
        self._m_fusion.labels(decision="separate").inc()
        return replace(
            best,
            fusion="separate",
            fused_tile_blocks=None,
            fused_per_call_s=min(fused_s, degenerate_s),
            separate_check_s=check_s,
        )

    def _time(self, name: str, tile: int | None, a, b) -> float:
        backend = self.registry.get(name)
        backend.matmul(a, b, tile=tile)  # warm-up (pools, thread spin-up)
        best = float("inf")
        for _ in range(self.repeats):
            t0 = time.perf_counter()
            backend.matmul(a, b, tile=tile)
            best = min(best, time.perf_counter() - t0)
        return best
