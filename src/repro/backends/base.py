"""Backend abstraction: capabilities and the execution contract.

A compute backend executes the heavy GEMM stage of a protected
multiplication over the *canonical tile list* of
:func:`repro.kernels.matmul_tiled.plan_tiles`.  The tile geometry belongs
to the execution plan, not to the backend: every backend runs the same
per-tile BLAS calls and only chooses an execution *strategy* (serial,
thread pool, device), so deterministic backends are bitwise
interchangeable by construction.

Each backend publishes a :class:`BackendCapabilities` descriptor the
negotiation layer (:func:`repro.backends.registry.negotiate`) consults
before dispatching: supported dtypes, a result-size ceiling, whether the
pooled fused-encode path may feed it, and whether its results are
bitwise-deterministic against the canonical tile loop.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["Backend", "BackendCapabilities", "BackendUnavailable"]


class BackendUnavailable(RuntimeError):
    """A backend was asked to execute but cannot (missing dependency,
    no device, failed self-check).  The engine catches this — like any
    dispatch-time backend failure — and walks the never-silent fallback
    to ``numpy``."""


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can do; consulted during capability negotiation.

    Attributes
    ----------
    name:
        The backend's registry name.
    dtypes:
        Numpy dtype names the backend computes in.
    max_elements:
        Ceiling on result elements (``m * q``); ``None`` = unlimited.
    fused_encode:
        Whether operands encoded through the pooled fused-encode path may
        be handed to this backend directly (host-memory backends) — a
        device backend would need its own transfer staging.
    deterministic:
        Whether results are bitwise identical to the canonical serial
        tile loop.  Automatic selection ("auto") only ever picks
        deterministic backends; non-deterministic ones must be pinned
        explicitly.
    fused_online:
        Whether the backend can execute the fused online-ABFT tile loop
        (:func:`repro.kernels.online_fused.online_fused_matmul`): per-tile
        checksum checks interleaved with the GEMM, early abort and
        tile-granular recompute.  Host-memory backends whose tiles the
        kernel can check in place qualify; a device backend would need a
        device-side check kernel.
    description:
        One line for ``aabft backends``.
    """

    name: str
    dtypes: tuple[str, ...] = ("float64", "float32")
    max_elements: int | None = None
    fused_encode: bool = True
    deterministic: bool = True
    fused_online: bool = False
    description: str = ""

    def supports_dtype(self, dtype) -> bool:
        """Whether the backend computes in the given dtype."""
        return np.dtype(dtype).name in self.dtypes


class Backend(abc.ABC):
    """The execution contract every compute backend implements.

    Subclasses implement :meth:`capabilities` and :meth:`matmul`;
    :meth:`availability` and :meth:`supports` have sensible defaults.
    Instances are shared and must be thread-safe.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """The backend's static capability descriptor."""

    def availability(self) -> tuple[bool, str | None]:
        """``(available, reason)`` — reason explains unavailability.

        Called at negotiation time; expensive probes (imports, device
        discovery, determinism self-checks) should run once and cache.
        """
        return True, None

    def supports(
        self, dtype, m: int, n: int, q: int
    ) -> tuple[bool, str | None]:
        """Capability check for one ``(m, n) @ (n, q)`` multiplication."""
        caps = self.capabilities()
        if not caps.supports_dtype(dtype):
            return False, (
                f"dtype {np.dtype(dtype).name} unsupported "
                f"(accepts {', '.join(caps.dtypes)})"
            )
        if caps.max_elements is not None and m * q > caps.max_elements:
            return False, (
                f"result {m}x{q} exceeds max_elements {caps.max_elements}"
            )
        return True, None

    @abc.abstractmethod
    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        out: np.ndarray | None = None,
        tile: int | None = None,
        pool=None,
    ) -> np.ndarray:
        """Execute ``a @ b`` over the canonical tile list.

        ``tile`` and ``pool`` come from the execution plan; a backend
        that cannot run raises :class:`BackendUnavailable` (the engine
        falls back to ``numpy`` and records it).
        """

    def tile_executor(self):
        """Executor for fused online tile lookahead, or ``None``.

        Backends advertising ``fused_online`` may return their worker
        pool here so :func:`~repro.kernels.online_fused.online_fused_matmul`
        can speculatively run the next tile's GEMM while the current tile
        is being checked.  ``None`` means strictly serial tiles.
        """
        return None

    def close(self) -> None:
        """Release backend resources (thread pools, device handles)."""

    def describe(self) -> str:
        """One-line summary for listings."""
        caps = self.capabilities()
        avail, reason = self.availability()
        bits = [
            f"dtypes={','.join(caps.dtypes)}",
            "deterministic" if caps.deterministic else "NON-deterministic",
        ]
        if not avail:
            bits.append(f"unavailable: {reason}")
        return f"{self.name}: {caps.description} ({'; '.join(bits)})"
