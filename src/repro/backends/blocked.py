"""The ``blocked`` backend: tile-parallel protected GEMM on a thread pool.

Maps the paper's CUDA grid of ``BS x BS`` result blocks onto host worker
threads: the canonical tile list of
:func:`repro.kernels.matmul_tiled.plan_tiles` fans out over a
``ThreadPoolExecutor``, each worker computing its disjoint result tile
(through per-plan :class:`~repro.engine.plan.WorkspacePool` staging
buffers when the plan provides one).  numpy's matmul releases the GIL, so
tiles genuinely overlap on multi-core hosts.

Because workers execute the *same* per-tile BLAS calls as the serial
``numpy`` backend and their writes are disjoint, results are bitwise
identical to the serial order by construction.  A one-shot determinism
self-check (parallel vs serial bytes on a probe problem) guards that
invariant at runtime: if it ever fails on a host, the backend reports
itself unavailable instead of returning silently different bytes.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..kernels.matmul_tiled import tiled_matmul
from .base import Backend, BackendCapabilities, BackendUnavailable

__all__ = ["BlockedBackend"]


class BlockedBackend(Backend):
    """Thread-pool execution of the canonical tile list.

    Parameters
    ----------
    max_workers:
        Worker-thread count; defaults to the host CPU count.
    """

    name = "blocked"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None
        # Reentrant: availability() holds the lock while the self-check
        # probe spins up the executor through _get_executor().
        self._lock = threading.RLock()
        self._self_check: tuple[bool, str | None] | None = None

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            dtypes=("float64", "float32"),
            max_elements=None,
            fused_encode=True,
            deterministic=True,
            fused_online=True,
            description=(
                f"tile-parallel host BLAS over {self._max_workers} worker "
                f"thread{'s' if self._max_workers != 1 else ''} "
                "(paper's result-block grid)"
            ),
        )

    @property
    def max_workers(self) -> int:
        """Current worker-thread count."""
        return self._max_workers

    @max_workers.setter
    def max_workers(self, value: int) -> None:
        """Resize the pool; re-arms the determinism self-check.

        The cached self-check verdict describes one executor
        configuration — changing the worker count tears down the pool and
        clears the verdict so the next :meth:`availability` call re-probes
        the new configuration instead of trusting a stale one.
        """
        if value < 1:
            raise ValueError(f"max_workers must be >= 1, got {value}")
        with self._lock:
            if value == self._max_workers:
                return
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._max_workers = value
            self._self_check = None

    def availability(self) -> tuple[bool, str | None]:
        """Available once the determinism self-check has passed.

        The verdict is cached per executor configuration; resizing
        :attr:`max_workers` re-arms the probe.
        """
        with self._lock:
            if self._self_check is None:
                self._self_check = self._probe()
            return self._self_check

    def _probe(self) -> tuple[bool, str | None]:
        # Odd shapes force clipped edge tiles, the historically fragile
        # case; serial vs parallel must agree byte for byte.
        rng = np.random.default_rng(20140624)
        a = rng.standard_normal((96, 53))
        b = rng.standard_normal((53, 81))
        serial = tiled_matmul(a, b, tile=32)
        parallel = tiled_matmul(a, b, tile=32, executor=self._get_executor())
        if serial.tobytes() != parallel.tobytes():
            return False, (
                "determinism self-check failed: parallel tile execution is "
                "not bitwise-identical to the serial tile loop"
            )
        return True, None

    def _get_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="abft-blocked",
                )
            return self._executor

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        out: np.ndarray | None = None,
        tile: int | None = None,
        pool=None,
    ) -> np.ndarray:
        available, reason = self.availability()
        if not available:
            raise BackendUnavailable(reason)
        return tiled_matmul(
            a, b, tile=tile, out=out, pool=pool, executor=self._get_executor()
        )

    def tile_executor(self):
        """The worker pool, for fused online tile lookahead."""
        available, _ = self.availability()
        if not available:
            return None
        return self._get_executor()

    def close(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
