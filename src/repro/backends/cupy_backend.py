"""The ``cupy`` backend: device GEMM behind a guarded import.

Executes the whole multiplication as one device GEMM via cupy when a CUDA
device is present.  The import is guarded and the probe result cached, so
on hosts without cupy (or without a GPU) the backend reports itself
unavailable with a reason and negotiation skips it cleanly — no import
error ever escapes to callers.

Device GEMM accumulation order differs from the host BLAS, so the
capability descriptor declares ``deterministic=False``: automatic
selection never picks this backend; it must be pinned explicitly
(``AbftConfig(backend="cupy")``), accepting results that are numerically
equivalent but not bitwise-identical to the host reference.
"""

from __future__ import annotations

import threading

import numpy as np

from .base import Backend, BackendCapabilities, BackendUnavailable

__all__ = ["CupyBackend"]


class CupyBackend(Backend):
    """CUDA device GEMM via cupy (capability-gated, explicitly pinned)."""

    name = "cupy"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._probed = False
        self._cupy = None
        self._reason: str | None = None

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            dtypes=("float64", "float32"),
            max_elements=None,
            # Host-pooled encode buffers would need explicit device
            # transfer staging; keep the fused path off this backend.
            fused_encode=False,
            deterministic=False,
            # Per-tile host-side checks would force a device sync per
            # tile; fused online needs a device-side check kernel first.
            fused_online=False,
            description="CUDA device GEMM via cupy (pin explicitly; "
            "not bitwise vs the host reference)",
        )

    def availability(self) -> tuple[bool, str | None]:
        """Probe cupy + a CUDA device once; cache the outcome."""
        with self._lock:
            if not self._probed:
                self._probed = True
                try:
                    import cupy  # noqa: PLC0415 - optional dependency

                    if cupy.cuda.runtime.getDeviceCount() < 1:
                        self._reason = "no CUDA device visible"
                    else:
                        self._cupy = cupy
                except ImportError:
                    self._reason = "cupy is not installed"
                except Exception as exc:  # pragma: no cover - driver-specific
                    self._reason = (
                        f"CUDA runtime unavailable ({type(exc).__name__})"
                    )
            return self._cupy is not None, self._reason

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        out: np.ndarray | None = None,
        tile: int | None = None,
        pool=None,
    ) -> np.ndarray:
        available, reason = self.availability()
        if not available:
            raise BackendUnavailable(reason)
        cp = self._cupy
        # One device GEMM; the plan's tile geometry is a host-side
        # concept — the device grid is the GPU's own tiling.
        result = cp.asnumpy(cp.matmul(cp.asarray(a), cp.asarray(b)))
        if out is not None:
            out[...] = result
            return out
        return result
