"""The ``numpy`` backend: the serial bitwise reference.

Runs the canonical tile list in order on the host BLAS.  With the default
``tile=None`` this is exactly one ``a @ b`` call — the engine's historical
behaviour, and the byte-for-byte reference every deterministic backend is
held against.  It is also the terminal fallback of the never-silent
fallback chain, so it must always be available.
"""

from __future__ import annotations

import numpy as np

from ..kernels.matmul_tiled import tiled_matmul
from .base import Backend, BackendCapabilities

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Serial host-BLAS execution of the canonical tile list."""

    name = "numpy"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=self.name,
            dtypes=("float64", "float32"),
            max_elements=None,
            fused_encode=True,
            deterministic=True,
            fused_online=True,
            description="serial host BLAS (bitwise reference, terminal fallback)",
        )

    def matmul(
        self,
        a: np.ndarray,
        b: np.ndarray,
        *,
        out: np.ndarray | None = None,
        tile: int | None = None,
        pool=None,
    ) -> np.ndarray:
        return tiled_matmul(a, b, tile=tile, out=out, pool=pool)
