"""Backend registry and capability negotiation.

The registry maps backend names to lazily constructed
:class:`~repro.backends.base.Backend` instances; :func:`negotiate` is the
selection policy the engine runs before every plan lookup:

1. a config pin (``AbftConfig(backend="...")``) wins outright;
2. else an ``AABFT_BACKEND`` environment pin;
3. else, for ``backend="auto"``, a persisted autotuner winner for the
   ``(shape, dtype, scheme)`` key;
4. else the ``numpy`` reference.

A candidate that is excluded, unknown, unavailable, capability-mismatched
or (for automatic selection) non-deterministic falls back to ``numpy`` —
**never silently**: the returned :class:`BackendSelection` carries the
fallback reason, the engine copies it onto the result and counts it in
``abft_backend_fallbacks_total``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, replace

from ..errors import ConfigurationError
from .base import Backend

__all__ = [
    "BackendRegistry",
    "BackendSelection",
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "ENV_FUSION",
    "default_registry",
    "get_backend",
    "negotiate",
]

#: Environment variable pinning the default backend for ``"auto"`` configs.
ENV_BACKEND = "AABFT_BACKEND"

#: Environment variable pinning the fusion strategy (``fused``/``separate``)
#: for configs whose ``fusion`` is ``"auto"``.
ENV_FUSION = "AABFT_FUSION"

#: The terminal-fallback backend; always registered, always available.
DEFAULT_BACKEND = "numpy"


class BackendRegistry:
    """Thread-safe name -> backend map with lazy instantiation.

    Factories are registered up front (cheap); instances are built on
    first :meth:`get` and shared from then on, so expensive probes
    (imports, thread pools, self-checks) run at most once per registry.
    """

    def __init__(self) -> None:
        self._factories: dict[str, object] = {}
        self._instances: dict[str, Backend] = {}
        self._lock = threading.RLock()

    def register(self, name: str, factory, *, replace: bool = False) -> None:
        """Register a backend factory (a zero-arg callable)."""
        if not name or not isinstance(name, str):
            raise ConfigurationError(f"backend name must be a non-empty str, got {name!r}")
        with self._lock:
            if name in self._factories and not replace:
                raise ConfigurationError(
                    f"backend {name!r} already registered (pass replace=True)"
                )
            self._factories[name] = factory
            self._instances.pop(name, None)

    def names(self) -> list[str]:
        """Registered backend names in registration order."""
        with self._lock:
            return list(self._factories)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._factories

    def get(self, name: str) -> Backend:
        """The shared instance for ``name`` (built on first use)."""
        with self._lock:
            instance = self._instances.get(name)
            if instance is not None:
                return instance
            factory = self._factories.get(name)
            if factory is None:
                raise ConfigurationError(
                    f"unknown backend {name!r}; registered: {self.names()}"
                )
            instance = factory()
            if not isinstance(instance, Backend):
                raise ConfigurationError(
                    f"factory for {name!r} returned "
                    f"{type(instance).__name__}, not a Backend"
                )
            self._instances[name] = instance
            return instance

    def describe(self) -> list[dict]:
        """Capability/availability rows for ``aabft backends``."""
        rows = []
        for name in self.names():
            backend = self.get(name)
            caps = backend.capabilities()
            available, reason = backend.availability()
            rows.append(
                {
                    "name": name,
                    "available": available,
                    "reason": reason,
                    "dtypes": list(caps.dtypes),
                    "max_elements": caps.max_elements,
                    "fused_encode": caps.fused_encode,
                    "deterministic": caps.deterministic,
                    "fused_online": caps.fused_online,
                    "description": caps.description,
                }
            )
        return rows

    def close(self) -> None:
        """Close every built instance (registrations are kept)."""
        with self._lock:
            instances = list(self._instances.values())
        for backend in instances:
            backend.close()


@dataclass(frozen=True)
class BackendSelection:
    """Outcome of one capability negotiation.

    Attributes
    ----------
    backend:
        The concrete backend the call will dispatch through.
    tile:
        The plan's result-tile edge (``None`` = one full-result tile).
    source:
        Where the requested backend came from: ``"pinned"`` (config),
        ``"env"`` (``AABFT_BACKEND``), ``"autotuned"`` (cache winner) or
        ``"default"``.
    fallback_from / fallback_reason:
        Set when the requested backend was rejected and the selection
        fell back to ``numpy`` — the never-silent record.
    fusion:
        The resolved fusion strategy: ``"fused"`` runs the online-ABFT
        tile loop (checks interleaved with the GEMM), ``"separate"`` the
        classic encode/multiply/check passes.
    fused_tile_blocks:
        Fused tile edge in whole encoded blocks (``None`` = the single
        full-result tile, the degenerate bitwise-identical mode).
    fusion_source:
        Where the fusion strategy came from: ``"pinned"``, ``"env"``,
        ``"autotuned"`` or ``"default"``.
    fusion_fallback_reason:
        Set when a requested ``"fused"`` strategy was rejected (backend
        lacks the ``fused_online`` capability) and the selection fell
        back to ``"separate"`` — the never-silent record.
    """

    backend: str
    tile: int | None
    source: str
    fallback_from: str | None = None
    fallback_reason: str | None = None
    fusion: str = "separate"
    fused_tile_blocks: int | None = None
    fusion_source: str = "default"
    fusion_fallback_reason: str | None = None


def _viability(
    registry: BackendRegistry,
    name: str,
    excluded: frozenset,
    dtype,
    m: int,
    n: int,
    q: int,
    *,
    require_deterministic: bool,
) -> str | None:
    """``None`` when the backend can serve the call, else the reason not."""
    if name in excluded:
        return "excluded by config"
    if name not in registry:
        return f"unknown backend {name!r}"
    backend = registry.get(name)
    available, reason = backend.availability()
    if not available:
        return reason or "unavailable"
    caps = backend.capabilities()
    if require_deterministic and not caps.deterministic:
        return "non-deterministic (must be pinned explicitly)"
    ok, reason = backend.supports(dtype, m, n, q)
    if not ok:
        return reason
    return None


def negotiate(
    config,
    m: int,
    n: int,
    q: int,
    dtype,
    *,
    registry: BackendRegistry | None = None,
    autotuner=None,
    environ=None,
) -> BackendSelection:
    """Select the backend and tile geometry for one multiplication.

    ``config`` is an :class:`~repro.engine.config.AbftConfig`; see the
    module docstring for the policy.  An explicit ``gemm_tile`` on the
    config always wins over an autotuned tile.
    """
    reg = registry if registry is not None else default_registry()
    env = os.environ if environ is None else environ
    excluded = frozenset(config.exclude_backends)
    tile = config.gemm_tile

    tuned = None
    requested: str | None = None
    source = "default"
    require_deterministic = True
    if config.backend != "auto":
        requested, source = config.backend, "pinned"
        require_deterministic = False
    else:
        env_pin = env.get(ENV_BACKEND, "").strip()
        if env_pin and env_pin != "auto":
            requested, source = env_pin, "env"
            require_deterministic = False
        elif autotuner is not None:
            tuned = autotuner.lookup(m, n, q, dtype, config)
            if tuned is not None and tuned.backend != DEFAULT_BACKEND:
                requested, source = tuned.backend, "autotuned"
                if tile is None:
                    tile = tuned.tile

    if requested is None or requested == DEFAULT_BACKEND:
        selection = BackendSelection(
            backend=DEFAULT_BACKEND,
            tile=tile,
            source=source if requested is not None else "default",
        )
    else:
        reason = _viability(
            reg, requested, excluded, dtype, m, n, q,
            require_deterministic=require_deterministic,
        )
        if reason is None:
            selection = BackendSelection(
                backend=requested, tile=tile, source=source
            )
        else:
            selection = BackendSelection(
                backend=DEFAULT_BACKEND,
                tile=config.gemm_tile,  # an autotuned tile dies with its backend
                source=source,
                fallback_from=requested,
                fallback_reason=reason,
            )
    return _resolve_fusion(
        selection, config, reg, env, tuned, autotuner, m, n, q, dtype
    )


def _resolve_fusion(
    selection: BackendSelection,
    config,
    reg: BackendRegistry,
    env,
    tuned,
    autotuner,
    m: int,
    n: int,
    q: int,
    dtype,
) -> BackendSelection:
    """Resolve the fusion strategy for an already-selected backend.

    Pin ladder mirrors the backend's: config pin > ``AABFT_FUSION`` env
    pin > autotuned strategy (only honoured when the tuned backend is the
    one actually selected) > ``"separate"``.  A requested ``"fused"``
    strategy against a backend without the ``fused_online`` capability
    falls back to ``"separate"`` with a recorded reason — never silently.
    """
    fusion: str | None = None
    fusion_source = "default"
    tile_blocks = getattr(config, "fused_tile_blocks", None)

    cfg_fusion = getattr(config, "fusion", "auto")
    if cfg_fusion != "auto":
        fusion, fusion_source = cfg_fusion, "pinned"
    else:
        env_pin = env.get(ENV_FUSION, "").strip()
        if env_pin and env_pin != "auto":
            fusion, fusion_source = env_pin, "env"
        else:
            if tuned is None and autotuner is not None:
                tuned = autotuner.lookup(m, n, q, dtype, config)
            if (
                tuned is not None
                and getattr(tuned, "fusion", "separate") == "fused"
                and tuned.backend == selection.backend
            ):
                fusion, fusion_source = "fused", "autotuned"
                if tile_blocks is None:
                    tile_blocks = tuned.fused_tile_blocks

    if fusion is None or fusion == "separate":
        return replace(
            selection,
            fusion="separate",
            fusion_source=fusion_source if fusion is not None else "default",
        )
    if fusion != "fused":
        return replace(
            selection,
            fusion="separate",
            fusion_source=fusion_source,
            fusion_fallback_reason=f"unknown fusion strategy {fusion!r}",
        )
    if selection.backend in reg:
        caps = reg.get(selection.backend).capabilities()
        if caps.fused_online:
            return replace(
                selection,
                fusion="fused",
                fused_tile_blocks=tile_blocks,
                fusion_source=fusion_source,
            )
        reason = f"backend {selection.backend!r} lacks fused_online capability"
    else:
        reason = f"unknown backend {selection.backend!r}"
    return replace(
        selection,
        fusion="separate",
        fusion_source=fusion_source,
        fusion_fallback_reason=reason,
    )


_default_registry: BackendRegistry | None = None
_default_registry_lock = threading.Lock()


def default_registry() -> BackendRegistry:
    """The process-wide registry with the three shipped backends."""
    global _default_registry
    with _default_registry_lock:
        if _default_registry is None:
            from .blocked import BlockedBackend
            from .cupy_backend import CupyBackend
            from .numpy_backend import NumpyBackend

            registry = BackendRegistry()
            registry.register("numpy", NumpyBackend)
            registry.register("blocked", BlockedBackend)
            registry.register("cupy", CupyBackend)
            _default_registry = registry
        return _default_registry


def get_backend(name: str) -> Backend:
    """Shorthand for ``default_registry().get(name)``."""
    return default_registry().get(name)
