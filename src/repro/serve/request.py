"""Request/response types of the serving layer.

A :class:`MatmulRequest` describes one protected multiplication a client
wants executed; a :class:`MatmulResponse` is the server's answer.  The
response is :class:`~repro.abft.result.ProtectedResult`-compatible
(``.c`` / ``.detected`` / ``.report``) so downstream code written against
the engine's results consumes served results unchanged — with one
addition that the serving layer is built around: an explicit
:class:`VerificationStatus`.

The status field means verification coverage is **never silent**: a
response either carries full A-ABFT checking (``FULL``), a cheaper
degraded check (``DEGRADED``), an explicit no-verification flag
(``UNCHECKED``) or an explicit rejection with a reason (``REJECTED``).
There is no state in which a caller can mistake an unverified result for
a verified one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..abft.checking import CheckReport
from ..engine.config import AbftConfig

__all__ = [
    "VerificationStatus",
    "MatmulRequest",
    "MatmulResponse",
    "ModelRequest",
    "ModelResponse",
]


class VerificationStatus(str, enum.Enum):
    """How much fault-tolerance checking a response actually received.

    ``str``-valued so statuses serialise naturally into JSON summaries and
    telemetry labels.
    """

    #: Checked with the scheme the request asked for (no degradation).
    FULL = "full"
    #: Checked, but with a cheaper scheme than requested (deadline ladder).
    DEGRADED = "degraded"
    #: Executed without any checksum verification — explicitly flagged.
    UNCHECKED = "unchecked"
    #: Not executed; ``rejected_reason`` says why (backpressure, deadline,
    #: shutdown).
    REJECTED = "rejected"


@dataclass
class MatmulRequest:
    """One protected-multiplication request.

    Attributes
    ----------
    a / b:
        The operands (raw matrices or
        :class:`~repro.engine.engine.EncodedOperand` handles).
    config:
        Per-request :class:`~repro.engine.config.AbftConfig`; defaults to
        the server's configured default.
    deadline_s:
        Relative deadline in seconds from submission.  Drives the
        degradation ladder; ``None`` means no deadline (always served at
        the requested protection level).
    request_id:
        Client-chosen identifier; the server assigns ``r<seq>`` when left
        ``None``.
    backend:
        Pin the GEMM stage to a named compute backend (see
        :mod:`repro.backends`); ``None`` keeps the config's choice
        (``"auto"`` by default).  An unknown pin or an invalid
        pin/exclude combination is a request **rejection**
        (``"invalid_backend"``); a known-but-unavailable pin walks the
        engine's never-silent fallback, recorded on
        :attr:`MatmulResponse.backend_fallback`.
    exclude_backends:
        Backends negotiation must not consider for this request
        (``"numpy"`` cannot be excluded — it is the terminal fallback).
    """

    a: object
    b: object
    config: AbftConfig | None = None
    deadline_s: float | None = None
    request_id: str | None = None
    backend: str | None = None
    exclude_backends: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.exclude_backends:
            self.exclude_backends = tuple(self.exclude_backends)


@dataclass
class MatmulResponse:
    """The server's answer to one :class:`MatmulRequest`.

    Satisfies the :class:`~repro.abft.result.ProtectedResult` protocol for
    completed requests.  For ``REJECTED`` responses ``c`` is ``None`` and
    ``rejected_reason`` is set; the request was *not* executed.

    Attributes
    ----------
    request_id:
        Identifier of the request this answers.
    status:
        The verification coverage actually delivered (never silent).
    c:
        The result matrix, or ``None`` for rejected requests.
    report:
        The checksum report of the *final* (served) result; ``None`` for
        unchecked and rejected responses.
    scheme:
        The bound scheme that actually checked the result (``"aabft"``,
        ``"sea"``, ``"fixed"``), or ``None`` when unchecked/rejected.
    detected:
        Whether any checksum comparison of the served result failed.
    corrected:
        The initial result contained a located error that was corrected via
        the ABFT single-error rule (and re-verified).
    recomputed:
        The initial result was discarded and recomputed after a detection.
    retries:
        Number of recomputation attempts performed.
    rejected_reason:
        Why the request was rejected (``"queue_full"``, ``"deadline"``,
        ``"shutdown"``) — ``None`` for served responses.
    queue_wait_s / service_s:
        Seconds spent waiting in the admission queue / executing.
    batch_size:
        Size of the micro-batch this request rode in (0 when rejected).
    requeues:
        Times the request was re-queued to another shard after a worker
        death (always 0 for single-process serving; see
        :mod:`repro.cluster`).  Requeued work is re-executed, never
        silently dropped — this field is its never-silent record.
    backend:
        The compute backend that executed the GEMM stage (``None`` for
        rejected responses).
    backend_fallback:
        ``None`` when the selected backend served the call; otherwise the
        never-silent record of why execution fell back to ``numpy``.
    """

    request_id: str
    status: VerificationStatus
    c: np.ndarray | None = None
    report: CheckReport | None = None
    scheme: str | None = None
    detected: bool = False
    corrected: bool = False
    recomputed: bool = False
    retries: int = 0
    rejected_reason: str | None = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    batch_size: int = 0
    requeues: int = 0
    backend: str | None = None
    backend_fallback: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the request was served (its result may still be degraded
        or unchecked — consult :attr:`status`)."""
        return self.status is not VerificationStatus.REJECTED

    @property
    def verified(self) -> bool:
        """Whether the result went through checksum verification at all."""
        return self.status in (
            VerificationStatus.FULL,
            VerificationStatus.DEGRADED,
        )


@dataclass
class ModelRequest:
    """One model-inference request: a chained-GEMM forward pass.

    Attributes
    ----------
    model:
        The :class:`~repro.models.spec.ModelSpec` to execute.
    plan:
        Per-layer protection plan; the server plans with its default
        :class:`~repro.models.planner.ProtectionPlanner` when ``None``.
    inputs:
        :class:`~repro.models.runner.ModelInputs` (input activation +
        weights); generated deterministically from ``seed`` when ``None``.
    seed:
        Input/weight generation seed used when ``inputs`` is ``None``.
    deadline_s:
        Relative deadline from submission.  The server re-evaluates the
        degradation ladder *per layer*: layers dispatched with plenty of
        budget keep their planned rung, layers dispatched under pressure
        walk down (full → SEA → unchecked), and every downgrade is
        recorded on the response — never silent.
    request_id:
        Client-chosen identifier; server-assigned ``m<seq>`` when ``None``.
    """

    model: object
    plan: object = None
    inputs: object = None
    seed: int = 0
    deadline_s: float | None = None
    request_id: str | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )


@dataclass
class ModelResponse:
    """The server's answer to one :class:`ModelRequest`.

    Attributes
    ----------
    request_id:
        Identifier of the request this answers.
    status:
        Aggregate verification coverage over the whole forward pass:
        ``FULL`` when every layer ran at its planned rung, ``DEGRADED``
        when any layer was served below plan (the per-layer record is in
        ``result.layers``), ``UNCHECKED`` when *no* layer received any
        verification, ``REJECTED`` when the request was not executed.
    output:
        The model output activation, or ``None`` for rejected requests.
    result:
        The full :class:`~repro.models.runner.ModelRunResult` (per-layer
        rungs, schemes, detections, reuse and timing records).
    detected:
        Whether any layer's check flagged a fault during the final pass.
    degraded_layers:
        Names of layers served below their planned protection rung.
    rejected_reason:
        Why the request was rejected — ``None`` for served responses.
    queue_wait_s / service_s:
        Seconds spent waiting for admission / executing the pass.
    """

    request_id: str
    status: VerificationStatus
    output: np.ndarray | None = None
    result: object = None
    detected: bool = False
    degraded_layers: tuple[str, ...] = ()
    rejected_reason: str | None = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status is not VerificationStatus.REJECTED

    @property
    def verified(self) -> bool:
        """Whether any layer of the pass received checksum verification."""
        return self.status in (
            VerificationStatus.FULL,
            VerificationStatus.DEGRADED,
        )
