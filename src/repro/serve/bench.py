"""The serving layer's throughput benchmark (shared by CLI and script).

Measures the micro-batching server against a serial one-request-at-a-time
loop over the **same** workload — the shared-weight serving pattern (one
``m x n`` weight matrix against many ``n x q`` activations) where the
serial path re-encodes the weight on every request while the batched
dispatch encodes it once and amortises the tolerance grids.

The served measurement runs once per execution policy (by default the
barriered ``fused`` mode and the stage-pipelined ``pipelined`` mode, both
dispatched through ``MatmulEngine.execute_batch`` under the server's
:class:`~repro.engine.policy.ExecutionPolicy`).  The payload reports each
policy row plus the pipelined-vs-fused speedup and the pipelined
executor's bubble fraction read from ``abft_pipeline_bubble_fraction``.

With ``cluster_workers`` set, the payload additionally carries a
``cluster`` section: the same workload pushed at ``cluster_concurrency``
(default 256) through a sharded multi-process
:class:`~repro.cluster.frontend.ClusterFrontend` next to a
single-process pipelined server at the *same* concurrency, with the
throughput ratio recorded.  The ratio is hardware-sensitive — the
cluster's win comes from true process parallelism, so single-CPU hosts
land near parity (``host_cpus`` is recorded alongside for context).

:func:`run_serve_benchmark` returns a JSON-friendly payload (what
``BENCH_serve.json`` holds); :func:`compare_to_baseline` implements the
CI smoke check against the committed baseline.  Both
``benchmarks/bench_serve_throughput.py`` and ``aabft bench`` are thin
wrappers over this module.

Every served result is verified bitwise against its serial counterpart —
the speedup never comes at the cost of a different answer.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from ..engine import AbftConfig, ExecutionPolicy, MatmulEngine
from ..telemetry import MetricsRegistry
from .config import ServeConfig
from .loadgen import percentile
from .request import VerificationStatus
from .server import MatmulServer

__all__ = ["run_serve_benchmark", "compare_to_baseline", "default_baseline_path"]


def default_baseline_path() -> Path:
    """``BENCH_serve.json`` from the cwd, else next to the package."""
    cwd_candidate = Path.cwd() / "BENCH_serve.json"
    if cwd_candidate.exists():
        return cwd_candidate
    return Path(__file__).resolve().parents[3] / "BENCH_serve.json"

#: Default workload: one shared 256x256 weight against 256x16 activations —
#: the shape regime where per-request overhead dominates BLAS time.
M, N, Q = 256, 256, 16
REQUESTS = 256
QUICK_REQUESTS = 64
CONCURRENCY = 32
SPEEDUP_FLOOR = 2.0
#: The pipelined policy row must beat the barriered fused row by this much.
PIPELINE_SPEEDUP_FLOOR = 1.3
#: Policy rows measured by default, weakest first; the last is primary.
DEFAULT_POLICIES = ("fused", "pipelined")
#: Cluster section defaults: the high-concurrency regime where one
#: process saturates and sharding should take over.
CLUSTER_CONCURRENCY = 256
CLUSTER_WORKERS = 2


def _run_served(
    a: np.ndarray,
    bs: list[np.ndarray],
    config: AbftConfig,
    concurrency: int,
    mode: str,
    serial_results: list,
    registry: MetricsRegistry | None,
) -> dict:
    """One served measurement under one execution mode."""
    serve_cfg = ServeConfig(
        abft=config,
        execution=ExecutionPolicy(mode=mode),
        max_batch_size=concurrency,
        max_queue_depth=max(256, 2 * concurrency),
    )
    kwargs = {} if registry is None else {"registry": registry}
    requests = len(bs)
    latencies: list[float] = []

    def _on_done(fut: Future, t0: float) -> None:
        latencies.append(time.perf_counter() - t0)

    with MatmulServer(serve_cfg, **kwargs) as server:
        server.engine.matmul(a, bs[0])  # warm the plan
        responses: list[Future] = []
        outstanding: deque = deque()
        start = time.perf_counter()
        submitted = 0
        while submitted < requests or outstanding:
            while submitted < requests and len(outstanding) < concurrency:
                t0 = time.perf_counter()
                fut = server.submit(a, bs[submitted], request_id=f"b{submitted}")
                fut.add_done_callback(lambda f, t0=t0: _on_done(f, t0))
                outstanding.append(fut)
                responses.append(fut)
                submitted += 1
            outstanding.popleft().result(timeout=120.0)
        serve_seconds = time.perf_counter() - start
        bubble = server.engine.registry.gauge(
            "abft_pipeline_bubble_fraction"
        ).get()

    # --- correctness: served bitwise equal to serial, fully verified ----
    max_batch = 0
    for i, (fut, ref) in enumerate(zip(responses, serial_results)):
        response = fut.result()
        assert response.status is VerificationStatus.FULL, (
            f"[{mode}] request {i} served {response.status.value}, "
            f"expected full"
        )
        assert np.array_equal(response.c, ref.c), (
            f"[{mode}] request {i} diverged"
        )
        max_batch = max(max_batch, response.batch_size)
    assert max_batch > 1, f"[{mode}] no micro-batch formed under load"

    latencies.sort()
    return {
        "mode": mode,
        "serve_seconds": serve_seconds,
        "serve_throughput_rps": requests / serve_seconds,
        "latency_p50_ms": percentile(latencies, 50) * 1e3,
        "latency_p99_ms": percentile(latencies, 99) * 1e3,
        "max_batch_size": max_batch,
        "bubble_fraction": bubble,
    }


def _run_cluster(
    a: np.ndarray,
    bs: list[np.ndarray],
    config: AbftConfig,
    concurrency: int,
    workers: int,
    serial_results: list,
) -> dict:
    """One served measurement through a sharded multi-process cluster."""
    from ..cluster import ClusterConfig, ClusterFrontend

    worker_cfg = ServeConfig(
        abft=config,
        execution=ExecutionPolicy(mode="pipelined"),
        # Smaller per-worker batches keep every shard's pipeline busy
        # instead of one shard barriering on a giant batch.
        max_batch_size=max(8, concurrency // (4 * workers)),
        max_queue_depth=max(256, 2 * concurrency),
    )
    cluster_cfg = ClusterConfig(
        serve=worker_cfg,
        num_workers=workers,
        # The whole workload shares one plan key; a spill bound of a
        # 1/workers share of the window spreads it across every shard.
        spill_queue_depth=max(1, concurrency // (2 * workers)),
        max_shard_inflight=max(512, 2 * concurrency),
    )
    requests = len(bs)
    latencies: list[float] = []

    def _on_done(fut: Future, t0: float) -> None:
        latencies.append(time.perf_counter() - t0)

    frontend = ClusterFrontend(cluster_cfg, registry=MetricsRegistry())
    try:
        frontend.wait_ready(timeout=120.0)
        # Warm every shard's plan cache: one untimed full-concurrency
        # wave (the load-bounded ring walk spreads the single hot plan
        # key across all shards).
        warm = [
            frontend.submit(a, bs[i % requests], request_id=f"warm{i}")
            for i in range(min(requests, concurrency))
        ]
        for fut in warm:
            fut.result(timeout=120.0)
        responses: list[Future] = []
        outstanding: deque = deque()
        start = time.perf_counter()
        submitted = 0
        while submitted < requests or outstanding:
            while submitted < requests and len(outstanding) < concurrency:
                t0 = time.perf_counter()
                fut = frontend.submit(a, bs[submitted], request_id=f"c{submitted}")
                fut.add_done_callback(lambda f, t0=t0: _on_done(f, t0))
                outstanding.append(fut)
                responses.append(fut)
                submitted += 1
            outstanding.popleft().result(timeout=120.0)
        cluster_seconds = time.perf_counter() - start
    finally:
        frontend.stop(drain=True)

    max_batch = 0
    requeued = 0
    for i, (fut, ref) in enumerate(zip(responses, serial_results)):
        response = fut.result()
        assert response.status is VerificationStatus.FULL, (
            f"[cluster] request {i} served {response.status.value}, "
            f"expected full"
        )
        assert np.array_equal(response.c, ref.c), (
            f"[cluster] request {i} diverged"
        )
        max_batch = max(max_batch, response.batch_size)
        requeued += response.requeues

    latencies.sort()
    return {
        "workers": workers,
        "concurrency": concurrency,
        "requests": requests,
        "cluster_seconds": cluster_seconds,
        "cluster_throughput_rps": requests / cluster_seconds,
        "latency_p50_ms": percentile(latencies, 50) * 1e3,
        "latency_p99_ms": percentile(latencies, 99) * 1e3,
        "max_batch_size": max_batch,
        "requeued": requeued,
        "host_cpus": os.cpu_count(),
        "bitwise_identical": True,
    }


def run_serve_benchmark(
    *,
    requests: int = REQUESTS,
    concurrency: int = CONCURRENCY,
    m: int = M,
    n: int = N,
    q: int = Q,
    seed: int = 20140623,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    registry: MetricsRegistry | None = None,
    cluster_workers: int | None = None,
    cluster_concurrency: int = CLUSTER_CONCURRENCY,
) -> dict:
    """Benchmark serve-layer micro-batching against the serial loop.

    Runs one served measurement per entry of ``policies``; the *last*
    entry is the primary row reported in the payload's top-level keys
    (kept flat for the CI baseline comparison).  With ``cluster_workers``
    set, additionally measures a ``cluster_workers``-shard
    :class:`~repro.cluster.frontend.ClusterFrontend` against a
    single-process pipelined server at ``cluster_concurrency`` and
    records both rows (plus their throughput ratio) under ``cluster``.
    Returns the ``BENCH_serve.json`` payload.  Raises ``AssertionError``
    if any served result differs bitwise from the serial reference or an
    accounting invariant breaks.
    """
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, (m, n))
    bs = [rng.uniform(-1.0, 1.0, (n, q)) for _ in range(requests)]
    config = AbftConfig()

    # --- serial reference: one request at a time, warm plan cache -------
    with MatmulEngine(config) as engine:
        engine.matmul(a, bs[0])  # warm the plan
        start = time.perf_counter()
        serial_results = [engine.matmul(a, b) for b in bs]
        serial_seconds = time.perf_counter() - start

    rows = {
        mode: _run_served(
            a, bs, config, concurrency, mode, serial_results, registry
        )
        for mode in policies
    }
    primary = rows[policies[-1]]

    payload = {
        "m": m,
        "n": n,
        "q": q,
        "requests": requests,
        "concurrency": concurrency,
        "serial_seconds": serial_seconds,
        "serial_throughput_rps": requests / serial_seconds,
        "serve_seconds": primary["serve_seconds"],
        "speedup": serial_seconds / primary["serve_seconds"],
        "serve_throughput_rps": primary["serve_throughput_rps"],
        "latency_p50_ms": primary["latency_p50_ms"],
        "latency_p99_ms": primary["latency_p99_ms"],
        "max_batch_size": primary["max_batch_size"],
        "primary_policy": policies[-1],
        "policies": rows,
        "bitwise_identical": True,
        "host_cpus": os.cpu_count(),
    }
    if "pipelined" in rows:
        payload["bubble_fraction"] = rows["pipelined"]["bubble_fraction"]
    if "pipelined" in rows and "fused" in rows:
        payload["pipelined_speedup_vs_fused"] = (
            rows["fused"]["serve_seconds"]
            / rows["pipelined"]["serve_seconds"]
        )

    if cluster_workers:
        single_row = _run_served(
            a, bs, config, cluster_concurrency, "pipelined",
            serial_results, registry,
        )
        cluster_row = _run_cluster(
            a, bs, config, cluster_concurrency, cluster_workers,
            serial_results,
        )
        cluster_row["pipelined_seconds"] = single_row["serve_seconds"]
        cluster_row["pipelined_throughput_rps"] = (
            single_row["serve_throughput_rps"]
        )
        cluster_row["speedup_vs_pipelined"] = (
            single_row["serve_seconds"] / cluster_row["cluster_seconds"]
        )
        payload["cluster"] = cluster_row
    return payload


def compare_to_baseline(
    payload: dict, baseline: dict, tolerance: float
) -> tuple[bool, str]:
    """CI smoke comparison: measured per-request serve time vs baseline.

    Returns ``(passed, detail)``.  The baseline is never rewritten here.
    """
    baseline_per_req = baseline["serve_seconds"] / baseline["requests"]
    measured_per_req = payload["serve_seconds"] / payload["requests"]
    limit = baseline_per_req * (1.0 + tolerance)
    detail = (
        f"served {measured_per_req * 1e3:.2f} ms/req vs baseline "
        f"{baseline_per_req * 1e3:.2f} ms/req "
        f"(limit {limit * 1e3:.2f} ms/req = +{tolerance:.0%})"
    )
    return measured_per_req <= limit, detail
