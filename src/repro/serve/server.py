"""The micro-batching request scheduler for protected multiplications.

:class:`MatmulServer` is the serving layer in front of
:class:`~repro.engine.engine.MatmulEngine`: it accepts protected-matmul
requests concurrently, coalesces same-shape/same-config requests into
micro-batches and executes each batch through the engine's fused path,
returning responses via futures.

Scheduling behaviour (all knobs on :class:`~repro.serve.config.ServeConfig`):

* **bounded admission queue** — submissions beyond ``max_queue_depth``
  are rejected *immediately* with an explicit reason instead of growing
  the queue without bound (backpressure the caller can see and count);
* **micro-batch coalescing** — the dispatcher groups compatible requests
  arriving within ``batch_window_s`` (up to ``max_batch_size``) and runs
  them as one :meth:`~repro.engine.engine.MatmulEngine.execute_batch`
  call under the config's :class:`~repro.engine.policy.ExecutionPolicy`
  (mode ``auto`` by default, so batches ride the stage-pipelined executor
  when its preconditions hold), amortising encode/check overhead across
  the batch;
* **deadline degradation ladder** — requests under deadline pressure are
  served at progressively cheaper protection levels (full → SEA →
  unchecked), walking the ladder strictly in order; the delivered level
  is always recorded on the response (verification is never silently
  dropped);
* **retry-on-detect** — a detected error triggers ABFT single-error
  correction when locatable, else recomputation, before the response is
  released.

Every decision is metered through ``abft_serve_*`` metrics (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from ..abft.correction import correct_single_error
from ..abft.encoding import strip_data_columns, strip_data_rows, strip_encoding
from ..engine.config import AbftConfig
from ..engine.engine import EncodedOperand, MatmulEngine, _operand_dtype
from ..errors import ConfigurationError, CorrectionError
from ..telemetry import MetricsRegistry, get_registry, span
from .config import ServeConfig, rung_for_fraction
from .request import (
    MatmulRequest,
    MatmulResponse,
    ModelRequest,
    ModelResponse,
    VerificationStatus,
)

__all__ = ["MatmulServer"]

#: Batch-size histogram buckets (requests per micro-batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass
class _Pending:
    """One admitted request waiting for (or undergoing) execution."""

    request: MatmulRequest
    future: Future
    config: AbftConfig
    key: tuple
    enqueue_t: float
    deadline_total: float | None
    deadline_at: float | None


def _operand_shape(operand) -> tuple[int, int]:
    if isinstance(operand, EncodedOperand):
        return operand.shape
    return np.asarray(operand).shape


def _raw_operand(operand) -> np.ndarray:
    """The un-encoded data of an operand (for the unchecked rung).

    Uses the block-view strips instead of fancy-index gathers — under
    deadline pressure this path runs once per degraded request, so it
    should not cost more than the multiply it feeds.
    """
    if not isinstance(operand, EncodedOperand):
        return np.asarray(operand)
    if operand.side == "a":
        data = strip_data_rows(operand.array, operand.layout)
        return data[: operand.shape[0], :]
    data = strip_data_columns(operand.array, operand.layout)
    return data[:, : operand.shape[1]]


class MatmulServer:
    """Accepts concurrent protected-matmul requests, serves micro-batches.

    Parameters
    ----------
    config:
        The :class:`~repro.serve.config.ServeConfig`; defaults apply.
    engine:
        The :class:`~repro.engine.engine.MatmulEngine` to execute on.  By
        default the server builds one from ``config.abft`` sharing the
        server's registry, so engine and serve metrics land in one scrape.
    registry:
        Target :class:`~repro.telemetry.MetricsRegistry`; defaults to the
        process-wide :func:`~repro.telemetry.get_registry`.
    auto_start:
        Start the dispatcher thread on the first submission (default).
        Pass ``False`` to queue submissions first and start explicitly —
        deterministic full-batch coalescing, useful in tests.
    clock:
        Monotonic time source (injectable for deterministic deadline
        tests).

    Thread safety: :meth:`submit` may be called from any number of
    threads; responses resolve on the dispatcher thread.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        engine: MatmulEngine | None = None,
        registry: MetricsRegistry | None = None,
        auto_start: bool = True,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        if not isinstance(self.config, ServeConfig):
            raise TypeError(
                f"config must be a ServeConfig, got {type(self.config).__name__}"
            )
        self.registry = registry if registry is not None else get_registry()
        self.engine = (
            engine
            if engine is not None
            else MatmulEngine(self.config.abft, registry=self.registry)
        )
        self._auto_start = auto_start
        self._clock = clock
        self._cond = threading.Condition()
        self._queue: deque[_Pending] = deque()
        self._inflight = 0
        self._seq = 0
        self._thread: threading.Thread | None = None
        self._accepting = True
        self._stopped = False

        reg = self.registry
        self._m_requests = reg.counter(
            "abft_serve_requests_total",
            "Requests by final outcome (completed / rejected)",
            ("outcome",),
        )
        self._m_rejections = reg.counter(
            "abft_serve_rejections_total",
            "Explicitly rejected requests by reason",
            ("reason",),
        )
        self._m_degradations = reg.counter(
            "abft_serve_degradations_total",
            "Responses served below full protection, by ladder rung",
            ("rung",),
        )
        self._m_retries = reg.counter(
            "abft_serve_retries_total",
            "Detected-error recoveries by kind (corrected / recomputed)",
            ("kind",),
        )
        self._m_detections = reg.counter(
            "abft_serve_detections_total",
            "Served batches' results whose initial check flagged an error",
        )
        self._m_dropped = reg.counter(
            "abft_serve_dropped_total",
            "Requests that died without a response (must stay 0)",
        )
        self._m_batches = reg.counter(
            "abft_serve_batches_total", "Micro-batches dispatched"
        )
        self._g_depth = reg.gauge(
            "abft_serve_queue_depth", "Current admission-queue depth"
        )
        self._h_batch = reg.histogram(
            "abft_serve_batch_size",
            "Requests coalesced per micro-batch",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self._h_wait = reg.histogram(
            "abft_serve_queue_wait_seconds",
            "Seconds between admission and dispatch",
        )
        self._h_latency = reg.histogram(
            "abft_serve_latency_seconds",
            "End-to-end seconds from admission to response",
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(
        self,
        a,
        b,
        *,
        config: AbftConfig | None = None,
        deadline_s: float | None = None,
        request_id: str | None = None,
        backend: str | None = None,
        exclude_backends: tuple[str, ...] = (),
    ) -> Future:
        """Submit one multiplication; returns a future of the response.

        Never blocks and never raises for capacity: over-capacity and
        post-shutdown submissions resolve immediately to a ``REJECTED``
        response with an explicit reason — including an unknown
        ``backend`` pin (``"invalid_backend"``).
        """
        return self.submit_request(
            MatmulRequest(
                a=a,
                b=b,
                config=config,
                deadline_s=deadline_s,
                request_id=request_id,
                backend=backend,
                exclude_backends=exclude_backends,
            )
        )

    def submit_request(self, request: MatmulRequest) -> Future:
        """Admit a :class:`~repro.serve.request.MatmulRequest`."""
        fut: Future = Future()
        cfg = self.config
        abft_cfg = request.config if request.config is not None else cfg.abft
        try:
            abft_cfg = self._merge_backend_choice(request, abft_cfg)
        except ConfigurationError:
            with self._cond:
                self._seq += 1
                if request.request_id is None:
                    request.request_id = f"r{self._seq}"
            self._resolve_rejection(fut, request.request_id, "invalid_backend")
            return fut
        now = self._clock()
        deadline_s = (
            request.deadline_s
            if request.deadline_s is not None
            else cfg.default_deadline_s
        )
        reject_reason = None
        with self._cond:
            self._seq += 1
            if request.request_id is None:
                request.request_id = f"r{self._seq}"
            request_id = request.request_id
            if not self._accepting:
                reject_reason = "shutdown"
            elif len(self._queue) >= cfg.max_queue_depth:
                reject_reason = "queue_full"
            else:
                pending = _Pending(
                    request=request,
                    future=fut,
                    config=abft_cfg,
                    key=self._group_key(request, abft_cfg),
                    enqueue_t=now,
                    deadline_total=deadline_s,
                    deadline_at=None if deadline_s is None else now + deadline_s,
                )
                self._queue.append(pending)
                self._g_depth.set(len(self._queue))
                if self._auto_start and self._thread is None:
                    self._start_locked()
                self._cond.notify_all()
        if reject_reason is not None:
            self._resolve_rejection(fut, request_id, reject_reason)
        return fut

    def submit_model(self, request: ModelRequest) -> Future:
        """Submit a model-inference request; returns a future of the response.

        The pass executes on a dedicated thread (model runs are multi-layer
        and would head-of-line-block the matmul micro-batcher), through a
        :class:`~repro.models.runner.ModelRunner` sharing this server's
        engine and registry — so ``abft_model_*`` metrics land in the same
        scrape as ``abft_serve_*``.

        Deadline handling is **per layer**: before each layer dispatches,
        the remaining-deadline fraction walks the server's degradation
        ladder, capping that layer's planned protection rung.  A pass that
        outlives its deadline finishes at the ``unchecked`` rung rather
        than dying mid-model; every below-plan layer is named on
        :attr:`~repro.serve.request.ModelResponse.degraded_layers` and the
        response status reflects it — never silent.
        """
        if not isinstance(request, ModelRequest):
            raise TypeError(
                f"request must be a ModelRequest, got "
                f"{type(request).__name__}"
            )
        fut: Future = Future()
        with self._cond:
            self._seq += 1
            if request.request_id is None:
                request.request_id = f"m{self._seq}"
            accepting = self._accepting
        if not accepting:
            self._resolve_model_rejection(fut, request.request_id, "shutdown")
            return fut
        enqueue_t = self._clock()
        thread = threading.Thread(
            target=self._run_model,
            args=(request, fut, enqueue_t),
            name=f"abft-serve-model-{request.request_id}",
            daemon=True,
        )
        thread.start()
        return fut

    def start(self) -> None:
        """Start the dispatcher thread (idempotent)."""
        with self._cond:
            self._start_locked()

    @property
    def started(self) -> bool:
        return self._thread is not None

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return len(self._queue)

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the server.

        New submissions are rejected (reason ``"shutdown"``) immediately.
        With ``drain=True`` (default) queued and in-flight work is served
        first, waiting up to ``timeout`` (default
        ``config.drain_timeout_s``); anything still queued afterwards — or
        everything, with ``drain=False`` — resolves as rejected with
        reason ``"shutdown"``.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        with self._cond:
            self._accepting = False
            self._cond.notify_all()
            if drain and self._thread is not None:
                self._cond.wait_for(
                    lambda: not self._queue and self._inflight == 0,
                    timeout=timeout,
                )
            self._stopped = True
            leftovers = list(self._queue)
            self._queue.clear()
            self._g_depth.set(0)
            self._cond.notify_all()
            thread = self._thread
        for pending in leftovers:
            self._resolve_rejection(
                pending.future,
                pending.request.request_id or "r?",
                "shutdown",
                queue_wait_s=self._clock() - pending.enqueue_t,
            )
        if thread is not None:
            thread.join(timeout=timeout)

    def __enter__(self) -> "MatmulServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=True)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _start_locked(self) -> None:
        if self._thread is not None or self._stopped:
            return
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="abft-serve-dispatch", daemon=True
        )
        self._thread.start()

    def _merge_backend_choice(
        self, request: MatmulRequest, abft_cfg: AbftConfig
    ) -> AbftConfig:
        """Apply a request's backend pin/exclusions to its effective config.

        Raises :class:`~repro.errors.ConfigurationError` for an unknown
        pinned backend name or an invalid pin/exclude combination — the
        caller turns that into an ``"invalid_backend"`` rejection.  A
        known-but-unavailable pin is *not* rejected here: the engine's
        negotiation falls back to numpy and records why on the result.
        """
        if request.backend is None and not request.exclude_backends:
            return abft_cfg
        if (
            request.backend is not None
            and request.backend not in self.engine.backends
        ):
            raise ConfigurationError(
                f"unknown backend {request.backend!r}; registered: "
                f"{', '.join(self.engine.backends.names())}"
            )
        replacements: dict = {}
        if request.backend is not None:
            replacements["backend"] = request.backend
        if request.exclude_backends:
            merged = dict.fromkeys(
                tuple(abft_cfg.exclude_backends) + request.exclude_backends
            )
            replacements["exclude_backends"] = tuple(merged)
        return abft_cfg.replace(**replacements)

    def _group_key(self, request: MatmulRequest, abft_cfg: AbftConfig) -> tuple:
        return (
            _operand_shape(request.a),
            _operand_shape(request.b),
            str(_operand_dtype(request.a)),
            str(_operand_dtype(request.b)),
            abft_cfg,
        )

    def _dispatch_loop(self) -> None:
        cfg = self.config
        while True:
            with self._cond:
                while not self._queue and not self._stopped:
                    self._cond.wait()
                if self._stopped:
                    return
                head = self._queue[0]
                window_end = head.enqueue_t + cfg.batch_window_s
                # Coalesce: wait out the window for same-key followers.
                while not self._stopped:
                    same = sum(1 for p in self._queue if p.key == head.key)
                    if same >= cfg.max_batch_size:
                        break
                    remaining = window_end - self._clock()
                    if remaining <= 0:
                        break
                    self._cond.wait(timeout=remaining)
                batch = []
                rest: deque[_Pending] = deque()
                for p in self._queue:
                    if p.key == head.key and len(batch) < cfg.max_batch_size:
                        batch.append(p)
                    else:
                        rest.append(p)
                self._queue = rest
                self._inflight += len(batch)
                self._g_depth.set(len(self._queue))
            try:
                self._execute_batch(batch)
            finally:
                with self._cond:
                    self._inflight -= len(batch)
                    self._cond.notify_all()

    def _execute_batch(self, batch: list[_Pending]) -> None:
        cfg = self.config
        now = self._clock()
        self._m_batches.inc()
        self._h_batch.observe(len(batch))
        waits = {}
        for p in batch:
            waits[id(p)] = wait = now - p.enqueue_t
            self._h_wait.observe(wait)

        groups: dict[int, list[_Pending]] = {}
        for p in batch:
            rung, expired = self._rung_at(p, now)
            if expired and cfg.reject_expired:
                self._resolve_rejection(
                    p.future,
                    p.request.request_id or "r?",
                    "deadline",
                    queue_wait_s=waits[id(p)],
                )
                continue
            groups.setdefault(rung, []).append(p)

        for rung in sorted(groups):
            pendings = groups[rung]
            try:
                self._run_group(pendings, rung, waits)
            except Exception as exc:  # pragma: no cover - defensive
                # A scheduler bug must never strand callers: fail their
                # futures loudly and count the drop so CI can gate on it.
                for p in pendings:
                    if not p.future.done():
                        self._m_dropped.inc()
                        p.future.set_exception(exc)

    def _rung_at(self, pending: _Pending, now: float) -> tuple[int, bool]:
        """Ladder rung for a pending request at dispatch time."""
        if pending.deadline_at is None:
            return 0, False
        remaining = pending.deadline_at - now
        last = len(self.config.degradation_ladder) - 1
        if remaining <= 0:
            return last, True
        fraction = remaining / pending.deadline_total
        rung = rung_for_fraction(fraction, self.config.degrade_fractions)
        return min(rung, last), False

    def _run_group(
        self, pendings: list[_Pending], rung: int, waits: dict
    ) -> None:
        cfg = self.config
        rung_name = cfg.rung_name(rung)
        t0 = self._clock()
        with span("serve.batch", self.registry, rung=rung_name):
            if rung_name == "unchecked":
                outcomes = [
                    self._run_unchecked(p) for p in pendings
                ]
            else:
                outcomes = self._run_checked(pendings, rung_name)
        service_s = self._clock() - t0

        for p, response in zip(pendings, outcomes):
            wait = waits[id(p)]
            response.request_id = p.request.request_id or response.request_id
            response.queue_wait_s = wait
            response.service_s = service_s
            response.batch_size = len(pendings)
            if response.status is not VerificationStatus.FULL:
                self._m_degradations.labels(rung=rung_name).inc()
            self._m_requests.labels(outcome="completed").inc()
            self._h_latency.observe(wait + service_s)
            p.future.set_result(response)

    def _run_unchecked(self, pending: _Pending) -> MatmulResponse:
        c = _raw_operand(pending.request.a) @ _raw_operand(pending.request.b)
        return MatmulResponse(
            request_id=pending.request.request_id or "r?",
            status=VerificationStatus.UNCHECKED,
            c=c,
            report=None,
            scheme=None,
            backend="numpy",
        )

    def _batch_deadline(self, pendings: list[_Pending]) -> float | None:
        """The batch's tightest remaining deadline budget in seconds.

        Threaded into the execution policy so the pipelined executor can
        clamp its speculative prefetch window; ``None`` when no pending
        request carries a deadline.  Already-expired deadlines clamp to a
        tiny positive budget (the policy requires ``deadline_s > 0``).
        """
        now = self._clock()
        remaining = [
            p.deadline_at - now
            for p in pendings
            if p.deadline_at is not None
        ]
        if not remaining:
            return None
        return max(min(remaining), 1e-6)

    def _run_checked(
        self, pendings: list[_Pending], rung_name: str
    ) -> list[MatmulResponse]:
        cfg = self.config
        eff = pendings[0].config
        status = VerificationStatus.FULL
        a_ops = [p.request.a for p in pendings]
        b_ops = [p.request.b for p in pendings]
        if rung_name != "full":
            eff = eff.replace(scheme=rung_name)
            status = VerificationStatus.DEGRADED
            # Handles were encoded for the requested scheme; the degraded
            # scheme needs its own preprocessing, so fall back to raw data.
            a_ops = [_raw_operand(a) for a in a_ops]
            b_ops = [_raw_operand(b) for b in b_ops]
        policy = cfg.execution
        deadline_s = self._batch_deadline(pendings)
        if deadline_s is not None:
            policy = policy.replace(deadline_s=deadline_s)
        results = self.engine.execute_batch(
            list(zip(a_ops, b_ops)), policy=policy, config=eff
        )
        responses = []
        for p, a_op, b_op, result in zip(pendings, a_ops, b_ops, results):
            corrected = recomputed = False
            retries = 0
            if result.detected:
                self._m_detections.inc()
                with span("serve.retry", self.registry):
                    result, corrected, recomputed, retries = self._recover(
                        a_op, b_op, result, eff
                    )
            responses.append(
                MatmulResponse(
                    request_id=p.request.request_id or "r?",
                    status=status,
                    c=result.c,
                    report=result.report,
                    scheme=eff.scheme,
                    detected=result.detected and not corrected,
                    corrected=corrected,
                    recomputed=recomputed,
                    retries=retries,
                    backend=result.backend,
                    backend_fallback=result.backend_fallback,
                )
            )
        return responses

    def _recover(self, a_op, b_op, result, eff: AbftConfig):
        """Correct or recompute a detected-error result.

        Returns ``(final_result, corrected, recomputed, retries)``.  A
        successful ABFT correction returns a patched result carrying the
        corrected data together with the *original* detection report (kept
        for diagnosis); a successful recomputation returns the fresh,
        clean result.  If every attempt still detects, the last dirty
        result comes back so the response carries ``detected=True``.
        """
        cfg = self.config
        if cfg.correct_detected and len(result.report.located_errors) == 1:
            try:
                correction = correct_single_error(
                    result.c_fc,
                    result.report,
                    result.row_layout,
                    result.col_layout,
                    result.provider,
                    verify=True,
                )
            except CorrectionError:
                pass
            else:
                rows_added = result.row_layout.data_rows - result.c.shape[0]
                cols_added = result.col_layout.data_rows - result.c.shape[1]
                c = strip_encoding(
                    correction.corrected,
                    result.row_layout,
                    result.col_layout,
                    rows_added,
                    cols_added,
                ).astype(result.c.dtype, copy=False)
                patched = type(result)(
                    c=c,
                    c_fc=correction.corrected,
                    report=result.report,
                    row_layout=result.row_layout,
                    col_layout=result.col_layout,
                    provider=result.provider,
                    backend=result.backend,
                    backend_fallback=result.backend_fallback,
                )
                self._m_retries.labels(kind="corrected").inc()
                return patched, True, False, 0
        retries = 0
        final = result
        while retries < cfg.max_retries:
            retries += 1
            self._m_retries.labels(kind="recomputed").inc()
            final = self.engine.matmul(a_op, b_op, config=eff)
            if not final.detected:
                return final, False, True, retries
        return final, False, False, retries

    def _model_runner(self):
        """The lazily-built model runner sharing engine and registry."""
        from ..models.runner import ModelRunner

        with self._cond:
            runner = getattr(self, "_model_runner_obj", None)
            if runner is None:
                runner = ModelRunner(self.engine, registry=self.registry)
                self._model_runner_obj = runner
        return runner

    def _run_model(self, request: ModelRequest, fut: Future, enqueue_t: float):
        from ..models.planner import ProtectionPlanner

        cfg = self.config
        try:
            plan = request.plan
            if plan is None:
                plan = ProtectionPlanner(cfg.abft).plan(request.model)
            deadline_total = request.deadline_s
            deadline_at = (
                None
                if deadline_total is None
                else enqueue_t + deadline_total
            )

            def rung_cap(index, assignment):
                """Per-layer ladder walk from remaining deadline budget."""
                if deadline_at is None:
                    return "full"
                remaining = deadline_at - self._clock()
                if remaining <= 0:
                    return "unchecked"
                rung = rung_for_fraction(
                    remaining / deadline_total, cfg.degrade_fractions
                )
                return cfg.rung_name(rung)

            t0 = self._clock()
            result = self._model_runner().run(
                request.model,
                plan,
                request.inputs,
                seed=request.seed,
                rung_cap=rung_cap,
            )
            service_s = self._clock() - t0
            degraded = tuple(
                layer.layer for layer in result.layers if layer.degraded
            )
            for layer in result.layers:
                if layer.degraded:
                    self._m_degradations.labels(rung=layer.rung).inc()
            if any(layer.protected for layer in result.layers):
                status = (
                    VerificationStatus.DEGRADED
                    if degraded
                    else VerificationStatus.FULL
                )
            else:
                status = VerificationStatus.UNCHECKED
            self._m_requests.labels(outcome="completed").inc()
            self._h_latency.observe((t0 - enqueue_t) + service_s)
            fut.set_result(
                ModelResponse(
                    request_id=request.request_id or "m?",
                    status=status,
                    output=result.output,
                    result=result,
                    detected=result.detected,
                    degraded_layers=degraded,
                    queue_wait_s=t0 - enqueue_t,
                    service_s=service_s,
                )
            )
        except Exception as exc:
            # A runner bug must never strand the caller.
            if not fut.done():
                self._m_dropped.inc()
                fut.set_exception(exc)

    def _resolve_model_rejection(
        self, fut: Future, request_id: str, reason: str
    ) -> None:
        self._m_rejections.labels(reason=reason).inc()
        self._m_requests.labels(outcome="rejected").inc()
        fut.set_result(
            ModelResponse(
                request_id=request_id,
                status=VerificationStatus.REJECTED,
                rejected_reason=reason,
            )
        )

    def _resolve_rejection(
        self,
        fut: Future,
        request_id: str,
        reason: str,
        queue_wait_s: float = 0.0,
    ) -> None:
        self._m_rejections.labels(reason=reason).inc()
        self._m_requests.labels(outcome="rejected").inc()
        fut.set_result(
            MatmulResponse(
                request_id=request_id,
                status=VerificationStatus.REJECTED,
                rejected_reason=reason,
                queue_wait_s=queue_wait_s,
            )
        )
