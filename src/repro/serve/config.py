"""Configuration of the serving layer.

:class:`ServeConfig` bundles every scheduling knob — admission-queue
bound, micro-batch coalescing window, deadline/degradation policy and
retry behaviour — into one frozen, hashable object, mirroring how
:class:`~repro.engine.config.AbftConfig` captures the numerical knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace

from ..engine.config import AbftConfig
from ..engine.policy import ExecutionPolicy
from ..errors import ConfigurationError

__all__ = ["ServeConfig", "DEGRADATION_RUNGS", "rung_for_fraction"]

#: Valid degradation-ladder rungs, strongest protection first.
DEGRADATION_RUNGS = ("full", "sea", "unchecked")


def rung_for_fraction(
    remaining_fraction: float, degrade_fractions: tuple[float, ...]
) -> int:
    """Ladder rung index for a request's remaining-deadline fraction.

    ``remaining_fraction`` is ``remaining / total`` of the request's
    deadline budget at dispatch time.  ``degrade_fractions`` are strictly
    decreasing thresholds: a fraction at or above ``degrade_fractions[0]``
    keeps full protection (rung 0); below it, every further threshold
    crossed walks one rung down the ladder.  The result is monotone in
    deadline pressure — the ladder is always walked *in order*, never
    skipped upward.
    """
    rung = 0
    for threshold in degrade_fractions:
        if remaining_fraction < threshold:
            rung += 1
    return rung


@dataclass(frozen=True)
class ServeConfig:
    """Every scheduling knob of :class:`~repro.serve.server.MatmulServer`.

    Attributes
    ----------
    abft:
        Default :class:`~repro.engine.config.AbftConfig` for requests that
        do not carry their own.
    execution:
        The :class:`~repro.engine.policy.ExecutionPolicy` coalesced batches
        are dispatched under (default: mode ``"auto"``).  The dispatcher
        threads each batch's tightest remaining deadline through the
        policy's ``deadline_s`` so the pipelined executor can bound its
        speculative prefetch window.
    max_queue_depth:
        Bound of the admission queue.  Submissions beyond it are rejected
        immediately with reason ``"queue_full"`` (explicit backpressure —
        the queue never grows without bound).
    max_batch_size:
        Largest micro-batch the dispatcher coalesces.
    batch_window_s:
        How long the dispatcher waits after the first request of a batch
        for same-shape/same-config followers.  ``0`` disables time-window
        coalescing (whatever is queued still batches).
    default_deadline_s:
        Deadline applied to requests that do not set one; ``None`` means
        no deadline.
    degradation_ladder:
        Protection levels walked under deadline pressure, strongest first.
        Rungs: ``"full"`` (the request's own config), ``"sea"`` (the
        cheaper norm-based SEA bound), ``"unchecked"`` (no verification,
        explicitly flagged).  Verification status is **never** silently
        dropped — every response reports the rung it was served at.
    degrade_fractions:
        Strictly decreasing remaining-deadline fractions (one per ladder
        step) that trigger each downward rung; see
        :func:`rung_for_fraction`.
    reject_expired:
        Reject requests whose deadline has already passed at dispatch time
        (reason ``"deadline"``) instead of serving them at the last rung.
    max_retries:
        Recomputation attempts after a detected (and uncorrectable) error.
    correct_detected:
        Attempt ABFT single-error correction before recomputing.
    drain_timeout_s:
        How long :meth:`~repro.serve.server.MatmulServer.stop` waits for
        queued work when draining.
    """

    abft: AbftConfig = field(default_factory=AbftConfig)
    execution: ExecutionPolicy = field(default_factory=ExecutionPolicy)
    max_queue_depth: int = 256
    max_batch_size: int = 32
    batch_window_s: float = 0.002
    default_deadline_s: float | None = None
    degradation_ladder: tuple[str, ...] = DEGRADATION_RUNGS
    degrade_fractions: tuple[float, ...] = (0.5, 0.2)
    reject_expired: bool = True
    max_retries: int = 1
    correct_detected: bool = True
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if not isinstance(self.abft, AbftConfig):
            raise ConfigurationError(
                f"abft must be an AbftConfig, got {type(self.abft).__name__}"
            )
        if not isinstance(self.execution, ExecutionPolicy):
            raise ConfigurationError(
                f"execution must be an ExecutionPolicy, got "
                f"{type(self.execution).__name__}"
            )
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.batch_window_s < 0:
            raise ConfigurationError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive, got "
                f"{self.default_deadline_s}"
            )
        ladder = tuple(self.degradation_ladder)
        object.__setattr__(self, "degradation_ladder", ladder)
        if not ladder:
            raise ConfigurationError("degradation_ladder must not be empty")
        for rung in ladder:
            if rung not in DEGRADATION_RUNGS:
                raise ConfigurationError(
                    f"unknown degradation rung {rung!r}; "
                    f"valid rungs: {DEGRADATION_RUNGS}"
                )
        if list(ladder) != sorted(
            ladder, key=DEGRADATION_RUNGS.index
        ) or len(set(ladder)) != len(ladder):
            raise ConfigurationError(
                "degradation_ladder must be unique rungs ordered strongest "
                f"to weakest, got {ladder}"
            )
        fractions = tuple(float(f) for f in self.degrade_fractions)
        object.__setattr__(self, "degrade_fractions", fractions)
        if len(fractions) != len(ladder) - 1:
            raise ConfigurationError(
                f"degrade_fractions needs one threshold per ladder step "
                f"({len(ladder) - 1}), got {len(fractions)}"
            )
        if any(not 0.0 < f < 1.0 for f in fractions):
            raise ConfigurationError(
                f"degrade_fractions must lie in (0, 1), got {fractions}"
            )
        if any(a <= b for a, b in zip(fractions, fractions[1:])):
            raise ConfigurationError(
                f"degrade_fractions must be strictly decreasing, "
                f"got {fractions}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.drain_timeout_s < 0:
            raise ConfigurationError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )

    def replace(self, **changes) -> "ServeConfig":
        """A copy with the given fields replaced (validated again)."""
        return _dc_replace(self, **changes)

    def rung_name(self, rung: int) -> str:
        """Ladder name of ``rung``, clamped to the last configured rung."""
        return self.degradation_ladder[
            min(rung, len(self.degradation_ladder) - 1)
        ]
