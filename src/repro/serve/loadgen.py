"""Closed-loop load generator for the serving layer.

:func:`run_loadgen` drives a :class:`~repro.serve.server.MatmulServer`
with a fixed number of requests at a fixed concurrency window (a closed
loop: a new request is submitted only when a slot frees up), measures
client-observed latencies and tallies every response by its
:class:`~repro.serve.request.VerificationStatus`.

Beyond the numbers, the generator checks the serving layer's
**accounting invariants** — the properties the ``serve-smoke`` CI job
gates on:

* every submitted request resolves: ``served + rejected + dropped ==
  submitted`` and ``dropped == 0``;
* no response is silently unverified: without deadline pressure every
  served response is ``FULL``; rejections always carry a reason;
* with ``verify_results=True``, no response is silently *wrong*: a
  result that differs from the reference product must either be flagged
  ``detected`` or carry an ``UNCHECKED`` status — a verified-and-clean
  wrong answer is the one unforgivable outcome;
* with ``reconcile=True`` (the default whenever the generator owns the
  server), the client-side tally is reconciled against the
  ``abft_serve_*`` counter movement over the run — every mismatch is
  reported as a labelled diff line, not a bare assert.
"""

from __future__ import annotations

import time
from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..workloads import uniform_matrix
from .config import ServeConfig
from .request import MatmulResponse, VerificationStatus
from .server import MatmulServer

__all__ = [
    "LoadgenResult",
    "run_loadgen",
    "percentile",
    "serve_counter_snapshot",
    "reconcile_counters",
]


def percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0 < pct <= 100:
        raise ValueError(f"pct must lie in (0, 100], got {pct}")
    rank = max(1, int(np.ceil(pct / 100.0 * len(sorted_values))))
    return float(sorted_values[rank - 1])


@dataclass
class LoadgenResult:
    """Everything one load-generation run observed.

    ``latencies_s`` holds the client-observed (submit → resolve) seconds
    of every *served* response, sorted ascending.
    """

    submitted: int
    wall_s: float
    status_counts: dict[str, int] = field(default_factory=dict)
    rejection_reasons: dict[str, int] = field(default_factory=dict)
    detected: int = 0
    corrected: int = 0
    recomputed: int = 0
    retry_attempts: int = 0
    requeued: int = 0
    dropped: int = 0
    max_batch_size: int = 0
    silent_wrong: int = 0
    honest_wrong: int = 0
    latencies_s: list[float] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def served(self) -> int:
        """Responses that were executed (any non-rejected status)."""
        return sum(
            count
            for status, count in self.status_counts.items()
            if status != VerificationStatus.REJECTED.value
        )

    @property
    def rejected(self) -> int:
        return self.status_counts.get(VerificationStatus.REJECTED.value, 0)

    @property
    def throughput_rps(self) -> float:
        """Served requests per wall-clock second."""
        return self.served / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p90_s(self) -> float:
        return percentile(self.latencies_s, 90)

    @property
    def p99_s(self) -> float:
        return percentile(self.latencies_s, 99)

    @property
    def ok(self) -> bool:
        """Whether every accounting invariant held."""
        return not self.violations

    def summary(self) -> dict:
        """A JSON-friendly summary (what ``aabft loadgen`` prints)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "status_counts": dict(self.status_counts),
            "rejection_reasons": dict(self.rejection_reasons),
            "detected": self.detected,
            "corrected": self.corrected,
            "recomputed": self.recomputed,
            "retry_attempts": self.retry_attempts,
            "requeued": self.requeued,
            "silent_wrong": self.silent_wrong,
            "honest_wrong": self.honest_wrong,
            "max_batch_size": self.max_batch_size,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_s": {
                "p50": self.p50_s,
                "p90": self.p90_s,
                "p99": self.p99_s,
            },
            "ok": self.ok,
            "violations": list(self.violations),
        }


def run_loadgen(
    server=None,
    *,
    client_factory=None,
    requests: int = 200,
    concurrency: int = 16,
    m: int = 128,
    n: int = 128,
    q: int = 16,
    shared_a: bool = True,
    deadline_s: float | None = None,
    seed: int = 0,
    serve_config: ServeConfig | None = None,
    registry=None,
    timeout_s: float = 120.0,
    verify_results: bool = False,
    reconcile: bool | None = None,
) -> LoadgenResult:
    """Drive a server with a closed-loop uniform-matrix workload.

    Parameters
    ----------
    server:
        The serving target to drive — anything exposing the
        :class:`~repro.serve.server.MatmulServer` surface (``submit`` /
        ``registry`` / ``stop``), including a
        :class:`~repro.cluster.frontend.ClusterFrontend`.  ``None``
        builds a :class:`~repro.serve.server.MatmulServer` from
        ``serve_config`` (and ``registry``) and stops it — drained —
        when the run ends.
    client_factory:
        Alternative to ``server``: a zero-argument callable building the
        serving target.  The generator owns the built client exactly as
        it owns a default-built server (stops it drained at the end,
        reconciles its counters by default) — this is how the same
        loadgen, with its ``verify_results``/``reconcile_counters``
        accounting unchanged, drives the cluster path
        (``aabft loadgen --cluster``).  Mutually exclusive with
        ``server``.
    requests / concurrency:
        Total requests and the closed-loop window: at most ``concurrency``
        requests are outstanding at any moment.
    m, n, q:
        Workload shapes: ``A`` is ``m x n``, each ``B_i`` is ``n x q``.
    shared_a:
        One shared weight matrix ``A`` across all requests (the serving
        pattern micro-batching amortises best); ``False`` draws a fresh
        ``A`` per request.
    deadline_s:
        Per-request deadline; drives the degradation ladder under load.
    seed:
        Workload RNG seed.
    timeout_s:
        Per-future safety timeout — a hung server fails loudly instead of
        blocking the generator forever.
    verify_results:
        Compute the reference product at submission time and compare every
        served result against it.  A wrong result that claims verification
        without a detection flag is a **silent wrong answer** — reported
        as a violation.  Wrong-but-honest results (``UNCHECKED`` status or
        ``detected=True``) are tallied in ``honest_wrong`` only.
    reconcile:
        Reconcile the client-side tally against the movement of the
        ``abft_serve_*`` counters over the run; every mismatch becomes a
        labelled diff line in ``violations``.  Defaults to ``True`` when
        the generator builds (and therefore exclusively owns) the server,
        ``False`` for a caller-provided server whose registry may carry
        concurrent traffic.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if server is not None and client_factory is not None:
        raise ValueError("pass either server or client_factory, not both")
    own_server = server is None
    if own_server:
        if client_factory is not None:
            server = client_factory()
        else:
            kwargs = {} if registry is None else {"registry": registry}
            server = MatmulServer(serve_config, **kwargs)
    if reconcile is None:
        reconcile = own_server

    rng = np.random.default_rng(seed)
    a_shared = uniform_matrix(m, n, rng) if shared_a else None

    # (response | exception, latency, wrong-result flag | None)
    records: list[tuple[object, float, bool | None]] = []

    def _on_done(fut, t0: float, ref) -> None:
        latency = time.perf_counter() - t0
        try:
            response = fut.result()
        except BaseException as exc:  # noqa: BLE001 - tallied as dropped
            records.append((exc, latency, None))
            return
        wrong = None
        if ref is not None and getattr(response, "c", None) is not None:
            wrong = not np.allclose(response.c, ref)
        records.append((response, latency, wrong))

    counters_before = (
        serve_counter_snapshot(server.registry) if reconcile else None
    )
    try:
        outstanding: deque = deque()
        submitted = 0
        t_start = time.perf_counter()
        while submitted < requests or outstanding:
            while submitted < requests and len(outstanding) < concurrency:
                a = a_shared if shared_a else uniform_matrix(m, n, rng)
                b = uniform_matrix(n, q, rng)
                ref = a @ b if verify_results else None
                t0 = time.perf_counter()
                fut = server.submit(
                    a,
                    b,
                    deadline_s=deadline_s,
                    request_id=f"lg{submitted}",
                )
                fut.add_done_callback(
                    lambda f, t0=t0, ref=ref: _on_done(f, t0, ref)
                )
                outstanding.append(fut)
                submitted += 1
            fut = outstanding.popleft()
            try:
                fut.result(timeout=timeout_s)
            except Exception:
                pass  # tallied via the done callback
        wall = time.perf_counter() - t_start
        # fut.result() wakes as soon as the result is *set*; the done
        # callback that records it runs afterwards on the resolving
        # thread.  Wait for the stragglers or the tally under-counts.
        drain_deadline = time.perf_counter() + timeout_s
        while len(records) < submitted and time.perf_counter() < drain_deadline:
            time.sleep(0.0005)
    finally:
        if own_server:
            server.stop(drain=True)

    result = _tally(records, submitted, wall, deadline_s)
    if reconcile:
        delta = counter_delta(
            counters_before, serve_counter_snapshot(server.registry)
        )
        result.violations.extend(reconcile_counters(result, delta))
    return result


def _tally(
    records: list,
    submitted: int,
    wall: float,
    deadline_s: float | None,
) -> LoadgenResult:
    statuses: _TallyCounter = _TallyCounter()
    reasons: _TallyCounter = _TallyCounter()
    latencies: list[float] = []
    detected = corrected = recomputed = retry_attempts = dropped = 0
    requeued = silent_wrong = honest_wrong = 0
    max_batch = 0
    violations: list[str] = []

    for outcome, latency, wrong in records:
        if not isinstance(outcome, MatmulResponse):
            dropped += 1
            violations.append(f"request died without a response: {outcome!r}")
            continue
        statuses[outcome.status.value] += 1
        requeued += outcome.requeues
        if outcome.status is VerificationStatus.REJECTED:
            if not outcome.rejected_reason:
                violations.append(
                    f"{outcome.request_id}: rejected without a reason"
                )
            else:
                reasons[outcome.rejected_reason] += 1
            continue
        latencies.append(latency)
        max_batch = max(max_batch, outcome.batch_size)
        if outcome.c is None:
            violations.append(f"{outcome.request_id}: served without a result")
        if outcome.verified and outcome.report is None:
            violations.append(
                f"{outcome.request_id}: verified status without a report"
            )
        if deadline_s is None and outcome.status is not VerificationStatus.FULL:
            violations.append(
                f"{outcome.request_id}: served {outcome.status.value} "
                "without deadline pressure"
            )
        if wrong:
            if outcome.verified and not outcome.detected:
                # The one unforgivable outcome: a wrong result claiming
                # clean verification.
                silent_wrong += 1
                violations.append(
                    f"{outcome.request_id}: SILENT WRONG ANSWER — result "
                    f"differs from reference but status is "
                    f"{outcome.status.value} with detected=False"
                )
            else:
                honest_wrong += 1
        detected += bool(outcome.detected)
        corrected += bool(outcome.corrected)
        recomputed += bool(outcome.recomputed)
        retry_attempts += outcome.retries

    if len(records) != submitted:
        violations.append(
            f"{submitted} requests submitted but only {len(records)} resolved"
        )

    latencies.sort()
    return LoadgenResult(
        submitted=submitted,
        wall_s=wall,
        status_counts=dict(statuses),
        rejection_reasons=dict(reasons),
        detected=detected,
        corrected=corrected,
        recomputed=recomputed,
        retry_attempts=retry_attempts,
        requeued=requeued,
        dropped=dropped,
        max_batch_size=max_batch,
        silent_wrong=silent_wrong,
        honest_wrong=honest_wrong,
        latencies_s=latencies,
        violations=violations,
    )


# ---------------------------------------------------------------------------
# Counter reconciliation
# ---------------------------------------------------------------------------

#: The counter families the reconciliation owns — the ``abft_serve_*``
#: accounting set plus the cluster's requeue counter (which stays at zero
#: for single-process serving): any unexplained movement in these over a
#: reconciled run is a violation.
_RECONCILED_FAMILIES = frozenset(
    {
        "abft_serve_requests_total",
        "abft_serve_rejections_total",
        "abft_serve_degradations_total",
        "abft_serve_retries_total",
        "abft_serve_detections_total",
        "abft_serve_dropped_total",
        "abft_cluster_requeued_total",
    }
)


def serve_counter_snapshot(registry) -> dict:
    """Flat ``{(name, (label, value), ...): count}`` view of the
    reconciled counter families in ``registry`` — the before/after halves
    of a reconciliation delta."""
    out: dict = {}
    for name, family in registry.snapshot().items():
        if name not in _RECONCILED_FAMILIES or family["type"] != "counter":
            continue
        for entry in family["values"]:
            key = (name, *sorted(entry["labels"].items()))
            out[key] = entry["value"]
    return out


def counter_delta(before: dict, after: dict) -> dict:
    """Per-series counter movement between two snapshots."""
    return {key: value - before.get(key, 0) for key, value in after.items()}


def reconcile_counters(result: LoadgenResult, delta: dict) -> list[str]:
    """Diff a client-side tally against the server-side counter movement.

    Returns one human-readable line per mismatch (empty when the books
    balance).  Valid only when ``result`` accounts for *all* traffic the
    counters saw over the window — the generator guarantees that when it
    owns the server; composite harnesses (see :mod:`repro.chaos`) merge
    tallies first and then call this once.
    """
    delta = dict(delta)
    diffs: list[str] = []

    def moved(name: str, **labels) -> float:
        key = (name, *sorted(labels.items()))
        return delta.pop(key, 0)

    def expect(name: str, labels: dict, actual: float, expected: int) -> None:
        if actual != expected:
            label_s = (
                "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            diffs.append(
                f"counter {name}{label_s}: moved {actual:g}, "
                f"client tallied {expected} ({actual - expected:+g})"
            )

    served, rejected = result.served, result.rejected
    expect(
        "abft_serve_requests_total",
        {"outcome": "completed"},
        moved("abft_serve_requests_total", outcome="completed"),
        served,
    )
    expect(
        "abft_serve_requests_total",
        {"outcome": "rejected"},
        moved("abft_serve_requests_total", outcome="rejected"),
        rejected,
    )
    for reason in sorted(
        set(result.rejection_reasons)
        | {key[1][1] for key in delta if key[0] == "abft_serve_rejections_total"}
    ):
        expect(
            "abft_serve_rejections_total",
            {"reason": reason},
            moved("abft_serve_rejections_total", reason=reason),
            result.rejection_reasons.get(reason, 0),
        )
    # Degradation ladder: the "unchecked" rung maps to UNCHECKED responses;
    # every other (checked-but-cheaper) rung maps to DEGRADED ones.
    unchecked_moved = degraded_moved = 0.0
    for key in [k for k in delta if k[0] == "abft_serve_degradations_total"]:
        value = delta.pop(key)
        if dict(key[1:]).get("rung") == "unchecked":
            unchecked_moved += value
        else:
            degraded_moved += value
    expect(
        "abft_serve_degradations_total",
        {"rung": "unchecked"},
        unchecked_moved,
        result.status_counts.get(VerificationStatus.UNCHECKED.value, 0),
    )
    expect(
        "abft_serve_degradations_total",
        {"rung": "<checked>"},
        degraded_moved,
        result.status_counts.get(VerificationStatus.DEGRADED.value, 0),
    )
    expect(
        "abft_serve_detections_total",
        {},
        moved("abft_serve_detections_total"),
        result.detected + result.corrected + result.recomputed,
    )
    expect(
        "abft_serve_retries_total",
        {"kind": "corrected"},
        moved("abft_serve_retries_total", kind="corrected"),
        result.corrected,
    )
    expect(
        "abft_serve_retries_total",
        {"kind": "recomputed"},
        moved("abft_serve_retries_total", kind="recomputed"),
        result.retry_attempts,
    )
    expect(
        "abft_serve_dropped_total",
        {},
        moved("abft_serve_dropped_total"),
        result.dropped,
    )
    # Cluster requeues: every re-queue event the frontend counted must be
    # visible on a delivered response (zero==zero for single-process runs).
    expect(
        "abft_cluster_requeued_total",
        {},
        moved("abft_cluster_requeued_total"),
        result.requeued,
    )
    for key, value in delta.items():
        if value:
            diffs.append(
                f"unexplained counter movement: {key[0]}{dict(key[1:])} "
                f"+{value:g} not accounted for by the client tally"
            )
    return diffs
