"""Closed-loop load generator for the serving layer.

:func:`run_loadgen` drives a :class:`~repro.serve.server.MatmulServer`
with a fixed number of requests at a fixed concurrency window (a closed
loop: a new request is submitted only when a slot frees up), measures
client-observed latencies and tallies every response by its
:class:`~repro.serve.request.VerificationStatus`.

Beyond the numbers, the generator checks the serving layer's
**accounting invariants** — the properties the ``serve-smoke`` CI job
gates on:

* every submitted request resolves: ``served + rejected + dropped ==
  submitted`` and ``dropped == 0``;
* no response is silently unverified: without deadline pressure every
  served response is ``FULL``; rejections always carry a reason.
"""

from __future__ import annotations

import time
from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..workloads import uniform_matrix
from .config import ServeConfig
from .request import MatmulResponse, VerificationStatus
from .server import MatmulServer

__all__ = ["LoadgenResult", "run_loadgen", "percentile"]


def percentile(sorted_values: list[float], pct: float) -> float:
    """Nearest-rank percentile of an already sorted sample (0 if empty)."""
    if not sorted_values:
        return 0.0
    if not 0 < pct <= 100:
        raise ValueError(f"pct must lie in (0, 100], got {pct}")
    rank = max(1, int(np.ceil(pct / 100.0 * len(sorted_values))))
    return float(sorted_values[rank - 1])


@dataclass
class LoadgenResult:
    """Everything one load-generation run observed.

    ``latencies_s`` holds the client-observed (submit → resolve) seconds
    of every *served* response, sorted ascending.
    """

    submitted: int
    wall_s: float
    status_counts: dict[str, int] = field(default_factory=dict)
    rejection_reasons: dict[str, int] = field(default_factory=dict)
    detected: int = 0
    corrected: int = 0
    recomputed: int = 0
    dropped: int = 0
    max_batch_size: int = 0
    latencies_s: list[float] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def served(self) -> int:
        """Responses that were executed (any non-rejected status)."""
        return sum(
            count
            for status, count in self.status_counts.items()
            if status != VerificationStatus.REJECTED.value
        )

    @property
    def rejected(self) -> int:
        return self.status_counts.get(VerificationStatus.REJECTED.value, 0)

    @property
    def throughput_rps(self) -> float:
        """Served requests per wall-clock second."""
        return self.served / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_s(self) -> float:
        return percentile(self.latencies_s, 50)

    @property
    def p90_s(self) -> float:
        return percentile(self.latencies_s, 90)

    @property
    def p99_s(self) -> float:
        return percentile(self.latencies_s, 99)

    @property
    def ok(self) -> bool:
        """Whether every accounting invariant held."""
        return not self.violations

    def summary(self) -> dict:
        """A JSON-friendly summary (what ``aabft loadgen`` prints)."""
        return {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "status_counts": dict(self.status_counts),
            "rejection_reasons": dict(self.rejection_reasons),
            "detected": self.detected,
            "corrected": self.corrected,
            "recomputed": self.recomputed,
            "max_batch_size": self.max_batch_size,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency_s": {
                "p50": self.p50_s,
                "p90": self.p90_s,
                "p99": self.p99_s,
            },
            "ok": self.ok,
            "violations": list(self.violations),
        }


def run_loadgen(
    server: MatmulServer | None = None,
    *,
    requests: int = 200,
    concurrency: int = 16,
    m: int = 128,
    n: int = 128,
    q: int = 16,
    shared_a: bool = True,
    deadline_s: float | None = None,
    seed: int = 0,
    serve_config: ServeConfig | None = None,
    registry=None,
    timeout_s: float = 120.0,
) -> LoadgenResult:
    """Drive a server with a closed-loop uniform-matrix workload.

    Parameters
    ----------
    server:
        The server to drive.  ``None`` builds one from ``serve_config``
        (and ``registry``) and stops it — drained — when the run ends.
    requests / concurrency:
        Total requests and the closed-loop window: at most ``concurrency``
        requests are outstanding at any moment.
    m, n, q:
        Workload shapes: ``A`` is ``m x n``, each ``B_i`` is ``n x q``.
    shared_a:
        One shared weight matrix ``A`` across all requests (the serving
        pattern micro-batching amortises best); ``False`` draws a fresh
        ``A`` per request.
    deadline_s:
        Per-request deadline; drives the degradation ladder under load.
    seed:
        Workload RNG seed.
    timeout_s:
        Per-future safety timeout — a hung server fails loudly instead of
        blocking the generator forever.
    """
    if requests < 1:
        raise ValueError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    own_server = server is None
    if own_server:
        kwargs = {} if registry is None else {"registry": registry}
        server = MatmulServer(serve_config, **kwargs)

    rng = np.random.default_rng(seed)
    a_shared = uniform_matrix(m, n, rng) if shared_a else None

    records: list[tuple[object, float]] = []  # (response | exception, latency)

    def _on_done(fut, t0: float) -> None:
        latency = time.perf_counter() - t0
        try:
            records.append((fut.result(), latency))
        except BaseException as exc:  # noqa: BLE001 - tallied as dropped
            records.append((exc, latency))

    try:
        outstanding: deque = deque()
        submitted = 0
        t_start = time.perf_counter()
        while submitted < requests or outstanding:
            while submitted < requests and len(outstanding) < concurrency:
                a = a_shared if shared_a else uniform_matrix(m, n, rng)
                b = uniform_matrix(n, q, rng)
                t0 = time.perf_counter()
                fut = server.submit(
                    a,
                    b,
                    deadline_s=deadline_s,
                    request_id=f"lg{submitted}",
                )
                fut.add_done_callback(lambda f, t0=t0: _on_done(f, t0))
                outstanding.append(fut)
                submitted += 1
            fut = outstanding.popleft()
            try:
                fut.result(timeout=timeout_s)
            except Exception:
                pass  # tallied via the done callback
        wall = time.perf_counter() - t_start
    finally:
        if own_server:
            server.stop(drain=True)

    return _tally(records, submitted, wall, deadline_s)


def _tally(
    records: list,
    submitted: int,
    wall: float,
    deadline_s: float | None,
) -> LoadgenResult:
    statuses: _TallyCounter = _TallyCounter()
    reasons: _TallyCounter = _TallyCounter()
    latencies: list[float] = []
    detected = corrected = recomputed = dropped = 0
    max_batch = 0
    violations: list[str] = []

    for outcome, latency in records:
        if not isinstance(outcome, MatmulResponse):
            dropped += 1
            violations.append(f"request died without a response: {outcome!r}")
            continue
        statuses[outcome.status.value] += 1
        if outcome.status is VerificationStatus.REJECTED:
            if not outcome.rejected_reason:
                violations.append(
                    f"{outcome.request_id}: rejected without a reason"
                )
            else:
                reasons[outcome.rejected_reason] += 1
            continue
        latencies.append(latency)
        max_batch = max(max_batch, outcome.batch_size)
        if outcome.c is None:
            violations.append(f"{outcome.request_id}: served without a result")
        if outcome.verified and outcome.report is None:
            violations.append(
                f"{outcome.request_id}: verified status without a report"
            )
        if deadline_s is None and outcome.status is not VerificationStatus.FULL:
            violations.append(
                f"{outcome.request_id}: served {outcome.status.value} "
                "without deadline pressure"
            )
        detected += bool(outcome.detected)
        corrected += bool(outcome.corrected)
        recomputed += bool(outcome.recomputed)

    if len(records) != submitted:
        violations.append(
            f"{submitted} requests submitted but only {len(records)} resolved"
        )

    latencies.sort()
    return LoadgenResult(
        submitted=submitted,
        wall_s=wall,
        status_counts=dict(statuses),
        rejection_reasons=dict(reasons),
        detected=detected,
        corrected=corrected,
        recomputed=recomputed,
        dropped=dropped,
        max_batch_size=max_batch,
        latencies_s=latencies,
        violations=violations,
    )
