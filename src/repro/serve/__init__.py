"""Fault-tolerant serving layer: micro-batching with adaptive degradation.

The serving layer turns the plan-caching engine into a request-driven
worker: concurrent protected-matmul requests are admitted through a
bounded queue (explicit backpressure), coalesced into same-shape
micro-batches executed through the engine's fused path, degraded in
protection level — never silently — under deadline pressure, and
corrected or recomputed on detected errors before the response resolves.

Entry points: :class:`MatmulServer` (in-process API, also behind
``aabft serve``), :func:`run_loadgen` (closed-loop driver behind
``aabft loadgen``) and :func:`run_serve_benchmark` (the
``BENCH_serve.json`` benchmark behind ``aabft bench``).
"""

from .bench import run_serve_benchmark
from .config import DEGRADATION_RUNGS, ServeConfig, rung_for_fraction
from .loadgen import LoadgenResult, percentile, run_loadgen
from .request import (
    MatmulRequest,
    MatmulResponse,
    ModelRequest,
    ModelResponse,
    VerificationStatus,
)
from .server import MatmulServer

__all__ = [
    "DEGRADATION_RUNGS",
    "LoadgenResult",
    "MatmulRequest",
    "MatmulResponse",
    "MatmulServer",
    "ModelRequest",
    "ModelResponse",
    "ServeConfig",
    "VerificationStatus",
    "percentile",
    "rung_for_fraction",
    "run_loadgen",
    "run_serve_benchmark",
]
