"""The :class:`GpuSimulator` facade tying device, memory, scheduling,
profiling and kernel execution together.

Typical use::

    sim = GpuSimulator(K20C)
    d_a = sim.upload(a)
    d_c = sim.alloc(c_shape)
    sim.launch(MyKernel(d_a, d_c, ...), stream="compute")
    c = sim.download(d_c)

Every launch runs block-by-block under the deterministic round-robin block
scheduler, provisions a fresh shared-memory scratchpad per block, merges the
kernel's work counters and records a modelled timing in the profiler.
"""

from __future__ import annotations

import numpy as np

from .device import DeviceSpec, K20C
from .kernel import BlockContext, Kernel, KernelStats, LaunchConfig
from .memory import DeviceBuffer, GlobalMemory, SharedMemory
from .profiler import LaunchRecord, Profiler
from .scheduler import BlockScheduler
from .stream import Stream, concurrent_seconds
from .timing import TimingModel

__all__ = ["GpuSimulator"]


class GpuSimulator:
    """A functional simulator of one GPU device.

    Parameters
    ----------
    device:
        Static device description; defaults to the paper's K20c.
    timing_model:
        Override the analytic timing model (tests inject simplified ones).
    """

    def __init__(
        self, device: DeviceSpec = K20C, timing_model: TimingModel | None = None
    ) -> None:
        self.device = device
        self.memory = GlobalMemory(device)
        self.scheduler = BlockScheduler(device)
        self.timing = timing_model or TimingModel(device)
        self.profiler = Profiler()
        self._streams: dict[str, Stream] = {}

    # ------------------------------------------------------------------
    # Memory convenience wrappers
    # ------------------------------------------------------------------
    def alloc(self, shape, dtype=np.float64, name: str | None = None) -> DeviceBuffer:
        """Allocate a zeroed device buffer."""
        return self.memory.alloc(shape, dtype, name)

    def upload(self, host_array: np.ndarray, name: str | None = None) -> DeviceBuffer:
        """Copy a host array into a fresh device buffer."""
        return self.memory.upload(np.ascontiguousarray(host_array), name)

    def download(self, buf: DeviceBuffer) -> np.ndarray:
        """Copy a device buffer back to the host."""
        return self.memory.download(buf)

    def free(self, buf: DeviceBuffer) -> None:
        """Release a device buffer."""
        self.memory.free(buf)

    def reset(self) -> None:
        """Free all buffers and clear profiling state."""
        self.memory.free_all()
        self.profiler.reset()
        self._streams.clear()

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def stream(self, name: str) -> Stream:
        """Get or create a named stream."""
        if name not in self._streams:
            self._streams[name] = Stream(name)
        return self._streams[name]

    def concurrent_wall_seconds(self, *stream_names: str) -> float:
        """Modelled wall time of the named streams running concurrently."""
        return concurrent_seconds(*(self.stream(n) for n in stream_names))

    # ------------------------------------------------------------------
    # Kernel execution
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Kernel,
        config: LaunchConfig | None = None,
        stream: str = "default",
        compute_efficiency: float | None = None,
        precision: str = "double",
    ) -> LaunchRecord:
        """Execute ``kernel`` over its launch grid and record the launch.

        Parameters
        ----------
        kernel:
            The kernel instance; its buffers were bound at construction.
        config:
            Launch configuration; defaults to ``kernel.launch_config()``.
        stream:
            Stream name for timing aggregation.
        compute_efficiency:
            Override for the kernel's sustained-efficiency factor; defaults
            to ``kernel.compute_efficiency`` when present, else 0.85.
        precision:
            Floating-point precision for the timing roofline.
        """
        if config is None:
            config = kernel.launch_config()
        config.validate(self.device)

        totals = KernelStats()
        for assignment in self.scheduler.assign(config):
            shared = SharedMemory(self.device.shared_mem_per_block)
            ctx = BlockContext(
                block_idx=assignment.block_idx,
                block_dim=config.block,
                sm_id=assignment.sm_id,
                shared=shared,
                linear_block_index=assignment.linear_index,
            )
            kernel.run_block(ctx)
            ctx.stats.shared_bytes_peak = max(
                ctx.stats.shared_bytes_peak, shared.used_bytes
            )
            totals.merge(ctx.stats)

        efficiency = compute_efficiency
        if efficiency is None:
            efficiency = getattr(kernel, "compute_efficiency", 0.85)
        timing = self.timing.estimate(
            kernel.name,
            totals,
            num_blocks=config.num_blocks,
            compute_efficiency=efficiency,
            precision=precision,
        )
        record = LaunchRecord(
            kernel_name=kernel.name,
            num_blocks=config.num_blocks,
            threads_per_block=config.threads_per_block,
            stats=totals,
            timing=timing,
        )
        self.profiler.record(record)
        self.stream(stream).record(record)
        return record
