"""Simulated GPU device descriptions.

The paper's experiments ran on an NVIDIA K20c (Kepler GK110): 13 streaming
multiprocessors, 2496 CUDA cores, 5 GB GDDR5, and ~1.17 TFLOPS peak double
precision.  :data:`K20C` encodes those published characteristics; the
functional simulator uses the SM count and scheduling granularity (which
determine *where* a fault lands), while the analytic performance model
(:mod:`repro.perfmodel`) uses the throughput numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "K20C", "GTX680", "device_by_name"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Tesla K20c"``.
    num_sms:
        Number of streaming multiprocessors.  Fault injection targets one of
        these (paper Section VI-C: "the fault injection routine randomly
        selects a streaming multiprocessor").
    cores_per_sm:
        CUDA cores per SM (single-precision lanes).
    clock_ghz:
        Core clock in GHz.
    peak_dp_gflops:
        Peak double-precision throughput in GFLOPS.
    peak_sp_gflops:
        Peak single-precision throughput in GFLOPS.
    mem_bandwidth_gbs:
        Theoretical global-memory bandwidth in GB/s.
    global_mem_bytes:
        Global device memory capacity in bytes.
    shared_mem_per_block:
        Shared-memory capacity available to one thread block, in bytes.
    max_threads_per_block:
        Hardware limit on threads per block.
    warp_size:
        SIMD width of a warp.
    """

    name: str
    num_sms: int
    cores_per_sm: int
    clock_ghz: float
    peak_dp_gflops: float
    peak_sp_gflops: float
    mem_bandwidth_gbs: float
    global_mem_bytes: int
    shared_mem_per_block: int = 48 * 1024
    max_threads_per_block: int = 1024
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise ValueError("num_sms must be positive")
        if self.peak_dp_gflops <= 0 or self.mem_bandwidth_gbs <= 0:
            raise ValueError("throughput figures must be positive")

    @property
    def total_cores(self) -> int:
        """Total CUDA core count across all SMs."""
        return self.num_sms * self.cores_per_sm

    def peak_gflops(self, precision: str = "double") -> float:
        """Peak GFLOPS for ``precision`` in {'double', 'single'}."""
        if precision == "double":
            return self.peak_dp_gflops
        if precision == "single":
            return self.peak_sp_gflops
        raise ValueError(f"unknown precision {precision!r}")


#: The paper's evaluation platform (Section VI-A).
K20C = DeviceSpec(
    name="Tesla K20c",
    num_sms=13,
    cores_per_sm=192,
    clock_ghz=0.706,
    peak_dp_gflops=1170.0,
    peak_sp_gflops=3520.0,
    mem_bandwidth_gbs=208.0,
    global_mem_bytes=5 * 1024**3,
)

#: A consumer Kepler part, for what-if studies (weak double precision).
GTX680 = DeviceSpec(
    name="GeForce GTX 680",
    num_sms=8,
    cores_per_sm=192,
    clock_ghz=1.006,
    peak_dp_gflops=128.8,
    peak_sp_gflops=3090.0,
    mem_bandwidth_gbs=192.2,
    global_mem_bytes=2 * 1024**3,
)

_DEVICES = {spec.name: spec for spec in (K20C, GTX680)}


def device_by_name(name: str) -> DeviceSpec:
    """Look up a built-in device spec by its marketing name."""
    try:
        return _DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; available: {sorted(_DEVICES)}"
        ) from None
