"""Execution traces of simulated runs, exportable to the Chrome trace format.

The profiler answers "how long did each kernel take"; the trace answers
"what did the device *do*, when, on which stream" — a timeline built from
the modelled kernel durations with streams mapped to trace threads.  The
JSON export loads directly into ``chrome://tracing`` / Perfetto, which is
the quickest way to see the A-ABFT pipeline's overlap structure (the top-p
reduction hiding behind the matmul).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .stream import Stream

__all__ = ["TraceEvent", "ExecutionTrace", "trace_from_streams"]


@dataclass(frozen=True)
class TraceEvent:
    """One timeline interval (all times in modelled microseconds)."""

    name: str
    stream: str
    start_us: float
    duration_us: float
    args: dict = field(default_factory=dict)

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us


@dataclass
class ExecutionTrace:
    """An ordered collection of timeline events."""

    events: list[TraceEvent] = field(default_factory=list)

    @property
    def wall_us(self) -> float:
        """Modelled wall time: the latest event end."""
        return max((e.end_us for e in self.events), default=0.0)

    def stream_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.stream, None)
        return list(seen)

    def events_on(self, stream: str) -> list[TraceEvent]:
        return [e for e in self.events if e.stream == stream]

    def to_chrome_trace(self) -> str:
        """Serialise to the Chrome trace-event JSON format.

        Streams become thread ids of one process; every event is a complete
        ("X") duration event.
        """
        tids = {name: i for i, name in enumerate(self.stream_names())}
        payload = [
            {
                "name": e.name,
                "cat": "kernel",
                "ph": "X",
                "pid": 0,
                "tid": tids[e.stream],
                "ts": e.start_us,
                "dur": e.duration_us,
                "args": e.args,
            }
            for e in self.events
        ]
        payload.extend(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"stream:{name}"},
            }
            for name, tid in tids.items()
        )
        return json.dumps({"traceEvents": payload, "displayTimeUnit": "ms"})

    def summary(self) -> str:
        """Per-stream occupancy overview."""
        wall = self.wall_us
        lines = [f"modelled wall time: {wall:.1f} us"]
        for name in self.stream_names():
            busy = sum(e.duration_us for e in self.events_on(name))
            share = 100.0 * busy / wall if wall > 0 else 0.0
            lines.append(
                f"  stream {name:<12} {len(self.events_on(name)):3d} kernels, "
                f"busy {busy:10.1f} us ({share:5.1f}%)"
            )
        return "\n".join(lines)


def trace_from_streams(*streams: Stream) -> ExecutionTrace:
    """Build a timeline from stream submission orders and modelled times.

    Each stream executes its launches back to back starting at t = 0;
    streams run concurrently (the simulator's coarse overlap model).
    """
    trace = ExecutionTrace()
    for stream in streams:
        cursor = 0.0
        for record in stream.records:
            duration = record.seconds * 1e6
            trace.events.append(
                TraceEvent(
                    name=record.kernel_name,
                    stream=stream.name,
                    start_us=cursor,
                    duration_us=duration,
                    args={
                        "blocks": record.num_blocks,
                        "flops": record.stats.flops,
                        "gflops": round(record.timing.gflops, 1),
                        "limiter": record.timing.limiter,
                    },
                )
            )
            cursor += duration
    return trace
