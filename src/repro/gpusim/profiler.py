"""Launch-level profiling for the simulated GPU.

Collects one record per kernel launch (work counters + modelled timing) and
aggregates them into per-kernel and whole-run summaries.  The performance
experiments read their scheme-level timings from here.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .kernel import KernelStats
from .timing import KernelTiming

__all__ = ["LaunchRecord", "Profiler"]


@dataclass(frozen=True)
class LaunchRecord:
    """One completed kernel launch."""

    kernel_name: str
    num_blocks: int
    threads_per_block: int
    stats: KernelStats
    timing: KernelTiming

    @property
    def seconds(self) -> float:
        return self.timing.seconds


@dataclass
class Profiler:
    """Accumulates launch records for a simulation run."""

    records: list[LaunchRecord] = field(default_factory=list)

    def record(self, record: LaunchRecord) -> None:
        self.records.append(record)

    def reset(self) -> None:
        self.records.clear()

    @property
    def total_seconds(self) -> float:
        """Sum of modelled kernel times (serial-stream assumption)."""
        return sum(r.seconds for r in self.records)

    @property
    def total_flops(self) -> int:
        return sum(r.stats.flops for r in self.records)

    def seconds_by_kernel(self) -> dict[str, float]:
        """Modelled time per kernel name."""
        out: dict[str, float] = defaultdict(float)
        for r in self.records:
            out[r.kernel_name] += r.seconds
        return dict(out)

    def launches_of(self, kernel_name: str) -> list[LaunchRecord]:
        """All launches of a given kernel, in order."""
        return [r for r in self.records if r.kernel_name == kernel_name]

    def summary(self) -> str:
        """Human-readable per-kernel summary table."""
        lines = [f"{'kernel':<28} {'launches':>8} {'time [ms]':>12} {'GFLOPS':>10}"]
        by_name: dict[str, list[LaunchRecord]] = defaultdict(list)
        for r in self.records:
            by_name[r.kernel_name].append(r)
        for name, records in sorted(by_name.items()):
            seconds = sum(r.seconds for r in records)
            flops = sum(r.stats.flops for r in records)
            gflops = flops / seconds / 1e9 if seconds > 0 else 0.0
            lines.append(
                f"{name:<28} {len(records):>8} {seconds * 1e3:>12.3f} {gflops:>10.1f}"
            )
        return "\n".join(lines)
