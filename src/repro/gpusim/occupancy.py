"""CUDA-style occupancy calculation for the simulated device.

The timing model's saturation ramp abstracts how many thread blocks fit on
an SM.  This module computes that number from first principles, the way the
CUDA occupancy calculator does: a block becomes resident only if the SM has
enough warp slots, registers and shared memory for it, and a hard
blocks-per-SM limit applies on top.

Useful for kernel-configuration studies (how do BM/BN/RX/RY choices trade
parallelism against register pressure?) and to justify the per-kernel
efficiency constants of :mod:`repro.perfmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import KernelLaunchError

__all__ = ["SmResources", "KEPLER_SM", "Occupancy", "occupancy"]


@dataclass(frozen=True)
class SmResources:
    """Per-SM scheduling resources of an architecture."""

    max_threads: int
    max_warps: int
    max_blocks: int
    registers: int
    shared_memory_bytes: int
    warp_size: int = 32

    def __post_init__(self) -> None:
        if self.max_threads < self.warp_size:
            raise ValueError("an SM must host at least one warp")
        if self.max_warps * self.warp_size < self.max_threads:
            raise ValueError("warp slots must cover the thread capacity")


#: Kepler GK110 (the K20c's architecture, compute capability 3.5).
KEPLER_SM = SmResources(
    max_threads=2048,
    max_warps=64,
    max_blocks=16,
    registers=65536,
    shared_memory_bytes=48 * 1024,
)


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy calculation."""

    resident_blocks: int
    resident_warps: int
    occupancy: float
    limiter: str  # "threads", "warps", "blocks", "registers" or "shared"

    @property
    def percent(self) -> float:
        return 100.0 * self.occupancy


def occupancy(
    threads_per_block: int,
    registers_per_thread: int = 32,
    shared_bytes_per_block: int = 0,
    sm: SmResources = KEPLER_SM,
) -> Occupancy:
    """How many blocks of the given shape fit on one SM, and why not more.

    Raises
    ------
    KernelLaunchError
        If a single block already exceeds an SM resource (the launch would
        fail on real hardware).
    """
    if threads_per_block < 1:
        raise KernelLaunchError("a block needs at least one thread")
    warps_per_block = -(-threads_per_block // sm.warp_size)
    regs_per_block = registers_per_thread * threads_per_block

    limits: dict[str, int] = {
        "threads": sm.max_threads // threads_per_block,
        "warps": sm.max_warps // warps_per_block,
        "blocks": sm.max_blocks,
    }
    if registers_per_thread > 0:
        limits["registers"] = sm.registers // regs_per_block
    if shared_bytes_per_block > 0:
        limits["shared"] = sm.shared_memory_bytes // shared_bytes_per_block

    limiter, blocks = min(limits.items(), key=lambda kv: kv[1])
    if blocks < 1:
        raise KernelLaunchError(
            f"one block ({threads_per_block} threads, "
            f"{registers_per_thread} regs/thread, "
            f"{shared_bytes_per_block} B shared) exceeds the SM's "
            f"{limiter} capacity"
        )
    warps = blocks * warps_per_block
    return Occupancy(
        resident_blocks=blocks,
        resident_warps=warps,
        occupancy=warps / sm.max_warps,
        limiter=limiter,
    )
