"""Functional SIMT GPU simulator — the CUDA-substrate of this reproduction.

Models the pieces the A-ABFT experiments observe: a device with streaming
multiprocessors, deterministic block-to-SM scheduling (fault injection
targets an SM), global/shared memory with capacity accounting, block-granular
kernel execution, and an analytic roofline timing model for the performance
experiments.
"""

from .device import GTX680, K20C, DeviceSpec, device_by_name
from .kernel import BlockContext, Dim3, Kernel, KernelStats, LaunchConfig
from .memory import DeviceBuffer, GlobalMemory, SharedMemory
from .occupancy import KEPLER_SM, Occupancy, SmResources, occupancy
from .profiler import LaunchRecord, Profiler
from .scheduler import BlockAssignment, BlockScheduler
from .simulator import GpuSimulator
from .stream import Stream, concurrent_seconds
from .timing import KernelTiming, TimingModel
from .trace import ExecutionTrace, TraceEvent, trace_from_streams

__all__ = [
    "BlockAssignment",
    "BlockContext",
    "BlockScheduler",
    "DeviceBuffer",
    "DeviceSpec",
    "Dim3",
    "GTX680",
    "GlobalMemory",
    "KEPLER_SM",
    "Occupancy",
    "SmResources",
    "GpuSimulator",
    "K20C",
    "Kernel",
    "KernelStats",
    "KernelTiming",
    "LaunchConfig",
    "LaunchRecord",
    "Profiler",
    "SharedMemory",
    "Stream",
    "TimingModel",
    "ExecutionTrace",
    "TraceEvent",
    "concurrent_seconds",
    "device_by_name",
    "occupancy",
    "trace_from_streams",
]
