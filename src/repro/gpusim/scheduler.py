"""Block-to-SM scheduling for the functional simulator.

Real GPUs dispatch thread blocks to streaming multiprocessors through a
hardware work distributor; for the experiments in this library the only
observable property of that mapping is *which* SM executes *which* block,
because fault injection targets a single SM (paper Section VI-C).  The
scheduler therefore provides a deterministic round-robin assignment (a good
model of the Kepler work distributor under a uniform kernel) plus helpers to
enumerate the blocks resident on a given SM.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .kernel import Dim3, LaunchConfig

__all__ = ["BlockScheduler", "BlockAssignment"]


@dataclass(frozen=True)
class BlockAssignment:
    """One scheduled thread block."""

    linear_index: int
    block_idx: Dim3
    sm_id: int


class BlockScheduler:
    """Deterministic round-robin block scheduler.

    Blocks are linearised in row-major order (x fastest) and assigned to SMs
    cyclically: block ``i`` runs on SM ``i mod num_sms``.
    """

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    def linearise(self, grid: Dim3) -> list[Dim3]:
        """All block coordinates of ``grid`` in dispatch order."""
        return [
            Dim3(x, y, z)
            for z in range(grid.z)
            for y in range(grid.y)
            for x in range(grid.x)
        ]

    def assign(self, config: LaunchConfig) -> list[BlockAssignment]:
        """Schedule every block of a launch onto an SM."""
        num_sms = self.device.num_sms
        return [
            BlockAssignment(linear_index=i, block_idx=idx, sm_id=i % num_sms)
            for i, idx in enumerate(self.linearise(config.grid))
        ]

    def sm_of_block(self, linear_index: int) -> int:
        """SM that will execute the block with the given linear index."""
        if linear_index < 0:
            raise ValueError("block index must be non-negative")
        return linear_index % self.device.num_sms

    def blocks_on_sm(self, config: LaunchConfig, sm_id: int) -> list[BlockAssignment]:
        """All blocks of a launch that land on ``sm_id``."""
        if not 0 <= sm_id < self.device.num_sms:
            raise ValueError(
                f"sm_id {sm_id} out of range for {self.device.name} "
                f"(0..{self.device.num_sms - 1})"
            )
        return [a for a in self.assign(config) if a.sm_id == sm_id]
