"""Simulated GPU memory: global device buffers and per-block shared memory.

The functional simulator models memory at the fidelity the experiments need:
global buffers are numpy arrays with explicit allocation against the device's
capacity (so out-of-memory behaves like the real API), and shared memory is a
per-thread-block scratchpad with a capacity check against the device limit.
Host/device transfers are explicit copies so kernels can never alias host
data by accident.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceError
from .device import DeviceSpec

__all__ = ["DeviceBuffer", "GlobalMemory", "SharedMemory"]


@dataclass
class DeviceBuffer:
    """A global-memory allocation.

    The backing numpy array is only handed out to simulated kernels (via
    :meth:`array`) — host code should use the copy-based accessors of
    :class:`GlobalMemory` / :class:`~repro.gpusim.simulator.GpuSimulator`.
    """

    name: str
    _data: np.ndarray
    freed: bool = False

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def array(self) -> np.ndarray:
        """Device-side view for kernels. Raises if the buffer was freed."""
        if self.freed:
            raise DeviceError(f"use-after-free of device buffer {self.name!r}")
        return self._data


class GlobalMemory:
    """Global device memory with capacity accounting.

    Parameters
    ----------
    device:
        The device whose ``global_mem_bytes`` bounds total allocation.
    """

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device
        self._allocated_bytes = 0
        self._buffers: dict[str, DeviceBuffer] = {}
        self._counter = 0

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently allocated."""
        return self._allocated_bytes

    @property
    def free_bytes(self) -> int:
        """Remaining capacity."""
        return self.device.global_mem_bytes - self._allocated_bytes

    def alloc(
        self, shape: tuple[int, ...] | int, dtype=np.float64, name: str | None = None
    ) -> DeviceBuffer:
        """Allocate a zero-initialised buffer.

        Raises
        ------
        DeviceError
            If the allocation would exceed the device's memory capacity.
        """
        data = np.zeros(shape, dtype=dtype)
        if data.nbytes > self.free_bytes:
            raise DeviceError(
                f"out of device memory: requested {data.nbytes} bytes, "
                f"{self.free_bytes} free of {self.device.global_mem_bytes}"
            )
        if name is None:
            name = f"buf{self._counter}"
        self._counter += 1
        if name in self._buffers and not self._buffers[name].freed:
            raise DeviceError(f"buffer name {name!r} already allocated")
        buf = DeviceBuffer(name=name, _data=data)
        self._buffers[name] = buf
        self._allocated_bytes += data.nbytes
        return buf

    def upload(self, host_array: np.ndarray, name: str | None = None) -> DeviceBuffer:
        """Allocate a buffer and copy ``host_array`` into it."""
        buf = self.alloc(host_array.shape, host_array.dtype, name)
        buf.array()[...] = host_array
        return buf

    def download(self, buf: DeviceBuffer) -> np.ndarray:
        """Copy a device buffer back to a fresh host array."""
        return buf.array().copy()

    def free(self, buf: DeviceBuffer) -> None:
        """Release a buffer; double-free raises."""
        if buf.freed:
            raise DeviceError(f"double free of device buffer {buf.name!r}")
        buf.freed = True
        self._allocated_bytes -= buf.nbytes

    def free_all(self) -> None:
        """Release every live buffer (device reset)."""
        for buf in self._buffers.values():
            if not buf.freed:
                buf.freed = True
                self._allocated_bytes -= buf.nbytes


@dataclass
class SharedMemory:
    """Per-thread-block shared-memory scratchpad.

    Kernels declare named arrays (``smA``, ``smB``, ...) as in the paper's
    algorithm listings; total size is checked against the device limit so a
    kernel that would not fit on the real hardware fails loudly here too.
    """

    capacity_bytes: int
    _arrays: dict[str, np.ndarray] = field(default_factory=dict)

    def declare(self, name: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Declare (or re-obtain) a named shared array."""
        if name in self._arrays:
            existing = self._arrays[name]
            if existing.shape != tuple(np.atleast_1d(shape)) and existing.shape != shape:
                raise DeviceError(
                    f"shared array {name!r} redeclared with different shape"
                )
            return existing
        arr = np.zeros(shape, dtype=dtype)
        if self.used_bytes + arr.nbytes > self.capacity_bytes:
            raise DeviceError(
                f"shared memory exceeded: {self.used_bytes + arr.nbytes} bytes "
                f"requested, {self.capacity_bytes} available per block"
            )
        self._arrays[name] = arr
        return arr

    @property
    def used_bytes(self) -> int:
        """Bytes currently declared in this block's scratchpad."""
        return sum(a.nbytes for a in self._arrays.values())
