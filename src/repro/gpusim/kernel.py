"""Kernel and launch abstractions for the functional GPU simulator.

A :class:`Kernel` is executed block-by-block: the simulator's scheduler
assigns every thread block of the launch grid to a streaming multiprocessor
and calls :meth:`Kernel.run_block` once per block with a
:class:`BlockContext`.  Inside ``run_block`` the kernel may iterate over its
threads explicitly (as the paper's algorithm listings do) or use vectorised
numpy operations where the per-thread order does not affect the numerics.

This block-granular model preserves everything the experiments depend on:
which SM executes which block (fault targeting), the shared-memory footprint,
and the per-element accumulation order of the matmul kernel.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from ..errors import KernelLaunchError
from .device import DeviceSpec
from .memory import SharedMemory

__all__ = ["Dim3", "LaunchConfig", "BlockContext", "Kernel", "KernelStats"]


@dataclass(frozen=True)
class Dim3:
    """CUDA-style 3-component tuple, used both as a dimension (all
    components >= 1) and as a block index (components >= 0)."""

    x: int
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        if self.x < 0 or self.y < 0 or self.z < 0:
            raise ValueError(f"components must be non-negative, got {self}")

    @property
    def count(self) -> int:
        """Total number of elements (threads or blocks)."""
        return self.x * self.y * self.z


@dataclass(frozen=True)
class LaunchConfig:
    """Grid and block dimensions of a kernel launch."""

    grid: Dim3
    block: Dim3

    def __post_init__(self) -> None:
        if self.grid.count < 1 or self.block.count < 1:
            raise KernelLaunchError(
                f"grid and block dimensions must all be >= 1, got "
                f"grid={self.grid}, block={self.block}"
            )

    @property
    def num_blocks(self) -> int:
        return self.grid.count

    @property
    def threads_per_block(self) -> int:
        return self.block.count

    def validate(self, device: DeviceSpec) -> None:
        """Reject configurations the target device could not launch."""
        if self.threads_per_block > device.max_threads_per_block:
            raise KernelLaunchError(
                f"{self.threads_per_block} threads per block exceeds device "
                f"limit of {device.max_threads_per_block}"
            )


@dataclass
class KernelStats:
    """Work accounting a kernel reports during execution.

    The analytic timing model consumes these counters; the functional result
    never depends on them.
    """

    flops: int = 0
    global_bytes_read: int = 0
    global_bytes_written: int = 0
    shared_bytes_peak: int = 0

    def merge(self, other: "KernelStats") -> None:
        self.flops += other.flops
        self.global_bytes_read += other.global_bytes_read
        self.global_bytes_written += other.global_bytes_written
        self.shared_bytes_peak = max(self.shared_bytes_peak, other.shared_bytes_peak)

    @property
    def global_bytes(self) -> int:
        return self.global_bytes_read + self.global_bytes_written


@dataclass
class BlockContext:
    """Everything one thread block sees while executing.

    Attributes
    ----------
    block_idx:
        This block's coordinates in the launch grid.
    block_dim:
        Thread-block dimensions.
    sm_id:
        The streaming multiprocessor the scheduler assigned this block to.
    shared:
        The block's shared-memory scratchpad.
    stats:
        Per-block work counters (merged into the launch totals afterwards).
    """

    block_idx: Dim3
    block_dim: Dim3
    sm_id: int
    shared: SharedMemory
    linear_block_index: int = 0
    stats: KernelStats = field(default_factory=KernelStats)


class Kernel(abc.ABC):
    """Base class for simulated GPU kernels.

    Subclasses implement :meth:`run_block`; the simulator takes care of grid
    iteration, SM assignment, shared-memory provisioning and stat merging.
    """

    #: Human-readable kernel name used in profiler reports.
    name: str = "kernel"

    @abc.abstractmethod
    def run_block(self, ctx: BlockContext) -> None:
        """Execute one thread block.

        Implementations read/write global memory through the device arrays
        they were constructed with and may use ``ctx.shared`` for staging,
        mirroring the paper's algorithm listings.
        """

    def launch_config(self) -> LaunchConfig:
        """Default launch configuration; kernels may compute it from their
        problem shape.  Must be overridden unless the caller supplies one."""
        raise KernelLaunchError(
            f"kernel {self.name!r} does not define a default launch config"
        )
