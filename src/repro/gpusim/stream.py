"""Execution streams for the simulated GPU.

The paper overlaps the top-p reduction kernel with the matrix-multiplication
kernel ("This reduction kernel is executed in parallel to the matrix
multiplication kernel", Section V-A).  The simulator models streams only at
the *timing* level: kernels in different streams execute functionally in
submission order (the numerics are order-independent across streams in all
the pipelines we build), but the modelled wall time of concurrent streams is
``max`` rather than ``sum``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .profiler import LaunchRecord

__all__ = ["Stream", "concurrent_seconds"]


@dataclass
class Stream:
    """A named submission queue whose launch times accumulate separately."""

    name: str
    records: list[LaunchRecord] = field(default_factory=list)

    def record(self, record: LaunchRecord) -> None:
        self.records.append(record)

    @property
    def seconds(self) -> float:
        """Modelled serial execution time of this stream."""
        return sum(r.seconds for r in self.records)


def concurrent_seconds(*streams: Stream) -> float:
    """Modelled wall time of streams executing concurrently.

    The device executes independent streams in parallel as long as resources
    allow; for the coarse-grained overlap the A-ABFT pipeline uses (one small
    reduction kernel alongside the huge matmul) ``max`` of the stream times
    is the appropriate model.
    """
    if not streams:
        return 0.0
    return max(s.seconds for s in streams)
