"""Analytic kernel timing for the simulated device.

The functional simulator produces bit-exact numerics but runs on a CPU, so
wall-clock time means nothing.  Timing is instead *modelled*: every kernel
launch reports its floating-point operation count and global-memory traffic
(:class:`~repro.gpusim.kernel.KernelStats`), and this module converts those
into an estimated execution time with a roofline model refined by two
empirically motivated efficiency terms:

* ``compute_efficiency`` — the fraction of peak FLOPS a kernel sustains when
  compute-bound.  Dense matmul on Kepler sustains 75-90 % of peak for large
  tiles (Tan et al., SC'11); reduction-style kernels sustain far less.
* an occupancy ramp — small launches cannot fill all SMs, so sustained
  throughput scales with ``min(1, blocks / (sms * blocks_to_saturate))``.

The per-scheme GFLOPS tables of the paper (Table I) are regenerated from
these estimates by :mod:`repro.perfmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .kernel import KernelStats

__all__ = ["TimingModel", "KernelTiming"]


@dataclass(frozen=True)
class KernelTiming:
    """Modelled execution time of one kernel launch."""

    name: str
    seconds: float
    flops: int
    bytes: int
    limiter: str  # "compute", "memory" or "launch"

    @property
    def gflops(self) -> float:
        """Achieved GFLOPS of this launch under the model."""
        if self.seconds <= 0.0:
            return 0.0
        return self.flops / self.seconds / 1e9


class TimingModel:
    """Roofline-with-occupancy timing model.

    Parameters
    ----------
    device:
        Device whose peak throughput and bandwidth anchor the roofline.
    launch_overhead_s:
        Fixed per-launch overhead (driver + dispatch); ~5 µs on Kepler.
    blocks_to_saturate:
        Resident blocks per SM needed to reach full throughput.
    """

    def __init__(
        self,
        device: DeviceSpec,
        launch_overhead_s: float = 5e-6,
        blocks_to_saturate: int = 8,
    ) -> None:
        if launch_overhead_s < 0:
            raise ValueError("launch overhead must be non-negative")
        if blocks_to_saturate <= 0:
            raise ValueError("blocks_to_saturate must be positive")
        self.device = device
        self.launch_overhead_s = launch_overhead_s
        self.blocks_to_saturate = blocks_to_saturate

    def occupancy_factor(self, num_blocks: int) -> float:
        """Throughput scale factor for a launch of ``num_blocks`` blocks."""
        saturation = self.device.num_sms * self.blocks_to_saturate
        if num_blocks <= 0:
            return 0.0
        return min(1.0, num_blocks / saturation)

    def estimate(
        self,
        name: str,
        stats: KernelStats,
        num_blocks: int,
        compute_efficiency: float = 0.85,
        precision: str = "double",
    ) -> KernelTiming:
        """Estimate the execution time of one launch.

        Parameters
        ----------
        name:
            Kernel name, carried into the timing record.
        stats:
            Operation/byte counters accumulated during functional execution.
        num_blocks:
            Grid size of the launch, for the occupancy ramp.
        compute_efficiency:
            Fraction of device peak this kernel sustains when compute-bound
            and fully occupied (kernel-specific; see module docstring).
        precision:
            ``"double"`` or ``"single"`` — selects the peak-FLOPS roof.
        """
        if not 0.0 < compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        peak = self.device.peak_gflops(precision) * 1e9
        occupancy = self.occupancy_factor(num_blocks)
        effective_peak = peak * compute_efficiency * max(occupancy, 1e-9)
        bw = self.device.mem_bandwidth_gbs * 1e9

        compute_time = stats.flops / effective_peak if stats.flops else 0.0
        memory_time = stats.global_bytes / bw if stats.global_bytes else 0.0
        body = max(compute_time, memory_time)
        total = body + self.launch_overhead_s

        if body == 0.0:
            limiter = "launch"
        elif compute_time >= memory_time:
            limiter = "compute"
        else:
            limiter = "memory"
        return KernelTiming(
            name=name,
            seconds=total,
            flops=stats.flops,
            bytes=stats.global_bytes,
            limiter=limiter,
        )
