"""Nested timing spans.

``span("pipeline.encode")`` measures a code region and publishes it twice:

* as an observation in the ``abft_span_seconds`` histogram of the target
  registry, labelled by span name (bounded cardinality — the nesting
  *path* only travels in events, never as a label);
* as a ``{"type": "span", ...}`` event through the registry's sinks,
  carrying the full ``parent/child`` path, depth and any extra labels.

Spans nest per thread: a span opened while another is active becomes its
child, and the emitted path is the ``/``-joined chain.  On a disabled
registry (:data:`~repro.telemetry.registry.NULL_REGISTRY`) the context
manager yields ``None`` immediately — one attribute check, no clock reads.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .registry import MetricsRegistry, get_registry

__all__ = ["Span", "span", "current_span"]

#: Histogram every span duration lands in, labelled by span name.
SPAN_HISTOGRAM = "abft_span_seconds"

_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@dataclass
class Span:
    """One live (or finished) timing span."""

    name: str
    path: str
    depth: int
    labels: dict = field(default_factory=dict)
    seconds: float | None = None

    def annotate(self, **labels) -> None:
        """Attach extra labels to the span's emitted event."""
        self.labels.update(labels)


def current_span() -> Span | None:
    """The innermost live span of the calling thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def span(name: str, registry: MetricsRegistry | None = None, **labels):
    """Time a code region as a nested span.

    Parameters
    ----------
    name:
        Span name; keep it a low-cardinality dotted constant
        (``"pipeline.check"``), since it becomes a histogram label.
    registry:
        Target registry; defaults to the process-wide one.  A disabled
        registry short-circuits to a no-op and the manager yields ``None``.
    labels:
        Extra key/values attached to the emitted span event only.
    """
    reg = registry if registry is not None else get_registry()
    if not reg.enabled:
        yield None
        return
    stack = _stack()
    parent = stack[-1] if stack else None
    path = f"{parent.path}/{name}" if parent else name
    sp = Span(name=name, path=path, depth=len(stack), labels=dict(labels))
    stack.append(sp)
    start = time.perf_counter()
    try:
        yield sp
    finally:
        elapsed = time.perf_counter() - start
        sp.seconds = elapsed
        stack.pop()
        reg.histogram(
            SPAN_HISTOGRAM, "Duration of named timing spans", ("span",)
        ).labels(span=name).observe(elapsed)
        reg.emit(
            {
                "type": "span",
                "name": name,
                "path": path,
                "depth": sp.depth,
                "seconds": elapsed,
                "labels": sp.labels,
                "time": time.time(),
            }
        )
