"""A zero-dependency, thread-safe metrics registry.

The registry implements the small subset of the Prometheus data model the
runtime needs — labelled **counters**, **gauges** and fixed-bucket
**histograms** — without pulling in a client library:

* metric state lives in per-child objects behind their own locks, so the
  hot path (one ``inc()``/``observe()``) is a lock plus an add;
* a registry created with ``enabled=False`` (or the shared
  :data:`NULL_REGISTRY`) hands out no-op metrics, so instrumented code pays
  a single attribute access when telemetry is off;
* :meth:`MetricsRegistry.snapshot` returns a JSON-friendly dict and
  :meth:`MetricsRegistry.prometheus_text` renders the text exposition
  format, so any scrape/export path works off the same state;
* event-style output (span records, snapshots) goes through attached
  sinks (:mod:`repro.telemetry.sinks`); with no sinks attached,
  :meth:`MetricsRegistry.emit` is a truthiness check and a return.

Metric names follow the Prometheus conventions used throughout the repo:
``abft_<subsystem>_<what>_total`` for counters, ``_seconds`` suffixes for
time, and bounded label cardinality (sites, schemes, stages — never
shapes or indices).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

from ..errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
]

#: Default histogram buckets (seconds): sub-millisecond kernels up to
#: multi-second campaign stages; +Inf is implicit.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing value (one child of a counter family)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase; got {amount}")
        with self._lock:
            self._value += amount

    def get(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    def get(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


def _validated_buckets(buckets) -> tuple[float, ...]:
    bounds = tuple(float(b) for b in buckets)
    if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
        raise ConfigurationError(
            f"histogram buckets must be non-empty and increasing: {buckets}"
        )
    return bounds


class Histogram:
    """Observations aggregated into fixed, cumulative-``le`` buckets."""

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = _validated_buckets(buckets)
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: > largest bound
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def get(self) -> dict:
        """Snapshot: per-bucket raw counts, total sum and count."""
        with self._lock:
            return {
                "buckets": dict(zip(self.bounds, self._counts)),
                "overflow": self._counts[-1],
                "sum": self._sum,
                "count": self._count,
            }

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._sum = 0.0
            self._count = 0


class _NullMetric:
    """Answers every metric method as a no-op (disabled registries)."""

    __slots__ = ()
    bounds: tuple[float, ...] = ()
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def get(self):
        return 0.0

    def reset(self) -> None:
        pass

    def labels(self, **label_values):
        return self


_NULL_METRIC = _NullMetric()

_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by label values.

    For a family declared without label names the family itself behaves as
    its single child: ``inc``/``set``/``observe`` forward to the
    ``labels()``-less child, so unlabelled metrics stay one attribute
    lookup away.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = _validated_buckets(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **label_values):
        """The child for one label-value combination (created on demand)."""
        if set(label_values) != set(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self.buckets or DEFAULT_BUCKETS)
                else:
                    child = _CHILD_TYPES[self.kind]()
                self._children[key] = child
        return child

    # -- unlabelled convenience forwards --------------------------------
    def _default_child(self):
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                "call .labels(...) first"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def get(self):
        return self._default_child().get()

    @property
    def sum(self) -> float:
        return self._default_child().sum

    @property
    def count(self) -> int:
        return self._default_child().count

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def reset(self) -> None:
        with self._lock:
            for child in self._children.values():
                child.reset()


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value != value:  # NaN
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def _label_string(labelnames: tuple[str, ...], key: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(v)}"' for n, v in zip(labelnames, key)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Thread-safe home of metric families plus attached event sinks.

    Parameters
    ----------
    enabled:
        ``False`` turns the registry into a no-op shell: declared metrics
        are shared null objects and :meth:`emit` drops events.  Use the
        module-level :data:`NULL_REGISTRY` rather than building disabled
        registries ad hoc.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._sinks: list = []

    # -- declaration ----------------------------------------------------
    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] | None = None,
    ):
        if not self.enabled:
            return _NULL_METRIC
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, labelnames, buckets)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != labelnames:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.kind} "
                    f"with labels {family.labelnames}; cannot redeclare as "
                    f"{kind} with labels {labelnames}"
                )
        return family

    def counter(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        """Declare (or fetch) a counter family; idempotent per name."""
        return self._register(name, "counter", help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: tuple[str, ...] = ()):
        """Declare (or fetch) a gauge family; idempotent per name."""
        return self._register(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        """Declare (or fetch) a fixed-bucket histogram family."""
        return self._register(name, "histogram", help, labelnames, buckets)

    # -- sinks / events -------------------------------------------------
    def attach(self, sink) -> None:
        """Route subsequent :meth:`emit` events to ``sink`` as well."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def detach(self, sink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    @property
    def sinks(self) -> list:
        with self._lock:
            return list(self._sinks)

    def emit(self, event: dict) -> None:
        """Forward one event dict to every attached sink (no-op without)."""
        if not self.enabled or not self._sinks:
            return
        for sink in self.sinks:
            sink.emit(event)

    def write_snapshot(self) -> None:
        """Emit a ``{"type": "snapshot"}`` event carrying :meth:`snapshot`."""
        self.emit({"type": "snapshot", "metrics": self.snapshot()})

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict:
        """All metric state as a JSON-friendly dict keyed by metric name."""
        with self._lock:
            families = list(self._families.values())
        out: dict = {}
        for family in families:
            values = [
                {
                    "labels": dict(zip(family.labelnames, key)),
                    "value": child.get(),
                }
                for key, child in family.children()
            ]
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return out

    def prometheus_text(self) -> str:
        """The registry state in the Prometheus text exposition format."""
        with self._lock:
            families = list(self._families.values())
        lines: list[str] = []
        for family in families:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in family.children():
                if family.kind == "histogram":
                    snap = child.get()
                    cumulative = 0
                    for bound in child.bounds:
                        cumulative += snap["buckets"][bound]
                        labels = _label_string(
                            family.labelnames, key,
                            extra=f'le="{_format_value(bound)}"',
                        )
                        lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    labels = _label_string(family.labelnames, key, extra='le="+Inf"')
                    lines.append(f"{family.name}_bucket{labels} {snap['count']}")
                    base = _label_string(family.labelnames, key)
                    lines.append(f"{family.name}_sum{base} {_format_value(snap['sum'])}")
                    lines.append(f"{family.name}_count{base} {snap['count']}")
                else:
                    labels = _label_string(family.labelnames, key)
                    lines.append(f"{family.name}{labels} {_format_value(child.get())}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Zero every metric child (declarations and sinks are kept)."""
        with self._lock:
            families = list(self._families.values())
        for family in families:
            family.reset()


#: The shared always-disabled registry: every metric it hands out no-ops.
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (enabled, no sinks attached)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide default registry; returns the previous one."""
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise ConfigurationError(
            f"expected a MetricsRegistry, got {type(registry).__name__}"
        )
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
