"""Runtime telemetry: labelled metrics, nested timing spans, pluggable sinks.

The observability layer behind the engine, the fault-injection campaigns
and the CLI (see ``docs/OBSERVABILITY.md`` for the metric inventory):

* :class:`MetricsRegistry` — thread-safe counters / gauges / fixed-bucket
  histograms with Prometheus-style labels, JSON snapshots and text
  exposition export; zero third-party dependencies;
* :func:`span` — a context manager producing nested, per-thread timing
  spans that land in the ``abft_span_seconds`` histogram and stream to
  sinks as events;
* sinks — :class:`InMemorySink`, :class:`JsonLinesSink` (the
  ``--telemetry-out`` / CI-artifact format) and :class:`PrometheusTextSink`.

Instrumented code defaults to :func:`get_registry`, the process-wide
registry; pass :data:`NULL_REGISTRY` (or any registry built with
``enabled=False``) to turn instrumentation into cheap no-ops.
"""

from .registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .sinks import InMemorySink, JsonLinesSink, PrometheusTextSink
from .spans import SPAN_HISTOGRAM, Span, current_span, span

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "PrometheusTextSink",
    "SPAN_HISTOGRAM",
    "Span",
    "current_span",
    "get_registry",
    "set_registry",
    "span",
]
