"""Pluggable telemetry sinks.

A sink is anything with ``emit(event: dict)`` and ``close()``; registries
forward span/snapshot events to every attached sink.  Three are provided:

* :class:`InMemorySink` — collects events in a list (tests, notebooks);
* :class:`JsonLinesSink` — appends one JSON object per line to a file,
  flushed per event so a crashed run still leaves its telemetry behind
  (the CI artifact format);
* :class:`PrometheusTextSink` — snapshot-oriented: ignores events and
  writes the registry's text exposition on :meth:`~PrometheusTextSink.export`
  (point a node-exporter ``textfile`` collector at the output).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from .registry import MetricsRegistry

__all__ = ["InMemorySink", "JsonLinesSink", "PrometheusTextSink"]


class InMemorySink:
    """Keeps every emitted event in an in-process list."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def emit(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def close(self) -> None:
        pass


class JsonLinesSink:
    """Streams events to a JSON-lines file (one object per line)."""

    def __init__(self, path, append: bool = False) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file = self.path.open("a" if append else "w", encoding="utf-8")

    def emit(self, event: dict) -> None:
        line = json.dumps(event, default=str)
        with self._lock:
            if self._file.closed:
                return
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class PrometheusTextSink:
    """Writes a registry's Prometheus text exposition to a file on demand."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def emit(self, event: dict) -> None:
        # Exposition is a point-in-time scrape of registry state; the event
        # stream carries nothing it needs.
        pass

    def export(self, registry: MetricsRegistry) -> Path:
        """Render ``registry`` and atomically replace the output file."""
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(registry.prometheus_text(), encoding="utf-8")
        tmp.replace(self.path)
        return self.path

    def close(self) -> None:
        pass
