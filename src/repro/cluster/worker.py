"""The cluster worker process: one serving shard behind a queue pair.

Each worker runs a full single-process serving stack — its own
:class:`~repro.engine.engine.MatmulEngine` (plan cache, workspace pools,
backend negotiation) inside its own
:class:`~repro.serve.server.MatmulServer` (admission queue,
micro-batching, degradation ladder) — and speaks a tiny envelope
protocol with the frontend over a pair of ``multiprocessing`` queues:

* inbound ``("req", seq, request_id, payload_a, payload_b, config,
  deadline_s, backend, exclude_backends)`` envelopes, or ``None`` to
  drain and exit;
* outbound ``("res", seq, MatmulResponse)`` results, ``("err", seq,
  message)`` for requests that died inside the worker, periodic
  ``("hb", shard, incarnation, info)`` heartbeats, and a final
  ``("bye", shard, incarnation)`` on graceful shutdown.

Operand payloads are decoded through
:class:`~repro.cluster.transport.OperandReceiver`, so shared-memory
operands become zero-copy read-only views.  The worker's metrics live in
a private registry that dies with the process — the frontend mirrors the
``abft_serve_*`` counter movement from delivered responses, which is what
keeps cluster-level reconciliation loss-proof under worker death.

``worker_main`` must stay importable at module top level: the ``spawn``
start method pickles the entry point by qualified name.
"""

from __future__ import annotations

import threading

from ..backends.autotune import AutotuneCache, Autotuner
from ..engine.engine import MatmulEngine
from ..serve.server import MatmulServer
from ..telemetry import MetricsRegistry
from .config import ClusterConfig
from .transport import OperandReceiver

__all__ = ["worker_main"]


def _deliver(response_q, seq: int, fut) -> None:
    """Ship one resolved future back to the frontend (never strand it)."""
    try:
        response = fut.result()
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        response_q.put(("err", seq, repr(exc)))
        return
    try:
        response_q.put(("res", seq, response))
    except Exception as exc:  # unpicklable response, broken pipe, ...
        try:
            response_q.put(("err", seq, f"response transport failed: {exc!r}"))
        except Exception:
            pass


def worker_main(
    shard_id: int,
    incarnation: int,
    config: ClusterConfig,
    request_q,
    response_q,
) -> None:
    """Serve one shard until the ``None`` sentinel arrives.

    Runs as the target of a worker :class:`multiprocessing.Process`.
    """
    registry = MetricsRegistry()
    autotuner = None
    if config.autotune_cache is not None:
        # Every shard shares the frontend-designated on-disk cache, so a
        # winner tuned by any worker is inherited by all of them.
        autotuner = Autotuner(
            AutotuneCache(config.autotune_cache), metrics_registry=registry
        )
    engine = MatmulEngine(
        config.serve.abft, registry=registry, autotuner=autotuner
    )
    server = MatmulServer(config.serve, engine=engine, registry=registry)
    receiver = OperandReceiver()
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(config.heartbeat_interval_s):
            try:
                response_q.put(
                    (
                        "hb",
                        shard_id,
                        incarnation,
                        {"queue_depth": server.queue_depth},
                    )
                )
            except Exception:
                return

    beat = threading.Thread(
        target=_heartbeat, name=f"cluster-hb-{shard_id}", daemon=True
    )
    beat.start()

    try:
        while True:
            envelope = request_q.get()
            if envelope is None:
                break
            (
                _kind,
                seq,
                request_id,
                payload_a,
                payload_b,
                abft_config,
                deadline_s,
                backend,
                exclude_backends,
            ) = envelope
            try:
                a = receiver.fetch(payload_a)
                b = receiver.fetch(payload_b)
            except Exception as exc:
                response_q.put(("err", seq, f"operand fetch failed: {exc!r}"))
                continue
            fut = server.submit(
                a,
                b,
                config=abft_config,
                deadline_s=deadline_s,
                request_id=request_id,
                backend=backend,
                exclude_backends=tuple(exclude_backends),
            )
            fut.add_done_callback(
                lambda f, seq=seq: _deliver(response_q, seq, f)
            )
    finally:
        stop.set()
        # Drain: every admitted request resolves (served, or rejected with
        # reason "shutdown") and its response ships before the process exits.
        server.stop(drain=True)
        receiver.close()
        try:
            response_q.put(("bye", shard_id, incarnation))
        except Exception:
            pass
