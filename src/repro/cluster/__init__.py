"""Sharded multi-process serving cluster with a shared autotune fabric.

The cluster layer scales the serving layer past one process:
:class:`ClusterFrontend` routes protected-matmul traffic across N worker
processes (each a full :class:`~repro.serve.server.MatmulServer` +
:class:`~repro.engine.engine.MatmulEngine` stack) by consistent hash of
the plan key, so per-shard plan caches and micro-batching stay hot.
Operands cross the process boundary zero-copy through
``multiprocessing.shared_memory``; workers share one on-disk
:class:`~repro.backends.autotune.AutotuneCache`; and a heartbeat
supervisor extends the A-ABFT recovery ladder to **process loss**: a dead
worker's in-flight requests are re-queued to survivors (never silently
dropped) and the worker is restarted with its plan keys rehomed.

Entry points: :class:`ClusterFrontend` (in-process API, also behind
``aabft cluster serve`` and ``aabft loadgen --cluster``) and
:class:`ClusterConfig`.
"""

from .config import ClusterConfig
from .frontend import ClusterFrontend
from .hashring import HashRing

__all__ = [
    "ClusterConfig",
    "ClusterFrontend",
    "HashRing",
]
