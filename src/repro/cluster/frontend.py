"""The sharded multi-process serving front-end.

:class:`ClusterFrontend` fans protected-matmul traffic out across N
worker processes, each running its own
:class:`~repro.serve.server.MatmulServer` +
:class:`~repro.engine.engine.MatmulEngine` (see
:mod:`repro.cluster.worker`).  It presents the same ``submit()`` /
``stop()`` / ``registry`` surface as a single-process server, so the load
generator, the chaos harness and the CLI drive it unchanged.

Routing
    Requests route by consistent hash of their **plan key** — operand
    shapes, dtypes, config and backend pin — so repeated traffic for one
    plan lands on the same shard and keeps its plan cache, workspace
    pools and micro-batch coalescing hot.  The ring walk is
    load-bounded: a key spills past a shard holding
    ``spill_queue_depth`` or more outstanding requests, so a hot
    single-plan workload still scales across the whole cluster.  Only
    when every live shard is at ``max_shard_inflight`` is a submission
    rejected (reason ``"queue_full"`` — the same explicit backpressure
    contract as the single-process server).

Worker death
    A supervisor thread watches process liveness and heartbeats.  When a
    shard dies, its response stream is drained, every still-unresolved
    request is **re-queued** to surviving shards — counted in
    ``abft_cluster_requeued_total`` and stamped on
    :attr:`~repro.serve.request.MatmulResponse.requeues`, never silently
    dropped — and the worker is restarted (bounded by ``max_restarts``).
    The hash ring never changes across restarts, so the shard's plan
    keys rehome to it the moment the replacement is live.

Accounting
    Worker-process metric registries die with their process, so the
    frontend **mirrors** the ``abft_serve_*`` counter families into its
    own registry from the responses it actually delivers.  The mirror is
    loss-proof by construction — it moves exactly when a future
    resolves — which is what lets
    :func:`~repro.serve.loadgen.reconcile_counters` balance the books
    across shards even with a worker killed mid-run.

The frontend accepts **raw ndarray** operands (not
:class:`~repro.engine.engine.EncodedOperand` handles, which are bound to
one engine's plan cache in one process).  Operands of
``shm_min_bytes`` or more cross the process boundary via
``multiprocessing.shared_memory`` (see :mod:`repro.cluster.transport`);
smaller ones ride the envelope pickle.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field

import numpy as np

from ..serve.request import MatmulResponse, VerificationStatus
from ..telemetry import MetricsRegistry, get_registry
from .config import ClusterConfig
from .hashring import HashRing
from .transport import OperandPublisher
from .worker import worker_main

__all__ = ["ClusterFrontend"]

#: Minimum grace period before a worker that has not heartbeaten *yet* is
#: declared dead — covers interpreter start-up under ``spawn``.
BOOT_GRACE_S = 5.0


@dataclass
class _Pending:
    """One admitted request the cluster has not resolved yet."""

    seq: int
    future: Future
    request_id: str
    payload_a: tuple
    payload_b: tuple
    config: object
    deadline_s: float | None
    backend: str | None
    exclude_backends: tuple
    key: tuple
    shard: int | None = None
    incarnation: int = 0
    requeues: int = 0


@dataclass
class _Shard:
    """Frontend-side state of one worker slot."""

    id: int
    incarnation: int = 0
    process: object = None
    request_q: object = None
    response_q: object = None
    collector: threading.Thread | None = None
    closed: threading.Event = field(default_factory=threading.Event)
    alive: bool = False
    booted: bool = False
    last_hb: float = 0.0
    restarts: int = 0
    outstanding: int = 0


class ClusterFrontend:
    """Routes requests across supervised worker processes.

    Parameters
    ----------
    config:
        The :class:`~repro.cluster.config.ClusterConfig`; defaults apply.
    registry:
        Target :class:`~repro.telemetry.MetricsRegistry` for the
        ``abft_cluster_*`` metrics and the mirrored ``abft_serve_*``
        counters; defaults to the process-wide registry.
    clock:
        Monotonic time source (injectable for deterministic supervision
        tests).

    Workers spawn eagerly in the constructor; :meth:`submit` may be
    called from any number of threads.
    """

    def __init__(
        self,
        config: ClusterConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        if not isinstance(self.config, ClusterConfig):
            raise TypeError(
                f"config must be a ClusterConfig, got "
                f"{type(self.config).__name__}"
            )
        self.registry = registry if registry is not None else get_registry()
        self._clock = clock
        self._ctx = mp.get_context(self.config.start_method)
        self._ring = HashRing(
            range(self.config.num_workers), vnodes=self.config.vnodes
        )
        self._lock = threading.RLock()
        self._pending: dict[int, _Pending] = {}
        self._seq = 0
        self._accepting = True
        self._stopped = False

        reg = self.registry
        # Mirrored abft_serve_* families (declarations must match
        # MatmulServer's so both can share one registry).
        self._m_requests = reg.counter(
            "abft_serve_requests_total",
            "Requests by final outcome (completed / rejected)",
            ("outcome",),
        )
        self._m_rejections = reg.counter(
            "abft_serve_rejections_total",
            "Explicitly rejected requests by reason",
            ("reason",),
        )
        self._m_degradations = reg.counter(
            "abft_serve_degradations_total",
            "Responses served below full protection, by ladder rung",
            ("rung",),
        )
        self._m_retries = reg.counter(
            "abft_serve_retries_total",
            "Detected-error recoveries by kind (corrected / recomputed)",
            ("kind",),
        )
        self._m_detections = reg.counter(
            "abft_serve_detections_total",
            "Served batches' results whose initial check flagged an error",
        )
        self._m_dropped = reg.counter(
            "abft_serve_dropped_total",
            "Requests that died without a response (must stay 0)",
        )
        # Cluster-native metrics.
        self._m_routing = reg.counter(
            "abft_cluster_routing_total",
            "Routing decisions by outcome (primary / spilled / rerouted)",
            ("outcome",),
        )
        self._m_requeued = reg.counter(
            "abft_cluster_requeued_total",
            "In-flight requests re-queued to another shard after worker death",
        )
        self._m_restarts = reg.counter(
            "abft_cluster_worker_restarts_total",
            "Worker process restarts after a detected death",
            ("shard",),
        )
        self._m_transfers = reg.counter(
            "abft_cluster_operand_transfers_total",
            "Operand transfers by mode (shm / inline)",
            ("mode",),
        )
        self._g_shard_depth = reg.gauge(
            "abft_cluster_shard_queue_depth",
            "Worker admission-queue depth, from its latest heartbeat",
            ("shard",),
        )
        self._g_inflight = reg.gauge(
            "abft_cluster_shard_inflight",
            "Requests outstanding per shard (frontend view)",
            ("shard",),
        )
        self._g_alive = reg.gauge(
            "abft_cluster_workers_alive", "Live worker processes"
        )
        self._g_pending = reg.gauge(
            "abft_cluster_pending", "Unresolved requests across the cluster"
        )

        self._publisher = OperandPublisher(
            self.config.shm_min_bytes, metrics=self._m_transfers
        )
        self._shards = [_Shard(i) for i in range(self.config.num_workers)]
        with self._lock:
            for shard in self._shards:
                self._spawn_locked(shard)
        self._g_alive.set(len(self._shards))
        self._mon_stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="cluster-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def submit(
        self,
        a,
        b,
        *,
        config=None,
        deadline_s: float | None = None,
        request_id: str | None = None,
        backend: str | None = None,
        exclude_backends: tuple[str, ...] = (),
    ) -> Future:
        """Submit one multiplication; returns a future of the response.

        Same contract as :meth:`MatmulServer.submit
        <repro.serve.server.MatmulServer.submit>`: never blocks, never
        raises for capacity — over-capacity, post-shutdown and
        no-live-worker submissions resolve immediately to a ``REJECTED``
        response with an explicit reason.  Operands must be raw arrays
        (per-engine :class:`~repro.engine.engine.EncodedOperand` handles
        cannot cross the process boundary).
        """
        fut: Future = Future()
        a = np.asarray(a)
        b = np.asarray(b)
        with self._lock:
            self._seq += 1
            seq = self._seq
        rid = request_id if request_id is not None else f"c{seq}"
        key = (
            a.shape,
            b.shape,
            str(a.dtype),
            str(b.dtype),
            config,
            backend,
        )
        payload_a = self._publisher.publish(a)
        payload_b = self._publisher.publish(b)
        pending = _Pending(
            seq=seq,
            future=fut,
            request_id=rid,
            payload_a=payload_a,
            payload_b=payload_b,
            config=config,
            deadline_s=deadline_s,
            backend=backend,
            exclude_backends=tuple(exclude_backends),
            key=key,
        )
        with self._lock:
            if not self._accepting:
                self._drop_payloads(pending)
                self._reject(fut, rid, "shutdown")
                return fut
            shard, outcome = self._route_locked(key)
            if shard is None:
                self._drop_payloads(pending)
                self._reject(fut, rid, outcome)
                return fut
            self._pending[seq] = pending
            self._g_pending.set(len(self._pending))
            self._m_routing.labels(outcome=outcome).inc()
            self._dispatch_locked(pending, shard)
        return fut

    def kill_worker(self, shard: int | None = None) -> int | None:
        """SIGKILL one live worker process (chaos entry point).

        Kills the given shard, or the live shard with the most
        outstanding work when unspecified — the supervisor is left to
        *detect* the death, exactly as for a real crash.  Returns the
        killed shard id, or ``None`` if no worker is alive.
        """
        with self._lock:
            candidates = [
                s
                for s in self._shards
                if s.alive and s.process is not None and s.process.is_alive()
            ]
            if shard is not None:
                candidates = [s for s in candidates if s.id == shard]
            if not candidates:
                return None
            victim = max(candidates, key=lambda s: s.outstanding)
        victim.process.kill()
        return victim.id

    def wait_ready(self, timeout: float = 30.0) -> None:
        """Block until every worker has sent its first heartbeat.

        Spawned interpreters take a moment to boot; traffic submitted
        before then just queues in the worker pipes, but
        latency-sensitive callers (the chaos harness's SLO clock, the
        throughput benchmark) want a warm cluster before the first
        request.  Raises :class:`TimeoutError` on expiry.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                live = [s for s in self._shards if s.alive]
                if live and all(s.booted for s in live):
                    return
            time.sleep(0.01)
        raise TimeoutError(f"cluster workers not ready within {timeout:g}s")

    @property
    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for s in self._shards if s.alive)

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def total_restarts(self) -> int:
        with self._lock:
            return sum(s.restarts for s in self._shards)

    def stop(self, drain: bool = True, timeout: float | None = None) -> None:
        """Stop the cluster.

        New submissions are rejected (reason ``"shutdown"``) immediately.
        With ``drain=True`` (default) in-flight work is awaited up to
        ``timeout`` (default ``config.drain_timeout_s``); anything still
        unresolved afterwards resolves as rejected with reason
        ``"shutdown"`` — never silently dropped.
        """
        if timeout is None:
            timeout = self.config.drain_timeout_s
        with self._lock:
            if self._stopped:
                return
            self._accepting = False
        if drain:
            self._await_pending(timeout)
        self._mon_stop.set()
        self._monitor.join(timeout=2.0)
        with self._lock:
            self._stopped = True
            shards = list(self._shards)
        for shard in shards:
            if shard.process is not None and shard.process.is_alive():
                try:
                    shard.request_q.put(None)
                except Exception:
                    pass
        for shard in shards:
            if shard.process is not None:
                shard.process.join(timeout=max(timeout, 1.0) if drain else 1.0)
                if shard.process.is_alive():
                    shard.process.kill()
                    shard.process.join(timeout=1.0)
        # Workers flush their final responses while draining; give the
        # collectors a moment to deliver them before cutting them off.
        if drain:
            self._await_pending(min(timeout, 2.0))
        for shard in shards:
            shard.closed.set()
            if shard.collector is not None:
                shard.collector.join(timeout=2.0)
            shard.alive = False
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
            self._g_pending.set(0)
        for pending in leftovers:
            self._drop_payloads(pending)
            self._reject(pending.future, pending.request_id, "shutdown")
        self._publisher.close()
        self._g_alive.set(0)
        for shard in shards:
            for q in (shard.request_q, shard.response_q):
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:
                    pass

    def __enter__(self) -> "ClusterFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop(drain=True)

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_locked(self, shard: _Shard) -> None:
        shard.incarnation += 1
        shard.request_q = self._ctx.Queue()
        shard.response_q = self._ctx.Queue()
        shard.closed = threading.Event()
        shard.process = self._ctx.Process(
            target=worker_main,
            args=(
                shard.id,
                shard.incarnation,
                self.config,
                shard.request_q,
                shard.response_q,
            ),
            name=f"aabft-cluster-w{shard.id}",
            daemon=True,
        )
        shard.process.start()
        shard.last_hb = self._clock()
        shard.booted = False
        shard.alive = True
        shard.outstanding = 0
        self._g_inflight.labels(shard=str(shard.id)).set(0)
        shard.collector = threading.Thread(
            target=self._collect,
            args=(shard.id, shard.incarnation, shard.response_q, shard.closed),
            name=f"cluster-collect-{shard.id}.{shard.incarnation}",
            daemon=True,
        )
        shard.collector.start()

    def _monitor_loop(self) -> None:
        interval = self.config.heartbeat_interval_s
        timeout = self.config.heartbeat_timeout_s
        while not self._mon_stop.wait(interval):
            now = self._clock()
            dead: list[_Shard] = []
            with self._lock:
                if self._stopped:
                    return
                for shard in self._shards:
                    if not shard.alive:
                        continue
                    process_dead = (
                        shard.process is not None
                        and not shard.process.is_alive()
                    )
                    grace = (
                        timeout if shard.booted else max(timeout, BOOT_GRACE_S)
                    )
                    if process_dead or now - shard.last_hb > grace:
                        dead.append(shard)
            for shard in dead:
                self._handle_death(shard)
            with self._lock:
                self._g_alive.set(sum(1 for s in self._shards if s.alive))

    def _handle_death(self, shard: _Shard) -> None:
        """Recover from one dead worker: drain, requeue, restart."""
        with self._lock:
            if not shard.alive or self._stopped:
                return
            shard.alive = False
            incarnation = shard.incarnation
            closed = shard.closed
            collector = shard.collector
            request_q, response_q = shard.request_q, shard.response_q
        try:
            shard.process.kill()
            shard.process.join(timeout=2.0)
        except Exception:
            pass
        # The dead incarnation's request-queue feeder may be blocked on a
        # pipe nobody reads any more; detach it or interpreter exit hangs
        # joining it.
        try:
            request_q.close()
            request_q.cancel_join_thread()
        except Exception:
            pass
        # Drain whatever the worker managed to ship before dying — those
        # requests resolve normally and must not be re-executed.
        closed.set()
        if collector is not None:
            collector.join(timeout=2.0)
        try:
            response_q.close()
            response_q.cancel_join_thread()
        except Exception:
            pass
        with self._lock:
            orphans = [
                p
                for p in self._pending.values()
                if p.shard == shard.id and p.incarnation == incarnation
            ]
        restart = (
            self.config.restart_workers
            and shard.restarts < self.config.max_restarts
        )
        parked: list[_Pending] = []
        for pending in orphans:
            self._m_requeued.inc()
            pending.requeues += 1
            with self._lock:
                if pending.seq not in self._pending:
                    continue
                target, _ = self._route_locked(pending.key)
                if target is None:
                    # Don't bounce already-admitted work off transient
                    # saturation: take the least-loaded survivor.
                    live = [s for s in self._shards if s.alive]
                    if live:
                        target = min(live, key=lambda s: s.outstanding)
                if target is not None:
                    self._dispatch_locked(pending, target)
                    continue
            if restart:
                parked.append(pending)
            else:
                with self._lock:
                    self._pending.pop(pending.seq, None)
                    self._g_pending.set(len(self._pending))
                self._drop_payloads(pending)
                self._reject(pending.future, pending.request_id, "worker_lost")
        if restart:
            with self._lock:
                shard.restarts += 1
                self._spawn_locked(shard)
                for pending in parked:
                    self._dispatch_locked(pending, shard)
            self._m_restarts.labels(shard=str(shard.id)).inc()

    # ------------------------------------------------------------------
    # routing / dispatch
    # ------------------------------------------------------------------
    def _route_locked(self, key) -> tuple[_Shard | None, str]:
        """The shard for a key, plus the routing (or rejection) outcome."""
        walk = self._ring.preference(key)
        live = [self._shards[s] for s in walk if self._shards[s].alive]
        if not live:
            return None, "no_live_workers"
        chosen = None
        for shard in live:
            if shard.outstanding < self.config.spill_queue_depth:
                chosen = shard
                break
        if chosen is None:
            candidate = min(live, key=lambda s: s.outstanding)
            if candidate.outstanding < self.config.max_shard_inflight:
                chosen = candidate
        if chosen is None:
            return None, "queue_full"
        preferred = self._shards[walk[0]]
        if not preferred.alive:
            outcome = "rerouted"
        elif chosen is preferred:
            outcome = "primary"
        else:
            outcome = "spilled"
        return chosen, outcome

    def _dispatch_locked(self, pending: _Pending, shard: _Shard) -> None:
        pending.shard = shard.id
        pending.incarnation = shard.incarnation
        shard.outstanding += 1
        self._g_inflight.labels(shard=str(shard.id)).set(shard.outstanding)
        shard.request_q.put(
            (
                "req",
                pending.seq,
                pending.request_id,
                pending.payload_a,
                pending.payload_b,
                pending.config,
                pending.deadline_s,
                pending.backend,
                pending.exclude_backends,
            )
        )

    # ------------------------------------------------------------------
    # response collection
    # ------------------------------------------------------------------
    def _collect(
        self, shard_id: int, incarnation: int, response_q, closed
    ) -> None:
        """Drain one worker incarnation's response queue until closed."""
        while True:
            try:
                item = response_q.get(timeout=0.1)
            except _queue.Empty:
                if closed.is_set():
                    return
                continue
            except (EOFError, OSError):
                return
            except Exception:
                # A SIGKILL mid-put can corrupt the stream; anything the
                # worker did not finish shipping gets requeued anyway.
                if closed.is_set():
                    return
                continue
            kind = item[0]
            if kind == "hb":
                _, sid, inc, info = item
                with self._lock:
                    shard = self._shards[sid]
                    if shard.incarnation == inc:
                        shard.last_hb = self._clock()
                        shard.booted = True
                self._g_shard_depth.labels(shard=str(sid)).set(
                    info.get("queue_depth", 0)
                )
            elif kind == "res":
                self._resolve(item[1], item[2])
            elif kind == "err":
                self._resolve_error(item[1], item[2])
            # "bye": nothing to do — liveness is tracked by the process.

    def _take_pending(self, seq: int) -> _Pending | None:
        with self._lock:
            pending = self._pending.pop(seq, None)
            if pending is None:
                return None
            shard = self._shards[pending.shard]
            if (
                shard.incarnation == pending.incarnation
                and shard.outstanding > 0
            ):
                shard.outstanding -= 1
                self._g_inflight.labels(shard=str(shard.id)).set(
                    shard.outstanding
                )
            self._g_pending.set(len(self._pending))
            return pending

    def _resolve(self, seq: int, response: MatmulResponse) -> None:
        pending = self._take_pending(seq)
        if pending is None:
            return  # late duplicate after a requeue — first answer won
        self._drop_payloads(pending)
        response.requeues = pending.requeues
        self._mirror(response)
        pending.future.set_result(response)

    def _resolve_error(self, seq: int, message: str) -> None:
        pending = self._take_pending(seq)
        if pending is None:
            return
        self._drop_payloads(pending)
        self._m_dropped.inc()
        pending.future.set_exception(
            RuntimeError(f"cluster request failed in worker: {message}")
        )

    def _drop_payloads(self, pending: _Pending) -> None:
        self._publisher.release(pending.payload_a)
        self._publisher.release(pending.payload_b)

    def _mirror(self, response: MatmulResponse) -> None:
        """Replicate one response's abft_serve_* counter movement locally."""
        if response.status is VerificationStatus.REJECTED:
            self._m_requests.labels(outcome="rejected").inc()
            self._m_rejections.labels(
                reason=response.rejected_reason or "unknown"
            ).inc()
            return
        self._m_requests.labels(outcome="completed").inc()
        if response.status is VerificationStatus.UNCHECKED:
            self._m_degradations.labels(rung="unchecked").inc()
        elif response.status is VerificationStatus.DEGRADED:
            self._m_degradations.labels(
                rung=response.scheme or "degraded"
            ).inc()
        detections = (
            int(bool(response.detected))
            + int(bool(response.corrected))
            + int(bool(response.recomputed))
        )
        if detections:
            self._m_detections.inc(detections)
        if response.corrected:
            self._m_retries.labels(kind="corrected").inc()
        if response.retries:
            self._m_retries.labels(kind="recomputed").inc(response.retries)

    def _reject(self, fut: Future, request_id: str, reason: str) -> None:
        self._m_rejections.labels(reason=reason).inc()
        self._m_requests.labels(outcome="rejected").inc()
        fut.set_result(
            MatmulResponse(
                request_id=request_id,
                status=VerificationStatus.REJECTED,
                rejected_reason=reason,
            )
        )

    def _await_pending(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._pending:
                    return
            time.sleep(0.005)
