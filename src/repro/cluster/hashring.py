"""Consistent-hash ring used by the cluster frontend for plan-key routing.

The ring maps *plan keys* — the (shape, dtype, config, backend) identity
of a request — to worker shards so that repeated traffic for one plan
lands on the same worker, keeping its engine plan cache, workspace pools
and batch coalescing hot.  Virtual nodes smooth the key distribution;
the hash is :func:`hashlib.blake2b` over the key's ``repr`` so placement
is deterministic across runs and independent of ``PYTHONHASHSEED``.

:meth:`HashRing.preference` returns the full ordered walk of distinct
nodes starting at a key's position.  The frontend uses the walk (rather
than only the primary) for two things:

* **hot-key spill** — when the preferred shard is saturated past the
  configured load bound, the key spills to the next shard in its walk,
  so a single-plan workload still scales across the whole cluster while
  a mixed workload keeps per-shard affinity;
* **rehoming on worker death** — a dead shard is simply skipped in the
  walk; when it restarts, its keys return to it without any table
  rebuild (the ring itself never changes for restarts).
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]


def _position(token: str) -> int:
    """Deterministic 64-bit ring position of a token."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """A consistent-hash ring over hashable node identifiers.

    Parameters
    ----------
    nodes:
        Initial node identifiers (any object with a stable ``repr``).
    vnodes:
        Virtual nodes per real node; more vnodes = smoother key spread
        at the cost of a larger (still tiny) ring.
    """

    def __init__(self, nodes=(), *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, object] = {}
        self._nodes: list = []
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> tuple:
        """The registered nodes, in insertion order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add(self, node) -> None:
        """Register a node (idempotent for already-registered nodes)."""
        if node in self._nodes:
            return
        self._nodes.append(node)
        for replica in range(self._vnodes):
            point = _position(f"{node!r}#{replica}")
            # blake2b collisions across distinct tokens are effectively
            # impossible; skip rather than overwrite if one ever occurs.
            if point in self._owners:
                continue
            bisect.insort(self._points, point)
            self._owners[point] = node

    def remove(self, node) -> None:
        """Unregister a node; its keys move to their next walk entry."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        stale = [p for p, owner in self._owners.items() if owner == node]
        for point in stale:
            del self._owners[point]
            index = bisect.bisect_left(self._points, point)
            del self._points[index]

    def preference(self, key) -> list:
        """Ordered distinct nodes for a key, walking clockwise from its
        position — ``preference(key)[0]`` is the primary owner."""
        if not self._nodes:
            return []
        start = bisect.bisect_right(self._points, _position(repr(key)))
        seen: list = []
        count = len(self._points)
        for step in range(count):
            owner = self._owners[self._points[(start + step) % count]]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self._nodes):
                    break
        return seen

    def node_for(self, key):
        """The primary owner of a key (``None`` on an empty ring)."""
        walk = self.preference(key)
        return walk[0] if walk else None
