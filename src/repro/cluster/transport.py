"""Operand transport between the cluster frontend and its workers.

Large operands move **zero-copy** through
:mod:`multiprocessing.shared_memory`: the frontend copies the array into
a shared segment once (and reuses the segment for every request that
carries the *same* array object — the shared-weight serving pattern),
and the worker maps the segment and hands the engine a read-only view —
no pickling of matrix bytes through the request pipe on either side.
Operands below the configured threshold are simply pickled with the
envelope; a segment per tiny array would cost more than it saves.

Lifetime protocol: the frontend owns every segment it publishes and
unlinks it when no in-flight request references it *and* the source
array has been garbage-collected (or the frontend shuts down).  Workers
only ever attach and read; a worker cache keeps recently mapped segments
alive so repeated requests against a shared weight matrix cost zero
copies after the first.  POSIX keeps a mapped segment valid after
unlink, so a worker still holding a view is never invalidated.
"""

from __future__ import annotations

import secrets
import threading
import weakref
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

__all__ = ["OperandPublisher", "OperandReceiver", "attach_shared_memory"]


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without this process tracking it.

    Attaching processes must not register the segment with their
    ``resource_tracker``: the tracker would unlink it at process exit,
    yanking it from under the owning frontend (bpo-39959).  Python 3.13+
    exposes ``track=False``; earlier versions need the unregister
    workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shm(name_, rtype):
            if rtype != "shared_memory":
                original(name_, rtype)

        # Suppressing (rather than undoing) the registration avoids
        # unbalanced unregister noise when several workers attach the
        # same segment; callers serialise attaches, so the patch window
        # is safe.
        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _Published:
    """One shared segment the frontend currently exposes."""

    __slots__ = ("shm", "ref", "inflight", "source_dead")

    def __init__(self, shm, ref) -> None:
        self.shm = shm
        self.ref = ref
        self.inflight = 0
        self.source_dead = False


class OperandPublisher:
    """Frontend-side operand encoder (shared memory above a threshold).

    :meth:`publish` turns a numpy array into a picklable payload tuple —
    ``("inline", array)`` below ``min_bytes``, else
    ``("shm", name, shape, dtype_str)`` backed by a segment that is
    created once per distinct array object and reference-counted per
    in-flight request via :meth:`release`.
    """

    def __init__(self, min_bytes: int, *, metrics=None) -> None:
        self.min_bytes = min_bytes
        self._lock = threading.Lock()
        self._by_source: dict[int, _Published] = {}
        self._by_name: dict[str, _Published] = {}
        self._m_transfers = metrics

    def publish(self, array: np.ndarray):
        """Payload for one operand; retains a shared segment if used."""
        array = np.ascontiguousarray(array)
        if array.nbytes < self.min_bytes:
            if self._m_transfers is not None:
                self._m_transfers.labels(mode="inline").inc()
            return ("inline", array)
        with self._lock:
            entry = self._by_source.get(id(array))
            if entry is None or entry.ref() is not array:
                name = f"aabft-{secrets.token_hex(8)}"
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=array.nbytes
                )
                np.ndarray(
                    array.shape, dtype=array.dtype, buffer=shm.buf
                )[...] = array
                entry = _Published(shm, self._make_ref(array, name))
                self._by_source[id(array)] = entry
                self._by_name[name] = entry
            entry.inflight += 1
            if self._m_transfers is not None:
                self._m_transfers.labels(mode="shm").inc()
            return ("shm", entry.shm.name, array.shape, str(array.dtype))

    def _make_ref(self, array: np.ndarray, name: str):
        def _on_collect(_ref) -> None:
            with self._lock:
                entry = self._by_name.get(name)
                if entry is None:
                    return
                entry.source_dead = True
                if entry.inflight == 0:
                    self._destroy_locked(name)

        return weakref.ref(array, _on_collect)

    def release(self, payload) -> None:
        """Drop one in-flight reference of a published payload."""
        if not (isinstance(payload, tuple) and payload[0] == "shm"):
            return
        name = payload[1]
        with self._lock:
            entry = self._by_name.get(name)
            if entry is None:
                return
            entry.inflight = max(0, entry.inflight - 1)
            if entry.inflight == 0 and entry.source_dead:
                self._destroy_locked(name)

    def _destroy_locked(self, name: str) -> None:
        entry = self._by_name.pop(name, None)
        if entry is None:
            return
        source = entry.ref()
        if source is not None:
            self._by_source.pop(id(source), None)
        else:
            # id() keys of collected arrays can be reused; sweep by entry.
            stale = [k for k, v in self._by_source.items() if v is entry]
            for k in stale:
                del self._by_source[k]
        try:
            entry.shm.close()
            entry.shm.unlink()
        except OSError:
            pass

    @property
    def active_segments(self) -> int:
        with self._lock:
            return len(self._by_name)

    def close(self) -> None:
        """Unlink every published segment (frontend shutdown)."""
        with self._lock:
            for name in list(self._by_name):
                self._destroy_locked(name)


class OperandReceiver:
    """Worker-side operand decoder with a mapped-segment cache.

    Shared-memory payloads resolve to a **read-only** numpy view over the
    mapped segment — no copy.  The cache pins the most recently used
    segments so the shared-weight pattern maps each distinct operand
    once; evicted segments close their local mapping only (the frontend
    owns unlinking).
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._cache: OrderedDict[str, tuple] = OrderedDict()
        self._lock = threading.Lock()

    def fetch(self, payload) -> np.ndarray:
        """The operand array described by a transport payload."""
        kind = payload[0]
        if kind == "inline":
            return payload[1]
        if kind != "shm":
            raise ValueError(f"unknown operand payload kind {kind!r}")
        _, name, shape, dtype = payload
        with self._lock:
            cached = self._cache.get(name)
            if cached is not None:
                self._cache.move_to_end(name)
                return cached[1]
            shm = attach_shared_memory(name)
            view = np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=shm.buf)
            view.flags.writeable = False
            self._cache[name] = (shm, view)
            while len(self._cache) > self.max_entries:
                _, (old_shm, _view) = self._cache.popitem(last=False)
                try:
                    old_shm.close()
                except OSError:
                    pass
            return view

    def close(self) -> None:
        """Close every cached mapping (worker shutdown)."""
        with self._lock:
            while self._cache:
                _, (shm, _view) = self._cache.popitem()
                try:
                    shm.close()
                except OSError:
                    pass
