"""Configuration of the multi-process serving cluster.

:class:`ClusterConfig` bundles the cluster-level knobs — shard count,
routing load bounds, shared-memory transfer threshold, heartbeat
supervision and restart policy — alongside the per-worker
:class:`~repro.serve.config.ServeConfig` every shard runs with, mirroring
how :class:`~repro.serve.config.ServeConfig` wraps the engine's
:class:`~repro.engine.config.AbftConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as _dc_replace

from ..errors import ConfigurationError
from ..serve.config import ServeConfig

__all__ = ["ClusterConfig"]

#: Operands at or above this many bytes travel via
#: ``multiprocessing.shared_memory`` instead of being pickled through the
#: request pipe (one memcpy into the segment, zero-copy view on the
#: worker side).
DEFAULT_SHM_MIN_BYTES = 64 * 1024


@dataclass(frozen=True)
class ClusterConfig:
    """Every knob of :class:`~repro.cluster.frontend.ClusterFrontend`.

    Attributes
    ----------
    serve:
        The :class:`~repro.serve.config.ServeConfig` each worker's
        in-process :class:`~repro.serve.server.MatmulServer` runs with.
    num_workers:
        Worker processes (shards) the frontend supervises.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring.
    max_shard_inflight:
        Bound on requests outstanding per shard.  When every shard in a
        key's ring walk is at the bound, the submission is rejected with
        reason ``"queue_full"`` (the same explicit backpressure contract
        as the single-process server).
    spill_queue_depth:
        Load bound of the routing walk: a key spills past its preferred
        shard while that shard has at least this many requests
        outstanding.  Affinity for mixed workloads, scale-out for hot
        single-plan workloads.
    shm_min_bytes:
        Minimum operand size (bytes) transferred via
        ``multiprocessing.shared_memory``; smaller operands are pickled
        through the request pipe (cheaper than a segment per tiny array).
    heartbeat_interval_s:
        How often workers report liveness (plus their serve-counter
        snapshot and queue depth) and how often the supervisor checks.
    heartbeat_timeout_s:
        A worker whose last heartbeat is older than this is declared dead
        even if its process object still reports alive (hung worker).
    restart_workers:
        Restart dead workers (up to ``max_restarts`` per shard).  The
        shard keeps its ring position, so its plan keys rehome to it as
        soon as the replacement is live.
    max_restarts:
        Restart budget per shard; a shard past the budget stays down and
        its keys route to survivors permanently.
    start_method:
        ``multiprocessing`` start method for workers (``"spawn"`` by
        default: safe in threaded parents, identical cross-platform).
    autotune_cache:
        Path of the shared on-disk
        :class:`~repro.backends.autotune.AutotuneCache` workers consult,
        so every shard inherits tuned winners instead of re-tuning;
        ``None`` leaves each worker on the default cache path.
    drain_timeout_s:
        How long :meth:`~repro.cluster.frontend.ClusterFrontend.stop`
        waits for in-flight requests when draining.
    """

    serve: ServeConfig = field(default_factory=ServeConfig)
    num_workers: int = 2
    vnodes: int = 64
    max_shard_inflight: int = 512
    spill_queue_depth: int = 64
    shm_min_bytes: int = DEFAULT_SHM_MIN_BYTES
    heartbeat_interval_s: float = 0.1
    heartbeat_timeout_s: float = 2.0
    restart_workers: bool = True
    max_restarts: int = 8
    start_method: str = "spawn"
    autotune_cache: str | None = None
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if not isinstance(self.serve, ServeConfig):
            raise ConfigurationError(
                f"serve must be a ServeConfig, got {type(self.serve).__name__}"
            )
        if self.num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.max_shard_inflight < 1:
            raise ConfigurationError(
                f"max_shard_inflight must be >= 1, got {self.max_shard_inflight}"
            )
        if not 1 <= self.spill_queue_depth <= self.max_shard_inflight:
            raise ConfigurationError(
                f"spill_queue_depth must lie in [1, max_shard_inflight="
                f"{self.max_shard_inflight}], got {self.spill_queue_depth}"
            )
        if self.shm_min_bytes < 0:
            raise ConfigurationError(
                f"shm_min_bytes must be >= 0, got {self.shm_min_bytes}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat_interval_s must be positive, got "
                f"{self.heartbeat_interval_s}"
            )
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ConfigurationError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s, got "
                f"{self.heartbeat_timeout_s} <= {self.heartbeat_interval_s}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise ConfigurationError(
                f"start_method must be spawn/fork/forkserver, got "
                f"{self.start_method!r}"
            )
        if self.drain_timeout_s < 0:
            raise ConfigurationError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )

    def replace(self, **changes) -> "ClusterConfig":
        """A copy with the given fields replaced (validated again)."""
        return _dc_replace(self, **changes)
