"""Input-matrix workload generators: the paper's input classes plus
realistic scientific-application operators."""

from .applications import (
    APPLICATION_SUITES,
    SUITE_LAPLACIAN,
    SUITE_POISSON,
    SUITE_WISHART,
    graph_laplacian,
    poisson_2d,
    wishart_covariance,
)
from .dynamic import (
    dynamic_matrix,
    dynamic_pair,
    dynamic_spectrum,
    random_orthogonal,
)
from .generators import MatrixPair, reciprocal_matrix, uniform_matrix, uniform_pair
from .suites import (
    DETECTION_SUITES,
    PAPER_MATRIX_SIZES,
    PAPER_SUITES,
    SUITE_DYNAMIC_K2,
    SUITE_DYNAMIC_K65536,
    SUITE_HUNDRED,
    SUITE_UNIT,
    WorkloadSuite,
    suite_by_name,
)

__all__ = [
    "APPLICATION_SUITES",
    "DETECTION_SUITES",
    "MatrixPair",
    "PAPER_MATRIX_SIZES",
    "PAPER_SUITES",
    "SUITE_DYNAMIC_K2",
    "SUITE_DYNAMIC_K65536",
    "SUITE_HUNDRED",
    "SUITE_LAPLACIAN",
    "SUITE_POISSON",
    "SUITE_UNIT",
    "SUITE_WISHART",
    "WorkloadSuite",
    "dynamic_matrix",
    "graph_laplacian",
    "poisson_2d",
    "wishart_covariance",
    "dynamic_pair",
    "random_orthogonal",
    "reciprocal_matrix",
    "dynamic_spectrum",
    "suite_by_name",
    "uniform_matrix",
    "uniform_pair",
]
