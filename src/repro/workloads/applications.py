"""Realistic scientific-application matrices.

The paper motivates ABFT with large-scale scientific computing (EDA,
biology, thermodynamics).  The synthetic input classes of its evaluation
(uniform, Eq. 47) are complemented here with operators that actually occur
in such codes:

* **2-D Poisson stencils** (heat/diffusion/electrostatics solvers) —
  banded, diagonally dominant, many exact zeros;
* **graph Laplacians** (network analysis, spectral clustering; built with
  networkx) — structured cancellation: every row sums to exactly zero,
  which makes full-encoding checksum vectors vanish and exercises the
  bound machinery's hardest edge case;
* **Wishart covariance matrices** (statistics, Kalman filtering, finance)
  — dense symmetric positive definite with decaying spectrum.

All are exposed both as raw constructors and as
:class:`~repro.workloads.suites.WorkloadSuite` instances for the experiment
drivers.
"""

from __future__ import annotations

import numpy as np

from .generators import MatrixPair
from .suites import WorkloadSuite

__all__ = [
    "poisson_2d",
    "graph_laplacian",
    "wishart_covariance",
    "SUITE_POISSON",
    "SUITE_LAPLACIAN",
    "SUITE_WISHART",
    "APPLICATION_SUITES",
]


def poisson_2d(n: int) -> np.ndarray:
    """Dense 2-D Poisson (5-point stencil) operator of dimension ``n``.

    ``n`` is rounded down to the nearest perfect square's dimension
    internally and the operator is embedded into an ``n x n`` matrix (extra
    rows/columns get identity entries), so any requested size works with
    block-multiple dimensions.
    """
    if n < 1:
        raise ValueError(f"dimension must be positive, got {n}")
    grid = int(np.sqrt(n))
    size = grid * grid
    m = np.zeros((n, n))
    # Identity on the padding tail keeps the operator non-singular.
    for k in range(size, n):
        m[k, k] = 1.0
    for i in range(grid):
        for j in range(grid):
            k = i * grid + j
            m[k, k] = 4.0
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < grid and 0 <= nj < grid:
                    m[k, ni * grid + nj] = -1.0
    return m


def graph_laplacian(
    n: int,
    rng: np.random.Generator,
    model: str = "watts_strogatz",
) -> np.ndarray:
    """Dense Laplacian of a random graph with ``n`` nodes.

    Models: ``watts_strogatz`` (small world, k=6, p=0.1),
    ``barabasi_albert`` (scale free, m=3), ``erdos_renyi`` (G(n, 8/n)).
    Row and column sums are exactly zero — the structured-cancellation
    stress case for checksum schemes.
    """
    import networkx as nx

    seed = int(rng.integers(2**31))
    if model == "watts_strogatz":
        g = nx.watts_strogatz_graph(n, k=min(6, n - 1), p=0.1, seed=seed)
    elif model == "barabasi_albert":
        g = nx.barabasi_albert_graph(n, m=min(3, n - 1), seed=seed)
    elif model == "erdos_renyi":
        g = nx.gnp_random_graph(n, min(1.0, 8.0 / n), seed=seed)
    else:
        raise ValueError(f"unknown graph model {model!r}")
    return nx.laplacian_matrix(g).toarray().astype(np.float64)


def wishart_covariance(
    n: int, rng: np.random.Generator, oversampling: float = 2.0
) -> np.ndarray:
    """Sample covariance of ``oversampling * n`` Gaussian observations.

    Symmetric positive definite (almost surely, for oversampling > 1) with
    the Marchenko-Pastur-shaped spectrum typical of estimated covariances.
    """
    if oversampling <= 1.0:
        raise ValueError("oversampling must exceed 1 for a full-rank covariance")
    samples = int(oversampling * n)
    data = rng.standard_normal((samples, n))
    return (data.T @ data) / samples


SUITE_POISSON = WorkloadSuite(
    name="app_poisson",
    description="2-D Poisson stencil operator squared (PDE solvers)",
    factory=lambda n, rng: MatrixPair(a=poisson_2d(n), b=poisson_2d(n)),
    params={"stencil": "5-point"},
)

SUITE_LAPLACIAN = WorkloadSuite(
    name="app_laplacian",
    description="small-world graph Laplacian (network analysis)",
    factory=lambda n, rng: MatrixPair(
        a=graph_laplacian(n, rng), b=graph_laplacian(n, rng)
    ),
    params={"model": "watts_strogatz"},
)

SUITE_WISHART = WorkloadSuite(
    name="app_wishart",
    description="Wishart sample covariance (statistics/filtering)",
    factory=lambda n, rng: MatrixPair(
        a=wishart_covariance(n, rng), b=wishart_covariance(n, rng)
    ),
    params={"oversampling": 2.0},
)

APPLICATION_SUITES: tuple[WorkloadSuite, ...] = (
    SUITE_POISSON,
    SUITE_LAPLACIAN,
    SUITE_WISHART,
)
