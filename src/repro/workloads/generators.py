"""Random input-matrix generators for the paper's experiments.

Section VI evaluates on three input classes:

* uniform random values in ``[-1, 1]`` (Table II, Figure 4),
* uniform random values in ``[-100, 100]`` (Table III, Figure 4),
* matrices with high value-range dynamic built from Eq. (47)
  (Table IV, Figure 4) — see :mod:`repro.workloads.dynamic`.

All generators take an explicit :class:`numpy.random.Generator` so every
experiment is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "uniform_matrix",
    "uniform_pair",
    "MatrixPair",
    "reciprocal_matrix",
]


@dataclass(frozen=True)
class MatrixPair:
    """Operand pair ``(A, B)`` for a multiplication experiment."""

    a: np.ndarray
    b: np.ndarray

    @property
    def m(self) -> int:
        return self.a.shape[0]

    @property
    def n(self) -> int:
        return self.a.shape[1]

    @property
    def q(self) -> int:
        return self.b.shape[1]


def uniform_matrix(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    low: float = -1.0,
    high: float = 1.0,
    dtype=np.float64,
) -> np.ndarray:
    """Matrix of i.i.d. uniform values on ``[low, high]``."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"matrix dimensions must be positive, got {rows}x{cols}")
    if not low < high:
        raise ValueError(f"invalid range [{low}, {high}]")
    return rng.uniform(low, high, size=(rows, cols)).astype(dtype)


def uniform_pair(
    n: int,
    rng: np.random.Generator,
    low: float = -1.0,
    high: float = 1.0,
    dtype=np.float64,
) -> MatrixPair:
    """Square operand pair with uniform entries, as used for Tables II/III."""
    return MatrixPair(
        a=uniform_matrix(n, n, rng, low, high, dtype),
        b=uniform_matrix(n, n, rng, low, high, dtype),
    )


def reciprocal_matrix(
    rows: int,
    cols: int,
    rng: np.random.Generator,
    exponent_range: tuple[int, int] = (-8, 8),
    dtype=np.float64,
) -> np.ndarray:
    """Matrix whose entry mantissas follow the reciprocal (Benford) law.

    Useful for validating the model assumption of Section IV-A directly.
    """
    from ..fp.distribution import sample_reciprocal_floats

    values = sample_reciprocal_floats(rows * cols, rng, exponent_range)
    return values.reshape(rows, cols).astype(dtype)
