"""Named workload suites matching the paper's experiment configurations.

Each suite is a declarative description (name + generator + parameters) of
one of the input classes evaluated in Section VI, so experiment drivers and
benchmarks can iterate over ``PAPER_SUITES`` instead of hard-coding ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .dynamic import dynamic_pair
from .generators import MatrixPair, uniform_pair

__all__ = [
    "WorkloadSuite",
    "SUITE_UNIT",
    "SUITE_HUNDRED",
    "SUITE_DYNAMIC_K2",
    "SUITE_DYNAMIC_K65536",
    "PAPER_SUITES",
    "DETECTION_SUITES",
    "PAPER_MATRIX_SIZES",
    "suite_by_name",
]

#: Matrix dimensions swept in the paper's evaluation (Section VI).
PAPER_MATRIX_SIZES: tuple[int, ...] = (
    512,
    1024,
    2048,
    3072,
    4096,
    5120,
    6144,
    7168,
    8192,
)


@dataclass(frozen=True)
class WorkloadSuite:
    """A named, parameterised input-matrix distribution.

    Attributes
    ----------
    name:
        Short identifier used in reports (e.g. ``"uniform_unit"``).
    description:
        Human-readable description matching the paper's wording.
    factory:
        Callable ``(n, rng) -> MatrixPair`` producing square operands.
    params:
        The distribution parameters, for provenance in reports.
    """

    name: str
    description: str
    factory: Callable[[int, np.random.Generator], MatrixPair]
    params: dict = field(default_factory=dict)

    def generate(self, n: int, rng: np.random.Generator) -> MatrixPair:
        """Draw an operand pair of dimension ``n``."""
        return self.factory(n, rng)


SUITE_UNIT = WorkloadSuite(
    name="uniform_unit",
    description="random input values in the range -1.0 to 1.0 (Table II)",
    factory=lambda n, rng: uniform_pair(n, rng, -1.0, 1.0),
    params={"low": -1.0, "high": 1.0},
)

SUITE_HUNDRED = WorkloadSuite(
    name="uniform_hundred",
    description="random input values in the range -100.0 to 100.0 (Table III)",
    factory=lambda n, rng: uniform_pair(n, rng, -100.0, 100.0),
    params={"low": -100.0, "high": 100.0},
)

SUITE_DYNAMIC_K2 = WorkloadSuite(
    name="dynamic_k2",
    description="high value-range dynamic, Eq. (47), alpha=0, kappa=2 (Table IV)",
    factory=lambda n, rng: dynamic_pair(n, rng, alpha=0.0, kappa=2.0),
    params={"alpha": 0.0, "kappa": 2.0},
)

SUITE_DYNAMIC_K65536 = WorkloadSuite(
    name="dynamic_k65536",
    description=(
        "high value-range dynamic, Eq. (47), alpha=0, kappa=65536 "
        "(Figure 4 detection experiments)"
    ),
    factory=lambda n, rng: dynamic_pair(n, rng, alpha=0.0, kappa=65536.0),
    params={"alpha": 0.0, "kappa": 65536.0},
)

#: The three input classes of the bound-quality tables, in paper order.
PAPER_SUITES: tuple[WorkloadSuite, ...] = (
    SUITE_UNIT,
    SUITE_HUNDRED,
    SUITE_DYNAMIC_K2,
)

#: The input classes of the detection experiments (Section VI-C uses
#: kappa = 65536 for the high-dynamic class, not Table IV's kappa = 2).
DETECTION_SUITES: tuple[WorkloadSuite, ...] = (
    SUITE_UNIT,
    SUITE_HUNDRED,
    SUITE_DYNAMIC_K65536,
)

_ALL = {
    s.name: s
    for s in (SUITE_UNIT, SUITE_HUNDRED, SUITE_DYNAMIC_K2, SUITE_DYNAMIC_K65536)
}


def suite_by_name(name: str) -> WorkloadSuite:
    """Look up a suite by its ``name``; raises ``KeyError`` with the options."""
    try:
        return _ALL[name]
    except KeyError:
        raise KeyError(
            f"unknown workload suite {name!r}; available: {sorted(_ALL)}"
        ) from None
