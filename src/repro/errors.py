"""Exception hierarchy for the A-ABFT reproduction library.

Every exception raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library-specific failures with a single ``except`` clause
while still letting genuine programming errors (``TypeError`` etc.) surface.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "EncodingError",
    "ChecksumMismatchError",
    "CorrectionError",
    "FaultSpecError",
    "KernelLaunchError",
    "DeviceError",
    "BoundSchemeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration value is invalid or inconsistent."""


class ShapeError(ReproError, ValueError):
    """Matrix/vector operands have incompatible or unsupported shapes."""


class EncodingError(ReproError):
    """Checksum encoding failed or an encoded matrix is malformed."""


class ChecksumMismatchError(ReproError):
    """A checksum check failed and the caller requested strict behaviour.

    Most checking APIs *return* a report instead of raising; this exception
    is only raised by the ``strict=True`` convenience paths.
    """

    def __init__(self, message: str, report: object | None = None) -> None:
        super().__init__(message)
        #: The :class:`repro.abft.checking.CheckReport` describing the mismatch.
        self.report = report


class CorrectionError(ReproError):
    """An error pattern could not be corrected (e.g. multiple errors)."""


class FaultSpecError(ReproError, ValueError):
    """A fault-injection specification is invalid."""


class KernelLaunchError(ReproError):
    """A simulated GPU kernel was launched with an invalid configuration."""


class DeviceError(ReproError):
    """The simulated device rejected an operation (allocation, copy, ...)."""


class BoundSchemeError(ReproError):
    """An error-bound scheme received inputs it cannot produce a bound for."""
