"""Error-free transformations: the fast exact-reference engine.

The bound-quality experiments (paper Tables II-IV) need the *exact* rounding
error of millions of inner products.  Rational arithmetic
(:mod:`repro.exact.fraction_ops`) is exact but slow; this module provides the
classical error-free transformations (Knuth's two_sum, Dekker's split /
two_prod) that represent each floating-point product ``a*b`` exactly as an
unevaluated sum ``hi + lo`` of two floats.  Feeding all ``hi`` and ``lo``
terms to :func:`math.fsum` — which returns the correctly rounded sum of its
inputs — then yields the exactly rounded value of the inner product, i.e.
the same float GMP would produce at sufficient precision.

References: T. J. Dekker, "A floating-point technique for extending the
available precision", Numer. Math. 18 (1971); Ogita/Rump/Oishi, "Accurate sum
and dot product", SISC 26 (2005).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "two_sum",
    "fast_two_sum",
    "split",
    "two_prod",
    "exact_dot_float",
    "exact_dot_errors",
    "compensated_dot",
]

# Dekker's splitting constant for binary64: 2**ceil(53/2) + 1.
_SPLITTER = float((1 << 27) + 1)


def two_sum(a: float, b: float) -> tuple[float, float]:
    """Knuth's branch-free error-free addition.

    Returns ``(s, e)`` with ``s = fl(a + b)`` and ``a + b = s + e`` exactly.
    """
    s = a + b
    bb = s - a
    e = (a - (s - bb)) + (b - bb)
    return s, e


def fast_two_sum(a: float, b: float) -> tuple[float, float]:
    """Dekker's error-free addition, valid when ``|a| >= |b|``.

    Returns ``(s, e)`` with ``a + b = s + e`` exactly.
    """
    s = a + b
    e = b - (s - a)
    return s, e


def split(a: float) -> tuple[float, float]:
    """Dekker split of ``a`` into ``hi + lo`` with 26/27-bit halves."""
    c = _SPLITTER * a
    hi = c - (c - a)
    lo = a - hi
    return hi, lo


def two_prod(a: float, b: float) -> tuple[float, float]:
    """Error-free multiplication without FMA.

    Returns ``(p, e)`` with ``p = fl(a * b)`` and ``a * b = p + e`` exactly
    (barring overflow in the splitting, which the library's workloads never
    approach).
    """
    p = a * b
    a_hi, a_lo = split(a)
    b_hi, b_lo = split(b)
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    return p, e


def exact_dot_float(a: Sequence[float], b: Sequence[float]) -> float:
    """Exactly rounded value of the inner product ``a . b``.

    Each product is expanded error-free into ``hi + lo``; ``math.fsum`` then
    produces the correctly rounded sum of the exact term list.  The result is
    the float nearest to the mathematically exact inner product.
    """
    a_arr = np.asarray(a, dtype=np.float64).ravel()
    b_arr = np.asarray(b, dtype=np.float64).ravel()
    if a_arr.shape != b_arr.shape:
        raise ValueError(
            f"dot operands must have equal length, got {a_arr.size} and {b_arr.size}"
        )
    # Vectorised two_prod over the whole vector pair.
    p = a_arr * b_arr
    c = _SPLITTER * a_arr
    a_hi = c - (c - a_arr)
    a_lo = a_arr - a_hi
    c = _SPLITTER * b_arr
    b_hi = c - (c - b_arr)
    b_lo = b_arr - b_hi
    e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
    terms = np.concatenate((p, e))
    return math.fsum(terms.tolist())


def exact_dot_errors(
    a: np.ndarray, b: np.ndarray, computed: np.ndarray
) -> np.ndarray:
    """Exact rounding errors of a batch of computed inner products.

    Parameters
    ----------
    a:
        2-D array whose rows are the left vectors, shape ``(k, n)``.
    b:
        2-D array whose rows are the right vectors, shape ``(k, n)``.
    computed:
        The floating-point results whose errors are measured, shape ``(k,)``.

    Returns
    -------
    Array of signed errors ``computed[i] - exact(a[i] . b[i])``.  Each error
    is itself far below 2**-some-bits of the result magnitude, so the final
    float conversion loses nothing of interest.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    computed = np.asarray(computed, dtype=np.float64).ravel()
    if a.shape != b.shape or a.shape[0] != computed.size:
        raise ValueError("shape mismatch between vector batches and results")
    out = np.empty(computed.size, dtype=np.float64)
    for i in range(computed.size):
        # fsum of (products-expansion + (-computed)) gives the exact
        # difference, correctly rounded once at the end.
        p = a[i] * b[i]
        c = _SPLITTER * a[i]
        a_hi = c - (c - a[i])
        a_lo = a[i] - a_hi
        c = _SPLITTER * b[i]
        b_hi = c - (c - b[i])
        b_lo = b[i] - b_hi
        e = ((a_hi * b_hi - p) + a_hi * b_lo + a_lo * b_hi) + a_lo * b_lo
        terms = p.tolist()
        terms.extend(e.tolist())
        terms.append(-float(computed[i]))
        out[i] = -math.fsum(terms)
    return out


def compensated_dot(a: Sequence[float], b: Sequence[float]) -> float:
    """Dot2 (Ogita/Rump/Oishi): compensated dot product in working precision.

    Twice-working-precision accuracy at O(n) cost; used as an intermediate
    accuracy level in tests (between plain ``np.dot`` and the exact path).
    """
    a_arr = np.asarray(a, dtype=np.float64).ravel()
    b_arr = np.asarray(b, dtype=np.float64).ravel()
    if a_arr.shape != b_arr.shape:
        raise ValueError("dot operands must have equal length")
    if a_arr.size == 0:
        return 0.0
    s, comp = two_prod(float(a_arr[0]), float(b_arr[0]))
    for k in range(1, a_arr.size):
        p, pi = two_prod(float(a_arr[k]), float(b_arr[k]))
        s, sigma = two_sum(s, p)
        comp += pi + sigma
    return s + comp
