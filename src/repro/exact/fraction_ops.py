"""Exact arithmetic over binary floats via :class:`fractions.Fraction`.

Every finite IEEE-754 binary float is a dyadic rational, so sums and products
of floats are *exactly* representable as :class:`~fractions.Fraction` values.
This is the slow-but-obviously-correct oracle the paper's GMP reference
computation is substituted with (see DESIGN.md): given the same inputs it
produces the mathematically exact result, from which the exact rounding error
of the GPU-computed value follows by subtraction.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "exact_sum",
    "exact_dot",
    "exact_matmul_element",
    "round_fraction_to_float",
    "exact_rounding_error",
]


def _as_fraction(x) -> Fraction:
    value = float(x)
    if not np.isfinite(value):
        raise ValueError(f"cannot represent non-finite value {value!r} exactly")
    return Fraction(value)


def exact_sum(values: Iterable[float]) -> Fraction:
    """Exact sum of a sequence of floats as a Fraction."""
    total = Fraction(0)
    for v in values:
        total += _as_fraction(v)
    return total


def exact_dot(a: Sequence[float], b: Sequence[float]) -> Fraction:
    """Exact inner product ``sum_k a[k] * b[k]`` as a Fraction."""
    a_arr = np.asarray(a, dtype=np.float64).ravel()
    b_arr = np.asarray(b, dtype=np.float64).ravel()
    if a_arr.shape != b_arr.shape:
        raise ValueError(
            f"dot operands must have equal length, got {a_arr.size} and {b_arr.size}"
        )
    total = Fraction(0)
    for x, y in zip(a_arr.tolist(), b_arr.tolist()):
        if x == 0.0 or y == 0.0:
            continue
        total += Fraction(x) * Fraction(y)
    return total


def exact_matmul_element(a_row: Sequence[float], b_col: Sequence[float]) -> Fraction:
    """Exact value of one element of a matrix product (alias of exact_dot)."""
    return exact_dot(a_row, b_col)


def round_fraction_to_float(value: Fraction) -> float:
    """Round an exact Fraction to the nearest binary64 (ties to even).

    Python's ``Fraction.__float__`` implements correct rounding, which is
    exactly what we need to compare against IEEE round-to-nearest results.
    """
    return float(value)


def exact_rounding_error(computed: float, exact: Fraction) -> float:
    """Exact signed rounding error ``computed - exact``, returned as float.

    The difference is formed exactly in rational arithmetic and only the
    final (tiny) result is converted to float — the conversion itself is
    correctly rounded and the error magnitudes of interest are far above the
    underflow threshold, so no precision is lost where it matters.
    """
    return float(Fraction(float(computed)) - exact)
