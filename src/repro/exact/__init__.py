"""Exact reference arithmetic (the paper's GMP substitute).

Two independent exact paths — rational arithmetic and error-free
transformations — provide exactly rounded inner products and exact rounding
errors for the bound-quality experiments.
"""

from .compensated import (
    compensated_dot,
    exact_dot_errors,
    exact_dot_float,
    fast_two_sum,
    split,
    two_prod,
    two_sum,
)
from .fraction_ops import (
    exact_dot,
    exact_matmul_element,
    exact_rounding_error,
    exact_sum,
    round_fraction_to_float,
)
from .reference import ExactReference, RoundingErrorSample

__all__ = [
    "ExactReference",
    "RoundingErrorSample",
    "compensated_dot",
    "exact_dot",
    "exact_dot_errors",
    "exact_dot_float",
    "exact_matmul_element",
    "exact_rounding_error",
    "exact_sum",
    "fast_two_sum",
    "round_fraction_to_float",
    "split",
    "two_prod",
    "two_sum",
]
