"""Exact reference engine — the library's substitute for the paper's GMP runs.

The bound-quality evaluation (paper Section VI-B, Tables II-IV) compares the
rounding-error bounds produced by A-ABFT and SEA-ABFT against *exact* rounding
errors "computed using GMP, a multi-precision floating-point library".  The
:class:`ExactReference` engine reproduces that measurement:

* the exact value of any result/checksum element is obtained with error-free
  transformations (fast path) or rational arithmetic (oracle path);
* the *exact rounding error* of a computed element is the exact difference
  between the float the (simulated) GPU produced and that exact value;
* checksum *discrepancies* — the quantity an ABFT check actually compares
  against its bound — are measured the same way.

Both paths agree to the last bit; tests cross-validate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from .compensated import exact_dot_errors, exact_dot_float
from .fraction_ops import exact_dot, exact_rounding_error

__all__ = ["ExactReference", "RoundingErrorSample"]

Method = Literal["compensated", "fraction"]


@dataclass(frozen=True)
class RoundingErrorSample:
    """Summary statistics of measured exact rounding errors.

    Attributes
    ----------
    errors:
        Signed exact rounding errors of the sampled elements.
    mean_abs:
        Mean absolute rounding error — the paper's "AVG. RND. ERROR" column.
    max_abs:
        Largest observed absolute rounding error.
    """

    errors: np.ndarray

    @property
    def mean_abs(self) -> float:
        return float(np.mean(np.abs(self.errors)))

    @property
    def max_abs(self) -> float:
        return float(np.max(np.abs(self.errors)))

    @property
    def rms(self) -> float:
        return float(np.sqrt(np.mean(np.square(self.errors))))


class ExactReference:
    """Measure exact rounding errors of inner products and checksums.

    Parameters
    ----------
    method:
        ``"compensated"`` (default) uses error-free transformations +
        ``math.fsum`` — fast and exactly rounded.  ``"fraction"`` uses
        rational arithmetic — the independent oracle.
    """

    def __init__(self, method: Method = "compensated") -> None:
        if method not in ("compensated", "fraction"):
            raise ValueError(f"unknown method {method!r}")
        self.method = method

    # ------------------------------------------------------------------
    # Single elements
    # ------------------------------------------------------------------
    def exact_inner_product(self, a: np.ndarray, b: np.ndarray) -> float:
        """Exactly rounded value of ``a . b``."""
        if self.method == "compensated":
            return exact_dot_float(a, b)
        return float(exact_dot(a, b))

    def rounding_error(self, a: np.ndarray, b: np.ndarray, computed: float) -> float:
        """Exact signed rounding error of ``computed`` w.r.t. ``a . b``."""
        if self.method == "compensated":
            return float(
                exact_dot_errors(
                    np.asarray(a, dtype=np.float64)[None, :],
                    np.asarray(b, dtype=np.float64)[None, :],
                    np.asarray([computed]),
                )[0]
            )
        return exact_rounding_error(computed, exact_dot(a, b))

    # ------------------------------------------------------------------
    # Batched measurements for experiment sweeps
    # ------------------------------------------------------------------
    def column_checksum_errors(
        self,
        a_cc: np.ndarray,
        b: np.ndarray,
        c_fc: np.ndarray,
        columns: np.ndarray | None = None,
    ) -> RoundingErrorSample:
        """Exact rounding errors of computed column-checksum elements.

        Parameters
        ----------
        a_cc:
            Column-checksum-encoded left operand; its last row is the
            checksum row ``a_{m+1}``.
        b:
            Right operand (data part, shape ``(n, q)``), or a row-checksum
            matrix whose data columns will be used.
        c_fc:
            The computed full-checksum result; its last row holds the
            column-checksum elements that "went through" the multiplication.
        columns:
            Optional indices of result columns to sample; all data columns
            by default.
        """
        a_cc = np.asarray(a_cc, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        c_fc = np.asarray(c_fc, dtype=np.float64)
        n = a_cc.shape[1]
        if b.shape[0] != n:
            raise ValueError(
                f"inner dimensions disagree: A_cc is ...x{n}, B is {b.shape[0]}x..."
            )
        q = b.shape[1]
        if columns is None:
            columns = np.arange(q)
        columns = np.asarray(columns, dtype=np.intp)
        checksum_row = a_cc[-1, :]
        lhs = np.broadcast_to(checksum_row, (columns.size, n))
        rhs = b[:, columns].T
        computed = c_fc[-1, columns]
        if self.method == "compensated":
            errors = exact_dot_errors(np.ascontiguousarray(lhs), np.ascontiguousarray(rhs), computed)
        else:
            errors = np.array(
                [
                    exact_rounding_error(float(computed[i]), exact_dot(lhs[i], rhs[i]))
                    for i in range(columns.size)
                ]
            )
        return RoundingErrorSample(errors=errors)

    def checksum_discrepancies(
        self, c_fc: np.ndarray, axis: Literal["column", "row"] = "column"
    ) -> np.ndarray:
        """Observed |reference - original| checksum discrepancies of ``c_fc``.

        This is the quantity the runtime check compares against its error
        bound; in the fault-free case it is pure rounding noise.
        """
        c_fc = np.asarray(c_fc, dtype=np.float64)
        if axis == "column":
            reference = c_fc[:-1, :-1].sum(axis=0)
            original = c_fc[-1, :-1]
        elif axis == "row":
            reference = c_fc[:-1, :-1].sum(axis=1)
            original = c_fc[:-1, -1]
        else:
            raise ValueError(f"axis must be 'column' or 'row', got {axis!r}")
        return np.abs(reference - original)
