"""Run-everything entry point used by the ``aabft`` CLI and CI scripts.

Regenerates every table and figure of the paper's evaluation at the
configured scale.  The default "quick" scale keeps total runtime in the
minutes range on a laptop; ``full=True`` (or ``AABFT_FULL=1`` in the
benchmark harness) sweeps the paper's complete 512..8192 grid.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

import numpy as np

from ..workloads.suites import (
    DETECTION_SUITES,
    PAPER_MATRIX_SIZES,
    SUITE_DYNAMIC_K2,
    SUITE_HUNDRED,
    SUITE_UNIT,
)
from .bound_quality import measure_bound_quality, render_bound_table
from .figure4 import render_figure4, run_figure4
from .paper_data import TABLE2_UNIT, TABLE3_HUNDRED, TABLE4_DYNAMIC
from .table1 import overhead_summary, render_table1, run_table1

__all__ = ["ExperimentScale", "QUICK", "FULL", "run_all", "full_runs_requested"]


@dataclass(frozen=True)
class ExperimentScale:
    """Sweep sizes and sample counts for one experiment campaign."""

    name: str
    bound_sizes: tuple[int, ...]
    detection_sizes: tuple[int, ...]
    bound_samples: int = 64
    injections_per_cell: int = 120


QUICK = ExperimentScale(
    name="quick",
    bound_sizes=(512, 1024),
    detection_sizes=(512, 1024),
)

FULL = ExperimentScale(
    name="full",
    bound_sizes=PAPER_MATRIX_SIZES,
    detection_sizes=PAPER_MATRIX_SIZES,
    bound_samples=128,
    injections_per_cell=300,
)


def full_runs_requested() -> bool:
    """Whether the environment opts into the paper's full-size sweeps."""
    return os.environ.get("AABFT_FULL", "0") not in ("", "0", "false", "no")


def run_all(scale: ExperimentScale = QUICK, seed: int = 2014) -> str:
    """Regenerate every table/figure; returns the combined report text."""
    out = io.StringIO()
    rng = np.random.default_rng(seed)

    rows = run_table1()
    out.write(render_table1(rows))
    out.write("\n" + overhead_summary(rows) + "\n\n")

    for suite, paper, label in (
        (SUITE_UNIT, TABLE2_UNIT, "Table II — inputs U(-1, 1)"),
        (SUITE_HUNDRED, TABLE3_HUNDRED, "Table III — inputs U(-100, 100)"),
        (SUITE_DYNAMIC_K2, TABLE4_DYNAMIC, "Table IV — Eq. 47, alpha=0, kappa=2"),
    ):
        measured = [
            measure_bound_quality(
                suite, n, rng, num_samples=scale.bound_samples
            )
            for n in scale.bound_sizes
        ]
        out.write(render_bound_table(measured, paper, title=label))
        out.write("\n\n")

    cells = run_figure4(
        suites=DETECTION_SUITES,
        sizes=scale.detection_sizes,
        injections_per_cell=scale.injections_per_cell,
        seed=seed,
    )
    out.write(render_figure4(cells))
    out.write("\n")
    return out.getvalue()
