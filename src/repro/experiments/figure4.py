"""Experiment driver for Figure 4 — detected errors per operation.

Reproduces the paper's detection experiment: single-bit flips into the
mantissa of the inner-loop multiplication, the inner-loop addition and the
final-sum addition, over the three input classes and a sweep of matrix
dimensions.  For every cell the fraction of *critical* injected errors
detected by A-ABFT and by SEA-ABFT is reported (the Figure 4 bars).

The paper's qualitative findings this reproduction checks:

* A-ABFT detects "well over 90 %" in many configurations;
* A-ABFT beats SEA-ABFT across every combination;
* A-ABFT's rate does not degrade with matrix size, SEA-ABFT's does;
* sign/exponent flips are detected 100 % by both (separate campaign mode).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import render_table
from ..faults.campaign import CampaignConfig, FaultCampaign
from ..faults.model import FaultSite
from ..faults.sampling import ALL_SITES
from ..workloads.suites import WorkloadSuite

__all__ = ["Figure4Cell", "run_figure4", "render_figure4"]


@dataclass(frozen=True)
class Figure4Cell:
    """Detection rates of one (suite, n, operation) combination."""

    suite: str
    n: int
    site: FaultSite
    num_critical: int
    rate_aabft: float
    rate_sea: float


def run_figure4(
    suites: tuple[WorkloadSuite, ...],
    sizes: tuple[int, ...],
    injections_per_cell: int = 120,
    block_size: int = 64,
    p: int = 2,
    omega: float = 3.0,
    fields: tuple[str, ...] = ("mantissa",),
    num_flips: int = 1,
    seed: int = 0,
) -> list[Figure4Cell]:
    """Run the detection campaign grid and collect per-operation rates.

    One campaign (one workload, ``3 * injections_per_cell`` faults spread
    over the three operations) is run per (suite, n); the per-site rates are
    extracted from its records.
    """
    cells: list[Figure4Cell] = []
    for suite in suites:
        for size_index, n in enumerate(sizes):
            config = CampaignConfig(
                n=n,
                suite=suite,
                num_injections=injections_per_cell * len(ALL_SITES),
                block_size=block_size,
                p=p,
                omega=omega,
                sites=ALL_SITES,
                fields=fields,
                num_flips=num_flips,
                schemes=("aabft", "sea"),
                seed=seed + 1000 * size_index + hash(suite.name) % 997,
            )
            result = FaultCampaign(config).run()
            for site in ALL_SITES:
                cells.append(
                    Figure4Cell(
                        suite=suite.name,
                        n=n,
                        site=site,
                        num_critical=result.num_critical(site),
                        rate_aabft=result.detection_rate("aabft", site),
                        rate_sea=result.detection_rate("sea", site),
                    )
                )
    return cells


def render_figure4(cells: list[Figure4Cell]) -> str:
    """Render the detection grid as a table (the Figure 4 bar values)."""
    headers = ["suite", "n", "operation", "#critical", "A-ABFT", "SEA-ABFT"]
    body = []
    for c in cells:
        body.append(
            [
                c.suite,
                c.n,
                c.site.value,
                c.num_critical,
                _pct(c.rate_aabft),
                _pct(c.rate_sea),
            ]
        )
    return render_table(
        headers,
        body,
        title="Figure 4 — % of critical errors detected (single-bit mantissa flips)",
    )


def _pct(rate: float) -> str:
    if rate != rate:  # NaN: no critical errors in the cell
        return "n/a"
    return f"{100.0 * rate:.1f}%"
