"""Published numbers from the paper, for side-by-side comparison.

Transcribed from Braun/Halder/Wunderlich, DSN'14 — Tables I-IV.  Figure 4 is
a bar chart without printed values; its reproduction is checked against the
paper's *qualitative* statements (A-ABFT "well over 90 %", consistently above
SEA-ABFT, size-independent) instead.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_GFLOPS",
    "TABLE2_UNIT",
    "TABLE3_HUNDRED",
    "TABLE4_DYNAMIC",
    "UNPROTECTED_PEAK_GFLOPS",
    "AABFT_PEAK_FRACTION",
]

#: Table I — GFLOPS per scheme: n -> (ABFT, A-ABFT, SEA-ABFT, TMR).
TABLE1_GFLOPS: dict[int, tuple[float, float, float, float]] = {
    512: (382.30, 279.19, 307.75, 185.56),
    1024: (659.02, 514.17, 499.53, 322.22),
    2048: (807.91, 706.85, 635.67, 335.65),
    3072: (872.93, 772.64, 657.28, 339.33),
    4096: (894.14, 829.10, 686.39, 345.26),
    5120: (924.38, 848.43, 690.51, 344.95),
    6144: (926.61, 874.59, 703.91, 346.76),
    7168: (944.50, 885.23, 705.51, 347.68),
    8192: (942.61, 903.44, 712.75, 348.09),
}

#: Table II — inputs U(-1, 1): n -> (avg rnd error, avg A-ABFT, avg SEA).
TABLE2_UNIT: dict[int, tuple[float, float, float]] = {
    512: (2.25e-14, 1.68e-11, 8.58e-10),
    1024: (4.53e-14, 4.88e-11, 3.30e-9),
    2048: (9.09e-14, 1.46e-10, 1.29e-8),
    3072: (1.35e-13, 2.77e-10, 2.88e-8),
    4096: (1.81e-13, 4.27e-10, 5.09e-8),
    5120: (2.25e-13, 6.21e-10, 7.95e-8),
    6144: (2.71e-13, 8.15e-10, 1.14e-7),
    7168: (3.17e-13, 1.06e-9, 1.56e-7),
    8192: (3.62e-13, 1.28e-9, 2.03e-7),
}

#: Table III — inputs U(-100, 100).
TABLE3_HUNDRED: dict[int, tuple[float, float, float]] = {
    512: (2.22e-10, 1.61e-7, 8.65e-6),
    1024: (4.55e-10, 4.92e-7, 3.30e-5),
    2048: (9.07e-10, 1.48e-6, 1.29e-4),
    3072: (1.36e-9, 2.81e-6, 2.88e-4),
    4096: (1.81e-9, 4.27e-6, 5.10e-4),
    5120: (2.26e-9, 6.10e-6, 7.93e-4),
    6144: (2.71e-9, 8.15e-6, 1.14e-3),
    7168: (3.16e-9, 1.04e-5, 1.55e-3),
    8192: (3.62e-9, 1.29e-5, 2.03e-3),
}

#: Table IV — high-dynamic inputs (Eq. 47, alpha = 0, kappa = 2).
TABLE4_DYNAMIC: dict[int, tuple[float, float, float]] = {
    512: (6.19e-11, 7.99e-8, 1.34e-6),
    1024: (2.44e-10, 5.12e-7, 1.02e-5),
    2048: (9.72e-10, 3.22e-6, 7.96e-5),
    3072: (2.20e-9, 9.51e-6, 2.69e-4),
    4096: (3.89e-9, 2.02e-5, 6.31e-4),
    5120: (6.04e-9, 3.61e-5, 1.22e-3),
    6144: (8.77e-9, 5.88e-5, 2.28e-3),
    7168: (1.20e-8, 8.82e-5, 4.08e-3),
    8192: (1.54e-8, 1.24e-4, 8.04e-3),
}

#: Section VI-A: unprotected matmul peak on the K20c.
UNPROTECTED_PEAK_GFLOPS = 1048.4
#: Section VI-A: A-ABFT reaches 86.2 % of the unprotected peak at n = 8192.
AABFT_PEAK_FRACTION = 0.862
