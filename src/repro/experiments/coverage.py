"""Coverage validation — do the confidence intervals actually cover?

The probabilistic bound promises that checksum rounding errors fall inside
``[EV - omega*sigma, EV + omega*sigma]`` with high probability.  Because the
paper's variance bound uses the worst-case partial-sum model
(``|s_k| <= k*y``) rather than the random-walk behaviour of real data, the
interval is conservative — the experiments in Tables II-IV show a few
hundred-fold headroom.  This driver quantifies the promise directly:

* **coverage** — the fraction of exactly measured checksum rounding errors
  inside the omega-sigma interval, per omega;
* **effective omega** — the largest observed ``|error| / sigma_model``,
  i.e. how many model-sigmas the worst error actually needed.

Published claim checked: the 3-sigma setting must cover everything (zero
false positives); the measured effective omega shows how much slack the
partial-sum model leaves on each input class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..abft.encoding import encode_partitioned_columns, encode_partitioned_rows
from ..analysis.tables import render_table
from ..bounds.probabilistic import inner_product_sigma_bound
from ..bounds.upper_bound import determine_upper_bound, top_p_of_columns, top_p_of_rows
from ..exact.reference import ExactReference
from ..fp.constants import BINARY64
from ..workloads.suites import WorkloadSuite

__all__ = ["CoverageRow", "measure_coverage", "render_coverage"]


@dataclass(frozen=True)
class CoverageRow:
    """Coverage statistics for one (suite, n) configuration."""

    suite: str
    n: int
    num_samples: int
    coverage: dict[float, float]  # omega -> fraction covered
    effective_omega: float  # max |error| / sigma_model

    def covered_at(self, omega: float) -> float:
        return self.coverage[omega]


def measure_coverage(
    suite: WorkloadSuite,
    n: int,
    rng: np.random.Generator,
    block_size: int = 64,
    p: int = 2,
    omegas: tuple[float, ...] = (1.0, 2.0, 3.0),
    num_samples: int = 96,
) -> CoverageRow:
    """Measure interval coverage of checksum rounding errors at size ``n``."""
    pair = suite.generate(n, rng)
    a_cc, row_layout = encode_partitioned_columns(pair.a, block_size)
    b_rc, col_layout = encode_partitioned_rows(pair.b, block_size)
    c_fc = a_cc @ b_rc
    inner = pair.a.shape[1]
    t = BINARY64.t

    row_tops = top_p_of_rows(a_cc, p)
    col_tops = top_p_of_columns(b_rc, p)
    reference = ExactReference()

    blocks = rng.integers(row_layout.num_blocks, size=num_samples)
    cols = rng.integers(col_layout.encoded_rows, size=num_samples)

    ratios = np.empty(num_samples)
    for i, (blk, col) in enumerate(zip(blocks.tolist(), cols.tolist())):
        cs_row = row_layout.checksum_index(blk)
        computed = float(c_fc[cs_row, col])
        err = reference.rounding_error(a_cc[cs_row, :], b_rc[:, col], computed)
        y = determine_upper_bound(row_tops[cs_row], col_tops[col])
        sigma = inner_product_sigma_bound(inner, y, t)
        ratios[i] = abs(err) / sigma if sigma > 0 else np.inf

    coverage = {w: float(np.mean(ratios <= w)) for w in omegas}
    return CoverageRow(
        suite=suite.name,
        n=n,
        num_samples=num_samples,
        coverage=coverage,
        effective_omega=float(np.max(ratios)),
    )


def render_coverage(rows: list[CoverageRow]) -> str:
    """Coverage table across suites/sizes."""
    omegas = sorted(rows[0].coverage) if rows else []
    headers = ["suite", "n"] + [f"<= {w:g} sigma" for w in omegas] + [
        "max err/sigma"
    ]
    body = [
        [r.suite, r.n]
        + [f"{100 * r.coverage[w]:.1f}%" for w in omegas]
        + [f"{r.effective_omega:.4f}"]
        for r in rows
    ]
    return render_table(
        headers, body, title="Confidence-interval coverage of exact rounding errors"
    )
