"""Experiment driver for Tables II-IV — quality of the error bounds.

For each matrix dimension and input class the paper compares three numbers,
averaged over the checked checksum elements:

* the **exact rounding error** of the checksum elements that went through
  the multiplication (computed with GMP in the paper; with the error-free-
  transformation exact engine here);
* the **A-ABFT bound** (p = 2, omega = 3, the paper's settings);
* the **SEA-ABFT bound**.

Computing the exact error of *every* checksum element is O(n^2) exact dot
products; the averages converge with a few dozen samples, so the driver
samples ``num_samples`` column-checksum positions uniformly (deterministic
per seed) — the full-population mode is a flag away for final runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..abft.encoding import encode_partitioned_columns, encode_partitioned_rows
from ..abft.providers import AABFTEpsilonProvider, SEAEpsilonProvider
from ..analysis.tables import format_sci, render_table
from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.sea import SEABound
from ..bounds.upper_bound import top_p_of_columns, top_p_of_rows
from ..exact.reference import ExactReference
from ..workloads.suites import WorkloadSuite

__all__ = ["BoundQualityRow", "measure_bound_quality", "render_bound_table"]


@dataclass(frozen=True)
class BoundQualityRow:
    """One (suite, n) measurement: the three averaged quantities."""

    n: int
    suite: str
    avg_rounding_error: float
    avg_aabft_bound: float
    avg_sea_bound: float
    num_samples: int

    @property
    def aabft_tightness(self) -> float:
        """How many times the A-ABFT bound exceeds the actual error."""
        return self.avg_aabft_bound / self.avg_rounding_error

    @property
    def sea_tightness(self) -> float:
        """How many times the SEA bound exceeds the actual error."""
        return self.avg_sea_bound / self.avg_rounding_error


def measure_bound_quality(
    suite: WorkloadSuite,
    n: int,
    rng: np.random.Generator,
    block_size: int = 64,
    p: int = 2,
    omega: float = 3.0,
    num_samples: int = 64,
    exhaustive: bool = False,
) -> BoundQualityRow:
    """Measure avg exact rounding error vs. both schemes' bounds at size ``n``.

    Parameters
    ----------
    suite:
        Input-matrix distribution (one of the paper's three classes).
    n:
        Matrix dimension (must be a multiple of ``block_size``).
    rng:
        Randomness for the workload and the position sampling.
    num_samples:
        Column-checksum positions measured (ignored when ``exhaustive``).
    exhaustive:
        Measure every column-checksum comparison (slow; final runs).
    """
    pair = suite.generate(n, rng)
    a_cc, row_layout = encode_partitioned_columns(pair.a, block_size)
    b_rc, col_layout = encode_partitioned_rows(pair.b, block_size)
    c_fc = a_cc @ b_rc
    inner = pair.a.shape[1]

    aabft = AABFTEpsilonProvider(
        scheme=ProbabilisticBound(omega=omega),
        row_tops=top_p_of_rows(a_cc, p),
        col_tops=top_p_of_columns(b_rc, p),
        row_layout=row_layout,
        col_layout=col_layout,
        inner_dim=inner,
    )
    sea = SEAEpsilonProvider(
        scheme=SEABound(),
        a_row_norms=np.linalg.norm(a_cc, axis=1),
        b_col_norms=np.linalg.norm(b_rc, axis=0),
        row_layout=row_layout,
        col_layout=col_layout,
        inner_dim=inner,
    )

    num_blocks = row_layout.num_blocks
    encoded_cols = col_layout.encoded_rows
    if exhaustive:
        positions = [
            (blk, col) for blk in range(num_blocks) for col in range(encoded_cols)
        ]
    else:
        blocks = rng.integers(num_blocks, size=num_samples)
        cols = rng.integers(encoded_cols, size=num_samples)
        positions = list(zip(blocks.tolist(), cols.tolist()))

    reference = ExactReference()
    errors = np.empty(len(positions))
    eps_aabft = np.empty(len(positions))
    eps_sea = np.empty(len(positions))
    for i, (blk, col) in enumerate(positions):
        cs_row = row_layout.checksum_index(blk)
        computed = float(c_fc[cs_row, col])
        errors[i] = reference.rounding_error(a_cc[cs_row, :], b_rc[:, col], computed)
        eps_aabft[i] = aabft.column_epsilon(blk, col)
        eps_sea[i] = sea.column_epsilon(blk, col)

    return BoundQualityRow(
        n=n,
        suite=suite.name,
        avg_rounding_error=float(np.mean(np.abs(errors))),
        avg_aabft_bound=float(np.mean(eps_aabft)),
        avg_sea_bound=float(np.mean(eps_sea)),
        num_samples=len(positions),
    )


def render_bound_table(
    rows: list[BoundQualityRow],
    paper: dict[int, tuple[float, float, float]] | None = None,
    title: str = "Bound quality",
) -> str:
    """Render measured rows (optionally interleaved with paper values)."""
    if paper is None:
        headers = ["n", "avg rnd err", "avg A-ABFT", "avg SEA"]
        body = [
            [
                r.n,
                format_sci(r.avg_rounding_error),
                format_sci(r.avg_aabft_bound),
                format_sci(r.avg_sea_bound),
            ]
            for r in rows
        ]
        return render_table(headers, body, title=title)
    headers = [
        "n",
        "rnd err",
        "(paper)",
        "A-ABFT",
        "(paper)",
        "SEA",
        "(paper)",
    ]
    body = []
    for r in rows:
        ref = paper.get(r.n)
        ref_s = [format_sci(v) for v in ref] if ref else ["n/a"] * 3
        body.append(
            [
                r.n,
                format_sci(r.avg_rounding_error),
                ref_s[0],
                format_sci(r.avg_aabft_bound),
                ref_s[1],
                format_sci(r.avg_sea_bound),
                ref_s[2],
            ]
        )
    return render_table(headers, body, title=title)
