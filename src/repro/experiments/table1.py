"""Experiment driver for Table I — performance of the four schemes.

Produces the paper's table (GFLOPS of fixed-bound ABFT, A-ABFT, SEA-ABFT and
TMR over matrix dimensions 512..8192 in double precision) from the analytic
K20c model, and optionally cross-validates the model's kernel op counts
against the functional simulator at a small size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import render_table
from ..gpusim.device import DeviceSpec, K20C
from ..perfmodel.schemes import scheme_gflops
from ..workloads.suites import PAPER_MATRIX_SIZES
from .paper_data import TABLE1_GFLOPS

__all__ = ["Table1Row", "run_table1", "render_table1", "overhead_summary"]


@dataclass(frozen=True)
class Table1Row:
    """One matrix dimension's modelled throughput per scheme."""

    n: int
    abft: float
    aabft: float
    sea: float
    tmr: float
    unprotected: float

    @property
    def aabft_overhead(self) -> float:
        """A-ABFT overhead vs. the unprotected multiplication (paper: 13.8 %
        at n = 8192)."""
        return 1.0 - self.aabft / self.unprotected


def run_table1(
    sizes: tuple[int, ...] = PAPER_MATRIX_SIZES,
    device: DeviceSpec = K20C,
    block_size: int = 64,
) -> list[Table1Row]:
    """Model every scheme at every size of the paper's sweep."""
    rows = []
    for n in sizes:
        rows.append(
            Table1Row(
                n=n,
                abft=scheme_gflops("abft", n, device, block_size),
                aabft=scheme_gflops("a-abft", n, device, block_size),
                sea=scheme_gflops("sea-abft", n, device, block_size),
                tmr=scheme_gflops("tmr", n, device, block_size),
                unprotected=scheme_gflops("unprotected", n, device, block_size),
            )
        )
    return rows


def render_table1(rows: list[Table1Row], with_paper: bool = True) -> str:
    """Render the modelled table, optionally with the published values."""
    if with_paper:
        headers = [
            "n",
            "ABFT",
            "(paper)",
            "A-ABFT",
            "(paper)",
            "SEA-ABFT",
            "(paper)",
            "TMR",
            "(paper)",
        ]
        body = []
        for r in rows:
            paper = TABLE1_GFLOPS.get(r.n)
            ref = (
                [f"{v:.1f}" for v in paper]
                if paper
                else ["n/a"] * 4
            )
            body.append(
                [
                    r.n,
                    f"{r.abft:.1f}",
                    ref[0],
                    f"{r.aabft:.1f}",
                    ref[1],
                    f"{r.sea:.1f}",
                    ref[2],
                    f"{r.tmr:.1f}",
                    ref[3],
                ]
            )
        title = "Table I — modelled GFLOPS vs. paper (K20c, double precision)"
        return render_table(headers, body, title=title, min_width=8)
    headers = ["n", "ABFT", "A-ABFT", "SEA-ABFT", "TMR", "unprotected"]
    body = [
        [r.n] + [f"{v:.1f}" for v in (r.abft, r.aabft, r.sea, r.tmr, r.unprotected)]
        for r in rows
    ]
    return render_table(headers, body, title="Table I — modelled GFLOPS", min_width=8)


def overhead_summary(rows: list[Table1Row]) -> str:
    """The Section VI-A headline: A-ABFT overhead vs. unprotected at max n."""
    last = max(rows, key=lambda r: r.n)
    return (
        f"A-ABFT at n={last.n}: {last.aabft:.1f} GFLOPS = "
        f"{100.0 * last.aabft / last.unprotected:.1f}% of unprotected "
        f"({last.unprotected:.1f} GFLOPS); overhead "
        f"{100.0 * last.aabft_overhead:.1f}% (paper: 86.2% / 13.8%)"
    )
