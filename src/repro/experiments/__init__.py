"""Experiment drivers: one module per table/figure of the paper's evaluation."""

from .bound_quality import BoundQualityRow, measure_bound_quality, render_bound_table
from .coverage import CoverageRow, measure_coverage, render_coverage
from .figure4 import Figure4Cell, render_figure4, run_figure4
from .paper_data import (
    AABFT_PEAK_FRACTION,
    TABLE1_GFLOPS,
    TABLE2_UNIT,
    TABLE3_HUNDRED,
    TABLE4_DYNAMIC,
    UNPROTECTED_PEAK_GFLOPS,
)
from .runner import FULL, QUICK, ExperimentScale, full_runs_requested, run_all
from .table1 import Table1Row, overhead_summary, render_table1, run_table1

__all__ = [
    "AABFT_PEAK_FRACTION",
    "BoundQualityRow",
    "CoverageRow",
    "ExperimentScale",
    "FULL",
    "Figure4Cell",
    "QUICK",
    "TABLE1_GFLOPS",
    "TABLE2_UNIT",
    "TABLE3_HUNDRED",
    "TABLE4_DYNAMIC",
    "Table1Row",
    "UNPROTECTED_PEAK_GFLOPS",
    "full_runs_requested",
    "measure_bound_quality",
    "measure_coverage",
    "overhead_summary",
    "render_bound_table",
    "render_coverage",
    "render_figure4",
    "render_table1",
    "run_all",
    "run_figure4",
    "run_table1",
]
