"""Error-vector generation for fault injection (paper Section VI-C).

The paper injects faults by XOR-ing data words with an *error vector*.  Three
kinds of vectors are used in the evaluation:

* **single-bit flips** into the sign bit, the exponent field, or a random
  mantissa position;
* **multi-bit flips** (3 and 5 bits) with a neighbourhood structure: two end
  positions are chosen at random and the remaining flipped bits are drawn
  randomly *between* those two, "to create multi-bit flips with certain
  neighbourhood characteristics";
* arbitrary user-supplied masks.

All generators are deterministic given a :class:`numpy.random.Generator`, so
campaigns are reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .constants import BINARY64, FloatFormat

__all__ = [
    "ErrorVector",
    "single_bit_vector",
    "multi_bit_vector",
    "random_vector_for_field",
    "popcount",
]

_FIELDS = ("sign", "exponent", "mantissa")


def popcount(mask: int) -> int:
    """Number of set bits in ``mask``."""
    return int(bin(mask).count("1"))


@dataclass(frozen=True)
class ErrorVector:
    """An XOR bit mask together with a description of how it was drawn.

    Attributes
    ----------
    mask:
        The integer bit mask; set bits are flipped on application.
    field:
        Which field of the float the flips target: ``"sign"``,
        ``"exponent"``, ``"mantissa"`` or ``"mixed"``.
    bit_indices:
        Sorted tuple of flipped bit positions (LSB = 0).
    """

    mask: int
    field: str
    bit_indices: tuple[int, ...]

    @property
    def num_flips(self) -> int:
        """How many bits this vector flips."""
        return len(self.bit_indices)

    def apply(self, value, fmt: FloatFormat = BINARY64):
        """XOR this error vector into ``value`` (scalar or array)."""
        from .bits import xor_bits

        return xor_bits(value, self.mask, fmt)


def _field_bit_range(field: str, fmt: FloatFormat) -> list[int]:
    if field == "sign":
        return [fmt.sign_bit_index]
    if field == "exponent":
        return list(fmt.exponent_bit_range)
    if field == "mantissa":
        return list(fmt.mantissa_bit_range)
    raise ValueError(f"unknown field {field!r}; expected one of {_FIELDS}")


def single_bit_vector(
    field: str,
    rng: np.random.Generator,
    fmt: FloatFormat = BINARY64,
) -> ErrorVector:
    """Draw a single-bit error vector targeting ``field``.

    The position within the exponent or mantissa field is chosen uniformly
    at random, matching the paper's fault model ("the position of the bit
    flip is chosen randomly").
    """
    candidates = _field_bit_range(field, fmt)
    idx = int(rng.choice(candidates))
    return ErrorVector(mask=1 << idx, field=field, bit_indices=(idx,))


def multi_bit_vector(
    field: str,
    num_flips: int,
    rng: np.random.Generator,
    fmt: FloatFormat = BINARY64,
) -> ErrorVector:
    """Draw a multi-bit error vector with the paper's neighbourhood model.

    Two end positions inside ``field`` are chosen at random; the remaining
    ``num_flips - 2`` flips are drawn (without replacement) strictly between
    them.  If the field is too narrow to host ``num_flips`` distinct bits a
    :class:`ValueError` is raised.
    """
    if num_flips < 1:
        raise ValueError("num_flips must be >= 1")
    if num_flips == 1:
        return single_bit_vector(field, rng, fmt)

    candidates = _field_bit_range(field, fmt)
    if num_flips > len(candidates):
        raise ValueError(
            f"cannot place {num_flips} flips in the {field} field "
            f"({len(candidates)} bits wide)"
        )

    lo_pos = candidates[0]
    hi_pos = candidates[-1]
    # Choose two distinct end positions spanning at least num_flips bits.
    while True:
        a, b = rng.integers(lo_pos, hi_pos + 1, size=2)
        low, high = (int(a), int(b)) if a <= b else (int(b), int(a))
        if high - low + 1 >= num_flips:
            break
    inner = list(range(low + 1, high))
    between = rng.choice(inner, size=num_flips - 2, replace=False) if inner else []
    indices = sorted({low, high, *map(int, np.asarray(between, dtype=int))})
    mask = 0
    for idx in indices:
        mask |= 1 << idx
    return ErrorVector(mask=mask, field=field, bit_indices=tuple(indices))


def random_vector_for_field(
    field: str,
    num_flips: int,
    rng: np.random.Generator,
    fmt: FloatFormat = BINARY64,
) -> ErrorVector:
    """Dispatch to the single- or multi-bit generator based on ``num_flips``."""
    if num_flips == 1:
        return single_bit_vector(field, rng, fmt)
    return multi_bit_vector(field, num_flips, rng, fmt)
