"""The reciprocal (base-2 Benford) mantissa distribution (paper Section IV-A).

Benford's law, in its base-2 continuous form, states that mantissas ``x`` of
floating-point numbers arising in computation tend to be distributed with
density::

    r(x) = 1 / (x * ln 2),       x in [1/2, 1)            (Eq. 14)

Hamming showed that floating-point *operations* drive mantissa distributions
towards this law, which is the key assumption behind the Barlow/Bareiss
rounding-error moments the A-ABFT bounds are built on.  This module provides
the density/CDF, exact moments, a sampler, and a goodness-of-fit statistic so
the assumption itself can be tested empirically (see
``tests/fp/test_distribution.py``).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "reciprocal_pdf",
    "reciprocal_cdf",
    "reciprocal_ppf",
    "reciprocal_mean",
    "reciprocal_variance",
    "sample_mantissas",
    "sample_reciprocal_floats",
    "mantissa_histogram_distance",
]

_LN2 = math.log(2.0)


def reciprocal_pdf(x):
    """Density ``r(x) = 1/(x ln 2)`` on ``[1/2, 1)``; zero elsewhere."""
    arr = np.asarray(x, dtype=np.float64)
    out = np.where((arr >= 0.5) & (arr < 1.0), 1.0 / (arr * _LN2), 0.0)
    return out if out.ndim else float(out)


def reciprocal_cdf(x):
    """CDF of the reciprocal distribution: ``log2(2x)`` on ``[1/2, 1)``."""
    arr = np.asarray(x, dtype=np.float64)
    inside = np.clip(arr, 0.5, 1.0)
    out = np.where(arr < 0.5, 0.0, np.where(arr >= 1.0, 1.0, np.log2(2.0 * inside)))
    return out if out.ndim else float(out)


def reciprocal_ppf(q):
    """Quantile function: inverse of :func:`reciprocal_cdf`, ``2**(q-1)``."""
    arr = np.asarray(q, dtype=np.float64)
    if np.any((arr < 0.0) | (arr > 1.0)):
        raise ValueError("quantiles must lie in [0, 1]")
    out = np.exp2(arr - 1.0)
    return out if out.ndim else float(out)


def reciprocal_mean() -> float:
    """Exact mean ``E[X] = 1/(2 ln 2)`` of the reciprocal distribution."""
    return 1.0 / (2.0 * _LN2)


def reciprocal_variance() -> float:
    """Exact variance ``E[X^2] - E[X]^2 = 3/(8 ln 2) - 1/(2 ln 2)^2``."""
    mean = reciprocal_mean()
    second = 3.0 / (8.0 * _LN2)
    return second - mean * mean


def sample_mantissas(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` mantissas from the reciprocal distribution on [1/2, 1)."""
    return reciprocal_ppf(rng.random(n))


def sample_reciprocal_floats(
    n: int,
    rng: np.random.Generator,
    exponent_range: tuple[int, int] = (-8, 8),
    signed: bool = True,
) -> np.ndarray:
    """Draw floats whose mantissas follow the reciprocal law.

    Exponents are uniform over ``exponent_range`` (inclusive low, exclusive
    high) and signs are symmetric when ``signed``.  Useful for generating
    inputs that match the model assumption exactly.
    """
    lo, hi = exponent_range
    if lo >= hi:
        raise ValueError("exponent_range must satisfy lo < hi")
    mant = sample_mantissas(n, rng)
    expo = rng.integers(lo, hi, size=n)
    values = np.ldexp(mant, expo.astype(np.int32))
    if signed:
        values *= rng.choice((-1.0, 1.0), size=n)
    return values


def mantissa_histogram_distance(values: np.ndarray, bins: int = 64) -> float:
    """L1 distance between the empirical mantissa histogram and ``r(x)``.

    Extracts the mantissas of ``values`` (zeros ignored), bins them over
    ``[1/2, 1)``, and returns the total-variation-style distance
    ``0.5 * sum |p_hat_i - p_i|``.  Small values (< ~0.05 for a few thousand
    samples) indicate agreement with the reciprocal law.
    """
    arr = np.asarray(values, dtype=np.float64).ravel()
    arr = arr[(arr != 0.0) & np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("no finite non-zero values to analyse")
    mant, _ = np.frexp(np.abs(arr))
    edges = np.linspace(0.5, 1.0, bins + 1)
    hist, _ = np.histogram(mant, bins=edges)
    p_hat = hist / hist.sum()
    p_model = np.diff(reciprocal_cdf(edges))
    return float(0.5 * np.abs(p_hat - p_model).sum())
