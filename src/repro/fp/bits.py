"""Bit-level manipulation of IEEE-754 floating-point values.

The fault-injection infrastructure of the paper (Section VI-C, Algorithm 3)
injects faults into floating-point operations by XOR-ing the binary
representation of an operand or result with an *error vector*::

    dataVec  = 01111...01011000
  ⊕ errorVec = 01000...00000001
    result   = 00111...01011001

This module provides the float <-> raw-bits conversions and single-bit
queries that the error-vector machinery in :mod:`repro.fp.errorvec` builds
on.  All functions accept scalars and numpy arrays alike.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .constants import BINARY64, FloatFormat, format_for_dtype

__all__ = [
    "float_to_bits",
    "bits_to_float",
    "xor_bits",
    "flip_bit",
    "flip_bits",
    "get_bit",
    "sign_bit",
    "exponent_field",
    "mantissa_field",
    "compose_float",
    "bit_field_of_index",
]


def float_to_bits(value, fmt: FloatFormat | None = None):
    """Reinterpret floating-point ``value`` as its raw unsigned integer bits.

    Parameters
    ----------
    value:
        A Python float, numpy floating scalar, or numpy array.
    fmt:
        Floating-point format; inferred from the dtype when ``value`` is a
        numpy array/scalar, defaults to binary64 for Python floats.

    Returns
    -------
    numpy unsigned integer scalar or array of the same shape.
    """
    arr = np.asarray(value)
    if fmt is None:
        fmt = format_for_dtype(arr.dtype) if arr.dtype.kind == "f" else BINARY64
    arr = arr.astype(fmt.dtype, copy=False)
    out = arr.view(fmt.uint_dtype)
    return out if out.ndim else out[()]


def bits_to_float(bits, fmt: FloatFormat = BINARY64):
    """Reinterpret raw unsigned integer ``bits`` as a floating-point value."""
    arr = np.asarray(bits, dtype=fmt.uint_dtype)
    out = arr.view(fmt.dtype)
    return out if out.ndim else out[()]


def xor_bits(value, error_vector: int, fmt: FloatFormat | None = None):
    """Apply the paper's fault model: ``value XOR error_vector`` bitwise.

    ``error_vector`` is an integer bit mask; set bits are flipped in the
    binary representation of ``value``.  Returns a value of the same
    floating-point dtype (and shape) as the input.
    """
    arr = np.asarray(value)
    if fmt is None:
        fmt = format_for_dtype(arr.dtype) if arr.dtype.kind == "f" else BINARY64
    bits = float_to_bits(arr, fmt)
    mask = fmt.uint_dtype.type(error_vector)
    return bits_to_float(np.bitwise_xor(bits, mask), fmt)


def flip_bit(value, bit_index: int, fmt: FloatFormat | None = None):
    """Flip a single bit (LSB = index 0) of ``value``."""
    return flip_bits(value, (bit_index,), fmt)


def flip_bits(value, bit_indices: Iterable[int], fmt: FloatFormat | None = None):
    """Flip several bits of ``value`` at once.

    Equivalent to XOR-ing with an error vector that has exactly the bits in
    ``bit_indices`` set.
    """
    arr = np.asarray(value)
    if fmt is None:
        fmt = format_for_dtype(arr.dtype) if arr.dtype.kind == "f" else BINARY64
    mask = 0
    for idx in bit_indices:
        if not 0 <= idx < fmt.total_bits:
            raise ValueError(
                f"bit index {idx} out of range for {fmt.name} "
                f"(0..{fmt.total_bits - 1})"
            )
        mask |= 1 << idx
    return xor_bits(arr, mask, fmt)


def get_bit(value, bit_index: int, fmt: FloatFormat | None = None):
    """Return bit ``bit_index`` (LSB = 0) of ``value`` as 0/1."""
    arr = np.asarray(value)
    if fmt is None:
        fmt = format_for_dtype(arr.dtype) if arr.dtype.kind == "f" else BINARY64
    bits = float_to_bits(arr, fmt)
    out = (bits >> fmt.uint_dtype.type(bit_index)) & fmt.uint_dtype.type(1)
    return out if out.ndim else int(out)


def sign_bit(value, fmt: FloatFormat | None = None):
    """Return the sign bit of ``value`` (1 for negative, 0 otherwise)."""
    arr = np.asarray(value)
    if fmt is None:
        fmt = format_for_dtype(arr.dtype) if arr.dtype.kind == "f" else BINARY64
    return get_bit(arr, fmt.sign_bit_index, fmt)


def exponent_field(value, fmt: FloatFormat | None = None):
    """Return the raw (biased) exponent field of ``value`` as an integer."""
    arr = np.asarray(value)
    if fmt is None:
        fmt = format_for_dtype(arr.dtype) if arr.dtype.kind == "f" else BINARY64
    bits = float_to_bits(arr, fmt)
    mask = fmt.uint_dtype.type((1 << fmt.exponent_bits) - 1)
    out = (bits >> fmt.uint_dtype.type(fmt.mantissa_bits)) & mask
    return out if out.ndim else int(out)


def mantissa_field(value, fmt: FloatFormat | None = None):
    """Return the stored mantissa (fraction) field of ``value``."""
    arr = np.asarray(value)
    if fmt is None:
        fmt = format_for_dtype(arr.dtype) if arr.dtype.kind == "f" else BINARY64
    bits = float_to_bits(arr, fmt)
    mask = fmt.uint_dtype.type((1 << fmt.mantissa_bits) - 1)
    out = bits & mask
    return out if out.ndim else int(out)


def compose_float(
    sign: int, biased_exponent: int, mantissa: int, fmt: FloatFormat = BINARY64
):
    """Assemble a float from raw (sign, biased exponent, mantissa) fields."""
    if sign not in (0, 1):
        raise ValueError(f"sign must be 0 or 1, got {sign}")
    if not 0 <= biased_exponent < (1 << fmt.exponent_bits):
        raise ValueError(f"biased exponent {biased_exponent} out of range")
    if not 0 <= mantissa < (1 << fmt.mantissa_bits):
        raise ValueError(f"mantissa {mantissa} out of range")
    bits = (
        (sign << fmt.sign_bit_index)
        | (biased_exponent << fmt.mantissa_bits)
        | mantissa
    )
    return bits_to_float(bits, fmt)


def bit_field_of_index(bit_index: int, fmt: FloatFormat = BINARY64) -> str:
    """Classify a bit index as ``"sign"``, ``"exponent"`` or ``"mantissa"``."""
    if bit_index == fmt.sign_bit_index:
        return "sign"
    if bit_index in fmt.exponent_bit_range:
        return "exponent"
    if bit_index in fmt.mantissa_bit_range:
        return "mantissa"
    raise ValueError(
        f"bit index {bit_index} out of range for {fmt.name} "
        f"(0..{fmt.total_bits - 1})"
    )
