"""Rounding-related helpers for the probabilistic error model.

The Barlow/Bareiss model (paper Section IV) expresses the rounding error of a
floating-point operation as a *mantissa error* scaled by the exponent of the
result:

    eps = beta * 2**E,   E = ceil(log2 |s*|)        (Eqs. 10, 13)

with the mantissa of a normalised result ``x in [1/2, 1)``.  This module
provides that exponent convention plus ulp/spacing utilities used by tests
and by the error-classification logic.
"""

from __future__ import annotations

import math

import numpy as np

from .constants import BINARY64, FloatFormat

__all__ = [
    "result_exponent",
    "two_power_exponent",
    "ulp",
    "mantissa_in_half_one",
    "decompose",
]


def result_exponent(value) -> int | np.ndarray:
    """Exponent ``E = ceil(log2 |value|)`` per Eq. (13) of the paper.

    With this convention a normalised value is written ``value = x * 2**E``
    with mantissa ``|x| in [1/2, 1)``.  We compute ``E`` via
    :func:`math.frexp`, which yields exactly that normalisation; it agrees
    with ``ceil(log2 |v|)`` for every non-power-of-two and exceeds it by one
    for exact powers of two (keeping the mantissa in ``[1/2, 1)`` instead of
    landing on 1.0), which is the numerically safe direction for an error
    *bound*.  Zero maps to the most negative binary64 exponent so that
    ``2**E`` underflows to 0 and contributes nothing to variance sums;
    non-finite values map to an exponent just above the finite range.
    """
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        v = float(arr)
        if v == 0.0 or not math.isfinite(v):
            return -1075 if v == 0.0 else 1025
        return math.frexp(abs(v))[1]
    mant, expo = np.frexp(np.abs(arr))
    expo = expo.astype(np.int64)
    expo[arr == 0.0] = -1075
    expo[~np.isfinite(arr)] = 1025
    return expo


def two_power_exponent(value) -> float | np.ndarray:
    """Return ``2.0**result_exponent(value)`` without overflow surprises."""
    e = result_exponent(value)
    if np.ndim(e) == 0:
        return math.ldexp(1.0, min(int(e), 1024))
    return np.ldexp(1.0, np.minimum(e, 1024).astype(np.int32))


def ulp(value, fmt: FloatFormat = BINARY64):
    """Unit in the last place of ``value`` in format ``fmt``.

    Matches :func:`math.ulp` for binary64 scalars but also supports arrays
    and binary32.
    """
    arr = np.asarray(value, dtype=fmt.dtype)
    spacing = np.spacing(np.abs(arr))
    return spacing if spacing.ndim else float(spacing)


def mantissa_in_half_one(value: float) -> float:
    """Mantissa ``x`` of ``value = x * 2**E`` with ``|x| in [1/2, 1)``.

    Returns 0.0 for zero input.
    """
    if value == 0.0:
        return 0.0
    mant, _ = math.frexp(value)
    return mant


def decompose(value: float) -> tuple[float, int]:
    """Split ``value`` into ``(mantissa, exponent)`` with mantissa in
    ``[1/2, 1)`` (paper's normalisation).  Zero decomposes to ``(0.0, 0)``."""
    if value == 0.0:
        return 0.0, 0
    return math.frexp(value)
