"""Stuck-at fault model — the second classic hardware fault class.

The paper's evaluation injects *transient* bit flips (XOR error vectors).
Permanent defects in datapath latches manifest differently: a bit is forced
to a constant 0 or 1 regardless of the computed value ("stuck-at-0" /
"stuck-at-1").  Unlike a flip, a stuck-at fault only corrupts values whose
affected bit differs from the stuck level — roughly half of random data —
so campaigns over stuck-at faults measure a different (and for ABFT,
easier-to-miss) error population.

This module provides the stuck-at counterpart of
:class:`~repro.fp.errorvec.ErrorVector` with the same ``apply`` interface,
so the whole fault-injection stack (injector, matmul kernel hooks,
campaigns) works unchanged with either model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .constants import BINARY64, FloatFormat
from .errorvec import _field_bit_range

__all__ = ["StuckAtVector", "stuck_at_vector"]


@dataclass(frozen=True)
class StuckAtVector:
    """Bits forced to a constant level on application.

    Attributes
    ----------
    mask:
        Bit positions that are stuck (set bits in the mask).
    level:
        0 (stuck-at-0: affected bits cleared) or 1 (stuck-at-1: set).
    field:
        The float field the stuck bits live in.
    bit_indices:
        Sorted tuple of stuck bit positions (LSB = 0).
    """

    mask: int
    level: int
    field: str
    bit_indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.level not in (0, 1):
            raise ValueError(f"level must be 0 or 1, got {self.level}")

    @property
    def num_flips(self) -> int:
        """Stuck bit count (named for ErrorVector interface compatibility)."""
        return len(self.bit_indices)

    def apply(self, value, fmt: FloatFormat = BINARY64):
        """Force the stuck bits of ``value`` to the stuck level."""
        from .bits import bits_to_float, float_to_bits

        bits = float_to_bits(np.asarray(value), fmt)
        mask = fmt.uint_dtype.type(self.mask)
        if self.level == 1:
            out = np.bitwise_or(bits, mask)
        else:
            out = np.bitwise_and(bits, np.bitwise_not(mask))
        return bits_to_float(out, fmt)

    def corrupts(self, value: float, fmt: FloatFormat = BINARY64) -> bool:
        """Whether applying this fault to ``value`` changes it at all."""
        from .bits import float_to_bits

        return int(float_to_bits(self.apply(value, fmt), fmt)) != int(
            float_to_bits(value, fmt)
        )


def stuck_at_vector(
    field: str,
    level: int,
    rng: np.random.Generator,
    num_bits: int = 1,
    fmt: FloatFormat = BINARY64,
) -> StuckAtVector:
    """Draw a stuck-at fault at random positions within ``field``.

    ``num_bits`` adjacent-free positions are drawn without replacement.
    """
    candidates = _field_bit_range(field, fmt)
    if not 1 <= num_bits <= len(candidates):
        raise ValueError(
            f"num_bits must be in 1..{len(candidates)} for the {field} field"
        )
    chosen = rng.choice(candidates, size=num_bits, replace=False)
    indices = tuple(sorted(int(i) for i in np.atleast_1d(chosen)))
    mask = 0
    for idx in indices:
        mask |= 1 << idx
    return StuckAtVector(mask=mask, level=level, field=field, bit_indices=indices)
