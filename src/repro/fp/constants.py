"""IEEE-754 binary format descriptions used throughout the library.

The probabilistic rounding-error model of the paper (Section IV) is stated in
terms of the number of mantissa digits ``t`` of the floating-point format and
the machine unit rounding error ``eps_M = 2**-t``.  This module centralises
those constants for the two formats GPUs implement (binary32 / binary64) so
that every bound scheme and every bit-manipulation helper agrees on them.

Note on the convention for ``t``: the paper (following Barlow/Bareiss) counts
*mantissa digits* of a normalised base-2 number ``x in [1/2, 1)``, i.e. the
full significand length **including** the bit that IEEE-754 stores implicitly.
For binary64 this gives ``t = 53`` and ``eps_M = 2**-53 ~= 1.11e-16``, which
is the unit roundoff ``u`` of round-to-nearest double arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "BINARY16",
    "BFLOAT16",
    "BINARY32",
    "BINARY64",
    "LOW_PRECISION_NAMES",
    "bfloat16_dtype",
    "format_for_dtype",
    "format_for_name",
    "supported_storage_dtypes",
]


@dataclass(frozen=True)
class FloatFormat:
    """Static description of an IEEE-754 binary interchange format.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"binary64"``.
    total_bits:
        Storage width in bits (32 or 64).
    mantissa_bits:
        Number of *stored* fraction bits (23 or 52).  The effective precision
        ``t`` is one larger because of the implicit leading bit.
    exponent_bits:
        Width of the biased exponent field.
    dtype:
        The matching numpy dtype.
    uint_dtype:
        Unsigned integer dtype of the same width, used for bit manipulation.
    """

    name: str
    total_bits: int
    mantissa_bits: int
    exponent_bits: int
    dtype: np.dtype
    uint_dtype: np.dtype

    @property
    def t(self) -> int:
        """Effective significand precision in bits (incl. the implicit bit)."""
        return self.mantissa_bits + 1

    @property
    def unit_roundoff(self) -> float:
        """Unit roundoff ``u = 2**-t`` for round-to-nearest."""
        return 2.0 ** (-self.t)

    @property
    def machine_epsilon(self) -> float:
        """Distance from 1.0 to the next larger representable number."""
        return 2.0 ** (1 - self.t)

    @property
    def exponent_bias(self) -> int:
        """Bias of the stored exponent field."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def sign_bit_index(self) -> int:
        """Bit index (LSB = 0) of the sign bit."""
        return self.total_bits - 1

    @property
    def exponent_bit_range(self) -> range:
        """Bit indices (LSB = 0) occupied by the exponent field."""
        return range(self.mantissa_bits, self.mantissa_bits + self.exponent_bits)

    @property
    def mantissa_bit_range(self) -> range:
        """Bit indices (LSB = 0) occupied by the stored mantissa field."""
        return range(0, self.mantissa_bits)

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        return float(np.finfo(self.dtype).max)


BINARY16 = FloatFormat(
    name="binary16",
    total_bits=16,
    mantissa_bits=10,
    exponent_bits=5,
    dtype=np.dtype(np.float16),
    uint_dtype=np.dtype(np.uint16),
)

BINARY32 = FloatFormat(
    name="binary32",
    total_bits=32,
    mantissa_bits=23,
    exponent_bits=8,
    dtype=np.dtype(np.float32),
    uint_dtype=np.dtype(np.uint32),
)

BINARY64 = FloatFormat(
    name="binary64",
    total_bits=64,
    mantissa_bits=52,
    exponent_bits=11,
    dtype=np.dtype(np.float64),
    uint_dtype=np.dtype(np.uint64),
)

_BY_DTYPE = {
    np.dtype(np.float16): BINARY16,
    np.dtype(np.float32): BINARY32,
    np.dtype(np.float64): BINARY64,
}


def bfloat16_dtype() -> np.dtype | None:
    """The bfloat16 numpy dtype, or ``None`` when unavailable.

    numpy has no native bfloat16; the ``ml_dtypes`` extension registers
    one.  Everything bfloat16-specific in the library gates on this
    returning a dtype, with explicit errors (never a silent upcast) when
    it does not.
    """
    try:
        import ml_dtypes  # noqa: PLC0415 — optional dependency probe
    except ImportError:
        return None
    return np.dtype(ml_dtypes.bfloat16)


def _make_bfloat16_format() -> FloatFormat | None:
    dtype = bfloat16_dtype()
    if dtype is None:
        return None
    return FloatFormat(
        name="bfloat16",
        total_bits=16,
        mantissa_bits=7,
        exponent_bits=8,
        dtype=dtype,
        uint_dtype=np.dtype(np.uint16),
    )


#: ``None`` when the optional ``ml_dtypes`` package is absent — callers
#: must treat bfloat16 as an unsupported storage dtype then.
BFLOAT16 = _make_bfloat16_format()

if BFLOAT16 is not None:
    _BY_DTYPE[BFLOAT16.dtype] = BFLOAT16

#: Storage dtypes narrower than any compute dtype the GEMM stage uses;
#: their results carry extra quantisation noise the adaptive bound models.
LOW_PRECISION_NAMES = ("float16", "bfloat16")

_BY_NAME = {
    "float16": BINARY16,
    "binary16": BINARY16,
    "float32": BINARY32,
    "binary32": BINARY32,
    "float64": BINARY64,
    "binary64": BINARY64,
}
if BFLOAT16 is not None:
    _BY_NAME["bfloat16"] = BFLOAT16


def supported_storage_dtypes() -> tuple[str, ...]:
    """Names of every operand storage dtype this build supports."""
    names = ["float16", "float32", "float64"]
    if BFLOAT16 is not None:
        names.insert(1, "bfloat16")
    return tuple(names)


def format_for_dtype(dtype: np.dtype | type) -> FloatFormat:
    """Return the :class:`FloatFormat` describing ``dtype``.

    Raises
    ------
    KeyError
        If ``dtype`` is not a registered binary format (float16, float32,
        float64, plus bfloat16 when ``ml_dtypes`` is installed).
    """
    key = np.dtype(dtype)
    try:
        return _BY_DTYPE[key]
    except KeyError:
        raise KeyError(
            f"no IEEE-754 format registered for dtype {key!r}; "
            f"supported: {', '.join(supported_storage_dtypes())}"
        ) from None


def format_for_name(name: str) -> FloatFormat:
    """Return the :class:`FloatFormat` for a dtype *name* (``"float16"``…).

    Raises
    ------
    KeyError
        For unknown names, and for ``"bfloat16"`` when the optional
        ``ml_dtypes`` package is not installed — the message says which.
    """
    fmt = _BY_NAME.get(name)
    if fmt is None:
        if name == "bfloat16":
            raise KeyError(
                "bfloat16 storage requires the optional 'ml_dtypes' "
                "package (numpy has no native bfloat16 dtype); install it "
                "or use float16"
            )
        raise KeyError(
            f"unknown float format name {name!r}; "
            f"supported: {', '.join(supported_storage_dtypes())}"
        )
    return fmt
