"""IEEE-754 binary format descriptions used throughout the library.

The probabilistic rounding-error model of the paper (Section IV) is stated in
terms of the number of mantissa digits ``t`` of the floating-point format and
the machine unit rounding error ``eps_M = 2**-t``.  This module centralises
those constants for the two formats GPUs implement (binary32 / binary64) so
that every bound scheme and every bit-manipulation helper agrees on them.

Note on the convention for ``t``: the paper (following Barlow/Bareiss) counts
*mantissa digits* of a normalised base-2 number ``x in [1/2, 1)``, i.e. the
full significand length **including** the bit that IEEE-754 stores implicitly.
For binary64 this gives ``t = 53`` and ``eps_M = 2**-53 ~= 1.11e-16``, which
is the unit roundoff ``u`` of round-to-nearest double arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FloatFormat", "BINARY32", "BINARY64", "format_for_dtype"]


@dataclass(frozen=True)
class FloatFormat:
    """Static description of an IEEE-754 binary interchange format.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"binary64"``.
    total_bits:
        Storage width in bits (32 or 64).
    mantissa_bits:
        Number of *stored* fraction bits (23 or 52).  The effective precision
        ``t`` is one larger because of the implicit leading bit.
    exponent_bits:
        Width of the biased exponent field.
    dtype:
        The matching numpy dtype.
    uint_dtype:
        Unsigned integer dtype of the same width, used for bit manipulation.
    """

    name: str
    total_bits: int
    mantissa_bits: int
    exponent_bits: int
    dtype: np.dtype
    uint_dtype: np.dtype

    @property
    def t(self) -> int:
        """Effective significand precision in bits (incl. the implicit bit)."""
        return self.mantissa_bits + 1

    @property
    def unit_roundoff(self) -> float:
        """Unit roundoff ``u = 2**-t`` for round-to-nearest."""
        return 2.0 ** (-self.t)

    @property
    def machine_epsilon(self) -> float:
        """Distance from 1.0 to the next larger representable number."""
        return 2.0 ** (1 - self.t)

    @property
    def exponent_bias(self) -> int:
        """Bias of the stored exponent field."""
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def sign_bit_index(self) -> int:
        """Bit index (LSB = 0) of the sign bit."""
        return self.total_bits - 1

    @property
    def exponent_bit_range(self) -> range:
        """Bit indices (LSB = 0) occupied by the exponent field."""
        return range(self.mantissa_bits, self.mantissa_bits + self.exponent_bits)

    @property
    def mantissa_bit_range(self) -> range:
        """Bit indices (LSB = 0) occupied by the stored mantissa field."""
        return range(0, self.mantissa_bits)

    @property
    def max_finite(self) -> float:
        """Largest finite representable magnitude."""
        return float(np.finfo(self.dtype).max)


BINARY32 = FloatFormat(
    name="binary32",
    total_bits=32,
    mantissa_bits=23,
    exponent_bits=8,
    dtype=np.dtype(np.float32),
    uint_dtype=np.dtype(np.uint32),
)

BINARY64 = FloatFormat(
    name="binary64",
    total_bits=64,
    mantissa_bits=52,
    exponent_bits=11,
    dtype=np.dtype(np.float64),
    uint_dtype=np.dtype(np.uint64),
)

_BY_DTYPE = {
    np.dtype(np.float32): BINARY32,
    np.dtype(np.float64): BINARY64,
}


def format_for_dtype(dtype: np.dtype | type) -> FloatFormat:
    """Return the :class:`FloatFormat` describing ``dtype``.

    Raises
    ------
    KeyError
        If ``dtype`` is not binary32 or binary64.
    """
    key = np.dtype(dtype)
    try:
        return _BY_DTYPE[key]
    except KeyError:
        raise KeyError(
            f"no IEEE-754 format registered for dtype {key!r}; "
            "supported: float32, float64"
        ) from None
