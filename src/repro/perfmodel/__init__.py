"""Analytic K20c performance model for the Table I reproduction."""

from .intensity import arithmetic_intensity, gemm_bytes, gemm_flops
from .k20c import LAUNCH_OVERHEAD_S, matmul_efficiency
from .model import KernelCost, SchemeTiming, roofline_seconds
from .schemes import (
    SCHEME_NAMES,
    aabft_timing,
    abft_fixed_timing,
    scheme_gflops,
    scheme_timing,
    sea_abft_timing,
    tmr_timing,
    unprotected_timing,
)

__all__ = [
    "KernelCost",
    "LAUNCH_OVERHEAD_S",
    "SCHEME_NAMES",
    "SchemeTiming",
    "aabft_timing",
    "abft_fixed_timing",
    "arithmetic_intensity",
    "gemm_bytes",
    "gemm_flops",
    "matmul_efficiency",
    "roofline_seconds",
    "scheme_gflops",
    "scheme_timing",
    "sea_abft_timing",
    "tmr_timing",
    "unprotected_timing",
]
