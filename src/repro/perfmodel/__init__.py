"""Analytic K20c performance model for the Table I reproduction."""

from .k20c import LAUNCH_OVERHEAD_S, matmul_efficiency
from .model import KernelCost, SchemeTiming, roofline_seconds
from .schemes import (
    SCHEME_NAMES,
    aabft_timing,
    abft_fixed_timing,
    scheme_gflops,
    scheme_timing,
    sea_abft_timing,
    tmr_timing,
    unprotected_timing,
)

__all__ = [
    "KernelCost",
    "LAUNCH_OVERHEAD_S",
    "SCHEME_NAMES",
    "SchemeTiming",
    "aabft_timing",
    "abft_fixed_timing",
    "matmul_efficiency",
    "roofline_seconds",
    "scheme_gflops",
    "scheme_timing",
    "sea_abft_timing",
    "tmr_timing",
    "unprotected_timing",
]
