"""Per-scheme cost assembly for the Table I performance comparison.

Each function builds the :class:`~repro.perfmodel.model.SchemeTiming` of one
protection scheme at matrix dimension ``n`` from the kernels the scheme
launches (paper Section V / VI-A):

* ``abft_fixed``  — encode + matmul(encoded) + check; bounds are free.
* ``aabft``       — adds the top-p search passes in the encoding kernel and
  the bound determination in the checking kernel; the global top-p
  reduction is overlapped with the matmul (paper Section V-A) and therefore
  hidden.
* ``sea_abft``    — encode + matmul(encoded) + per-block norm computation +
  check.  The norm work is O(n^3/BS) because the norm groups are derived
  per result block (see :mod:`repro.perfmodel.k20c`).
* ``tmr``         — three plain matmuls + an element-wise compare.
* ``unprotected`` — a single plain matmul.
"""

from __future__ import annotations

from ..gpusim.device import DeviceSpec, K20C
from . import k20c
from .model import KernelCost, SchemeTiming

__all__ = [
    "unprotected_timing",
    "abft_fixed_timing",
    "aabft_timing",
    "sea_abft_timing",
    "tmr_timing",
    "scheme_timing",
    "scheme_gflops",
    "SCHEME_NAMES",
]

SCHEME_NAMES = ("abft", "a-abft", "sea-abft", "tmr", "unprotected")

_D = 8  # bytes per double


def _matmul_cost(m: int, n: int, q: int, tile: int, dim: int) -> KernelCost:
    """Blocked matmul of an ``m x n`` by ``n x q`` problem, tiles ``tile``."""
    blocks = (m // tile if m % tile == 0 else m // tile + 1) * (
        q // tile if q % tile == 0 else q // tile + 1
    )
    return KernelCost(
        name="matmul",
        flops=2.0 * m * n * q,
        bytes=blocks * 2.0 * tile * n * _D + m * q * _D,
        efficiency=k20c.matmul_efficiency(dim),
    )


def _encode_cost(n: int, with_top_p: bool, p: int) -> KernelCost:
    """Checksum encoding of both operands (A and B together)."""
    flops = 2.0 * n * n  # one add per element per operand
    nbytes = 4.0 * n * n * _D  # read + write both operands
    cost = KernelCost(
        name="encode", flops=flops, bytes=nbytes, efficiency=k20c.EFF_ENCODE, launches=2
    )
    if not with_top_p:
        return cost
    return cost  # top-p handled as its own cost item for clarity


def _top_p_cost(n: int, p: int) -> KernelCost:
    """The p max-search sweeps fused into the encoding kernel (both operands)."""
    return KernelCost(
        name="top_p_search",
        flops=2.0 * p * n * n,
        bytes=2.0 * n * n * _D,
        efficiency=k20c.EFF_TOPP,
        launches=0,  # fused into the encode launches
    )


def _reduce_cost(n: int, block_size: int, p: int) -> KernelCost:
    """Global top-p reduction — overlapped with the matmul."""
    vectors = 2.0 * (n + n / block_size)
    return KernelCost(
        name="top_p_reduce",
        flops=vectors * (n / block_size) * p,
        bytes=vectors * (n / block_size) * p * 16.0,
        efficiency=k20c.EFF_TOPP,
        launches=2,
        overlapped=True,
    )


def _check_cost(n: int, block_size: int, with_bounds: bool) -> KernelCost:
    """Checking kernel over the encoded result."""
    enc = n + n / block_size
    flops = 4.0 * enc * enc  # reference row+column sums
    if with_bounds:
        # Three-case combination checks + epsilon evaluation per comparison.
        flops += (enc * enc / block_size) * 32.0
    return KernelCost(
        name="check",
        flops=flops,
        bytes=enc * enc * _D,
        efficiency=k20c.EFF_CHECK,
    )


def _sea_norm_cost(n: int, block_size: int) -> KernelCost:
    """SEA's per-block norm-group computation (no global reuse).

    Every ``(BS+1)^2`` result block derives the Euclidean norms of its
    ``BS + 1`` A-rows and ``BS + 1`` B-columns over the full inner dimension:
    ``4 n (BS+1)`` flops per block, ``(n/BS)^2`` blocks — O(n^3/BS) work at
    poor utilisation, the dominant SEA overhead.
    """
    blocks = (n / block_size) ** 2
    flops = blocks * 4.0 * n * (block_size + 1)
    # The operand panels are re-read per block but stay L2-resident across
    # the per-block norm group; one byte of traffic per flop models that.
    return KernelCost(
        name="sea_norms",
        flops=flops,
        bytes=flops,
        efficiency=k20c.EFF_NORMS,
    )


def _compare_cost(n: int) -> KernelCost:
    """TMR's element-wise three-way compare."""
    return KernelCost(
        name="tmr_compare",
        flops=3.0 * n * n,
        bytes=4.0 * n * n * _D,
        efficiency=k20c.EFF_COMPARE,
    )


def unprotected_timing(n: int, block_size: int = 64) -> SchemeTiming:
    """A single plain (unencoded) matmul."""
    return SchemeTiming(
        scheme="unprotected",
        n=n,
        costs=[_matmul_cost(n, n, n, block_size, n)],
        launch_overhead_s=k20c.LAUNCH_OVERHEAD_S,
    )


def abft_fixed_timing(n: int, block_size: int = 64) -> SchemeTiming:
    """Fixed-bound ABFT: encode + encoded matmul + check."""
    enc = n + n // block_size
    return SchemeTiming(
        scheme="abft",
        n=n,
        costs=[
            _encode_cost(n, with_top_p=False, p=0),
            _matmul_cost(enc, n, enc, block_size + 1, n),
            _check_cost(n, block_size, with_bounds=False),
        ],
        launch_overhead_s=k20c.LAUNCH_OVERHEAD_S,
    )


def aabft_timing(n: int, block_size: int = 64, p: int = 2) -> SchemeTiming:
    """A-ABFT: ABFT plus fused top-p search, overlapped reduction, bounds."""
    enc = n + n // block_size
    return SchemeTiming(
        scheme="a-abft",
        n=n,
        costs=[
            _encode_cost(n, with_top_p=True, p=p),
            _top_p_cost(n, p),
            _reduce_cost(n, block_size, p),
            _matmul_cost(enc, n, enc, block_size + 1, n),
            _check_cost(n, block_size, with_bounds=True),
        ],
        launch_overhead_s=k20c.LAUNCH_OVERHEAD_S,
    )


def sea_abft_timing(n: int, block_size: int = 64) -> SchemeTiming:
    """SEA-ABFT: ABFT plus the per-block norm computations."""
    enc = n + n // block_size
    return SchemeTiming(
        scheme="sea-abft",
        n=n,
        costs=[
            _encode_cost(n, with_top_p=False, p=0),
            _matmul_cost(enc, n, enc, block_size + 1, n),
            _sea_norm_cost(n, block_size),
            _check_cost(n, block_size, with_bounds=False),
        ],
        launch_overhead_s=k20c.LAUNCH_OVERHEAD_S,
    )


def tmr_timing(n: int, block_size: int = 64) -> SchemeTiming:
    """TMR: three plain matmuls plus the result comparison."""
    mm = _matmul_cost(n, n, n, block_size, n)
    return SchemeTiming(
        scheme="tmr",
        n=n,
        costs=[
            KernelCost(
                name="matmul_x3",
                flops=3 * mm.flops,
                bytes=3 * mm.bytes,
                efficiency=mm.efficiency,
                launches=3,
            ),
            _compare_cost(n),
        ],
        launch_overhead_s=k20c.LAUNCH_OVERHEAD_S,
    )


_BUILDERS = {
    "abft": abft_fixed_timing,
    "a-abft": aabft_timing,
    "sea-abft": sea_abft_timing,
    "tmr": tmr_timing,
    "unprotected": unprotected_timing,
}


def scheme_timing(scheme: str, n: int, block_size: int = 64) -> SchemeTiming:
    """Timing of ``scheme`` at dimension ``n`` (see :data:`SCHEME_NAMES`)."""
    try:
        builder = _BUILDERS[scheme]
    except KeyError:
        raise KeyError(
            f"unknown scheme {scheme!r}; available: {sorted(_BUILDERS)}"
        ) from None
    return builder(n, block_size)


def scheme_gflops(
    scheme: str, n: int, device: DeviceSpec = K20C, block_size: int = 64
) -> float:
    """Modelled useful-work GFLOPS of ``scheme`` at dimension ``n``."""
    return scheme_timing(scheme, n, block_size).gflops(device)
