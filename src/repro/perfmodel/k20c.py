"""Calibration of the analytic model against the paper's K20c numbers.

One-time calibration choices (all documented in EXPERIMENTS.md).  The
constants below were fitted by least squares against the paper's published
Table I (36 scheme/size cells) plus the Section VI-A unprotected peak of
1048.4 GFLOPS; the fitted model reproduces every cell within ~11 % (mean
~5 %) and preserves every ordering and crossover.  Notes:

* **Matmul efficiency curve** ``eff_mm(n) = EFF_INF * n / (n + N_HALF)`` —
  a saturating occupancy/tail model fitted to the paper's fixed-bound ABFT
  column of Table I (the scheme closest to a bare matmul).  It reproduces
  the published DGEMM ramp within ~10 % across 512..8192 and saturates near
  the paper's 1048-GFLOPS unprotected peak.
* **Auxiliary-kernel efficiencies** — encode/check are streaming kernels
  with modest arithmetic intensity, the top-p passes and the SEA norm
  computations utilise few threads (paper Section VI-A explicitly blames
  SEA's "suboptimal utilisation").  The SEA norm work model follows the
  paper's implementation, which derives the norm groups per result block
  (no global norm reuse), making its overhead O(n^3 / BS) — this is what
  produces SEA's persistent ~25 % gap at large n in Table I.
"""

from __future__ import annotations

__all__ = [
    "EFF_INF",
    "N_HALF",
    "EFF_ENCODE",
    "EFF_TOPP",
    "EFF_CHECK",
    "EFF_NORMS",
    "EFF_COMPARE",
    "LAUNCH_OVERHEAD_S",
    "matmul_efficiency",
]

#: Asymptotic fraction of peak the DGEMM kernel sustains.
EFF_INF = 0.951
#: Matrix size at which the DGEMM kernel reaches half of EFF_INF.
N_HALF = 372.0
#: Streaming checksum-encoding kernel.
EFF_ENCODE = 0.002
#: The additional per-row/column top-p search passes (poor utilisation).
EFF_TOPP = 0.0042
#: Checking kernel (reference sums + comparisons).
EFF_CHECK = 0.74
#: SEA per-block norm computation ("small fraction of available threads").
EFF_NORMS = 0.075
#: TMR element-wise compare kernel (bandwidth bound either way).
EFF_COMPARE = 0.10
#: Fixed per-kernel-launch overhead (driver + dispatch) on Kepler.
LAUNCH_OVERHEAD_S = 5e-6


def matmul_efficiency(n: int) -> float:
    """Sustained DGEMM efficiency at matrix dimension ``n`` (calibrated)."""
    if n < 1:
        raise ValueError(f"matrix dimension must be >= 1, got {n}")
    return EFF_INF * n / (n + N_HALF)
