"""Analytic cost model primitives for the Table I performance experiment.

The paper's Table I reports end-to-end GFLOPS of four protection schemes on
a K20c.  Since this reproduction has no GPU, the timings are *modelled*: a
scheme's execution time is the sum (max across overlapped streams) of its
kernels' roofline times,

    t_kernel = max(flops / (eff * peak), bytes / bandwidth) + launches * t_launch

with per-kernel sustained-efficiency factors calibrated once against the
published table (see :mod:`repro.perfmodel.k20c`).  The kernel op/byte
counts are the same formulas the functional kernels accumulate in their
:class:`~repro.gpusim.kernel.KernelStats`, which the tests cross-validate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpusim.device import DeviceSpec

__all__ = ["KernelCost", "SchemeTiming", "roofline_seconds"]


@dataclass(frozen=True)
class KernelCost:
    """Work of one (possibly repeated) kernel launch group."""

    name: str
    flops: float
    bytes: float
    efficiency: float
    launches: int = 1
    #: Kernels in the "overlap" stream run concurrently with the compute
    #: stream (the paper overlaps the top-p reduction with the matmul).
    overlapped: bool = False

    def seconds(self, device: DeviceSpec, launch_overhead_s: float) -> float:
        """Roofline execution time of this cost item on ``device``."""
        return roofline_seconds(
            self.flops,
            self.bytes,
            self.efficiency,
            device,
            self.launches,
            launch_overhead_s,
        )


def roofline_seconds(
    flops: float,
    nbytes: float,
    efficiency: float,
    device: DeviceSpec,
    launches: int = 1,
    launch_overhead_s: float = 5e-6,
    precision: str = "double",
) -> float:
    """Max of compute and memory time plus launch overhead."""
    if flops < 0 or nbytes < 0:
        raise ValueError("flops and bytes must be non-negative")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError(f"efficiency must be in (0, 1], got {efficiency}")
    peak = device.peak_gflops(precision) * 1e9 * efficiency
    bw = device.mem_bandwidth_gbs * 1e9
    compute = flops / peak
    memory = nbytes / bw
    return max(compute, memory) + launches * launch_overhead_s


@dataclass
class SchemeTiming:
    """Modelled timing of one protected multiplication."""

    scheme: str
    n: int
    costs: list[KernelCost] = field(default_factory=list)
    launch_overhead_s: float = 5e-6

    def seconds(self, device: DeviceSpec) -> float:
        """Wall time with overlapped kernels hidden behind the compute stream."""
        compute = sum(
            c.seconds(device, self.launch_overhead_s)
            for c in self.costs
            if not c.overlapped
        )
        overlap = sum(
            c.seconds(device, self.launch_overhead_s)
            for c in self.costs
            if c.overlapped
        )
        return max(compute, overlap)

    def gflops(self, device: DeviceSpec) -> float:
        """Useful-work throughput ``2 n^3 / t`` — the paper's metric."""
        t = self.seconds(device)
        return 2.0 * self.n**3 / t / 1e9 if t > 0 else 0.0

    def breakdown(self, device: DeviceSpec) -> dict[str, float]:
        """Per-kernel-group seconds (for overhead analysis)."""
        return {
            c.name: c.seconds(device, self.launch_overhead_s) for c in self.costs
        }
