"""Arithmetic intensity (op/byte ratio) of GEMM workloads.

Kosaian & Rashmi's arithmetic-intensity-guided fault tolerance picks each
layer's protection scheme from its op/byte ratio: compute-bound GEMMs
(high intensity) hide a full checksum pass behind the arithmetic they
already do, while memory-bound GEMMs (low intensity) pay for every extra
byte the encoding touches.  This module exposes that ratio as a public
helper the :class:`~repro.models.planner.ProtectionPlanner` (and anyone
reasoning about roofline position) consumes.

The convention is ``C (m x n) = A (m x k) @ B (k x n)``: ``2*m*n*k``
flops (multiply + add per inner-product step) over one read of each
operand and one write of the result, ``(m*k + k*n + m*n) * itemsize``
bytes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gemm_flops", "gemm_bytes", "arithmetic_intensity"]


def _validate_dims(m: int, n: int, k: int) -> None:
    for name, value in (("m", m), ("n", n), ("k", k)):
        if int(value) != value or value < 1:
            raise ValueError(f"{name} must be a positive integer, got {value}")


def gemm_flops(m: int, n: int, k: int) -> float:
    """Floating-point operations of one ``(m x k) @ (k x n)`` GEMM."""
    _validate_dims(m, n, k)
    return 2.0 * m * n * k


def gemm_bytes(m: int, n: int, k: int, dtype=np.float32) -> float:
    """Minimum bytes moved: read ``A`` and ``B`` once, write ``C`` once.

    ``dtype`` is the *storage* dtype of operands and result — a float16
    model layer moves half the bytes of a float32 one at identical flops,
    doubling its arithmetic intensity.
    """
    _validate_dims(m, n, k)
    itemsize = np.dtype(dtype).itemsize
    return float(m * k + k * n + m * n) * itemsize


def arithmetic_intensity(m: int, n: int, k: int, dtype=np.float32) -> float:
    """The GEMM's op/byte ratio ``2mnk / ((mk + kn + mn) * itemsize)``.

    Square GEMMs grow linearly in intensity with their edge (``~ s / (1.5
    * itemsize)`` for edge ``s``); skinny GEMMs (one dimension small) stay
    memory-bound no matter how large the other dimensions get — which is
    exactly why per-layer scheme selection beats one global choice.
    """
    return gemm_flops(m, n, k) / gemm_bytes(m, n, k, dtype)
