"""Command-line interface: ``aabft <command>``.

Commands
--------
``aabft table1``          — modelled Table I (performance comparison)
``aabft bounds``          — Tables II-IV (bound quality vs. exact errors)
``aabft detect``          — Figure 4 (fault-injection detection rates)
``aabft coverage``        — confidence-interval coverage validation
``aabft all``             — everything, at quick or full scale
``aabft demo``            — a protected multiplication with a live fault
``aabft ci-gate``         — detection-coverage + throughput + chaos-SLO gates
``aabft serve``           — micro-batching serving worker (JSONL requests)
``aabft cluster serve``   — sharded multi-process serving cluster (JSONL)
``aabft loadgen``         — closed-loop load generator + invariant checks
                            (``--cluster`` drives a worker-process cluster)
``aabft chaos run``       — chaos recipes against a live server, SLO verdict
``aabft bench``           — serve/engine throughput benchmarks
``aabft model plan``      — per-layer protection plan for a model workload
``aabft model run``       — execute a model through the protected engine
``aabft model bench``     — mixed-vs-full-vs-unchecked model benchmark
``aabft backends``        — registered compute backends + availability
``aabft autotune``        — time backend/tile candidates, cache the winners

The ``--full`` flag switches to the paper's complete 512..8192 sweeps
(slow: exact arithmetic and functional simulation on a CPU).

The global ``--telemetry-out PATH`` flag (before the subcommand) streams
telemetry events — spans, campaign counters, engine metrics — to a
JSON-lines file, ending with a full metrics snapshot; this is the build
artifact the ``fault-coverage`` CI job uploads.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="aabft",
        description=(
            "A-ABFT (DSN'14) reproduction: autonomous ABFT matrix "
            "multiplication experiments"
        ),
    )
    parser.add_argument("--seed", type=int, default=2014, help="global RNG seed")
    parser.add_argument(
        "--telemetry-out",
        metavar="PATH",
        default=None,
        help="stream telemetry (spans, metrics snapshot) to a JSON-lines file",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="modelled performance table (Table I)")

    bounds = sub.add_parser("bounds", help="bound-quality tables (Tables II-IV)")
    bounds.add_argument("--full", action="store_true", help="paper-size sweep")
    bounds.add_argument("--samples", type=int, default=64)

    detect = sub.add_parser("detect", help="detection experiment (Figure 4)")
    detect.add_argument("--full", action="store_true", help="paper-size sweep")
    detect.add_argument("--injections", type=int, default=120, help="per cell")
    detect.add_argument(
        "--flips", type=int, default=1, help="bits flipped per fault (1/3/5)"
    )
    detect.add_argument(
        "--field",
        choices=("mantissa", "exponent", "sign"),
        default="mantissa",
    )

    cov = sub.add_parser(
        "coverage", help="confidence-interval coverage validation"
    )
    cov.add_argument("--full", action="store_true", help="paper-size sweep")
    cov.add_argument("--samples", type=int, default=64)

    allcmd = sub.add_parser("all", help="regenerate every table and figure")
    allcmd.add_argument("--full", action="store_true", help="paper-size sweeps")

    demo = sub.add_parser("demo", help="protected multiplication with a live fault")
    demo.add_argument("--n", type=int, default=256)

    gate = sub.add_parser(
        "ci-gate",
        help="CI gates: fault-detection coverage + warm-engine throughput",
    )
    gate.add_argument(
        "--quick", action="store_true", help="reduced campaign/benchmark scale"
    )
    gate.add_argument(
        "--coverage-floor",
        type=float,
        default=None,
        help="minimum A-ABFT detection rate over critical errors (default 0.85)",
    )
    gate.add_argument(
        "--throughput-tolerance",
        type=float,
        default=None,
        help="allowed warm per-call slowdown vs the baseline (default 0.30)",
    )
    gate.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="throughput baseline JSON (default: BENCH_engine.json)",
    )
    gate.add_argument(
        "--backends",
        metavar="NAMES",
        default=None,
        help="comma-separated backends the coverage gate must hold on "
        "(default: numpy plus every available deterministic backend)",
    )
    gate.add_argument(
        "--chaos-recipes",
        metavar="PATH",
        default=None,
        help="chaos recipe suite JSON for the chaos-SLO gate "
        "(default: the built-in quick suite)",
    )
    gate.add_argument(
        "--chaos-report",
        metavar="DIR",
        default=None,
        help="also write the dated chaos VALIDATION_REPORT pair here",
    )
    gate.add_argument(
        "--skip-chaos",
        action="store_true",
        help="skip the chaos-SLO gate (coverage/throughput gates only)",
    )

    serve = sub.add_parser(
        "serve",
        help="micro-batching serving worker driven by JSONL request specs",
    )
    serve.add_argument(
        "--requests",
        metavar="PATH",
        default="-",
        help="JSONL request-spec file ('-' = stdin); each line may set "
        "m, n, q, seed, count, deadline_s, id",
    )
    serve.add_argument("--m", type=int, default=256, help="default rows of A")
    serve.add_argument("--n", type=int, default=256, help="default inner dim")
    serve.add_argument("--q", type=int, default=16, help="default cols of B")
    serve.add_argument(
        "--deadline-s", type=float, default=None, help="default per-request deadline"
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, help="micro-batch size limit"
    )
    serve.add_argument(
        "--window-s", type=float, default=0.002, help="batch coalescing window"
    )
    serve.add_argument(
        "--queue-depth", type=int, default=256, help="admission-queue bound"
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="closed-loop load generator; exits 1 on accounting violations",
    )
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument("--concurrency", type=int, default=16)
    loadgen.add_argument("--m", type=int, default=128, help="rows of A")
    loadgen.add_argument("--n", type=int, default=128, help="inner dimension")
    loadgen.add_argument("--q", type=int, default=16, help="cols of each B")
    loadgen.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="per-request deadline (drives the degradation ladder)",
    )
    loadgen.add_argument(
        "--fresh-a",
        action="store_true",
        help="fresh A per request instead of one shared weight matrix",
    )
    loadgen.add_argument(
        "--verify-results",
        action="store_true",
        help="compare every served result against the reference product "
        "(a silent wrong answer becomes an accounting violation)",
    )
    loadgen.add_argument(
        "--cluster",
        action="store_true",
        help="drive a sharded multi-process cluster frontend instead of an "
        "in-process server (same accounting invariants, including the "
        "re-queue tally)",
    )
    loadgen.add_argument(
        "--workers",
        type=int,
        default=2,
        help="cluster worker processes (with --cluster; default 2)",
    )

    cluster = sub.add_parser(
        "cluster",
        help="sharded multi-process serving cluster",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    cserve = cluster_sub.add_parser(
        "serve",
        help="cluster serving front-end driven by JSONL request specs",
    )
    cserve.add_argument(
        "--requests",
        metavar="PATH",
        default="-",
        help="JSONL request-spec file ('-' = stdin); each line may set "
        "m, n, q, seed, count, deadline_s, id",
    )
    cserve.add_argument(
        "--workers", type=int, default=2, help="worker processes (shards)"
    )
    cserve.add_argument("--m", type=int, default=256, help="default rows of A")
    cserve.add_argument("--n", type=int, default=256, help="default inner dim")
    cserve.add_argument("--q", type=int, default=16, help="default cols of B")
    cserve.add_argument(
        "--deadline-s", type=float, default=None, help="default per-request deadline"
    )
    cserve.add_argument(
        "--max-batch", type=int, default=32, help="per-worker micro-batch limit"
    )
    cserve.add_argument(
        "--window-s", type=float, default=0.002, help="batch coalescing window"
    )
    cserve.add_argument(
        "--queue-depth", type=int, default=256, help="per-worker queue bound"
    )
    cserve.add_argument(
        "--seed", type=int, default=0, help="default RNG seed for operands"
    )
    cserve.add_argument(
        "--autotune-cache",
        metavar="PATH",
        default=None,
        help="shared on-disk autotune cache every worker consults",
    )

    chaos = sub.add_parser(
        "chaos",
        help="chaos harness: fault recipes against a live server under load",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run",
        help="run a recipe suite and assert the SLOs; exits 1 on any breach",
    )
    chaos_run.add_argument(
        "--recipes",
        metavar="PATH",
        default=None,
        help="recipe suite JSON (default: the built-in quick suite, one "
        "recipe per fault kind)",
    )
    chaos_run.add_argument(
        "--report",
        metavar="DIR",
        default=None,
        help="write the dated VALIDATION_REPORT_<date>.{json,md} pair here",
    )
    chaos_run.add_argument(
        "--p99-ms",
        type=float,
        default=None,
        help="p99 latency ceiling in milliseconds (default 500)",
    )
    chaos_run.add_argument(
        "--error-budget",
        type=float,
        default=None,
        help="tolerated bad-request fraction (default 0.35)",
    )
    chaos_run.add_argument(
        "--burn-limit",
        type=float,
        default=None,
        help="multi-window error-budget burn-rate limit (default 2.0)",
    )
    chaos_run.add_argument(
        "--requests-per-wave", type=int, default=24,
        help="background-traffic wave size (default 24)",
    )
    chaos_run.add_argument(
        "--concurrency", type=int, default=8,
        help="closed-loop concurrency of the background traffic (default 8)",
    )
    chaos_run.add_argument("--m", type=int, default=96, help="rows of A")
    chaos_run.add_argument("--n", type=int, default=96, help="inner dimension")
    chaos_run.add_argument("--q", type=int, default=12, help="cols of each B")
    chaos_run.add_argument(
        "--deadline-s",
        type=float,
        default=0.5,
        help="per-request deadline of the background traffic (default 0.5)",
    )

    bench = sub.add_parser(
        "bench", help="serve/engine throughput benchmarks"
    )
    bench.add_argument(
        "--which",
        choices=("serve", "engine", "all"),
        default="serve",
        help="which benchmark to run (default: serve)",
    )
    bench.add_argument(
        "--quick", action="store_true", help="reduced request count"
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: compare against the committed baseline instead of "
        "rewriting it; exits 1 on a regression past --tolerance",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline JSON for --compare (default: repo BENCH_serve.json / "
        "BENCH_engine.json)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed per-request slowdown vs the baseline (default 0.30)",
    )
    bench.add_argument(
        "--policy",
        choices=("fused", "pipelined", "serial", "auto"),
        default=None,
        help="serve bench: measure only this execution policy (default: "
        "fused AND pipelined, pipelined primary)",
    )

    model = sub.add_parser(
        "model",
        help="chained-GEMM model workloads with adaptive per-layer ABFT",
    )
    model_sub = model.add_subparsers(dest="model_command", required=True)

    def _add_model_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--spec",
            metavar="PATH",
            default=None,
            help="ModelSpec JSON file; overrides the builder flags below",
        )
        p.add_argument(
            "--model",
            choices=("mlp", "attention"),
            default="mlp",
            help="built-in model shape (default: mlp)",
        )
        p.add_argument("--batch", type=int, default=64, help="batch size")
        p.add_argument(
            "--d-in", type=int, default=256, help="mlp: input feature width"
        )
        p.add_argument(
            "--hidden", type=int, default=512, help="mlp: hidden width"
        )
        p.add_argument(
            "--depth", type=int, default=4, help="mlp: number of layers"
        )
        p.add_argument(
            "--d-out",
            type=int,
            default=None,
            help="mlp: output width (default: hidden)",
        )
        p.add_argument(
            "--d-model", type=int, default=256, help="attention: model width"
        )
        p.add_argument(
            "--d-ff",
            type=int,
            default=None,
            help="attention: feed-forward width (default: 4*d_model)",
        )
        p.add_argument(
            "--dtype",
            choices=("float64", "float32", "float16", "bfloat16"),
            default="float32",
            help="per-layer storage dtype (fp16/bf16 use the adaptive bound)",
        )
        p.add_argument(
            "--activation",
            choices=("none", "relu", "gelu"),
            default="relu",
            help="mlp: hidden-layer activation stub (default: relu)",
        )
        p.add_argument(
            "--block-size", type=int, default=32, help="checksum block size"
        )
        p.add_argument("--p", type=int, default=2, help="top-p parameter")
        p.add_argument(
            "--coverage-target",
            type=float,
            default=0.85,
            help="minimum protected-flops fraction the plan must reach",
        )
        p.add_argument(
            "--full-intensity",
            type=float,
            default=48.0,
            help="flops/byte at or above which a layer gets full A-ABFT",
        )
        p.add_argument(
            "--sea-intensity",
            type=float,
            default=16.0,
            help="flops/byte at or above which a layer gets the SEA check",
        )

    mplan = model_sub.add_parser(
        "plan", help="print the planner's per-layer protection decisions"
    )
    _add_model_args(mplan)
    mplan.add_argument(
        "--json", action="store_true", help="emit the plan as JSON"
    )

    mrun = model_sub.add_parser(
        "run", help="execute the model through the protected engine"
    )
    _add_model_args(mrun)
    mrun.add_argument(
        "--verify-results",
        action="store_true",
        help="compare the output against an unprotected reference pass; "
        "exits 1 on mismatch",
    )
    mrun.add_argument(
        "--inject-layer",
        metavar="NAME",
        default=None,
        help="flip one bit in the named layer's result (fault campaign); "
        "exits 1 when the fault lands on a protected layer undetected",
    )
    mrun.add_argument(
        "--inject-row", type=int, default=0, help="injected element row"
    )
    mrun.add_argument(
        "--inject-col", type=int, default=0, help="injected element column"
    )
    mrun.add_argument(
        "--inject-field",
        choices=("mantissa", "exponent", "sign"),
        default="exponent",
        help="bit field to flip (default: exponent)",
    )

    mbench = model_sub.add_parser(
        "bench",
        help="mixed-vs-full-vs-unchecked benchmark (BENCH_models.json)",
    )
    mbench.add_argument(
        "--quick", action="store_true", help="reduced repeat count"
    )
    mbench.add_argument(
        "--compare",
        action="store_true",
        help="smoke mode: compare against the committed baseline instead of "
        "rewriting it; exits 1 on a regression past --tolerance",
    )
    mbench.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline JSON for --compare (default: repo BENCH_models.json)",
    )
    mbench.add_argument(
        "--tolerance",
        type=float,
        default=0.50,
        help="allowed mixed-plan slowdown vs the baseline (default 0.50)",
    )

    backends = sub.add_parser(
        "backends",
        help="list registered compute backends, capabilities, availability",
    )
    backends.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any registered backend is unavailable",
    )

    autotune = sub.add_parser(
        "autotune",
        help="time backend/tile candidates per shape and cache the winners",
    )
    autotune.add_argument(
        "--shapes",
        metavar="MxNxQ[,MxNxQ...]",
        default="256x256x256",
        help="comma-separated problem shapes to tune (default 256x256x256)",
    )
    autotune.add_argument(
        "--block-size", type=int, default=64, help="checksum block size"
    )
    autotune.add_argument("--p", type=int, default=2, help="top-p parameter")
    autotune.add_argument(
        "--scheme",
        choices=("aabft", "sea", "fixed"),
        default="aabft",
        help="bound scheme of the tuned config",
    )
    autotune.add_argument(
        "--repeats", type=int, default=3, help="timing repeats per candidate"
    )
    autotune.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="autotune cache file (default: $AABFT_AUTOTUNE_CACHE or "
        "~/.cache/aabft/autotune.json)",
    )
    autotune.add_argument(
        "--force",
        action="store_true",
        help="re-time even when the cache already holds a winner",
    )
    autotune.add_argument(
        "--expect-cached",
        action="store_true",
        help="assert every shape is served from the cache (no timing); "
        "exits 1 otherwise — the CI smoke check for cache reuse",
    )
    return parser


def _cmd_table1() -> int:
    from .experiments import overhead_summary, render_table1, run_table1

    rows = run_table1()
    print(render_table1(rows))
    print(overhead_summary(rows))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .experiments import (
        TABLE2_UNIT,
        TABLE3_HUNDRED,
        TABLE4_DYNAMIC,
        measure_bound_quality,
        render_bound_table,
    )
    from .workloads import SUITE_DYNAMIC_K2, SUITE_HUNDRED, SUITE_UNIT

    sizes = (512, 1024, 2048, 3072, 4096, 5120, 6144, 7168, 8192) if args.full else (
        512,
        1024,
    )
    rng = np.random.default_rng(args.seed)
    for suite, paper, label in (
        (SUITE_UNIT, TABLE2_UNIT, "Table II — inputs U(-1, 1)"),
        (SUITE_HUNDRED, TABLE3_HUNDRED, "Table III — inputs U(-100, 100)"),
        (SUITE_DYNAMIC_K2, TABLE4_DYNAMIC, "Table IV — Eq. 47 (alpha=0, kappa=2)"),
    ):
        rows = [
            measure_bound_quality(suite, n, rng, num_samples=args.samples)
            for n in sizes
        ]
        print(render_bound_table(rows, paper, title=label))
        print()
    return 0


def _cmd_detect(args: argparse.Namespace) -> int:
    from .experiments import render_figure4, run_figure4
    from .workloads import DETECTION_SUITES

    sizes = (512, 1024, 2048, 4096, 8192) if args.full else (512, 1024)
    cells = run_figure4(
        suites=DETECTION_SUITES,
        sizes=sizes,
        injections_per_cell=args.injections,
        fields=(args.field,),
        num_flips=args.flips,
        seed=args.seed,
    )
    print(render_figure4(cells))
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    from .experiments import measure_coverage, render_coverage
    from .workloads import PAPER_SUITES

    sizes = (512, 1024, 2048, 4096, 8192) if args.full else (512, 1024)
    rng = np.random.default_rng(args.seed)
    rows = [
        measure_coverage(suite, n, rng, num_samples=args.samples)
        for suite in PAPER_SUITES
        for n in sizes
    ]
    print(render_coverage(rows))
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    from .experiments import FULL, QUICK, run_all

    print(run_all(FULL if args.full else QUICK, seed=args.seed))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .abft.pipeline import AABFTPipeline
    from .faults.injector import FaultInjector
    from .faults.model import FaultSite, FaultSpec
    from .gpusim.simulator import GpuSimulator

    rng = np.random.default_rng(args.seed)
    n = args.n - args.n % 64 or 64
    a = rng.uniform(-1.0, 1.0, (n, n))
    b = rng.uniform(-1.0, 1.0, (n, n))

    sim = GpuSimulator()
    pipeline = AABFTPipeline(sim, block_size=64, p=2)

    clean = pipeline.run(a, b)
    print(f"fault-free run: detected={clean.detected} (expect False)")

    num_blocks = (n // 64) ** 2
    from .fp.errorvec import ErrorVector

    bit = int(rng.integers(44, 52))  # a high mantissa bit: visibly critical
    spec = FaultSpec(
        sm_id=int(rng.integers(min(sim.device.num_sms, num_blocks))),
        site=FaultSite.INNER_ADD,
        module_row=3,
        module_col=5,
        error_vector=ErrorVector(mask=1 << bit, field="mantissa", bit_indices=(bit,)),
        k_injection=int(rng.integers(n)),
    )
    injector = FaultInjector(spec, rng)
    faulty = pipeline.run(a, b, injector=injector)
    print(f"injected: {spec.describe()}")
    print(
        f"faulty run: detected={faulty.detected}, "
        f"failed checks={faulty.report.num_failed}, "
        f"located={faulty.report.located_errors}"
    )
    print(sim.profiler.summary())
    return 0


def _cmd_ci_gate(args: argparse.Namespace) -> int:
    from .cigate import (
        DEFAULT_COVERAGE_FLOOR,
        DEFAULT_THROUGHPUT_TOLERANCE,
        run_ci_gate,
    )

    floor = (
        args.coverage_floor
        if args.coverage_floor is not None
        else DEFAULT_COVERAGE_FLOOR
    )
    tolerance = (
        args.throughput_tolerance
        if args.throughput_tolerance is not None
        else DEFAULT_THROUGHPUT_TOLERANCE
    )
    backends = (
        tuple(name.strip() for name in args.backends.split(",") if name.strip())
        if args.backends is not None
        else None
    )
    code, results = run_ci_gate(
        quick=args.quick,
        coverage_floor=floor,
        throughput_tolerance=tolerance,
        baseline_path=args.baseline,
        seed=args.seed,
        backends=backends,
        chaos=not args.skip_chaos,
        chaos_recipes_path=args.chaos_recipes,
        chaos_report_dir=args.chaos_report,
    )
    for result in results:
        print(result.describe())
    print("ci-gate:", "all gates passed" if code == 0 else "GATE FAILURE")
    return code


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .serve import MatmulServer, ServeConfig
    from .workloads import uniform_matrix

    cfg = ServeConfig(
        max_queue_depth=args.queue_depth,
        max_batch_size=args.max_batch,
        batch_window_s=args.window_s,
        default_deadline_s=args.deadline_s,
    )
    stream = sys.stdin if args.requests == "-" else open(args.requests)
    futures = []
    try:
        with MatmulServer(cfg) as server:
            for line in stream:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                spec = json.loads(line)
                m = int(spec.get("m", args.m))
                n = int(spec.get("n", args.n))
                q = int(spec.get("q", args.q))
                count = int(spec.get("count", 1))
                rng = np.random.default_rng(int(spec.get("seed", args.seed)))
                a = uniform_matrix(m, n, rng)
                for i in range(count):
                    b = uniform_matrix(n, q, rng)
                    base = spec.get("id")
                    request_id = (
                        None if base is None
                        else (base if count == 1 else f"{base}.{i}")
                    )
                    futures.append(
                        server.submit(
                            a, b,
                            deadline_s=spec.get("deadline_s"),
                            request_id=request_id,
                        )
                    )
            responses = [f.result() for f in futures]
    finally:
        if stream is not sys.stdin:
            stream.close()
    served = rejected = 0
    for r in responses:
        print(json.dumps({
            "request_id": r.request_id,
            "status": r.status.value,
            "detected": r.detected,
            "corrected": r.corrected,
            "recomputed": r.recomputed,
            "rejected_reason": r.rejected_reason,
            "batch_size": r.batch_size,
            "queue_wait_s": round(r.queue_wait_s, 6),
            "service_s": round(r.service_s, 6),
        }))
        served += r.ok
        rejected += not r.ok
    print(json.dumps({
        "summary": {"submitted": len(responses), "served": served,
                    "rejected": rejected},
    }))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .serve import ServeConfig, run_loadgen

    kwargs = dict(
        requests=args.requests,
        concurrency=args.concurrency,
        m=args.m,
        n=args.n,
        q=args.q,
        shared_a=not args.fresh_a,
        deadline_s=args.deadline_s,
        seed=args.seed,
        verify_results=args.verify_results,
    )
    if args.cluster:
        from .cluster import ClusterConfig, ClusterFrontend

        cluster_cfg = ClusterConfig(
            serve=ServeConfig(
                max_queue_depth=max(256, 2 * args.concurrency),
            ),
            num_workers=args.workers,
        )

        def _factory():
            frontend = ClusterFrontend(cluster_cfg)
            frontend.wait_ready(timeout=120.0)
            return frontend

        result = run_loadgen(client_factory=_factory, **kwargs)
    else:
        result = run_loadgen(**kwargs)
    print(json.dumps(result.summary(), indent=2))
    if not result.ok:
        for violation in result.violations:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json

    from .cluster import ClusterConfig, ClusterFrontend
    from .serve import ServeConfig
    from .workloads import uniform_matrix

    cfg = ClusterConfig(
        serve=ServeConfig(
            max_queue_depth=args.queue_depth,
            max_batch_size=args.max_batch,
            batch_window_s=args.window_s,
            default_deadline_s=args.deadline_s,
        ),
        num_workers=args.workers,
        autotune_cache=args.autotune_cache,
    )
    stream = sys.stdin if args.requests == "-" else open(args.requests)
    futures = []
    try:
        with ClusterFrontend(cfg) as frontend:
            frontend.wait_ready(timeout=120.0)
            for line in stream:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                spec = json.loads(line)
                m = int(spec.get("m", args.m))
                n = int(spec.get("n", args.n))
                q = int(spec.get("q", args.q))
                count = int(spec.get("count", 1))
                rng = np.random.default_rng(int(spec.get("seed", args.seed)))
                a = uniform_matrix(m, n, rng)
                for i in range(count):
                    b = uniform_matrix(n, q, rng)
                    base = spec.get("id")
                    request_id = (
                        None if base is None
                        else (base if count == 1 else f"{base}.{i}")
                    )
                    futures.append(
                        frontend.submit(
                            a, b,
                            deadline_s=spec.get("deadline_s"),
                            request_id=request_id,
                        )
                    )
            responses = [f.result() for f in futures]
    finally:
        if stream is not sys.stdin:
            stream.close()
    served = rejected = 0
    for r in responses:
        print(json.dumps({
            "request_id": r.request_id,
            "status": r.status.value,
            "detected": r.detected,
            "corrected": r.corrected,
            "recomputed": r.recomputed,
            "rejected_reason": r.rejected_reason,
            "batch_size": r.batch_size,
            "requeues": r.requeues,
            "queue_wait_s": round(r.queue_wait_s, 6),
            "service_s": round(r.service_s, 6),
        }))
        served += r.ok
        rejected += not r.ok
    print(json.dumps({
        "summary": {"submitted": len(responses), "served": served,
                    "rejected": rejected, "workers": args.workers},
    }))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .chaos import SLOSpec, default_quick_suite, load_recipes, run_chaos
    from .telemetry import get_registry

    recipes = (
        load_recipes(args.recipes)
        if args.recipes is not None
        else default_quick_suite()
    )
    slo_kwargs = {}
    if args.p99_ms is not None:
        slo_kwargs["p99_latency_s"] = args.p99_ms / 1e3
    if args.error_budget is not None:
        slo_kwargs["error_budget"] = args.error_budget
    if args.burn_limit is not None:
        slo_kwargs["burn_rate_limit"] = args.burn_limit
    slo = SLOSpec(**slo_kwargs)

    report = run_chaos(
        recipes,
        slo,
        requests_per_wave=args.requests_per_wave,
        concurrency=args.concurrency,
        m=args.m,
        n=args.n,
        q=args.q,
        deadline_s=args.deadline_s,
        seed=args.seed,
        registry=get_registry(),
    )
    print(json.dumps(report.to_dict(), indent=2))
    if args.report is not None:
        paths = report.write(args.report)
        print(f"report written -> {paths['markdown']}", file=sys.stderr)
    if not report.ok:
        for breach in report.breaches:
            print(f"SLO BREACH [{breach.slo}]: {breach.detail}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    if args.which == "all" and args.baseline is not None:
        # One --baseline path cannot serve two different baselines; the old
        # behaviour silently ignored it, defeating the comparison.
        print(
            "error: --baseline cannot be combined with --which all (the "
            "serve and engine benchmarks use different baseline files); "
            "run them separately or rely on the repo defaults",
            file=sys.stderr,
        )
        return 2
    code = 0
    if args.which in ("serve", "all"):
        from .serve.bench import (
            QUICK_REQUESTS,
            REQUESTS,
            SPEEDUP_FLOOR,
            compare_to_baseline,
            default_baseline_path,
            run_serve_benchmark,
        )

        bench_kwargs = {}
        if getattr(args, "policy", None) is not None:
            bench_kwargs["policies"] = (args.policy,)
        payload = run_serve_benchmark(
            requests=QUICK_REQUESTS if args.quick else REQUESTS,
            seed=args.seed,
            **bench_kwargs,
        )
        print(
            f"serve bench: {payload['requests']} requests "
            f"{payload['m']}x{payload['n']}x{payload['q']} at "
            f"concurrency {payload['concurrency']}"
        )
        print(
            f"  serial loop : {payload['serial_seconds']:.2f} s "
            f"({payload['serial_throughput_rps']:.0f} req/s)"
        )
        for mode, row in payload["policies"].items():
            print(
                f"  served [{mode:>9s}]: {row['serve_seconds']:.2f} s "
                f"({row['serve_throughput_rps']:.0f} req/s, "
                f"p50 {row['latency_p50_ms']:.1f} ms, "
                f"p99 {row['latency_p99_ms']:.1f} ms, "
                f"max batch {row['max_batch_size']})"
            )
        print(f"  speedup     : {payload['speedup']:.2f}x "
              f"({payload['primary_policy']} vs serial)")
        if "pipelined_speedup_vs_fused" in payload:
            print(
                f"  pipelined vs fused: "
                f"{payload['pipelined_speedup_vs_fused']:.2f}x, "
                f"bubble fraction {payload['bubble_fraction']:.3f}"
            )
        if args.compare:
            path = (
                Path(args.baseline)
                if args.baseline is not None
                else default_baseline_path()
            )
            if not path.exists():
                print(f"FAIL: baseline {path} not found", file=sys.stderr)
                return 1
            passed, detail = compare_to_baseline(
                payload, json.loads(path.read_text()), args.tolerance
            )
            print(f"  {detail}")
            if not passed:
                print("FAIL: serve throughput regressed", file=sys.stderr)
                code = 1
        else:
            out = Path.cwd() / "BENCH_serve.json"
            out.write_text(json.dumps(payload, indent=2) + "\n")
            print(f"  baseline written -> {out}")
            if not args.quick and payload["speedup"] < SPEEDUP_FLOOR:
                print(
                    f"FAIL: speedup below the {SPEEDUP_FLOOR}x acceptance "
                    "threshold",
                    file=sys.stderr,
                )
                code = 1
    if args.which in ("engine", "all"):
        from .cigate import throughput_gate

        result = throughput_gate(
            tolerance=args.tolerance,
            quick=args.quick,
            baseline_path=args.baseline,
        )
        print(result.describe())
        if not result.passed:
            code = 1
    return code


def _model_from_args(args: argparse.Namespace):
    from pathlib import Path

    from .models import ModelSpec, attention, mlp

    if args.spec is not None:
        return ModelSpec.from_json(Path(args.spec).read_text())
    if args.model == "attention":
        return attention(
            batch=args.batch,
            d_model=args.d_model,
            d_ff=args.d_ff,
            dtype=args.dtype,
        )
    return mlp(
        batch=args.batch,
        d_in=args.d_in,
        hidden=args.hidden,
        depth=args.depth,
        d_out=args.d_out,
        dtype=args.dtype,
        activation=args.activation,
    )


def _model_planner_from_args(args: argparse.Namespace):
    from .engine import AbftConfig
    from .models import ProtectionPlanner

    config = AbftConfig(block_size=args.block_size, p=args.p)
    planner = ProtectionPlanner(
        config,
        coverage_target=args.coverage_target,
        full_intensity=args.full_intensity,
        sea_intensity=args.sea_intensity,
    )
    return config, planner


def _cmd_model(args: argparse.Namespace) -> int:
    import json

    if args.model_command == "bench":
        from pathlib import Path

        from .models.bench import (
            QUICK_REPEATS,
            REPEATS,
            compare_to_baseline,
            default_baseline_path,
            run_model_benchmark,
        )

        payload = run_model_benchmark(
            repeats=QUICK_REPEATS if args.quick else REPEATS, seed=args.seed
        )
        print(
            f"model bench: {payload['model']['name']} "
            f"({len(payload['model']['layers'])} layers, "
            f"batch={payload['model']['batch']}, "
            f"{payload['repeats']} repeats)"
        )
        print(f"  mixed plan    : {payload['mixed_seconds'] * 1e3:8.2f} ms/pass "
              f"(coverage {payload['coverage']['mixed']:.2%})")
        print(f"  all-full plan : {payload['full_seconds'] * 1e3:8.2f} ms/pass")
        print(f"  unchecked     : "
              f"{payload['unchecked_seconds'] * 1e3:8.2f} ms/pass")
        print(f"  mixed/full latency ratio: "
              f"{payload['mixed_vs_full_ratio']:.2f}")
        if args.compare:
            path = (
                Path(args.baseline)
                if args.baseline is not None
                else default_baseline_path()
            )
            if not path.exists():
                print(f"FAIL: baseline {path} not found", file=sys.stderr)
                return 1
            passed, detail = compare_to_baseline(
                payload, json.loads(path.read_text()), args.tolerance
            )
            print(f"  {detail}")
            if not passed:
                print("FAIL: model benchmark regressed", file=sys.stderr)
                return 1
            return 0
        out = Path.cwd() / "BENCH_models.json"
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"  baseline written -> {out}")
        return 0

    model = _model_from_args(args)
    config, planner = _model_planner_from_args(args)
    plan = planner.plan(model)

    if args.model_command == "plan":
        if args.json:
            print(json.dumps(plan.to_dict(), indent=2))
        else:
            print(plan.describe())
        if not plan.meets_target:
            print(
                f"FAIL: coverage {plan.coverage:.2%} below the "
                f"{plan.coverage_target:.2%} target",
                file=sys.stderr,
            )
            return 1
        return 0

    # model run
    from .engine import MatmulEngine
    from .models import ModelInjection, ModelRunner
    from .telemetry import get_registry

    inject = None
    if args.inject_layer is not None:
        inject = ModelInjection(
            layer=args.inject_layer,
            row=args.inject_row,
            col=args.inject_col,
            fault_field=args.inject_field,
        )
    registry = get_registry()
    with MatmulEngine(config, registry=registry) as engine:
        runner = ModelRunner(engine, registry=registry)
        result = runner.run(
            model,
            plan,
            seed=args.seed,
            inject=inject,
            verify=args.verify_results,
        )

    code = 0
    summary = result.to_dict()
    summary["plan_coverage"] = round(plan.coverage, 6)
    print(json.dumps(summary, indent=2))
    if args.verify_results and not result.verified:
        print(
            f"FAIL: output diverged from the reference pass "
            f"(max |diff| = {result.max_abs_diff:.3e})",
            file=sys.stderr,
        )
        code = 1
    if inject is not None:
        run = result.layer_run(inject.layer)
        if run.protected and not run.detected:
            print(
                f"FAIL: injected fault in protected layer "
                f"{inject.layer!r} went undetected",
                file=sys.stderr,
            )
            code = 1
    return code


def _cmd_backends(args: argparse.Namespace) -> int:
    from .backends import default_registry

    registry = default_registry()
    rows = registry.describe()
    name_w = max(len(row["name"]) for row in rows)
    unavailable = 0
    for row in rows:
        if row["available"]:
            status = "available"
        else:
            status = f"unavailable: {row['reason']}"
            unavailable += 1
        flags = []
        if not row["deterministic"]:
            flags.append("non-deterministic")
        if not row["fused_encode"]:
            flags.append("no-fused-encode")
        if not row["fused_online"]:
            flags.append("no-fused-online")
        flag_text = f" [{', '.join(flags)}]" if flags else ""
        print(
            f"{row['name']:<{name_w}}  {status:<40} "
            f"dtypes={','.join(row['dtypes'])}{flag_text}"
        )
        print(f"{'':<{name_w}}  {row['description']}")
    if args.strict and unavailable:
        print(f"FAIL: {unavailable} backend(s) unavailable", file=sys.stderr)
        return 1
    return 0


def _parse_shapes(text: str) -> list[tuple[int, int, int]]:
    shapes = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        parts = item.lower().split("x")
        if len(parts) != 3:
            raise ValueError(f"shape {item!r} is not of the form MxNxQ")
        shapes.append(tuple(int(p) for p in parts))
    if not shapes:
        raise ValueError("no shapes given")
    return shapes


def _cmd_autotune(args: argparse.Namespace) -> int:
    from .backends import Autotuner, AutotuneCache
    from .engine import AbftConfig

    try:
        shapes = _parse_shapes(args.shapes)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = AbftConfig(
        block_size=args.block_size, p=args.p, scheme=args.scheme
    )
    cache = AutotuneCache(args.cache)
    tuner = Autotuner(cache, repeats=args.repeats)
    code = 0
    for m, n, q in shapes:
        cached = tuner.lookup(
            m, n, q, dtype=np.dtype(np.float64), config=config
        )
        if args.expect_cached:
            if cached is None:
                print(
                    f"FAIL: {m}x{n}x{q} has no cached winner in {cache.path}",
                    file=sys.stderr,
                )
                code = 1
                continue
            choice, served_from_cache = cached, True
        else:
            served_from_cache = cached is not None and not args.force
            choice = (
                cached
                if served_from_cache
                else tuner.tune(
                    m, n, q, config=config, force=args.force, seed=args.seed
                )
            )
        tile = "full" if choice.tile is None else str(choice.tile)
        source = "cached" if served_from_cache else "tuned"
        print(
            f"{m}x{n}x{q}: backend={choice.backend} tile={tile} "
            f"{choice.per_call_s * 1e3:.3f} ms/call "
            f"(numpy baseline {choice.baseline_per_call_s * 1e3:.3f} ms, "
            f"speedup {choice.speedup:.2f}x, {source})"
        )
    print(f"cache: {cache.path} ({len(cache)} entries)")
    return code


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "table1":
        return _cmd_table1()
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "detect":
        return _cmd_detect(args)
    if args.command == "coverage":
        return _cmd_coverage(args)
    if args.command == "all":
        return _cmd_all(args)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "ci-gate":
        return _cmd_ci_gate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "model":
        return _cmd_model(args)
    if args.command == "backends":
        return _cmd_backends(args)
    if args.command == "autotune":
        return _cmd_autotune(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``aabft`` console script)."""
    args = build_parser().parse_args(argv)
    if not args.telemetry_out:
        return _dispatch(args)
    from .telemetry import JsonLinesSink, get_registry

    registry = get_registry()
    sink = JsonLinesSink(args.telemetry_out)
    registry.attach(sink)
    try:
        return _dispatch(args)
    finally:
        registry.write_snapshot()
        registry.detach(sink)
        sink.close()


if __name__ == "__main__":
    sys.exit(main())
