"""Chaos run reports: machine-readable JSON plus a markdown narrative.

A :class:`ChaosReport` bundles everything one :func:`~repro.chaos.harness.run_chaos`
invocation observed — per-recipe injection counts, the merged traffic
tally, burn-rate extrema, reconciliation diffs and SLO breaches — and
writes the pair of dated ``VALIDATION_REPORT_<date>.{json,md}`` files
the ``chaos-soak`` CI job uploads as artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path

from ..serve.loadgen import LoadgenResult
from .recipe import ChaosRecipe
from .slo import SLOBreach, SLOSpec

__all__ = ["RecipeOutcome", "ChaosReport"]


@dataclass(frozen=True)
class RecipeOutcome:
    """One recipe after the run: the plan plus how often it actually fired."""

    recipe: ChaosRecipe
    injections: int

    def to_dict(self) -> dict:
        return {"recipe": self.recipe.to_dict(), "injections": self.injections}


@dataclass
class ChaosReport:
    """Everything one chaos run observed, ready to gate or publish."""

    recipes: list[RecipeOutcome]
    slo: SLOSpec
    result: LoadgenResult
    breaches: list[SLOBreach]
    reconciliation_diffs: list[str] = field(default_factory=list)
    burn: dict = field(default_factory=dict)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether every SLO held and the books balanced."""
        return not self.breaches

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "wall_s": self.wall_s,
            "slo": self.slo.to_dict(),
            "recipes": [o.to_dict() for o in self.recipes],
            "traffic": self.result.summary(),
            "burn": dict(self.burn),
            "breaches": [b.to_dict() for b in self.breaches],
            "reconciliation_diffs": list(self.reconciliation_diffs),
        }

    def to_markdown(self, *, run_date: str | None = None) -> str:
        run_date = run_date or date.today().isoformat()
        r = self.result
        verdict = "**PASS**" if self.ok else "**FAIL**"
        lines = [
            f"# Chaos validation report — {run_date}",
            "",
            f"Verdict: {verdict} ({len(self.breaches)} SLO breach(es), "
            f"{r.submitted} requests over {self.wall_s:.2f}s)",
            "",
            "## Recipes",
            "",
            "| recipe | kind | site | intensity | window (s) | injections |",
            "|---|---|---|---|---|---|",
        ]
        for outcome in self.recipes:
            rec = outcome.recipe
            lines.append(
                f"| {rec.name} | {rec.kind} | {rec.site} | "
                f"{rec.intensity:g} | {rec.start_s:g}–{rec.end_s:g} | "
                f"{outcome.injections} |"
            )
        lines += [
            "",
            "## Traffic",
            "",
            f"- submitted {r.submitted}, served {r.served}, "
            f"rejected {r.rejected}, dropped {r.dropped}",
            f"- statuses: {r.status_counts or {}}",
            f"- rejections: {r.rejection_reasons or {}}",
            f"- detections {r.detected}, corrected {r.corrected}, "
            f"recomputed {r.recomputed} ({r.retry_attempts} attempt(s))",
            f"- wrong-but-honest results {r.honest_wrong}, "
            f"silent wrong answers {r.silent_wrong}",
            f"- latency p50/p90/p99: {r.p50_s * 1e3:.1f} / "
            f"{r.p90_s * 1e3:.1f} / {r.p99_s * 1e3:.1f} ms "
            f"(ceiling {self.slo.p99_latency_s * 1e3:.1f} ms)",
            "",
            "## Error budget",
            "",
            f"- budget {self.slo.error_budget:g}, "
            f"multi-window limit {self.slo.burn_rate_limit:g} "
            f"({self.slo.short_window_s:g}s / {self.slo.long_window_s:g}s)",
            f"- worst short-window burn {self.burn.get('worst_short', 0.0):.2f}, "
            f"worst long-window burn {self.burn.get('worst_long', 0.0):.2f}, "
            f"worst sustained (multi-window) "
            f"{self.burn.get('worst_multi_window', 0.0):.2f}",
            "",
            "## SLO breaches",
            "",
        ]
        if self.breaches:
            lines += [
                "| objective | measured | threshold | detail |",
                "|---|---|---|---|",
            ]
            lines += [
                f"| {b.slo} | {b.measured:g} | {b.threshold:g} | {b.detail} |"
                for b in self.breaches
            ]
        else:
            lines.append("None — every declared objective held.")
        lines += ["", "## Accounting reconciliation", ""]
        if self.reconciliation_diffs:
            lines += [f"- {diff}" for diff in self.reconciliation_diffs]
        else:
            lines.append(
                "Client tally and `abft_serve_*` counters reconcile exactly."
            )
        return "\n".join(lines) + "\n"

    def write(self, directory: str | Path, *, run_date: str | None = None) -> dict:
        """Write the dated report pair into ``directory``.

        Returns ``{"json": path, "markdown": path}``.
        """
        run_date = run_date or date.today().isoformat()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        json_path = directory / f"VALIDATION_REPORT_{run_date}.json"
        md_path = directory / f"VALIDATION_REPORT_{run_date}.md"
        payload = dict(self.to_dict(), date=run_date)
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        md_path.write_text(self.to_markdown(run_date=run_date))
        return {"json": str(json_path), "markdown": str(md_path)}
