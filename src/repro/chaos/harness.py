"""The chaos harness: recipes × live traffic × SLO evaluation.

:func:`run_chaos` builds a private serving stack (its own
:class:`~repro.serve.server.MatmulServer` on a skewable clock), installs
the engine's chaos seam, drives closed-loop
:func:`~repro.serve.loadgen.run_loadgen` traffic in waves while each
recipe's schedule window arms its injector, then drains, reconciles the
combined client tally against the ``abft_serve_*`` counter movement and
evaluates the :class:`~repro.chaos.slo.SLOSpec`.

Injection mechanics per kind:

* ``stage_stall`` sleeps inside the engine's stage-completion hook, so
  the stall lands on whichever thread executes the stage — serial,
  fused and pipelined paths alike — without polluting the stage timers
  the pipeline cost model feeds on.
* ``backend_failure`` raises :class:`InjectedFault` from the dispatch
  hook for the targeted backend and simultaneously submits probe
  requests pinned to that backend, so the window exercises the engine's
  never-silent numpy fallback even when negotiation would otherwise
  never pick the target.
* ``queue_burst`` fires a synchronous volley of extra submissions at
  window start; their futures are tracked and tallied with the rest.
* ``bitflip`` XORs a high mantissa bit of one element of the in-flight
  GEMM result (the fault-campaign injector arithmetic): high bits make
  the corruption critical, so an unflagged pass-through would be a
  silent wrong answer, not a benign rounding artefact.
* ``clock_skew`` jumps the server's deadline clock forward, expiring
  in-flight deadlines early; the responses must land on the degradation
  ladder or an explicit ``deadline`` rejection — never vanish.
* ``worker_kill`` SIGKILLs live worker processes of a sharded
  :class:`~repro.cluster.frontend.ClusterFrontend` mid-load.  An engine
  hook cannot cross a process boundary, so the harness runs these
  recipes in a dedicated **cluster phase** after the single-process
  phase (each phase's recipe windows are relative to its own start).
  Both phases share one registry and yield one combined tally, one
  counter reconciliation and one SLO verdict — the supervisor must
  requeue the dead shard's in-flight requests and restart the worker,
  and a request dropped or silently wrong in either phase fails the
  run the same way.

All telemetry lands under ``abft_chaos_*`` (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import threading
import time
from collections import Counter as _TallyCounter

import numpy as np

from ..errors import ConfigurationError
from ..serve.config import ServeConfig
from ..serve.loadgen import (
    LoadgenResult,
    _tally,
    counter_delta,
    reconcile_counters,
    run_loadgen,
    serve_counter_snapshot,
)
from ..serve.server import MatmulServer
from ..telemetry import MetricsRegistry
from ..workloads import uniform_matrix
from .recipe import ChaosRecipe
from .report import ChaosReport, RecipeOutcome
from .slo import BurnSample, SLOSpec, burn_rates, evaluate_slo

__all__ = ["InjectedFault", "run_chaos"]


class InjectedFault(RuntimeError):
    """Raised by the dispatch injector to emulate a backend failure."""


class _SkewClock:
    """Monotonic clock with an injectable forward offset (thread-safe)."""

    def __init__(self) -> None:
        self._offset = 0.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return time.monotonic() + self._offset

    def skew(self, seconds: float) -> None:
        with self._lock:
            self._offset += seconds


class _Injector:
    """One armed recipe: knows its window and counts its own injections."""

    def __init__(self, recipe: ChaosRecipe, metrics: dict) -> None:
        self.recipe = recipe
        self.rng = np.random.default_rng(recipe.seed)
        self.injections = 0
        self._m = metrics
        self._lock = threading.Lock()

    def _record(self) -> None:
        with self._lock:
            self.injections += 1
        self._m["injections"].labels(
            kind=self.recipe.kind, site=self.recipe.site
        ).inc()

    # Engine-hook kinds override this; window-start kinds override fire().
    def handle(self, event: str, **kwargs) -> None:  # pragma: no cover
        pass

    def fire(self, ctx: "_HarnessContext") -> None:  # pragma: no cover
        pass


class _StallInjector(_Injector):
    def handle(self, event: str, **kwargs) -> None:
        if event == self.recipe.site:
            self._record()
            self._m["stall_seconds"].labels(stage=self.recipe.site).inc(
                self.recipe.intensity
            )
            time.sleep(self.recipe.intensity)


class _DispatchFailInjector(_Injector):
    def handle(self, event: str, **kwargs) -> None:
        if event != "dispatch" or kwargs.get("backend") != self.recipe.site:
            return
        if self.rng.random() < self.recipe.intensity:
            self._record()
            raise InjectedFault(
                f"chaos: injected dispatch failure on backend "
                f"{self.recipe.site!r}"
            )

    def fire(self, ctx: "_HarnessContext") -> None:
        # Background traffic negotiates its own backend (usually numpy),
        # so pin a few probes to the target to guarantee the window
        # actually crosses the fallback path.
        ctx.submit_extra(
            count=4,
            label=f"probe-{self.recipe.name}",
            backend=self.recipe.site,
        )


class _BitflipInjector(_Injector):
    #: High mantissa bits of binary64 — flips here are always critical,
    #: so a clean checksum pass-through would be a genuine silent wrong
    #: answer rather than a sub-tolerance rounding artefact.
    _BITS = (44, 45, 46, 47, 48, 49, 50, 51)

    def handle(self, event: str, **kwargs) -> None:
        c_fc = kwargs.get("c_fc")
        if event != "result" or c_fc is None or c_fc.dtype != np.float64:
            return
        if self.rng.random() >= self.recipe.intensity:
            return
        self._record()
        flat = c_fc.reshape(-1)
        idx = int(self.rng.integers(flat.size))
        bit = int(self.rng.choice(self._BITS))
        view = flat.view(np.uint64)
        view[idx] ^= np.uint64(1) << np.uint64(bit)


class _QueueBurstInjector(_Injector):
    def fire(self, ctx: "_HarnessContext") -> None:
        burst = int(self.recipe.intensity)
        for _ in range(burst):
            self._record()
        ctx.submit_extra(count=burst, label=f"burst-{self.recipe.name}")


class _ClockSkewInjector(_Injector):
    def fire(self, ctx: "_HarnessContext") -> None:
        self._record()
        self._m["skew_seconds"].inc(self.recipe.intensity)
        ctx.clock.skew(self.recipe.intensity)


class _WorkerKillInjector(_Injector):
    def fire(self, ctx: "_HarnessContext") -> None:
        # Only meaningful against a ClusterFrontend (the harness routes
        # worker_kill recipes to the cluster phase, so this holds).
        kill = getattr(ctx.server, "kill_worker", None)
        for _ in range(int(self.recipe.intensity)):
            if kill is None or kill() is None:
                break  # nothing left alive to kill
            self._record()


_INJECTORS = {
    "stage_stall": _StallInjector,
    "backend_failure": _DispatchFailInjector,
    "bitflip": _BitflipInjector,
    "queue_burst": _QueueBurstInjector,
    "clock_skew": _ClockSkewInjector,
    "worker_kill": _WorkerKillInjector,
}


class _HarnessContext:
    """Shared state the injectors act on (server, clock, extra futures)."""

    def __init__(
        self,
        server: MatmulServer,
        clock: _SkewClock,
        *,
        m: int,
        n: int,
        q: int,
        deadline_s: float | None,
        seed: int,
    ) -> None:
        self.server = server
        self.clock = clock
        self._shape = (m, n, q)
        self._deadline_s = deadline_s
        self._rng = np.random.default_rng(seed ^ 0x5EED)
        self._lock = threading.Lock()
        self.submitted = 0
        self.futures: list = []
        # (response | exception, completion latency, wrong flag | None)
        self.records: list[tuple] = []

    def _on_done(self, fut, t0: float, ref) -> None:
        latency = time.perf_counter() - t0
        try:
            response = fut.result()
        except BaseException as exc:  # noqa: BLE001 - tallied as dropped
            with self._lock:
                self.records.append((exc, latency, None))
            return
        wrong = None
        if getattr(response, "c", None) is not None:
            wrong = not np.allclose(response.c, ref)
        with self._lock:
            self.records.append((response, latency, wrong))

    def submit_extra(
        self, *, count: int, label: str, backend: str | None = None
    ) -> None:
        m, n, q = self._shape
        for _ in range(count):
            with self._lock:
                self.submitted += 1
                seq = self.submitted
            a = uniform_matrix(m, n, self._rng)
            b = uniform_matrix(n, q, self._rng)
            ref = a @ b
            t0 = time.perf_counter()
            fut = self.server.submit(
                a,
                b,
                deadline_s=self._deadline_s,
                request_id=f"chaos-{label}-{seq}",
                backend=backend,
            )
            fut.add_done_callback(
                lambda f, t0=t0, ref=ref: self._on_done(f, t0, ref)
            )
            with self._lock:
                self.futures.append(fut)

    def settle(self, timeout_s: float = 30.0) -> list[tuple]:
        """Wait for every extra submission to resolve *and* be recorded."""
        for fut in list(self.futures):
            try:
                fut.result(timeout=timeout_s)
            except Exception:
                pass  # tallied via the done callback
        deadline = time.perf_counter() + timeout_s
        while time.perf_counter() < deadline:
            with self._lock:
                if len(self.records) >= self.submitted:
                    break
            time.sleep(0.0005)
        with self._lock:
            return list(self.records)


def _chaos_metrics(registry: MetricsRegistry) -> dict:
    return {
        "injections": registry.counter(
            "abft_chaos_injections_total",
            "Fault injections performed, by recipe kind and target site",
            ("kind", "site"),
        ),
        "stall_seconds": registry.counter(
            "abft_chaos_stall_seconds_total",
            "Injected stage-stall seconds, by pipeline stage",
            ("stage",),
        ),
        "skew_seconds": registry.counter(
            "abft_chaos_skew_seconds_total",
            "Injected deadline-clock skew seconds",
        ),
        "active": registry.gauge(
            "abft_chaos_active_recipes",
            "Recipes whose schedule window is currently armed",
        ),
        "burn": registry.gauge(
            "abft_chaos_burn_rate",
            "Worst multi-window error-budget burn rate of the last run",
            ("window",),
        ),
        "silent_wrong": registry.counter(
            "abft_chaos_silent_wrong_total",
            "Wrong results that claimed clean verification (must stay 0)",
        ),
        "breaches": registry.counter(
            "abft_chaos_slo_breaches_total",
            "SLO breaches observed, by objective",
            ("slo",),
        ),
    }


def _merge_results(
    results: list[LoadgenResult], wall_s: float
) -> LoadgenResult:
    statuses: _TallyCounter = _TallyCounter()
    reasons: _TallyCounter = _TallyCounter()
    merged = LoadgenResult(submitted=0, wall_s=wall_s)
    latencies: list[float] = []
    for r in results:
        merged.submitted += r.submitted
        statuses.update(r.status_counts)
        reasons.update(r.rejection_reasons)
        merged.detected += r.detected
        merged.corrected += r.corrected
        merged.recomputed += r.recomputed
        merged.retry_attempts += r.retry_attempts
        merged.requeued += r.requeued
        merged.dropped += r.dropped
        merged.silent_wrong += r.silent_wrong
        merged.honest_wrong += r.honest_wrong
        merged.max_batch_size = max(merged.max_batch_size, r.max_batch_size)
        latencies.extend(r.latencies_s)
        merged.violations.extend(r.violations)
    merged.status_counts = dict(statuses)
    merged.rejection_reasons = dict(reasons)
    merged.latencies_s = sorted(latencies)
    return merged


def _run_phase(
    recipes: list[ChaosRecipe],
    metrics: dict,
    registry: MetricsRegistry,
    *,
    server,
    engine,
    clock: _SkewClock,
    requests_per_wave: int,
    concurrency: int,
    m: int,
    n: int,
    q: int,
    deadline_s: float | None,
    seed: int,
    sample_interval_s: float,
    drain_margin_s: float,
    samples: list[BurnSample],
    t_offset_s: float,
) -> tuple[list[RecipeOutcome], LoadgenResult, float]:
    """Drive one serving target through one set of recipe windows.

    The target must already be started and warm; it is stopped (drained)
    before returning.  Recipe windows are relative to *this phase's*
    start.  ``engine`` is the hook seam for in-process injectors, or
    ``None`` for a multi-process target (hooks cannot cross a process
    boundary).  Burn samples append to ``samples`` shifted by
    ``t_offset_s``, so a multi-phase run reads as one continuous
    timeline.  Returns (per-recipe outcomes, phase tally, phase wall).
    """
    ctx = _HarnessContext(
        server, clock, m=m, n=n, q=q, deadline_s=deadline_s, seed=seed
    )
    injectors = [_INJECTORS[r.kind](r, metrics) for r in recipes]
    hook_injectors = [
        inj
        for inj in injectors
        if isinstance(inj, (_StallInjector, _DispatchFailInjector, _BitflipInjector))
    ]
    horizon_s = max(r.end_s for r in recipes)
    t0 = time.monotonic()

    def elapsed() -> float:
        return time.monotonic() - t0

    def chaos_hook(event: str, **kwargs) -> None:
        now = elapsed()
        for inj in hook_injectors:
            if inj.recipe.active_at(now):
                inj.handle(event, **kwargs)

    stop = threading.Event()

    def _cumulative() -> BurnSample:
        snap = serve_counter_snapshot(registry)
        good = snap.get(
            ("abft_serve_requests_total", ("outcome", "completed")), 0
        )
        bad = snap.get(
            ("abft_serve_requests_total", ("outcome", "rejected")), 0
        ) + snap.get(("abft_serve_dropped_total",), 0)
        return BurnSample(
            t_s=t_offset_s + elapsed(), good=int(good), bad=int(bad)
        )

    def _sampler() -> None:
        while not stop.wait(sample_interval_s):
            samples.append(_cumulative())

    wave_results: list[LoadgenResult] = []

    def _traffic() -> None:
        wave = 0
        while not stop.is_set():
            wave += 1
            wave_results.append(
                run_loadgen(
                    server=server,
                    requests=requests_per_wave,
                    concurrency=concurrency,
                    m=m,
                    n=n,
                    q=q,
                    deadline_s=deadline_s,
                    seed=seed + wave,
                    verify_results=True,
                    reconcile=False,
                )
            )
            if elapsed() >= horizon_s + drain_margin_s:
                stop.set()

    def _scheduler() -> None:
        pending = sorted(injectors, key=lambda i: i.recipe.start_s)
        for inj in pending:
            delay = inj.recipe.start_s - elapsed()
            if delay > 0 and stop.wait(delay):
                return
            metrics["active"].inc()
            try:
                inj.fire(ctx)
            finally:
                # Window-end bookkeeping runs on this thread too: wait
                # out the duration before disarming the gauge, unless a
                # later recipe is due first — then just move on and let
                # the final sweep settle the gauge.
                remaining = inj.recipe.end_s - elapsed()
                nxt = pending.index(inj) + 1
                budget = (
                    min(remaining, pending[nxt].recipe.start_s - elapsed())
                    if nxt < len(pending)
                    else remaining
                )
                if budget > 0:
                    stop.wait(budget)
                metrics["active"].dec()

    if engine is not None:
        engine.set_chaos_hook(chaos_hook)
    sampler = threading.Thread(target=_sampler, name="chaos-sampler")
    scheduler = threading.Thread(target=_scheduler, name="chaos-scheduler")
    traffic = threading.Thread(target=_traffic, name="chaos-traffic")
    wall_t0 = time.perf_counter()
    sampler.start()
    scheduler.start()
    traffic.start()
    try:
        traffic.join()
        stop.set()
        scheduler.join()
        sampler.join()
    finally:
        stop.set()
        if engine is not None:
            engine.set_chaos_hook(None)
        server.stop(drain=True)
    metrics["active"].set(0)

    # Settle the extra (burst/probe) futures and fold them into the tally.
    extra_records = ctx.settle()
    extra_tally = _tally(
        extra_records, ctx.submitted, wall=0.0, deadline_s=deadline_s
    )
    wall_s = time.perf_counter() - wall_t0
    result = _merge_results(wave_results + [extra_tally], wall_s)
    samples.append(_cumulative())
    outcomes = [
        RecipeOutcome(recipe=inj.recipe, injections=inj.injections)
        for inj in injectors
    ]
    return outcomes, result, wall_s


def run_chaos(
    recipes: list[ChaosRecipe],
    slo: SLOSpec | None = None,
    *,
    requests_per_wave: int = 24,
    concurrency: int = 8,
    m: int = 96,
    n: int = 96,
    q: int = 12,
    deadline_s: float | None = 0.5,
    seed: int = 0,
    serve_config: ServeConfig | None = None,
    registry: MetricsRegistry | None = None,
    sample_interval_s: float = 0.05,
    drain_margin_s: float = 0.3,
    cluster_workers: int = 2,
) -> ChaosReport:
    """Run a recipe suite against live serving stacks under load; returns
    the full :class:`~repro.chaos.report.ChaosReport` (it does not raise
    on breach — gating is the caller's job, see ``chaos_slo_gate``).

    ``worker_kill`` recipes run in a separate **cluster phase** against a
    :class:`~repro.cluster.frontend.ClusterFrontend` of
    ``cluster_workers`` worker processes, after the single-process phase
    runs every other kind; each phase's recipe windows are relative to
    its own start.  Both phases share the registry, and the tally,
    reconciliation and SLO verdict cover their combined traffic.

    Parameters
    ----------
    recipes:
        The suite; windows are relative to their phase's start and may
        overlap.
    slo:
        Objectives to assert; defaults to ``SLOSpec()``.
    requests_per_wave / concurrency / m / n / q / deadline_s:
        Background-traffic shape per phase: closed-loop loadgen waves
        repeat until the phase's last recipe window closes (plus
        ``drain_margin_s``).
    registry:
        Metrics registry; defaults to a **private** one so counter
        reconciliation sees only this run's traffic.  Pass the process
        registry to surface ``abft_chaos_*`` in ``--telemetry-out``.
    cluster_workers:
        Worker-process count of the cluster phase's frontend.
    """
    if not recipes:
        raise ConfigurationError("run_chaos needs at least one recipe")
    slo = slo if slo is not None else SLOSpec()
    registry = registry if registry is not None else MetricsRegistry()
    metrics = _chaos_metrics(registry)

    server_recipes = [r for r in recipes if r.kind != "worker_kill"]
    cluster_recipes = [r for r in recipes if r.kind == "worker_kill"]

    counters_before = serve_counter_snapshot(registry)
    samples: list[BurnSample] = []
    outcomes: list[RecipeOutcome] = []
    phase_results: list[LoadgenResult] = []
    wall_s = 0.0
    traffic_shape = dict(
        requests_per_wave=requests_per_wave,
        concurrency=concurrency,
        m=m,
        n=n,
        q=q,
        deadline_s=deadline_s,
        seed=seed,
        sample_interval_s=sample_interval_s,
        drain_margin_s=drain_margin_s,
        samples=samples,
    )

    if server_recipes:
        clock = _SkewClock()
        server = MatmulServer(serve_config, registry=registry, clock=clock)
        server.start()
        phase_outcomes, result, phase_wall = _run_phase(
            server_recipes,
            metrics,
            registry,
            server=server,
            engine=server.engine,
            clock=clock,
            t_offset_s=wall_s,
            **traffic_shape,
        )
        outcomes.extend(phase_outcomes)
        phase_results.append(result)
        wall_s += phase_wall

    if cluster_recipes:
        # Imported here: the cluster package spawns processes and is only
        # needed when a suite actually exercises process loss.
        from ..cluster import ClusterConfig, ClusterFrontend

        cluster_config = ClusterConfig(
            serve=serve_config if serve_config is not None else ServeConfig(),
            num_workers=cluster_workers,
            # Tight supervision: requeued requests stall for one death
            # detection, which must stay well inside the latency SLO.
            heartbeat_interval_s=0.05,
            heartbeat_timeout_s=0.5,
        )
        frontend = ClusterFrontend(cluster_config, registry=registry)
        # Interpreter spawn must not bill against the phase's SLO clock.
        frontend.wait_ready(timeout=60.0)
        phase_outcomes, result, phase_wall = _run_phase(
            cluster_recipes,
            metrics,
            registry,
            server=frontend,
            engine=None,
            clock=_SkewClock(),
            t_offset_s=wall_s,
            **traffic_shape,
        )
        outcomes.extend(phase_outcomes)
        phase_results.append(result)
        wall_s += phase_wall

    combined = _merge_results(phase_results, wall_s)
    diffs = reconcile_counters(
        combined,
        counter_delta(counters_before, serve_counter_snapshot(registry)),
    )
    breaches = evaluate_slo(
        slo,
        p99_s=combined.p99_s,
        served=combined.served,
        silent_wrong=combined.silent_wrong,
        dropped=combined.dropped,
        reconciliation_diffs=diffs,
        samples=samples,
    )

    rows = burn_rates(samples, slo)
    worst_short = max((r["short"] for r in rows), default=0.0)
    worst_long = max((r["long"] for r in rows), default=0.0)
    worst_burn = max((r["burn"] for r in rows), default=0.0)
    metrics["burn"].labels(window="short").set(worst_short)
    metrics["burn"].labels(window="long").set(worst_long)
    if combined.silent_wrong:
        metrics["silent_wrong"].inc(combined.silent_wrong)
    for breach in breaches:
        metrics["breaches"].labels(slo=breach.slo).inc()

    return ChaosReport(
        recipes=outcomes,
        slo=slo,
        result=combined,
        breaches=breaches,
        reconciliation_diffs=diffs,
        burn={
            "worst_short": worst_short,
            "worst_long": worst_long,
            "worst_multi_window": worst_burn,
        },
        wall_s=wall_s,
    )
