"""Service-level objectives the chaos harness asserts.

An :class:`SLOSpec` declares what "survived the chaos" means:

* a **p99 latency ceiling** over client-observed served latencies;
* the **zero-silent-wrong-answer invariant** — every response that
  differs from the reference product must be honestly flagged
  (``detected=True`` or an ``UNCHECKED`` status), and the client-side
  tally must reconcile against the ``abft_serve_*`` counters;
* a **multi-window burn rate** on the error budget: the fraction of bad
  requests (rejected + dropped), normalised by ``error_budget``, must
  not exceed ``burn_rate_limit`` *simultaneously* over a short and a
  long trailing window.  The two-window rule is the standard SRE
  fast-burn alert shape: the short window catches the spike, the long
  window confirms it is sustained rather than a blip.

:func:`evaluate_slo` turns an observed run into a list of
:class:`SLOBreach` findings — an empty list is a pass.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["SLOSpec", "SLOBreach", "BurnSample", "burn_rates", "evaluate_slo"]


@dataclass(frozen=True)
class SLOSpec:
    """Declared serving objectives for one chaos run.

    Attributes
    ----------
    p99_latency_s:
        Ceiling on the p99 of client-observed served latencies.
    error_budget:
        Tolerated bad-request fraction (rejected + dropped over
        submitted).  The burn rate is the observed bad fraction divided
        by this budget, so a run burning exactly its budget has rate 1.
    burn_rate_limit:
        Maximum tolerated burn rate sustained over *both* windows.
    short_window_s / long_window_s:
        Trailing multi-window lengths; the short window must be strictly
        shorter than the long one.
    max_dropped:
        Ceiling on requests that died without a response (default 0 —
        a drop is an accounting bug, not load shedding).
    """

    p99_latency_s: float = 0.5
    error_budget: float = 0.35
    burn_rate_limit: float = 2.0
    short_window_s: float = 0.5
    long_window_s: float = 2.0
    max_dropped: int = 0

    def __post_init__(self) -> None:
        if self.p99_latency_s <= 0:
            raise ConfigurationError(
                f"p99_latency_s must be positive, got {self.p99_latency_s}"
            )
        if not 0 < self.error_budget <= 1:
            raise ConfigurationError(
                f"error_budget must lie in (0, 1], got {self.error_budget}"
            )
        if self.burn_rate_limit <= 0:
            raise ConfigurationError(
                f"burn_rate_limit must be positive, got {self.burn_rate_limit}"
            )
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ConfigurationError("SLO windows must be positive seconds")
        if self.short_window_s >= self.long_window_s:
            raise ConfigurationError(
                f"short_window_s ({self.short_window_s}) must be shorter "
                f"than long_window_s ({self.long_window_s})"
            )
        if self.max_dropped < 0:
            raise ConfigurationError(
                f"max_dropped must be >= 0, got {self.max_dropped}"
            )

    def to_dict(self) -> dict:
        return {
            "p99_latency_s": self.p99_latency_s,
            "error_budget": self.error_budget,
            "burn_rate_limit": self.burn_rate_limit,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "max_dropped": self.max_dropped,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SLOSpec":
        known = set(cls.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SLO fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


@dataclass(frozen=True)
class BurnSample:
    """One cumulative accounting sample: totals observed by time ``t_s``."""

    t_s: float
    good: int
    bad: int


@dataclass(frozen=True)
class SLOBreach:
    """One violated objective (``slo``), with the measured value and the
    declared threshold it crossed."""

    slo: str
    measured: float
    threshold: float
    detail: str

    def to_dict(self) -> dict:
        return {
            "slo": self.slo,
            "measured": self.measured,
            "threshold": self.threshold,
            "detail": self.detail,
        }


def _window_rate(
    samples: list[BurnSample], idx: int, window_s: float, budget: float
) -> float:
    """Budget-normalised bad fraction over the trailing window at sample
    ``idx`` (0 when the window saw no traffic)."""
    end = samples[idx]
    start_t = end.t_s - window_s
    base = BurnSample(0.0, 0, 0)
    for sample in samples[:idx]:
        if sample.t_s <= start_t:
            base = sample
        else:
            break
    good = end.good - base.good
    bad = end.bad - base.bad
    total = good + bad
    if total <= 0:
        return 0.0
    return (bad / total) / budget


def burn_rates(samples: list[BurnSample], spec: SLOSpec) -> list[dict]:
    """Per-sample short/long burn rates for a cumulative sample series.

    Returns one ``{"t_s", "short", "long", "burn"}`` row per sample,
    where ``burn = min(short, long)`` — the multi-window rate that must
    stay under :attr:`SLOSpec.burn_rate_limit`.
    """
    ordered = sorted(samples, key=lambda s: s.t_s)
    rows = []
    for idx in range(len(ordered)):
        short = _window_rate(
            ordered, idx, spec.short_window_s, spec.error_budget
        )
        long_ = _window_rate(ordered, idx, spec.long_window_s, spec.error_budget)
        rows.append(
            {
                "t_s": ordered[idx].t_s,
                "short": short,
                "long": long_,
                "burn": min(short, long_),
            }
        )
    return rows


def evaluate_slo(
    spec: SLOSpec,
    *,
    p99_s: float,
    served: int,
    silent_wrong: int,
    dropped: int,
    reconciliation_diffs: list[str],
    samples: list[BurnSample],
) -> list[SLOBreach]:
    """Check one observed run against ``spec``; empty list == pass."""
    breaches: list[SLOBreach] = []
    if p99_s > spec.p99_latency_s:
        breaches.append(
            SLOBreach(
                slo="p99_latency",
                measured=p99_s,
                threshold=spec.p99_latency_s,
                detail=(
                    f"served p99 latency {p99_s * 1e3:.1f} ms exceeds the "
                    f"{spec.p99_latency_s * 1e3:.1f} ms ceiling "
                    f"({served} served)"
                ),
            )
        )
    if silent_wrong > 0:
        breaches.append(
            SLOBreach(
                slo="silent_wrong",
                measured=float(silent_wrong),
                threshold=0.0,
                detail=(
                    f"{silent_wrong} response(s) returned a wrong result "
                    "while claiming clean verification — the zero-silent-"
                    "wrong-answer invariant is absolute"
                ),
            )
        )
    if dropped > spec.max_dropped:
        breaches.append(
            SLOBreach(
                slo="dropped",
                measured=float(dropped),
                threshold=float(spec.max_dropped),
                detail=(
                    f"{dropped} request(s) died without a response "
                    f"(ceiling {spec.max_dropped})"
                ),
            )
        )
    if reconciliation_diffs:
        breaches.append(
            SLOBreach(
                slo="accounting",
                measured=float(len(reconciliation_diffs)),
                threshold=0.0,
                detail="; ".join(reconciliation_diffs[:5])
                + ("; ..." if len(reconciliation_diffs) > 5 else ""),
            )
        )
    rows = burn_rates(samples, spec)
    worst = max(rows, key=lambda r: r["burn"], default=None)
    if worst is not None and worst["burn"] > spec.burn_rate_limit:
        breaches.append(
            SLOBreach(
                slo="burn_rate",
                measured=worst["burn"],
                threshold=spec.burn_rate_limit,
                detail=(
                    f"error-budget burn rate {worst['burn']:.2f} sustained "
                    f"over both the {spec.short_window_s:g}s and "
                    f"{spec.long_window_s:g}s windows at "
                    f"t={worst['t_s']:.2f}s (limit {spec.burn_rate_limit:g})"
                ),
            )
        )
    return breaches
