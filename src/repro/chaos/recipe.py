"""Declarative chaos recipes: what to break, where, how hard, and when.

A :class:`ChaosRecipe` names one fault to inject into a live serving
stack while load flows through it.  Recipes are frozen dataclasses with
a JSON round-trip (:func:`load_recipes` / :func:`dump_recipes`) so a
suite can live next to the benchmarks and be replayed bit-for-bit in CI.

The supported kinds map onto the system fault model — component
slowdown and loss, not just silent data corruption:

``stage_stall``
    Inject latency into one engine pipeline stage (``encode`` /
    ``multiply`` / ``check``) via the engine's chaos seam.  ``site`` is
    the stage name; ``intensity`` is the stall in seconds per stage
    completion.
``backend_failure``
    Force GEMM dispatch on a non-numpy backend to raise, exercising the
    engine's never-silent numpy fallback.  ``site`` is the backend name
    (``"numpy"`` is refused — it is the terminal fallback and a failure
    there would strand requests); ``intensity`` is the failure
    probability per dispatch in ``[0, 1]``.
``queue_burst``
    Saturate the admission queue with a burst of extra requests at the
    window start.  ``site`` is ``"admission"``; ``intensity`` is the
    number of burst requests.
``bitflip``
    Flip a high mantissa bit of one element of the GEMM result in
    flight, reusing the fault-campaign injector arithmetic — the check
    stage must detect it.  ``site`` is ``"gemm"``; ``intensity`` is the
    flip probability per result in ``[0, 1]``.
``clock_skew``
    Jump the server's deadline clock forward by ``intensity`` seconds at
    the window start, expiring in-flight deadlines early.  ``site`` is
    ``"server"``.
``worker_kill``
    SIGKILL ``intensity`` live worker processes of a sharded
    :class:`~repro.cluster.frontend.ClusterFrontend` at the window start
    — the process-loss fault model.  The supervisor must detect each
    death, re-queue the shard's in-flight requests to survivors and
    restart the worker; the harness runs these recipes in a dedicated
    cluster phase (an engine hook cannot cross a process boundary).
    ``site`` is ``"worker"``; ``intensity`` is a whole kill count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigurationError

__all__ = [
    "CHAOS_KINDS",
    "ChaosRecipe",
    "load_recipes",
    "dump_recipes",
    "default_quick_suite",
]

#: Supported fault kinds, in documentation order.
CHAOS_KINDS = (
    "stage_stall",
    "backend_failure",
    "queue_burst",
    "bitflip",
    "clock_skew",
    "worker_kill",
)

_STAGES = ("encode", "multiply", "check")

#: Expected ``site`` values per kind (``None`` = any non-empty string).
_SITE_RULES = {
    "stage_stall": _STAGES,
    "backend_failure": None,
    "queue_burst": ("admission",),
    "bitflip": ("gemm",),
    "clock_skew": ("server",),
    "worker_kill": ("worker",),
}


@dataclass(frozen=True)
class ChaosRecipe:
    """One scheduled fault injection.

    Attributes
    ----------
    kind:
        One of :data:`CHAOS_KINDS`.
    site:
        Where the fault lands — stage name for ``stage_stall``, backend
        name for ``backend_failure``, fixed tokens otherwise (see the
        module docstring).
    intensity:
        Kind-specific magnitude: seconds (``stage_stall``,
        ``clock_skew``), probability (``backend_failure``, ``bitflip``)
        or request count (``queue_burst``).
    start_s / duration_s:
        The schedule window, in seconds relative to harness start.  The
        fault is armed for ``[start_s, start_s + duration_s)``.
    seed:
        Seed of the recipe's private RNG (probabilistic kinds).
    name:
        Display label; synthesised from the fields when empty.
    """

    kind: str
    site: str
    intensity: float
    start_s: float = 0.0
    duration_s: float = 1.0
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r}; expected one of {CHAOS_KINDS}"
            )
        allowed = _SITE_RULES[self.kind]
        if allowed is not None and self.site not in allowed:
            raise ConfigurationError(
                f"chaos kind {self.kind!r} targets sites {allowed}, "
                f"got {self.site!r}"
            )
        if not self.site:
            raise ConfigurationError("chaos recipe needs a non-empty site")
        if self.kind == "backend_failure" and self.site == "numpy":
            raise ConfigurationError(
                "backend_failure cannot target 'numpy': it is the terminal "
                "never-silent fallback, so an injected failure there would "
                "strand requests instead of exercising recovery"
            )
        if self.kind in ("backend_failure", "bitflip"):
            if not 0.0 <= self.intensity <= 1.0:
                raise ConfigurationError(
                    f"{self.kind} intensity is a probability in [0, 1], "
                    f"got {self.intensity}"
                )
        elif self.kind in ("queue_burst", "worker_kill"):
            if self.intensity < 1 or self.intensity != int(self.intensity):
                what = (
                    "request" if self.kind == "queue_burst" else "kill"
                )
                raise ConfigurationError(
                    f"{self.kind} intensity is a whole {what} count >= 1, "
                    f"got {self.intensity}"
                )
        elif self.intensity <= 0:
            raise ConfigurationError(
                f"{self.kind} intensity must be positive seconds, "
                f"got {self.intensity}"
            )
        if self.start_s < 0:
            raise ConfigurationError(
                f"start_s must be >= 0, got {self.start_s}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if not self.name:
            object.__setattr__(self, "name", self.default_name())

    def default_name(self) -> str:
        return f"{self.kind}:{self.site}@{self.intensity:g}"

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def active_at(self, t_s: float) -> bool:
        """Whether the recipe window is armed ``t_s`` seconds into a run."""
        return self.start_s <= t_s < self.end_s

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "intensity": self.intensity,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosRecipe":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown chaos recipe fields: {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)


def load_recipes(path: str | Path) -> list[ChaosRecipe]:
    """Load a recipe suite from a JSON file.

    Accepts either a bare list of recipe objects or a
    ``{"recipes": [...]}`` wrapper (the :func:`dump_recipes` format).
    """
    raw = json.loads(Path(path).read_text())
    if isinstance(raw, dict):
        raw = raw.get("recipes")
    if not isinstance(raw, list) or not raw:
        raise ConfigurationError(
            f"{path}: expected a non-empty JSON list of chaos recipes "
            "(or a {'recipes': [...]} object)"
        )
    return [ChaosRecipe.from_dict(entry) for entry in raw]


def dump_recipes(recipes: list[ChaosRecipe], path: str | Path) -> None:
    """Write a recipe suite as replayable JSON."""
    payload = {"recipes": [r.to_dict() for r in recipes]}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def default_quick_suite() -> list[ChaosRecipe]:
    """The CI quick suite: one recipe per fault kind, staggered windows.

    Sized so the whole run (including drain) finishes in a few seconds —
    this is what ``chaos_slo_gate`` and the ``chaos-soak`` CI job replay.
    """
    return [
        ChaosRecipe(
            kind="stage_stall", site="multiply", intensity=0.002,
            start_s=0.0, duration_s=0.8, seed=1,
        ),
        ChaosRecipe(
            kind="backend_failure", site="blocked", intensity=1.0,
            start_s=0.8, duration_s=0.8, seed=2,
        ),
        ChaosRecipe(
            kind="queue_burst", site="admission", intensity=64,
            start_s=1.6, duration_s=0.8, seed=3,
        ),
        ChaosRecipe(
            kind="bitflip", site="gemm", intensity=0.25,
            start_s=2.4, duration_s=0.8, seed=4,
        ),
        ChaosRecipe(
            kind="clock_skew", site="server", intensity=0.05,
            start_s=3.2, duration_s=0.8, seed=5,
        ),
        # Runs in the harness's separate cluster phase (its window is
        # relative to that phase's start, not the server phase's).
        ChaosRecipe(
            kind="worker_kill", site="worker", intensity=1,
            start_s=0.2, duration_s=1.0, seed=6,
        ),
    ]
