"""Chaos engineering for the serving layer: recipes, SLOs, harness.

The package runs declarative fault recipes (:class:`ChaosRecipe`)
against a live :class:`~repro.serve.server.MatmulServer` under
closed-loop load, then asserts an :class:`SLOSpec` — p99 ceilings, the
zero-silent-wrong-answer invariant, counter reconciliation and
multi-window error-budget burn rates.  See ``docs/OBSERVABILITY.md``
("Chaos & SLO gates") for the recipe schema and the ``abft_chaos_*``
metric inventory, and ``aabft chaos run`` / ``aabft ci-gate`` for the
CLI entry points.
"""

from .harness import InjectedFault, run_chaos
from .recipe import (
    CHAOS_KINDS,
    ChaosRecipe,
    default_quick_suite,
    dump_recipes,
    load_recipes,
)
from .report import ChaosReport, RecipeOutcome
from .slo import BurnSample, SLOBreach, SLOSpec, burn_rates, evaluate_slo

__all__ = [
    "CHAOS_KINDS",
    "ChaosRecipe",
    "load_recipes",
    "dump_recipes",
    "default_quick_suite",
    "SLOSpec",
    "SLOBreach",
    "BurnSample",
    "burn_rates",
    "evaluate_slo",
    "ChaosReport",
    "RecipeOutcome",
    "InjectedFault",
    "run_chaos",
]
