"""Execution policies for the unified batch-submission API.

:meth:`repro.engine.MatmulEngine.execute_batch` accepts a list of
``(a, b)`` operand pairs plus one :class:`ExecutionPolicy` describing
*how* the batch should run.  The policy collapses what used to be three
separate entry points (per-call ``matmul``, thread-fanned ``matmul_many``,
vectorised ``matmul_fused``) and the new stage-pipelined executor
(:mod:`repro.engine.pipeline`) into a single declarative knob:

* ``mode="serial"`` — per-pair execution, fanned across the engine's
  thread pool when it has more than one worker (the old ``matmul_many``);
* ``mode="fused"`` — the vectorised single-pass batch pipeline (the old
  ``matmul_fused``);
* ``mode="pipelined"`` — chunked execution with encode/multiply/check
  stage slots scheduled by a cost model, overlapping the encode of chunk
  ``i+1`` with the multiply of chunk ``i`` and deferring checks into
  pipeline bubbles;
* ``mode="auto"`` (default) — the engine picks the strongest mode whose
  preconditions the batch satisfies (pipelined, then fused, then serial).

Every mode is **bitwise identical** to sequential
:meth:`~repro.engine.MatmulEngine.matmul` calls; modes only trade
scheduling overhead against amortisation, never the answer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

from ..errors import ConfigurationError

__all__ = ["ExecutionPolicy", "EXECUTION_MODES"]

#: Valid execution modes, weakest amortisation first.
EXECUTION_MODES = ("auto", "serial", "fused", "pipelined")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How :meth:`~repro.engine.MatmulEngine.execute_batch` runs a batch.

    Attributes
    ----------
    mode:
        ``"auto"``, ``"serial"``, ``"fused"`` or ``"pipelined"``.  An
        explicitly requested batched mode whose preconditions the batch
        does not meet (heterogeneous shapes, non-``aabft`` scheme, …)
        falls back down the chain — the fallback is counted in
        ``abft_pipeline_fallbacks_total``, never silent.
    backend:
        Pin the GEMM stage to a named compute backend for this batch;
        ``None`` keeps the config's choice (``"auto"`` negotiation by
        default).
    exclude_backends:
        Backends negotiation must not consider for this batch (merged
        with the config's own exclusions).
    deadline_s:
        Optional compute-budget hint in seconds for the whole batch.  The
        pipelined executor keeps its speculative encode-prefetch window at
        1 when the cost model predicts the batch runs longer than the
        budget (no speculative work past a blown deadline); the serving
        layer threads its per-batch remaining deadline through here.
    chunk_size:
        Pairs per pipeline chunk (``None`` lets the cost model choose
        from the engine's per-stage timings and worker count).
    max_inflight:
        Upper bound on encode-prefetched chunks the pipelined executor
        keeps in flight ahead of the multiply stage.
    fusion:
        Online-ABFT fusion strategy for this batch: ``"fused"``,
        ``"separate"`` or ``"auto"`` (negotiated).  ``None`` keeps the
        config's own ``fusion`` knob.
    """

    mode: str = "auto"
    backend: str | None = None
    exclude_backends: tuple[str, ...] = ()
    deadline_s: float | None = None
    chunk_size: int | None = None
    max_inflight: int = 3
    fusion: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"mode must be one of {EXECUTION_MODES}, got {self.mode!r}"
            )
        if self.backend is not None and not isinstance(self.backend, str):
            raise ConfigurationError(
                f"backend must be a backend name or None, got "
                f"{type(self.backend).__name__}"
            )
        object.__setattr__(
            self, "exclude_backends", tuple(self.exclude_backends)
        )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigurationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.fusion not in (None, "auto", "fused", "separate"):
            raise ConfigurationError(
                f"fusion must be None, 'auto', 'fused' or 'separate', got "
                f"{self.fusion!r}"
            )

    def replace(self, **changes) -> "ExecutionPolicy":
        """A copy with the given fields replaced (validated again)."""
        return _dc_replace(self, **changes)
