"""Fused batched execution of same-shape protected multiplications.

``execute_batch(..., policy=ExecutionPolicy(mode="fused"))`` executes a
batch of
``(a_i, b_i)`` products whose shapes, dtypes and config all agree as *one*
fused pipeline instead of ``k`` independent calls:

* **operand dedup** — operands appearing in several pairs (the serving
  pattern: one weight matrix against many activations) are encoded once
  and reused everywhere, where per-request execution re-encodes them
  every time;
* **batched tolerance grids** — upper-bound grids and epsilon arrays for
  all pairs sharing a left operand are evaluated through single
  :func:`~repro.bounds.upper_bound.upper_bound_grid_arrays` /
  ``epsilon_array`` calls over the concatenated column top-p data;
* **single dispatch** — one plan lookup, one config resolution and one
  set of stage timers for the whole batch.

Results — data, full-checksum matrices, reports, tolerances — are
**bitwise identical** to sequential :meth:`~repro.engine.MatmulEngine.
matmul` calls (asserted by ``tests/serve/test_batch.py``): encoding and
discrepancy extraction reuse the exact single-call code paths
(:meth:`~repro.engine.MatmulEngine._encode_with_plan`,
:func:`~repro.abft.checking.column_discrepancies` /
:func:`~repro.abft.checking.row_discrepancies`), and the batched grid
evaluation is elementwise in the concatenated data, so slicing the
batched grid reproduces the per-pair grid bit for bit.  (Stacking
operands into 3-D arrays to batch the encode reductions themselves was
measured slower — the working set falls out of cache — so encoding stays
per-matrix.)

Batches that do not meet the fast-path preconditions (non-``aabft``
scheme, heterogeneous shapes or dtypes) fall back to the serial
thread-fanned path of :meth:`~repro.engine.MatmulEngine.execute_batch`.

On a single-core host this is where a serving layer's micro-batching
speedup comes from: the per-call Python overhead is amortised over the
batch while the BLAS work stays identical.
"""

from __future__ import annotations

import time

import numpy as np

from ..abft.checking import (
    CheckReport,
    build_report,
    column_discrepancies,
    row_discrepancies,
)
from ..abft.encoding import strip_encoding
from ..abft.providers import AABFTEpsilonProvider
from ..abft.result import AbftResult
from ..bounds.upper_bound import upper_bound_grid_arrays

__all__ = ["fused_supported", "run_fused"]


def fused_supported(a_items, b_items, cfg) -> bool:
    """Whether the fused fast path applies to this expanded batch."""
    from .engine import EncodedOperand, _operand_dtype, _resolve_dtype

    if cfg.scheme != "aabft" or len(a_items) < 2:
        return False
    # Explicit storage dtypes resolve through _resolve_storage_compute
    # (and may quantise results); the serial path owns that logic.
    if cfg.dtype is not None:
        return False

    def shape_of(item):
        if isinstance(item, EncodedOperand):
            return item.shape
        arr = np.asarray(item)
        return arr.shape if arr.ndim == 2 else None

    a_shapes = {shape_of(x) for x in a_items}
    b_shapes = {shape_of(x) for x in b_items}
    if len(a_shapes) != 1 or len(b_shapes) != 1:
        return False
    a_shape = next(iter(a_shapes))
    b_shape = next(iter(b_shapes))
    if a_shape is None or b_shape is None or a_shape[1] != b_shape[0]:
        return False
    # Batched top-p has the same validity window as the per-call path.
    if not 1 <= cfg.p <= a_shape[1]:
        return False
    # The computation dtype must resolve identically for every pair.
    dtypes = [_operand_dtype(x) for x in a_items + b_items]
    resolved = _resolve_dtype(*dtypes)
    return all(
        _resolve_dtype(_operand_dtype(a), _operand_dtype(b)) == resolved
        for a, b in zip(a_items, b_items)
    )


def run_fused(engine, a_items, b_items, cfg) -> list:
    """Execute the expanded batch through the fused pipeline.

    Preconditions (:func:`fused_supported`) must hold.
    """
    from .engine import EncodedOperand, _operand_dtype, _resolve_dtype

    dtype = _resolve_dtype(*[_operand_dtype(x) for x in a_items + b_items])
    first_a, first_b = a_items[0], b_items[0]
    m, n = (
        first_a.shape
        if isinstance(first_a, EncodedOperand)
        else np.asarray(first_a).shape
    )
    q = (
        first_b.shape[1]
        if isinstance(first_b, EncodedOperand)
        else np.asarray(first_b).shape[1]
    )
    cfg, selection_fallback, fused_fallback = engine._negotiate(
        cfg, m, n, q, dtype
    )
    plan, _hit = engine._plans.get(m, n, q, dtype, cfg)

    # --- encode (deduplicated; distinct right operands batched) ---------
    t0 = time.perf_counter()
    enc_a, fresh_a = _resolve_side(engine, a_items, "a", cfg, plan, dtype)
    enc_b, fresh_b = _resolve_side(engine, b_items, "b", cfg, plan, dtype)
    engine._add_seconds("encode", time.perf_counter() - t0)

    c_fcs = []
    backends_used = []
    dispatch_fallbacks = []
    if cfg.fusion == "fused":
        # --- fused online multiply+check (grids first, then the tile
        # loops; reports come straight out of the in-loop accumulators) --
        t0 = time.perf_counter()
        col_eps, row_eps, grid_backing = _batch_epsilon_grids(
            enc_a, enc_b, cfg, plan
        )
        check_s = time.perf_counter() - t0  # grid build is check work
        reports = []
        for ea, eb, ce, re_ in zip(enc_a, enc_b, col_eps, row_eps):
            outcome, used, fallback = engine._fused_online_gemm(
                plan, cfg, ea.array, eb.array, ce, re_
            )
            t1 = time.perf_counter()
            reports.append(engine._fused_report(outcome, ce, re_, plan))
            check_s += outcome.check_seconds + (time.perf_counter() - t1)
            c_fcs.append(outcome.out)
            backends_used.append(used)
            dispatch_fallbacks.append(fallback)
        for buf in grid_backing:
            plan.pool.give(buf)
        for enc in fresh_a + fresh_b:
            plan.pool.give(enc.array)
        engine._add_seconds(
            "multiply", max(0.0, time.perf_counter() - t0 - check_s)
        )
        engine._add_seconds("check", check_s)
    else:
        # --- multiply (backend-dispatched per pair: bitwise == single) --
        t0 = time.perf_counter()
        for ea, eb in zip(enc_a, enc_b):
            c_fc, used, fallback = engine._dispatch_gemm(
                plan, ea.array, eb.array
            )
            c_fcs.append(c_fc)
            backends_used.append(used)
            dispatch_fallbacks.append(fallback)
        engine._add_seconds("multiply", time.perf_counter() - t0)
        # Freshly encoded buffers are consumed by the multiplies; results
        # keep only top-p arrays, so they recycle (user handles are
        # untouched).
        for enc in fresh_a + fresh_b:
            plan.pool.give(enc.array)

        # --- check (tolerance grids batched per distinct pair) ----------
        t0 = time.perf_counter()
        col_eps, row_eps, grid_backing = _batch_epsilon_grids(
            enc_a, enc_b, cfg, plan
        )
        reports = [
            _check_one(c_fc, ce, re_, plan)
            for c_fc, ce, re_ in zip(c_fcs, col_eps, row_eps)
        ]
        # Reports keep only discrepancy arrays; the batched tolerance
        # grids (the backing stores of the per-pair slices) recycle.
        for buf in grid_backing:
            plan.pool.give(buf)
        engine._add_seconds("check", time.perf_counter() - t0)

    results = []
    for c_fc, ea, eb, report, used, dispatch_fb in zip(
        c_fcs, enc_a, enc_b, reports, backends_used, dispatch_fallbacks
    ):
        c = strip_encoding(
            c_fc, plan.row_layout, plan.col_layout, ea.padding, eb.padding
        )
        provider = AABFTEpsilonProvider.from_arrays(
            scheme=plan.scheme,
            row_values=ea.top_values,
            row_indices=ea.top_indices,
            col_values=eb.top_values,
            col_indices=eb.top_indices,
            row_layout=plan.row_layout,
            col_layout=plan.col_layout,
            inner_dim=plan.n,
            epsilon_floor=cfg.epsilon_floor,
        )
        engine._m_calls.inc()
        if report.error_detected:
            engine._m_detections.inc()
        results.append(
            AbftResult(
                c=c,
                c_fc=c_fc,
                report=report,
                row_layout=plan.row_layout,
                col_layout=plan.col_layout,
                provider=provider,
                backend=used,
                backend_fallback=selection_fallback or dispatch_fb,
                fused=cfg.fusion == "fused",
                fused_fallback=fused_fallback,
            )
        )
    return results


def _resolve_side(engine, items, side, cfg, plan, dtype) -> tuple[list, list]:
    """Encoded operands for one side: dedupe, validate handles, batch-encode.

    Returns ``(operands, fresh)`` where ``fresh`` lists each *internally*
    encoded operand once — their buffers are pool-recyclable after the
    multiply, unlike user-supplied handles.
    """
    from .engine import EncodedOperand

    encoded: dict[int, object] = {}
    raw_ids: list[int] = []
    raw_arrays: list[np.ndarray] = []
    for item in items:
        key = id(item)
        if key in encoded:
            continue
        if isinstance(item, EncodedOperand):
            engine._check_handle(item, side, cfg, dtype)
            encoded[key] = item
        else:
            encoded[key] = None  # placeholder, filled below
            raw_ids.append(key)
            raw_arrays.append(np.asarray(item).astype(dtype, copy=False))

    fresh = []
    for key, arr in zip(raw_ids, raw_arrays):
        encoded[key] = engine._encode_with_plan(arr, side, cfg, plan)
        fresh.append(encoded[key])

    out = []
    seen: set[int] = set()
    for item in items:
        key = id(item)
        # A pre-encoded handle, or any dedup hit after the first use, is an
        # operand served without fresh encoding work — an encode reuse.
        if isinstance(item, EncodedOperand) or key in seen:
            engine._m_reuses.inc()
        seen.add(key)
        out.append(encoded[key])
    return out, fresh


def _batch_epsilon_grids(enc_a, enc_b, cfg, plan):
    """Per-pair tolerance grids, evaluated batched per distinct pair.

    Grid entries are elementwise functions of (row top-p, column top-p)
    pairs, so evaluating pairs sharing a left operand through one
    concatenated :func:`upper_bound_grid_arrays` / ``epsilon_array`` call
    and slicing yields bitwise the per-pair grids.
    """
    row_layout, col_layout = plan.row_layout, plan.col_layout
    cs_rows = row_layout.all_checksum_indices()
    cs_cols = col_layout.all_checksum_indices()

    pair_keys = [(id(ea), id(eb)) for ea, eb in zip(enc_a, enc_b)]
    distinct: dict[tuple[int, int], int] = {}
    d_a, d_b = [], []
    for key, ea, eb in zip(pair_keys, enc_a, enc_b):
        if key not in distinct:
            distinct[key] = len(d_a)
            d_a.append(ea)
            d_b.append(eb)

    col_grids: list = [None] * len(d_a)
    row_grids: list = [None] * len(d_a)
    backing: list[np.ndarray] = []
    by_a: dict[int, list[int]] = {}
    for di, ea in enumerate(d_a):
        by_a.setdefault(id(ea), []).append(di)
    width = col_layout.encoded_rows
    blocks = col_layout.num_blocks
    pool = plan.pool
    for dis in by_a.values():
        ea = d_a[dis[0]]
        col_vals = np.concatenate([d_b[di].top_values for di in dis])
        col_idx = np.concatenate([d_b[di].top_indices for di in dis])
        cs_vals = np.concatenate([d_b[di].top_values[cs_cols] for di in dis])
        cs_idx = np.concatenate([d_b[di].top_indices[cs_cols] for di in dis])
        col_y = pool.take((cs_rows.size, col_vals.shape[0]))
        upper_bound_grid_arrays(
            ea.top_values[cs_rows], ea.top_indices[cs_rows],
            col_vals, col_idx, out=col_y,
        )
        row_y = pool.take((ea.top_values.shape[0], cs_vals.shape[0]))
        upper_bound_grid_arrays(
            ea.top_values, ea.top_indices, cs_vals, cs_idx, out=row_y
        )
        col_e = plan.scheme.epsilon_array(plan.n, col_y)
        row_e = plan.scheme.epsilon_array(plan.n, row_y)
        pool.give(col_y)
        pool.give(row_y)
        backing.extend((col_e, row_e))
        if cfg.epsilon_floor > 0.0:
            np.maximum(col_e, cfg.epsilon_floor, out=col_e)
            np.maximum(row_e, cfg.epsilon_floor, out=row_e)
        for j, di in enumerate(dis):
            col_grids[di] = col_e[:, j * width : (j + 1) * width]
            row_grids[di] = row_e[:, j * blocks : (j + 1) * blocks]

    col_eps = [col_grids[distinct[key]] for key in pair_keys]
    row_eps = [row_grids[distinct[key]] for key in pair_keys]
    return col_eps, row_eps, backing


def _check_one(c_fc, col_eps, row_eps, plan) -> CheckReport:
    """The engine's vectorised check against precomputed tolerance grids."""
    col_disc = column_discrepancies(c_fc, plan.row_layout)
    row_disc = row_discrepancies(c_fc, plan.col_layout)
    clean = (
        bool(np.all(col_disc <= col_eps))
        and bool(np.all(row_disc <= row_eps))
        and bool(np.all(np.isfinite(col_disc)))
        and bool(np.all(np.isfinite(row_disc)))
    )
    if not clean:
        return build_report(
            col_disc, col_eps, row_disc, row_eps,
            plan.row_layout, plan.col_layout,
        )
    report = CheckReport(column_disc=col_disc, row_disc=row_disc)
    report.num_checks = col_disc.size + row_disc.size
    return report
