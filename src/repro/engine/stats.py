"""Per-engine execution counters.

A :class:`~repro.engine.engine.MatmulEngine` accumulates its counters and
stage wall times in a :class:`~repro.telemetry.MetricsRegistry`;
:meth:`MatmulEngine.stats` derives an immutable :class:`EngineStats`
snapshot from those metrics, so monitoring a long-running engine is one
cheap call with no synchronisation burden on the caller — and the snapshot
always agrees with a Prometheus scrape of the same registry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["EngineStats", "StageCost", "StageCosts"]


@dataclass(frozen=True)
class StageCost:
    """Accumulated cost of one pipeline stage.

    ``seconds`` is total wall time, ``observations`` the number of timed
    stage executions; :attr:`mean` is what the pipeline cost model
    consumes when planning stage slots.
    """

    seconds: float = 0.0
    observations: int = 0

    @property
    def mean(self) -> float:
        """Mean seconds per observed stage execution (0 when unobserved)."""
        return self.seconds / self.observations if self.observations else 0.0


@dataclass(frozen=True)
class StageCosts:
    """Per-stage encode/multiply/check costs in one stable structured field.

    Exposed on :attr:`EngineStats.stage_costs` so consumers (the pipeline
    scheduler's cost model, dashboards) no longer re-derive stage means
    from raw span histograms.
    """

    encode: StageCost = field(default_factory=StageCost)
    multiply: StageCost = field(default_factory=StageCost)
    check: StageCost = field(default_factory=StageCost)

    def mean_total(self) -> float:
        """Mean seconds of one full encode+multiply+check pass."""
        return self.encode.mean + self.multiply.mean + self.check.mean


@dataclass(frozen=True)
class EngineStats:
    """Snapshot of one engine's counters.

    Attributes
    ----------
    plan_hits / plan_misses / plan_evictions:
        Execution-plan cache accounting: a *hit* means all shape-dependent
        setup (layouts, padding workspaces, bound scheme) was reused.
    calls:
        Completed protected multiplications (batched items count once each).
    batched_calls:
        Batched submissions through
        :meth:`~repro.engine.engine.MatmulEngine.execute_batch` (including
        the deprecated ``matmul_many``/``matmul_fused`` shims).
    encode_reuses:
        Operands served from a pre-encoded handle instead of re-encoding.
    detections:
        Multiplications whose check flagged at least one comparison.
    encode_seconds / multiply_seconds / check_seconds:
        Accumulated wall time of the three pipeline stages.
    stage_costs:
        The same stage wall times paired with their observation counts as
        a structured :class:`StageCosts` (per-stage means for the pipeline
        cost model).
    """

    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    calls: int = 0
    batched_calls: int = 0
    encode_reuses: int = 0
    detections: int = 0
    encode_seconds: float = 0.0
    multiply_seconds: float = 0.0
    check_seconds: float = 0.0
    stage_costs: StageCosts = field(default_factory=StageCosts)

    @property
    def total_seconds(self) -> float:
        """Accumulated wall time across all stages."""
        return self.encode_seconds + self.multiply_seconds + self.check_seconds

    @property
    def plan_hit_rate(self) -> float:
        """Fraction of plan lookups served from cache (0 when no lookups)."""
        lookups = self.plan_hits + self.plan_misses
        return self.plan_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-friendly) including derived rates."""
        out = asdict(self)
        out["total_seconds"] = self.total_seconds
        out["plan_hit_rate"] = self.plan_hit_rate
        return out
