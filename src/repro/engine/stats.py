"""Per-engine execution counters.

A :class:`~repro.engine.engine.MatmulEngine` accumulates its counters and
stage wall times in a :class:`~repro.telemetry.MetricsRegistry`;
:meth:`MatmulEngine.stats` derives an immutable :class:`EngineStats`
snapshot from those metrics, so monitoring a long-running engine is one
cheap call with no synchronisation burden on the caller — and the snapshot
always agrees with a Prometheus scrape of the same registry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["EngineStats"]


@dataclass(frozen=True)
class EngineStats:
    """Snapshot of one engine's counters.

    Attributes
    ----------
    plan_hits / plan_misses / plan_evictions:
        Execution-plan cache accounting: a *hit* means all shape-dependent
        setup (layouts, padding workspaces, bound scheme) was reused.
    calls:
        Completed protected multiplications (batched items count once each).
    batched_calls:
        Invocations of :meth:`~repro.engine.engine.MatmulEngine.matmul_many`.
    encode_reuses:
        Operands served from a pre-encoded handle instead of re-encoding.
    detections:
        Multiplications whose check flagged at least one comparison.
    encode_seconds / multiply_seconds / check_seconds:
        Accumulated wall time of the three pipeline stages.
    """

    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    calls: int = 0
    batched_calls: int = 0
    encode_reuses: int = 0
    detections: int = 0
    encode_seconds: float = 0.0
    multiply_seconds: float = 0.0
    check_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Accumulated wall time across all stages."""
        return self.encode_seconds + self.multiply_seconds + self.check_seconds

    @property
    def plan_hit_rate(self) -> float:
        """Fraction of plan lookups served from cache (0 when no lookups)."""
        lookups = self.plan_hits + self.plan_misses
        return self.plan_hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        """Plain-dict form (JSON-friendly) including derived rates."""
        out = asdict(self)
        out["total_seconds"] = self.total_seconds
        out["plan_hit_rate"] = self.plan_hit_rate
        return out
