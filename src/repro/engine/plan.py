"""Cached per-(shape, dtype, config) execution plans.

Building a protected multiplication involves shape-dependent setup that is
identical across repeated same-shape calls: partitioned layouts for both
encoded axes, padding geometry and workspaces, and the bound-scheme object.
:class:`ExecutionPlan` bundles that setup; :class:`PlanCache` keeps plans in
an LRU so iterative solvers and batch campaigns pay for it once.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

import numpy as np

from ..abft.encoding import PartitionedLayout
from ..bounds.adaptive import AdaptiveBound
from ..bounds.base import BoundScheme
from ..bounds.fixed import FixedBound
from ..bounds.probabilistic import ProbabilisticBound
from ..bounds.sea import SEABound
from ..fp.constants import FloatFormat, format_for_dtype, format_for_name
from .config import AbftConfig

__all__ = ["PlanKey", "ExecutionPlan", "PlanCache", "WorkspacePool", "build_plan"]

#: ``(m, n, q, dtype-name, config)`` — everything a plan depends on.
PlanKey = tuple

#: Workspaces above this size are never pooled (a handful of retained
#: 8192x8192 buffers would pin gigabytes); below it, padding reuses buffers.
_POOL_BYTE_LIMIT = 1 << 25


class WorkspacePool:
    """Thread-safe free-lists of scratch buffers keyed by ``(shape, dtype)``.

    Every :class:`ExecutionPlan` owns one pool; the engine recycles its
    internal scratch arrays — padding workspaces, encoded-operand buffers
    (after the multiply has consumed them), top-p search workspaces and
    tolerance grids — through it across warm calls and fused batches.

    Safety rules the engine observes (see ``docs/API.md``):

    * only buffers that never escape into user-visible objects are given
      back — :class:`~repro.engine.engine.EncodedOperand` handles from the
      public ``encode()``, discrepancy arrays stored on reports, and result
      matrices are never pooled;
    * :meth:`give` silently rejects views (``base is not None``),
      non-contiguous arrays and buffers above ``_POOL_BYTE_LIMIT``, so a
      sliced or oversized workspace can never resurface;
    * :meth:`take` returns buffers with *undefined contents* — callers must
      overwrite every element.

    Concurrent :meth:`take` calls simply receive distinct buffers (a miss
    allocates outside the lock), so the pool is safe under
    ``execute_batch``'s thread pool.
    """

    def __init__(self, limit_per_key: int = 4, byte_limit: int = _POOL_BYTE_LIMIT):
        self._limit = limit_per_key
        self._byte_limit = byte_limit
        self._free: dict[tuple, deque[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.takes = 0
        self.hits = 0

    def take(self, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A C-contiguous scratch array of the requested shape and dtype."""
        key = (tuple(int(s) for s in shape), np.dtype(dtype))
        with self._lock:
            self.takes += 1
            bucket = self._free.get(key)
            if bucket:
                self.hits += 1
                return bucket.pop()
        return np.empty(key[0], dtype=key[1])

    def give(self, buffer: np.ndarray | None) -> None:
        """Return a scratch array for reuse (no-op when not poolable)."""
        if buffer is None:
            return
        if buffer.base is not None or not buffer.flags.c_contiguous:
            return
        if buffer.nbytes > self._byte_limit:
            return
        key = (buffer.shape, buffer.dtype)
        with self._lock:
            bucket = self._free.get(key)
            if bucket is None:
                bucket = self._free.setdefault(key, deque())
            if len(bucket) < self._limit:
                bucket.append(buffer)


@dataclass
class ExecutionPlan:
    """All shape-dependent state of one ``(m, n) @ (n, q)`` protected matmul.

    Attributes
    ----------
    key:
        The cache key the plan was built for.
    config:
        The :class:`~repro.engine.config.AbftConfig` in effect.
    dtype:
        Computation dtype (float32 when both operands are float32).
    m, n, q:
        Unpadded operand dimensions.
    rows_added / cols_added:
        Zero padding appended to reach block multiples.
    row_layout / col_layout:
        Partitioned layouts of the encoded result axes.
    scheme:
        The reusable bound-scheme object for this dtype/config.
    fmt:
        The IEEE format of the computation dtype.
    pool:
        The plan's :class:`WorkspacePool` — every scratch buffer of a call
        executed under this plan is taken from and given back to it.
    backend_name / tile:
        The compute backend the GEMM stage dispatches through and the
        result-tile edge of the canonical tile list it executes
        (``None`` = one full-result tile).  The engine resolves
        ``backend="auto"`` through capability negotiation *before* the
        plan lookup, so plans always carry a concrete backend.
    """

    key: PlanKey
    config: AbftConfig
    dtype: np.dtype
    m: int
    n: int
    q: int
    rows_added: int
    cols_added: int
    row_layout: PartitionedLayout
    col_layout: PartitionedLayout
    scheme: BoundScheme
    fmt: FloatFormat
    pool: WorkspacePool = field(repr=False, default=None)
    backend_name: str = "numpy"
    tile: int | None = None

    def backend(self):
        """The shared :class:`~repro.backends.base.Backend` instance."""
        from ..backends import get_backend

        return get_backend(self.backend_name)

    @property
    def padded_m(self) -> int:
        return self.m + self.rows_added

    @property
    def padded_q(self) -> int:
        return self.q + self.cols_added

    def pad_a(self, a: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Zero-pad ``a`` along axis 0, reusing a pooled workspace.

        Returns ``(padded, workspace)``; pass the workspace to
        :meth:`release` once the padded view is no longer needed.  When no
        padding is required the operand is returned as-is.
        """
        if self.rows_added == 0:
            return a, None
        buf = self.pool.take((self.padded_m, self.n), self.dtype)
        buf[: self.m] = a
        buf[self.m :] = 0.0
        return buf, buf

    def pad_b(self, b: np.ndarray) -> tuple[np.ndarray, np.ndarray | None]:
        """Zero-pad ``b`` along axis 1, reusing a pooled workspace."""
        if self.cols_added == 0:
            return b, None
        buf = self.pool.take((self.n, self.padded_q), self.dtype)
        buf[:, : self.q] = b
        buf[:, self.q :] = 0.0
        return buf, buf

    def release(self, workspace: np.ndarray | None, side: str) -> None:
        """Return a padding workspace to its pool."""
        if workspace is None:
            return
        self.pool.give(workspace)


def build_plan(
    m: int, n: int, q: int, dtype: np.dtype, config: AbftConfig
) -> ExecutionPlan:
    """Construct the execution plan for one shape/dtype/config triple."""
    bs = config.block_size
    rows_added = (-m) % bs
    cols_added = (-q) % bs
    row_layout = PartitionedLayout(data_rows=m + rows_added, block_size=bs)
    col_layout = PartitionedLayout(data_rows=q + cols_added, block_size=bs)
    fmt = format_for_dtype(dtype)
    if config.scheme == "aabft":
        scheme: BoundScheme = ProbabilisticBound(
            omega=config.omega, fma=config.fma, fmt=fmt
        )
    elif config.scheme == "sea":
        scheme = SEABound(fmt=fmt)
    elif config.scheme == "adaptive":
        # ``dtype`` names the *storage* format; ``fmt`` stays the compute
        # format the checksums accumulate in.  AbftConfig already gated
        # bfloat16 on availability, so format_for_name cannot fail here.
        storage_fmt = format_for_name(config.dtype) if config.dtype else fmt
        scheme = AdaptiveBound(fmt=fmt, storage_fmt=storage_fmt)
    else:  # fixed — validated by AbftConfig.__post_init__
        scheme = FixedBound(float(config.fixed_epsilon))
    plan = ExecutionPlan(
        key=(m, n, q, np.dtype(dtype).name, config),
        config=config,
        dtype=np.dtype(dtype),
        m=m,
        n=n,
        q=q,
        rows_added=rows_added,
        cols_added=cols_added,
        row_layout=row_layout,
        col_layout=col_layout,
        scheme=scheme,
        fmt=fmt,
        # Plans built outside the engine's negotiation step (tests, direct
        # build_plan calls) treat an unresolved "auto" as the reference.
        backend_name=(
            "numpy" if config.backend == "auto" else config.backend
        ),
        tile=config.gemm_tile,
    )
    plan.pool = WorkspacePool()
    return plan


class PlanCache:
    """A thread-safe LRU cache of :class:`ExecutionPlan` objects."""

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"plan cache size must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._plans: OrderedDict[PlanKey, ExecutionPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(
        self, m: int, n: int, q: int, dtype: np.dtype, config: AbftConfig
    ) -> tuple[ExecutionPlan, bool]:
        """The plan for the given key, building it on a miss.

        Returns ``(plan, hit)`` where ``hit`` reports whether the plan was
        served from cache.
        """
        key = (m, n, q, np.dtype(dtype).name, config)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                self.hits += 1
                return plan, True
        # Build outside the lock: plans are deterministic, so a racing
        # duplicate build is wasteful but harmless.
        plan = build_plan(m, n, q, dtype, config)
        with self._lock:
            self.misses += 1
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def clear(self) -> None:
        """Drop every cached plan (counters are retained)."""
        with self._lock:
            self._plans.clear()
