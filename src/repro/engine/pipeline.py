"""Zero-bubble stage-pipelined batch execution.

The A-ABFT flow is inherently three-staged — encode, multiply, check —
and the fused batch path (:mod:`repro.engine.fused`) still runs those
stages as barriered passes over the whole batch.  This module executes a
batch as a sequence of *chunks* whose stage slots are scheduled by a cost
model, in the style of the zero-bubble pipeline-parallel schedules
(F/B/W reordering): encode slots are prefetched onto the engine's thread
pool up to a bounded window (the ``F`` warm-up), the caller thread walks
the multiply slots (the steady-state ``B`` lane), and check slots are
deferred onto the pool to drain inside multiply bubbles (the ``W``
fill).  On a single-worker engine — or whenever the cost model predicts
overlap loses to its dispatch overhead — the schedule degenerates to the
serial ``E M C`` slot order and every slot runs inline.

Even without thread overlap the chunked execution wins: each chunk's
right operands are concatenated column-wise so the encode reduction, the
GEMM, the discrepancy kernels and the tolerance-grid evaluation each run
*once per chunk* instead of once per pair.

**Bitwise identity is the hard invariant.**  Per-item slices of the
concatenated encode/check reductions are block-local, and the tolerance
grids are elementwise in the top-p data — but a concatenated GEMM is
*not* guaranteed to slice into the per-item GEMM bytes (BLAS kernel
selection depends on operand shapes).  The executor therefore
dual-computes the **first** chunk of every ``(plan, chunk width)``
signature along both the concatenated and the per-item reference path
and compares every artifact — encoded slices, top-p data, result bytes,
discrepancies.  Only a byte-identical probe enables the concatenated
path for that signature; any mismatch pins the signature to the per-item
reference path (counted in ``abft_pipeline_fallbacks_total``), which is
the fused path's own per-item code and bitwise identical by
construction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..abft.checking import column_discrepancies, row_discrepancies
from ..abft.encoding import strip_encoding
from ..abft.providers import AABFTEpsilonProvider
from ..abft.result import AbftResult
from ..bounds.upper_bound import upper_bound_grid_arrays
from ..kernels.stage_split import ChunkEncodedB, chunk_discrepancies, encode_b_chunk
from ..telemetry import span
from .fused import _batch_epsilon_grids, _check_one, fused_supported
from .policy import ExecutionPolicy
from .stats import StageCosts

__all__ = [
    "PipelineSchedule",
    "pipeline_supported",
    "plan_schedule",
    "run_pipelined",
]

#: Thread-dispatch overhead the cost model charges per asynchronous slot.
_SLOT_OVERHEAD_S = 2e-4


def pipeline_supported(a_items, b_items, cfg) -> bool:
    """Whether the pipelined executor applies to this expanded batch.

    The pipelined path shares the fused preconditions (``aabft`` scheme,
    at least two pairs, homogeneous shapes and dtypes) and additionally
    needs every *right* operand raw: the chunked encode concatenates raw
    columns, so pre-encoded ``B`` handles route to the fused path
    instead.
    """
    from .engine import EncodedOperand

    if not fused_supported(a_items, b_items, cfg):
        return False
    return not any(isinstance(b, EncodedOperand) for b in b_items)


@dataclass(frozen=True)
class PipelineSchedule:
    """The cost model's decision for one pipelined batch.

    Attributes
    ----------
    chunks:
        ``(group_index, count)`` per chunk, in execution order — each
        chunk draws ``count`` consecutive pairs from one shared-left
        operand group.
    overlap:
        Whether encode/check slots ride the engine's thread pool while
        the caller thread walks the multiplies.  ``False`` replays the
        serial slot order inline (the cost model said overlap loses, or
        the engine has a single worker).
    window:
        Bound on encode-prefetched chunks in flight ahead of the multiply
        lane (1 when not overlapping).
    slots:
        The greedy ``(stage, chunk_index)`` slot order: check slots drain
        first, encode slots fill the window, multiply slots otherwise.
    predicted_serial_s / predicted_overlap_s:
        The cost model's wall-time estimates (0 when the engine has no
        stage timings yet).
    """

    chunks: tuple[tuple[int, int], ...]
    overlap: bool
    window: int
    slots: tuple[tuple[str, int], ...]
    predicted_serial_s: float = 0.0
    predicted_overlap_s: float = 0.0

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)


def _greedy_slots(
    num_chunks: int, window: int
) -> tuple[tuple[str, int], ...]:
    """Greedy slot order: drain checks first, keep the encode window full.

    Priorities mirror the zero-bubble F/B/W rule — a completed multiply's
    check is issued immediately (it drains asynchronously in the next
    multiply's bubble), the encode lane is kept ``window`` chunks ahead,
    and the caller thread otherwise advances the multiply lane.  With
    ``window=1`` this degenerates to the serial ``E M C`` order.
    """
    slots: list[tuple[str, int]] = []
    encoded = multiplied = checked = 0
    while checked < num_chunks:
        if checked < multiplied:
            slots.append(("check", checked))
            checked += 1
        elif encoded < num_chunks and encoded - multiplied < window:
            slots.append(("encode", encoded))
            encoded += 1
        else:
            slots.append(("multiply", multiplied))
            multiplied += 1
    return tuple(slots)


def plan_schedule(
    group_sizes: list[int],
    stage_costs: StageCosts,
    workers: int,
    policy: ExecutionPolicy,
    *,
    fused_online: bool = False,
) -> PipelineSchedule:
    """Build the stage-slot schedule for one batch.

    The decision is seeded from the per-stage timings the engine has
    already measured (:attr:`~repro.engine.stats.EngineStats.
    stage_costs`): overlap is enabled only when the engine has spare
    workers *and* the predicted overlapped wall time — multiply lane vs.
    the encode/check side lane, plus per-slot dispatch overhead — beats
    the serial slot order.  A cold engine (no timings yet) stays serial;
    the measurements its first batches produce seed later decisions.

    ``fused_online=True`` models the fused online-ABFT chunk, which
    collapses multiply+check into one stage slot: the check lane is
    empty (its cost rides the multiply lane), so the pipeline can only
    overlap encode prefetch against the fused multiplies and there is no
    check drain after the last chunk.
    """
    total = sum(group_sizes)
    if policy.chunk_size is not None:
        chunk_size = policy.chunk_size
    elif workers <= 1:
        # No overlap possible: one chunk per group maximises amortisation.
        chunk_size = max(total, 1)
    else:
        # Enough chunks to keep every lane busy through fill and drain.
        target_chunks = max(3, 2 * workers)
        chunk_size = max(2, -(-total // target_chunks))
    chunks: list[tuple[int, int]] = []
    for gi, size in enumerate(group_sizes):
        for lo in range(0, size, chunk_size):
            chunks.append((gi, min(chunk_size, size - lo)))

    enc, mul, chk = (
        stage_costs.encode.mean,
        stage_costs.multiply.mean,
        stage_costs.check.mean,
    )
    observed = enc > 0.0 and mul > 0.0 and chk > 0.0
    if fused_online:
        # The fused chunk runs its checks inside the multiply slot; the
        # check lane contributes nothing on its own.
        mul, chk = mul + chk, 0.0
    counts = [count for _gi, count in chunks]
    serial_s = sum((enc + mul + chk) * k for k in counts)
    fill = enc * counts[0] if counts else 0.0
    drain = chk * counts[-1] if counts else 0.0
    side_lane = sum((enc + chk) * k for k in counts) - fill - drain
    overlap_s = (
        fill
        + max(mul * total, side_lane)
        + drain
        + 2 * len(chunks) * _SLOT_OVERHEAD_S
    )
    overlap = (
        workers >= 2
        and len(chunks) >= 2
        and observed
        and overlap_s < serial_s
    )
    window = policy.max_inflight if overlap else 1
    if (
        overlap
        and policy.deadline_s is not None
        and overlap_s > policy.deadline_s
    ):
        # No speculative prefetch past a budget the batch already blows.
        window = 1
    return PipelineSchedule(
        chunks=tuple(chunks),
        overlap=overlap,
        window=window,
        slots=_greedy_slots(len(chunks), window),
        predicted_serial_s=serial_s if observed else 0.0,
        predicted_overlap_s=overlap_s if observed else 0.0,
    )


@dataclass
class _Group:
    """One shared-left-operand group of the batch."""

    enc_a: object  # EncodedOperand
    fresh: bool
    indices: list[int]


@dataclass
class _ChunkState:
    """Everything one chunk carries between its stage slots."""

    group: _Group
    items: list[tuple[int, object]]  # (original index, raw right operand)
    encoded: object = None  # ChunkEncodedB | list[EncodedOperand]
    encode_future: object = None
    check_future: object = None
    c_cat: object = None  # concatenated GEMM result (batched path only)
    c_fcs: list | None = None
    backends: list | None = None
    fallbacks: list | None = None
    reports: list | None = None
    enc_padding: int = 0
    item_tops: list | None = None  # (values, indices) per item


def run_pipelined(engine, a_items, b_items, cfg, policy) -> list:
    """Execute the expanded batch through the stage-pipelined executor.

    Preconditions (:func:`pipeline_supported`) must hold.  Results come
    back in submission order, bitwise identical to sequential
    :meth:`~repro.engine.MatmulEngine.matmul` calls.
    """
    from .engine import EncodedOperand, _operand_dtype, _resolve_dtype

    t_start = time.perf_counter()
    dtype = _resolve_dtype(*[_operand_dtype(x) for x in a_items + b_items])
    first_a, first_b = a_items[0], b_items[0]
    m, n = (
        first_a.shape
        if isinstance(first_a, EncodedOperand)
        else np.asarray(first_a).shape
    )
    q = np.asarray(first_b).shape[1]
    cfg, selection_fallback, fused_fallback = engine._negotiate(
        cfg, m, n, q, dtype
    )
    fused_online = cfg.fusion == "fused"
    plan, _hit = engine._plans.get(m, n, q, dtype, cfg)
    busy = {"encode": 0.0, "multiply": 0.0, "check": 0.0}

    # --- encode every distinct left operand once (inline, before the
    # chunk loop: chunks sharing a group must never race on its encode) --
    t0 = time.perf_counter()
    groups: list[_Group] = []
    by_id: dict[int, _Group] = {}
    for idx, a in enumerate(a_items):
        group = by_id.get(id(a))
        if group is None:
            if isinstance(a, EncodedOperand):
                engine._check_handle(a, "a", cfg, dtype)
                enc_a, fresh = a, False
            else:
                enc_a = engine._encode_with_plan(
                    np.asarray(a).astype(dtype, copy=False), "a", cfg, plan
                )
                fresh = True
            group = _Group(enc_a=enc_a, fresh=fresh, indices=[])
            by_id[id(a)] = group
            groups.append(group)
        # Reuse accounting matches the fused path: handles always count,
        # dedup hits count from the second use on.
        if isinstance(a, EncodedOperand) or group.indices:
            engine._m_reuses.inc()
        group.indices.append(idx)
    elapsed = time.perf_counter() - t0
    engine._add_seconds("encode", elapsed)
    busy["encode"] += elapsed

    schedule = plan_schedule(
        [len(g.indices) for g in groups],
        engine._stage_costs(),
        engine._max_workers,
        policy,
        fused_online=fused_online,
    )

    # --- materialise chunk states in schedule order ---------------------
    cursors = [0] * len(groups)
    states: list[_ChunkState] = []
    for gi, count in schedule.chunks:
        group = groups[gi]
        lo = cursors[gi]
        cursors[gi] = lo + count
        states.append(
            _ChunkState(
                group=group,
                items=[
                    (idx, b_items[idx])
                    for idx in group.indices[lo : lo + count]
                ],
            )
        )

    executor = engine._get_executor() if schedule.overlap else None

    def _timed(stage: str, fn, *args):
        t0 = time.perf_counter()
        with span(f"pipeline.{stage}", engine.registry):
            out = fn(*args)
        elapsed = time.perf_counter() - t0
        engine._add_seconds(stage, elapsed)
        return out, elapsed

    def _encode_slot(state: _ChunkState):
        return _timed("encode", _encode_chunk, engine, plan, cfg, state, dtype)

    def _check_slot(state: _ChunkState):
        return _timed("check", _check_chunk, engine, plan, cfg, state)

    # --- walk the stage slots ------------------------------------------
    for stage, ci in schedule.slots:
        state = states[ci]
        if stage == "encode":
            if executor is not None:
                state.encode_future = executor.submit(_encode_slot, state)
            else:
                _res, elapsed = _encode_slot(state)
                busy["encode"] += elapsed
        elif stage == "multiply":
            if state.encode_future is not None:
                _res, elapsed = state.encode_future.result()
                busy["encode"] += elapsed
            if fused_online:
                mul_s, chk_s = _fused_chunk(engine, plan, cfg, state)
                busy["multiply"] += mul_s
                busy["check"] += chk_s
                continue
            _res, elapsed = _timed(
                "multiply", _multiply_chunk, engine, plan, cfg, state, busy
            )
            busy["multiply"] += elapsed
        else:  # check
            if fused_online:
                continue  # fused chunks report inside their multiply slot
            if executor is not None:
                state.check_future = executor.submit(_check_slot, state)
            else:
                _res, elapsed = _check_slot(state)
                busy["check"] += elapsed
    for state in states:
        if state.check_future is not None:
            _res, elapsed = state.check_future.result()
            busy["check"] += elapsed

    # The left-operand encodings are fully consumed once every multiply
    # has run; internally encoded buffers recycle (handles are untouched).
    for group in groups:
        if group.fresh:
            plan.pool.give(group.enc_a.array)

    # --- assemble results in submission order ---------------------------
    results: list = [None] * len(a_items)
    for state in states:
        ea = state.group.enc_a
        for j, (idx, _b) in enumerate(state.items):
            c_fc = state.c_fcs[j]
            report = state.reports[j]
            col_values, col_indices = state.item_tops[j]
            c = strip_encoding(
                c_fc,
                plan.row_layout,
                plan.col_layout,
                ea.padding,
                state.enc_padding,
            )
            provider = AABFTEpsilonProvider.from_arrays(
                scheme=plan.scheme,
                row_values=ea.top_values,
                row_indices=ea.top_indices,
                col_values=col_values,
                col_indices=col_indices,
                row_layout=plan.row_layout,
                col_layout=plan.col_layout,
                inner_dim=plan.n,
                epsilon_floor=cfg.epsilon_floor,
            )
            engine._m_calls.inc()
            if report.error_detected:
                engine._m_detections.inc()
            results[idx] = AbftResult(
                c=c,
                c_fc=c_fc,
                report=report,
                row_layout=plan.row_layout,
                col_layout=plan.col_layout,
                provider=provider,
                backend=state.backends[j],
                backend_fallback=selection_fallback or state.fallbacks[j],
                fused=fused_online,
                fused_fallback=fused_fallback,
            )

    # --- pipeline telemetry: bubble fraction and stage occupancy --------
    wall = time.perf_counter() - t_start
    engine._m_pipe_batches.inc()
    engine._m_pipe_chunks.inc(len(states))
    total_busy = 0.0
    for stage_name, seconds in busy.items():
        engine._m_pipe_busy[stage_name].inc(seconds)
        total_busy += seconds
        if wall > 0.0:
            engine._g_pipe_occupancy[stage_name].set(
                min(1.0, seconds / wall)
            )
    if wall > 0.0:
        engine._g_pipe_bubble.set(
            max(0.0, 1.0 - total_busy / (3.0 * wall))
        )
    return results


# ----------------------------------------------------------------------
# chunk stage bodies
# ----------------------------------------------------------------------
def _stacked_verdict(engine, plan, count) -> bool | None:
    key = (plan.key, count)
    with engine._stacked_lock:
        return engine._stacked_ok.get(key)


def _encode_chunk(engine, plan, cfg, state: _ChunkState, dtype) -> None:
    """Encode slot: concatenated fast path or per-item reference path.

    Fused-online chunks always take the per-item path: their multiply
    slot runs one fused tile loop per pair against per-pair tolerance
    grids, so there is no concatenated GEMM to feed.
    """
    items = [
        np.asarray(b).astype(dtype, copy=False) for _idx, b in state.items
    ]
    if (
        cfg.fusion == "fused"
        or _stacked_verdict(engine, plan, len(items)) is False
    ):
        state.encoded = [
            engine._encode_with_plan(item, "b", cfg, plan) for item in items
        ]
        state.enc_padding = plan.cols_added
        return
    state.encoded = encode_b_chunk(
        items,
        cfg.block_size,
        q=plan.q,
        p=cfg.p,
        dtype=dtype,
        pool=plan.pool,
    )
    state.enc_padding = state.encoded.padding


def _multiply_chunk(engine, plan, cfg, state: _ChunkState, busy) -> None:
    """Multiply slot: probe, concatenated GEMM, or per-item reference."""
    a_arr = state.group.enc_a.array
    count = len(state.items)
    verdict = _stacked_verdict(engine, plan, count)
    if isinstance(state.encoded, ChunkEncodedB) and verdict is None:
        _probe_chunk(engine, plan, cfg, state, busy)
        return
    if isinstance(state.encoded, ChunkEncodedB):
        # Probed byte-identical: one GEMM covers the whole chunk.
        enc: ChunkEncodedB = state.encoded
        c_cat, used, fallback = engine._dispatch_gemm(plan, a_arr, enc.encoded)
        w = enc.item_width
        state.c_cat = c_cat
        state.c_fcs = [c_cat[:, j * w : (j + 1) * w] for j in range(count)]
        state.backends = [used] * count
        state.fallbacks = [fallback] * count
        state.item_tops = [enc.item_tops(j) for j in range(count)]
        plan.pool.give(enc.encoded)
        return
    # Reference path (probe failed for this signature earlier).
    state.c_fcs, state.backends, state.fallbacks = [], [], []
    state.item_tops = []
    for enc_b in state.encoded:
        c_fc, used, fallback = engine._dispatch_gemm(plan, a_arr, enc_b.array)
        state.c_fcs.append(c_fc)
        state.backends.append(used)
        state.fallbacks.append(fallback)
        state.item_tops.append((enc_b.top_values, enc_b.top_indices))


def _probe_chunk(engine, plan, cfg, state: _ChunkState, busy) -> None:
    """Dual-compute the chunk along both paths and compare every byte.

    The reference artifacts are kept as the chunk's results (they are the
    guaranteed ones either way); the verdict decides how every *later*
    chunk of this ``(plan, chunk width)`` signature executes.
    """
    a_arr = state.group.enc_a.array
    enc: ChunkEncodedB = state.encoded
    count = len(state.items)
    dtype = enc.encoded.dtype

    # Reference per-item encode (timed as encode work, not multiply).
    t0 = time.perf_counter()
    ref_enc = [
        engine._encode_with_plan(
            np.asarray(b).astype(dtype, copy=False), "b", cfg, plan
        )
        for _idx, b in state.items
    ]
    enc_elapsed = time.perf_counter() - t0
    engine._add_seconds("encode", enc_elapsed)
    busy["encode"] += enc_elapsed

    w = enc.item_width
    ok = all(
        np.array_equal(ref.array, enc.item_encoded(j))
        and np.array_equal(ref.top_values, enc.item_tops(j)[0])
        and np.array_equal(ref.top_indices, enc.item_tops(j)[1])
        for j, ref in enumerate(ref_enc)
    )

    c_cat, _used, _fb = engine._dispatch_gemm(plan, a_arr, enc.encoded)
    ref_runs = [
        engine._dispatch_gemm(plan, a_arr, ref.array) for ref in ref_enc
    ]
    ok = ok and all(
        np.array_equal(run[0], c_cat[:, j * w : (j + 1) * w])
        for j, run in enumerate(ref_runs)
    )
    if ok:
        # Discrepancy parity closes the loop: identical result bytes must
        # slice into identical checksum discrepancies.
        t0 = time.perf_counter()
        cat_col, cat_row = chunk_discrepancies(
            c_cat, plan.row_layout, enc.layout
        )
        blocks = plan.col_layout.num_blocks
        ok = all(
            np.array_equal(
                column_discrepancies(run[0], plan.row_layout),
                cat_col[:, j * w : (j + 1) * w],
            )
            and np.array_equal(
                row_discrepancies(run[0], plan.col_layout),
                cat_row[:, j * blocks : (j + 1) * blocks],
            )
            for j, run in enumerate(ref_runs)
        )
        chk_elapsed = time.perf_counter() - t0
        engine._add_seconds("check", chk_elapsed)
        busy["check"] += chk_elapsed

    with engine._stacked_lock:
        engine._stacked_ok[(plan.key, count)] = ok
    if not ok:
        engine._m_pipe_fallbacks.labels(reason="bitwise_probe").inc()

    # The reference artifacts become the chunk's results.
    state.c_fcs = [run[0] for run in ref_runs]
    state.backends = [run[1] for run in ref_runs]
    state.fallbacks = [run[2] for run in ref_runs]
    state.item_tops = [(ref.top_values, ref.top_indices) for ref in ref_enc]
    state.encoded = ref_enc
    plan.pool.give(enc.encoded)


def _fused_chunk(engine, plan, cfg, state: _ChunkState) -> tuple[float, float]:
    """Fused-online chunk: multiply and in-loop check in one stage slot.

    Builds the per-pair tolerance grids (check work — they must exist
    before the tiles run), walks one fused tile loop per pair, and
    produces the chunk's reports on the spot; the schedule's check slot
    for this chunk is a no-op.  Returns the slot's
    ``(multiply_seconds, check_seconds)`` split — the kernel self-times
    its in-loop checks, so the split stays honest for the cost model.
    """
    ea = state.group.enc_a
    enc_b = state.encoded
    t0 = time.perf_counter()
    col_eps, row_eps, backing = _batch_epsilon_grids(
        [ea] * len(enc_b), enc_b, cfg, plan
    )
    check_s = time.perf_counter() - t0  # grid build is check work
    state.c_fcs, state.backends, state.fallbacks = [], [], []
    state.item_tops, state.reports = [], []
    for eb, ce, re_ in zip(enc_b, col_eps, row_eps):
        outcome, used, fallback = engine._fused_online_gemm(
            plan, cfg, ea.array, eb.array, ce, re_
        )
        t1 = time.perf_counter()
        state.reports.append(engine._fused_report(outcome, ce, re_, plan))
        check_s += outcome.check_seconds + (time.perf_counter() - t1)
        state.c_fcs.append(outcome.out)
        state.backends.append(used)
        state.fallbacks.append(fallback)
        state.item_tops.append((eb.top_values, eb.top_indices))
    for buf in backing:
        plan.pool.give(buf)
    for eb in enc_b:
        plan.pool.give(eb.array)
    mul_s = max(0.0, time.perf_counter() - t0 - check_s)
    engine._add_seconds("multiply", mul_s)
    engine._add_seconds("check", check_s)
    return mul_s, check_s


def _check_chunk(engine, plan, cfg, state: _ChunkState) -> None:
    """Check slot: batched grids + discrepancies, sliced per item."""
    ea = state.group.enc_a
    if not isinstance(state.encoded, ChunkEncodedB):
        # Reference path: the fused per-item grid/check code, verbatim.
        enc_b = state.encoded
        col_eps, row_eps, backing = _batch_epsilon_grids(
            [ea] * len(enc_b), enc_b, cfg, plan
        )
        state.reports = [
            _check_one(c_fc, ce, re_, plan)
            for c_fc, ce, re_ in zip(state.c_fcs, col_eps, row_eps)
        ]
        for buf in backing:
            plan.pool.give(buf)
        for enc in enc_b:
            plan.pool.give(enc.array)
        return

    enc: ChunkEncodedB = state.encoded
    pool = plan.pool
    row_layout, col_layout = plan.row_layout, plan.col_layout
    cs_rows = row_layout.all_checksum_indices()
    cs_cols = col_layout.all_checksum_indices()
    w = enc.item_width
    count = enc.count
    cat_cs = np.concatenate([cs_cols + j * w for j in range(count)])
    cs_vals = enc.top_values[cat_cs]
    cs_idx = enc.top_indices[cat_cs]
    col_y = pool.take((cs_rows.size, enc.top_values.shape[0]))
    upper_bound_grid_arrays(
        ea.top_values[cs_rows], ea.top_indices[cs_rows],
        enc.top_values, enc.top_indices, out=col_y,
    )
    row_y = pool.take((ea.top_values.shape[0], cs_vals.shape[0]))
    upper_bound_grid_arrays(
        ea.top_values, ea.top_indices, cs_vals, cs_idx, out=row_y
    )
    col_e = plan.scheme.epsilon_array(plan.n, col_y)
    row_e = plan.scheme.epsilon_array(plan.n, row_y)
    pool.give(col_y)
    pool.give(row_y)
    if cfg.epsilon_floor > 0.0:
        np.maximum(col_e, cfg.epsilon_floor, out=col_e)
        np.maximum(row_e, cfg.epsilon_floor, out=row_e)

    # One discrepancy pass over the concatenation; slices are the items'.
    blocks = col_layout.num_blocks
    cat_col, cat_row = chunk_discrepancies(state.c_cat, row_layout, enc.layout)
    state.reports = []
    for j in range(count):
        state.reports.append(
            _check_one_precomputed(
                cat_col[:, j * w : (j + 1) * w],
                col_e[:, j * w : (j + 1) * w],
                cat_row[:, j * blocks : (j + 1) * blocks],
                row_e[:, j * blocks : (j + 1) * blocks],
                plan,
            )
        )
    pool.give(col_e)
    pool.give(row_e)


def _check_one_precomputed(col_disc, col_eps, row_disc, row_eps, plan):
    """The fused check decision over already-extracted discrepancies."""
    from ..abft.checking import CheckReport, build_report

    clean = (
        bool(np.all(col_disc <= col_eps))
        and bool(np.all(row_disc <= row_eps))
        and bool(np.all(np.isfinite(col_disc)))
        and bool(np.all(np.isfinite(row_disc)))
    )
    if not clean:
        return build_report(
            col_disc, col_eps, row_disc, row_eps,
            plan.row_layout, plan.col_layout,
        )
    report = CheckReport(column_disc=col_disc, row_disc=row_disc)
    report.num_checks = col_disc.size + row_disc.size
    return report
