"""The unified configuration object for protected multiplications.

Every tuning knob of the matmul family — encoding block size, top-p depth,
confidence scale, FMA modelling, tolerance floor, bound scheme — lives in
one frozen, hashable :class:`AbftConfig`.  Engines key their execution-plan
caches on ``(shape, dtype, config)``, so two calls with equal configs share
all shape-dependent setup.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..bounds.fixed import FixedBound
from ..errors import ConfigurationError
from ..fp.constants import (
    LOW_PRECISION_NAMES,
    format_for_name,
    supported_storage_dtypes,
)

__all__ = ["AbftConfig", "SCHEMES", "DTYPE_NAMES"]

#: The bound schemes a config may select (paper Table I rows, plus the
#: V-ABFT-style variance-adaptive scheme for low-precision storage).
SCHEMES = ("aabft", "sea", "fixed", "adaptive")

#: Operand storage dtypes a config may name.  ``bfloat16`` is listed so
#: the error for a build without ``ml_dtypes`` names the real problem
#: (missing optional dependency) rather than "unknown dtype".
DTYPE_NAMES = ("float16", "bfloat16", "float32", "float64")


@dataclass(frozen=True)
class AbftConfig:
    """Immutable tuning parameters of one protected multiplication.

    Parameters
    ----------
    block_size:
        Partitioned-encoding block size ``BS`` (paper Section VI-B: 64).
    p:
        Number of tracked largest absolute values per vector (Section IV-E).
        Only the ``"aabft"`` scheme consumes it.
    omega:
        Confidence scale of the probabilistic bound (paper default: 3).
    fma:
        Model a fused multiply-add pipeline (Section IV-D).
    epsilon_floor:
        Absolute tolerance floor for inputs whose checksum vectors cancel
        to (near) zero; the default 0 is paper-faithful (see docs/THEORY.md).
    scheme:
        ``"aabft"`` (autonomous), ``"sea"`` (norm-based baseline),
        ``"fixed"`` (manual tolerance) or ``"adaptive"`` (variance-based
        adaptive tolerance for low-precision storage; see
        :mod:`repro.bounds.adaptive`).
    fixed_epsilon:
        The manual tolerance; required when ``scheme="fixed"``.
    dtype:
        Operand *storage* dtype name (``"float16"``, ``"bfloat16"``,
        ``"float32"``, ``"float64"``), or ``None`` (default) to infer it
        from the operands.  Low-precision operands (float16/bfloat16)
        **require** naming it — together with an adaptive-capable scheme —
        instead of being silently upcast; the GEMM and checksums then
        accumulate in float32 while results quantise back to the storage
        dtype.  ``"bfloat16"`` additionally requires the optional
        ``ml_dtypes`` package (numpy has no native bfloat16).
    backend:
        Compute backend for the GEMM stage: a registered backend name to
        pin it, or ``"auto"`` (default) to let capability negotiation
        choose (``AABFT_BACKEND`` env pin > autotuned winner > ``numpy``).
        Automatic selection only picks bitwise-deterministic backends.
    gemm_tile:
        Result-tile edge of the canonical tile decomposition every
        backend executes (see
        :func:`repro.kernels.matmul_tiled.plan_tiles`).  ``None``
        (default) is one full-result tile — the historical single-BLAS
        behaviour.  The tile is a *plan* property: changing it changes
        result bytes identically across deterministic backends.
    exclude_backends:
        Backend names capability negotiation must never select for this
        config.  ``"numpy"`` cannot be excluded — it is the terminal
        fallback that keeps failures never-silent.
    fusion:
        Online-ABFT fusion strategy for the multiply+check stages:
        ``"fused"`` pins the per-tile fused kernel
        (:func:`repro.kernels.online_fused.online_fused_matmul`),
        ``"separate"`` pins the classic separate passes, and ``"auto"``
        (default) lets negotiation choose (``AABFT_FUSION`` env pin >
        autotuned winner > separate).  A fused pin against a backend
        without the ``fused_online`` capability falls back to separate
        with a counted reason — never silently.
    fused_tile_blocks:
        Fused tile edge in whole encoded checksum blocks per axis (the
        tile spans ``fused_tile_blocks * (block_size + 1)`` encoded
        rows/cols).  ``None`` (default) is the single full-result fused
        tile, whose result bytes and discrepancy grids are bitwise equal
        to the separate default path.  Multi-tile fusion changes result
        bytes exactly like ``gemm_tile`` does — deterministically, and
        identically across deterministic backends.

    The dataclass is frozen and hashable, so it can key plan caches and be
    shared freely between threads.  Use :meth:`replace` to derive variants.
    """

    block_size: int = 64
    p: int = 2
    omega: float = 3.0
    fma: bool = False
    epsilon_floor: float = 0.0
    scheme: str = "aabft"
    fixed_epsilon: float | None = None
    dtype: str | None = None
    backend: str = "auto"
    gemm_tile: int | None = None
    exclude_backends: tuple[str, ...] = ()
    fusion: str = "auto"
    fused_tile_blocks: int | None = None

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}"
            )
        if self.block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {self.block_size}")
        if self.p < 1:
            raise ValueError(f"p must be >= 1, got {self.p}")
        if not (self.omega > 0.0 and math.isfinite(self.omega)):
            raise ValueError(f"omega must be positive and finite, got {self.omega}")
        if self.epsilon_floor < 0.0 or not math.isfinite(self.epsilon_floor):
            raise ValueError(
                f"epsilon_floor must be >= 0, got {self.epsilon_floor}"
            )
        if self.scheme == "fixed":
            if self.fixed_epsilon is None:
                raise ConfigurationError("scheme='fixed' requires fixed_epsilon")
            FixedBound(float(self.fixed_epsilon))  # validate eagerly
        if self.dtype is not None:
            if self.dtype not in DTYPE_NAMES:
                raise ConfigurationError(
                    f"unknown dtype {self.dtype!r}; expected one of "
                    f"{DTYPE_NAMES}"
                )
            try:
                format_for_name(self.dtype)  # bfloat16 gates on ml_dtypes
            except KeyError as exc:
                raise ConfigurationError(str(exc)) from None
        if self.dtype in LOW_PRECISION_NAMES and self.scheme not in (
            "adaptive",
            "fixed",
        ):
            raise ConfigurationError(
                f"storage dtype {self.dtype!r} carries quantisation noise "
                f"the {self.scheme!r} bound does not model; use "
                "scheme='adaptive' (variance-adaptive tolerance) or "
                "scheme='fixed' with an explicit tolerance"
            )
        if not self.backend or not isinstance(self.backend, str):
            raise ConfigurationError(
                f"backend must be a non-empty str, got {self.backend!r}"
            )
        if self.gemm_tile is not None and self.gemm_tile < 1:
            raise ValueError(f"gemm_tile must be >= 1, got {self.gemm_tile}")
        if not isinstance(self.exclude_backends, tuple):
            # Accept any iterable of names; the stored form must be
            # hashable for plan-cache keys.
            object.__setattr__(
                self, "exclude_backends", tuple(self.exclude_backends)
            )
        if "numpy" in self.exclude_backends:
            raise ConfigurationError(
                "the 'numpy' backend cannot be excluded: it is the terminal "
                "fallback of the never-silent fallback chain"
            )
        if self.backend != "auto" and self.backend in self.exclude_backends:
            raise ConfigurationError(
                f"backend {self.backend!r} is pinned and excluded at once"
            )
        if self.fusion not in ("auto", "fused", "separate"):
            raise ConfigurationError(
                f"fusion must be 'auto', 'fused' or 'separate', got "
                f"{self.fusion!r}"
            )
        if self.fused_tile_blocks is not None and self.fused_tile_blocks < 1:
            raise ValueError(
                f"fused_tile_blocks must be >= 1, got {self.fused_tile_blocks}"
            )

    def replace(self, **changes) -> "AbftConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [f"scheme={self.scheme}", f"block_size={self.block_size}"]
        if self.scheme == "aabft":
            parts += [f"p={self.p}", f"omega={self.omega:g}"]
            if self.fma:
                parts.append("fma")
            if self.epsilon_floor:
                parts.append(f"floor={self.epsilon_floor:g}")
        if self.scheme == "fixed":
            parts.append(f"epsilon={self.fixed_epsilon:g}")
        if self.dtype is not None:
            parts.append(f"dtype={self.dtype}")
        if self.backend != "auto":
            parts.append(f"backend={self.backend}")
        if self.gemm_tile is not None:
            parts.append(f"gemm_tile={self.gemm_tile}")
        if self.exclude_backends:
            parts.append(f"exclude={','.join(self.exclude_backends)}")
        if self.fusion != "auto":
            parts.append(f"fusion={self.fusion}")
        if self.fused_tile_blocks is not None:
            parts.append(f"fused_tile_blocks={self.fused_tile_blocks}")
        return "AbftConfig(" + ", ".join(parts) + ")"
