"""Plan-caching batched execution engine for protected multiplications.

The classic one-shot functions (:func:`repro.abft.aabft_matmul` and
friends) rebuild every piece of shape-dependent state — partitioned
layouts, padding buffers, bound-scheme objects — on each call, and check
tolerances one scalar comparison at a time.  This package amortises all of
that behind a session object:

* :class:`AbftConfig` — every tuning knob (block size, top-p depth, omega,
  FMA modelling, tolerance floor, bound scheme) in one frozen, hashable
  value object;
* :class:`MatmulEngine` — caches execution plans per ``(shape, dtype,
  config)`` with LRU eviction, encodes operands once for reuse
  (:meth:`MatmulEngine.encode`), runs batches of pairs under one
  declarative :class:`ExecutionPolicy`
  (:meth:`MatmulEngine.execute_batch`: serial thread fan-out, the fused
  single-pass pipeline, or the stage-pipelined chunk executor) and
  publishes counters (:meth:`MatmulEngine.stats`);
* :func:`default_engine` — the lazily created module-level engine the
  classic matmul functions route through, so even legacy call sites
  benefit from plan caching.

Example
-------
>>> import numpy as np
>>> from repro.engine import AbftConfig, MatmulEngine
>>> rng = np.random.default_rng(0)
>>> engine = MatmulEngine(AbftConfig(block_size=32))
>>> a = rng.uniform(-1, 1, (64, 64)); b = rng.uniform(-1, 1, (64, 64))
>>> results = engine.execute_batch([(a, b), (a, b + 1.0)])
>>> [r.detected for r in results]
[False, False]
>>> engine.stats().calls
2
"""

from .config import SCHEMES, AbftConfig
from .engine import EncodedOperand, MatmulEngine, default_engine
from .pipeline import PipelineSchedule, pipeline_supported, plan_schedule
from .plan import ExecutionPlan, PlanCache, build_plan
from .policy import EXECUTION_MODES, ExecutionPolicy
from .stats import EngineStats, StageCost, StageCosts

__all__ = [
    "AbftConfig",
    "SCHEMES",
    "MatmulEngine",
    "EncodedOperand",
    "EngineStats",
    "StageCost",
    "StageCosts",
    "ExecutionPlan",
    "ExecutionPolicy",
    "EXECUTION_MODES",
    "PipelineSchedule",
    "PlanCache",
    "build_plan",
    "default_engine",
    "pipeline_supported",
    "plan_schedule",
]
