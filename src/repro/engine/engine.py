"""The plan-caching batched execution engine for protected multiplications.

:class:`MatmulEngine` is a session object that amortises everything a
single :func:`~repro.abft.multiply.aabft_matmul` call would rebuild from
scratch:

* **execution plans** — per-``(shape, dtype, config)`` layouts, padding
  workspaces and bound-scheme objects, LRU-cached (see
  :mod:`repro.engine.plan`);
* **operand encodings** — :meth:`MatmulEngine.encode` returns a reusable
  :class:`EncodedOperand` handle, so one encoding of ``A`` serves many
  ``A @ B_i`` products (the iterative-solver pattern);
* **checking** — tolerances are evaluated on dense grids through the
  vectorised provider paths (bitwise equal to the scalar per-comparison
  loop, an order of magnitude faster);
* **batching** — :meth:`MatmulEngine.execute_batch` runs a list of operand
  pairs under one :class:`~repro.engine.policy.ExecutionPolicy`: ``serial``
  fans pairs across a thread pool, ``fused`` runs the vectorised
  single-pass batch pipeline, ``pipelined`` runs the chunked stage-slot
  executor (:mod:`repro.engine.pipeline`), and ``auto`` (the default)
  picks the strongest mode the batch supports.  The legacy
  ``matmul_many``/``matmul_fused`` entry points remain as deprecation
  shims over it.

All of the above is metered through a :class:`~repro.telemetry.
MetricsRegistry` (``abft_engine_*`` counters, gauges and stage histograms);
:meth:`MatmulEngine.stats` stays as the backward-compatible
:class:`~repro.engine.stats.EngineStats` snapshot derived from it.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..abft.checking import (
    CheckReport,
    build_report,
    check_partitioned,
    column_discrepancies,
    row_discrepancies,
)
from ..abft.encoding import PartitionedLayout, strip_encoding
from ..kernels.encode_fused import fused_encode
from ..kernels.online_fused import OnlineFusedOutcome, online_fused_matmul
from ..abft.providers import (
    AABFTEpsilonProvider,
    AdaptiveEpsilonProvider,
    ConstantEpsilonProvider,
    SEAEpsilonProvider,
)
from ..abft.result import AbftResult
from ..backends.autotune import Autotuner, AutotuneCache
from ..backends.registry import (
    BackendRegistry,
    BackendSelection,
    default_registry,
    negotiate,
)
from ..bounds.upper_bound import TopP
from ..errors import ConfigurationError, ShapeError
from ..fp.constants import LOW_PRECISION_NAMES, format_for_name
from ..telemetry import MetricsRegistry
from .config import AbftConfig
from .plan import ExecutionPlan, PlanCache
from .policy import ExecutionPolicy
from .stats import EngineStats, StageCost, StageCosts

__all__ = ["EncodedOperand", "MatmulEngine", "default_engine"]


@dataclass(frozen=True, eq=False)
class EncodedOperand:
    """A reusable encoded operand (checksums + bound-scheme preprocessing).

    Produced by :meth:`MatmulEngine.encode`; pass it to
    :meth:`MatmulEngine.matmul` / :meth:`MatmulEngine.execute_batch` in
    place of the raw matrix.  The handle is immutable and safe to share
    across threads.

    Attributes
    ----------
    side:
        ``"a"`` (left operand, column checksums) or ``"b"`` (right operand,
        row checksums).
    array:
        The encoded matrix (``A_cc`` or ``B_rc``).
    layout:
        Partitioned layout of the encoded axis.
    shape:
        The original (unpadded) operand shape.
    padding:
        Rows (side ``"a"``) or columns (side ``"b"``) of zero padding.
    config:
        The config the operand was encoded under (block size, scheme, p).
    top_values / top_indices:
        Stacked top-p data of every encoded vector (``"aabft"`` scheme).
    norms:
        Euclidean norms of every encoded vector (``"sea"`` scheme).
    """

    side: str
    array: np.ndarray
    layout: PartitionedLayout
    shape: tuple[int, int]
    padding: int
    config: AbftConfig
    top_values: np.ndarray | None = None
    top_indices: np.ndarray | None = None
    norms: np.ndarray | None = None
    _tops_cache: list = field(default_factory=list, repr=False, compare=False)

    @property
    def dtype(self) -> np.dtype:
        return self.array.dtype

    @property
    def inner_dim(self) -> int:
        """Length of the non-encoded (inner) axis."""
        return self.array.shape[1] if self.side == "a" else self.array.shape[0]

    def tops(self) -> list[TopP]:
        """The top-p data as per-vector :class:`TopP` objects (cached)."""
        if self.top_values is None:
            raise ConfigurationError(
                f"operand was encoded for scheme {self.config.scheme!r} "
                "without top-p data"
            )
        if not self._tops_cache:
            self._tops_cache.extend(
                TopP(values=v, indices=i)
                for v, i in zip(self.top_values, self.top_indices)
            )
        return list(self._tops_cache)


def _as_matrix(operand) -> np.ndarray:
    arr = np.asarray(operand)
    if arr.ndim != 2:
        raise ShapeError("operands must be 2-D matrices")
    return arr


def _resolve_dtype(*dtypes: np.dtype) -> np.dtype:
    """The computation dtype: float32 only when every operand is float32."""
    if all(np.dtype(d) == np.float32 for d in dtypes):
        return np.dtype(np.float32)
    return np.dtype(np.float64)


def _is_low_precision(dtype: np.dtype) -> bool:
    """Whether ``dtype`` is a sub-float32 storage format (fp16/bf16)."""
    return np.dtype(dtype).name in LOW_PRECISION_NAMES


def _resolve_storage_compute(
    cfg: AbftConfig, *dtypes: np.dtype
) -> tuple[np.dtype, np.dtype]:
    """Resolve one call's ``(storage, compute)`` dtype pair.

    With ``cfg.dtype`` set it is authoritative: low-precision storage
    computes (GEMM + checksum accumulation) in float32, everything else
    computes in the storage dtype itself.  Without it the historical
    promotion rule applies — float32 only when every operand is float32,
    float64 otherwise — **except** that low-precision operands are
    refused with a :class:`~repro.errors.ConfigurationError` naming the
    fix, rather than silently upcast.
    """
    if cfg.dtype is not None:
        storage = format_for_name(cfg.dtype).dtype
        for d in dtypes:
            if _is_low_precision(d) and np.dtype(d) != storage:
                raise ConfigurationError(
                    f"operand dtype {np.dtype(d).name} conflicts with the "
                    f"config's storage dtype {cfg.dtype!r}; cast the "
                    "operand explicitly or change AbftConfig.dtype"
                )
        if _is_low_precision(storage):
            return storage, np.dtype(np.float32)
        return storage, storage
    for d in dtypes:
        if _is_low_precision(d):
            name = np.dtype(d).name
            raise ConfigurationError(
                f"operands of dtype {name} require an explicit "
                f"AbftConfig(dtype={name!r}, scheme='adaptive') so the "
                "check models low-precision quantisation noise; refusing "
                "to silently upcast"
            )
    compute = _resolve_dtype(*dtypes)
    return compute, compute


class MatmulEngine:
    """A session object executing ABFT-protected matrix multiplications.

    Parameters
    ----------
    config:
        Default :class:`~repro.engine.config.AbftConfig` for calls that do
        not pass their own.
    plan_cache_size:
        Maximum number of cached execution plans (LRU eviction beyond it).
    max_workers:
        Thread-pool width for :meth:`execute_batch`; defaults to the
        host's CPU count.  ``1`` forces sequential batched execution.
    registry:
        The :class:`~repro.telemetry.MetricsRegistry` the engine publishes
        its metrics to.  Defaults to a private registry per engine, which
        keeps :meth:`stats` engine-local; pass a shared registry (e.g.
        :func:`repro.telemetry.get_registry`) to fold the engine into a
        process-wide scrape — engines sharing a registry then share
        counters.
    backends:
        The :class:`~repro.backends.registry.BackendRegistry` the GEMM
        stage dispatches through; defaults to the process-wide registry
        with the ``numpy``/``blocked``/``cupy`` backends.
    autotuner:
        The :class:`~repro.backends.autotune.Autotuner` consulted when a
        config's backend is ``"auto"`` and neither a config nor an
        ``AABFT_BACKEND`` pin applies.  Defaults to one reading the
        on-disk winner cache (lookups only — timing trials never run
        inline; use :meth:`autotune` or ``aabft autotune``).

    The engine is thread-safe: the plan cache, workspace pools and metrics
    are lock-protected, and result objects are independent.
    """

    #: The three instrumented pipeline stages.
    STAGES = ("encode", "multiply", "check")

    def __init__(
        self,
        config: AbftConfig | None = None,
        *,
        plan_cache_size: int = 128,
        max_workers: int | None = None,
        registry: MetricsRegistry | None = None,
        backends: BackendRegistry | None = None,
        autotuner: Autotuner | None = None,
    ) -> None:
        self.config = config if config is not None else AbftConfig()
        if not isinstance(self.config, AbftConfig):
            raise ConfigurationError(
                f"config must be an AbftConfig, got {type(self.config).__name__}"
            )
        self._plans = PlanCache(plan_cache_size)
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = max_workers
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._m_calls = reg.counter(
            "abft_engine_calls_total", "Completed protected multiplications"
        )
        self._m_batched = reg.counter(
            "abft_engine_batched_calls_total",
            "Batched submissions through execute_batch",
        )
        self._m_exec_mode = reg.counter(
            "abft_engine_execute_batch_total",
            "execute_batch submissions per resolved execution mode",
            ("mode",),
        )
        self._m_reuses = reg.counter(
            "abft_engine_encode_reuses_total",
            "Operands served from a pre-encoded handle",
        )
        self._m_detections = reg.counter(
            "abft_engine_detections_total",
            "Multiplications whose check flagged at least one comparison",
        )
        stage_seconds = reg.counter(
            "abft_engine_stage_seconds_total",
            "Accumulated wall seconds per pipeline stage",
            ("stage",),
        )
        stage_hist = reg.histogram(
            "abft_engine_stage_seconds",
            "Per-call wall seconds of each pipeline stage",
            ("stage",),
        )
        self._m_stage = {s: stage_seconds.labels(stage=s) for s in self.STAGES}
        self._h_stage = {s: stage_hist.labels(stage=s) for s in self.STAGES}
        self._g_plans = reg.gauge(
            "abft_engine_plan_cache",
            "Plan-cache accounting, refreshed on stats()",
            ("event",),
        )
        self._backends = backends if backends is not None else default_registry()
        self._autotuner = (
            autotuner
            if autotuner is not None
            else Autotuner(
                AutotuneCache(),
                registry=self._backends,
                metrics_registry=reg,
            )
        )
        self._m_backend_dispatch = reg.counter(
            "abft_backend_dispatch_total",
            "GEMM-stage dispatches per compute backend",
            ("backend",),
        )
        self._m_backend_fallbacks = reg.counter(
            "abft_backend_fallbacks_total",
            "Never-silent fallbacks to the numpy backend",
            ("backend", "reason"),
        )
        self._m_pipe_batches = reg.counter(
            "abft_pipeline_batches_total",
            "Batches executed by the stage-pipelined executor",
        )
        self._m_pipe_chunks = reg.counter(
            "abft_pipeline_chunks_total",
            "Chunks executed by the stage-pipelined executor",
        )
        self._m_pipe_fallbacks = reg.counter(
            "abft_pipeline_fallbacks_total",
            "Batched execution-mode fallbacks by reason (never silent)",
            ("reason",),
        )
        self._m_fused_calls = reg.counter(
            "abft_fused_calls_total",
            "Protected multiplications executed through the fused "
            "online-ABFT tile loop",
        )
        self._m_fused_tiles = reg.counter(
            "abft_fused_tiles_checked_total",
            "Result tiles checked in-loop by the fused online path",
        )
        self._m_fused_aborts = reg.counter(
            "abft_fused_early_aborts_total",
            "Fused online runs aborted early on a persistently failing tile",
        )
        self._m_fused_recomputes = reg.counter(
            "abft_fused_tile_recomputes_total",
            "Tile-granular recomputes performed by the fused online path",
        )
        self._m_fused_fallbacks = reg.counter(
            "abft_fused_fallbacks_total",
            "Never-silent fused-online fallbacks to the separate path",
            ("reason",),
        )
        pipe_busy = reg.counter(
            "abft_pipeline_stage_busy_seconds_total",
            "Busy wall seconds accumulated per pipeline stage lane",
            ("stage",),
        )
        self._m_pipe_busy = {
            s: pipe_busy.labels(stage=s) for s in self.STAGES
        }
        self._g_pipe_bubble = reg.gauge(
            "abft_pipeline_bubble_fraction",
            "Bubble fraction of the last pipelined batch "
            "(1 - busy / (3 * wall))",
        )
        pipe_occupancy = reg.gauge(
            "abft_pipeline_stage_occupancy",
            "Stage busy fraction of the wall time of the last pipelined batch",
            ("stage",),
        )
        self._g_pipe_occupancy = {
            s: pipe_occupancy.labels(stage=s) for s in self.STAGES
        }
        # Bitwise-probe verdicts of the pipelined executor's concatenated
        # fast path, keyed by (plan key, chunk width).
        self._stacked_ok: dict = {}
        self._stacked_lock = threading.Lock()
        # Chaos/test seam (see set_chaos_hook); None == no instrumentation.
        self._chaos_hook = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def backends(self) -> BackendRegistry:
        """The compute-backend registry this engine negotiates against."""
        return self._backends

    @property
    def autotuner(self) -> Autotuner:
        """The autotuner consulted for ``backend="auto"`` configs."""
        return self._autotuner

    def matmul(self, a, b, *, config: AbftConfig | None = None) -> AbftResult:
        """One protected multiplication ``a @ b``.

        Either operand may be a raw matrix or an :class:`EncodedOperand`
        handle from :meth:`encode` (side ``"a"`` for the left, ``"b"`` for
        the right operand).
        """
        return self._run(a, b, self._resolve_config(config))

    def encode(
        self,
        operand,
        *,
        side: str = "a",
        config: AbftConfig | None = None,
        dtype: np.dtype | None = None,
    ) -> EncodedOperand:
        """Encode an operand once for reuse across many products.

        Parameters
        ----------
        operand:
            The raw matrix.
        side:
            ``"a"`` for a left operand (column checksums), ``"b"`` for a
            right operand (row checksums).
        config:
            Overrides the engine's default config.
        dtype:
            Forces the computation dtype.  By default a float32 operand is
            encoded in float32; pass ``np.float64`` when it will be paired
            with float64 operands (the mixed-precision promotion rule).
        """
        cfg = self._resolve_config(config)
        if side not in ("a", "b"):
            raise ConfigurationError(f"side must be 'a' or 'b', got {side!r}")
        arr = _as_matrix(operand)
        if dtype is None:
            _storage, dtype = _resolve_storage_compute(cfg, arr.dtype)
        arr = arr.astype(np.dtype(dtype), copy=False)
        t0 = time.perf_counter()
        encoded = self._encode_array(arr, side, cfg)
        self._add_seconds("encode", time.perf_counter() - t0)
        return encoded

    def execute_batch(
        self,
        requests,
        *,
        policy: ExecutionPolicy | None = None,
        config: AbftConfig | None = None,
    ) -> list[AbftResult]:
        """Protected multiplications of many operand pairs under one policy.

        Parameters
        ----------
        requests:
            A sequence of ``(a, b)`` operand pairs.  Each operand may be a
            raw matrix or an :class:`EncodedOperand` handle.
        policy:
            The :class:`~repro.engine.policy.ExecutionPolicy` selecting the
            execution mode (``auto`` | ``serial`` | ``fused`` |
            ``pipelined``) plus backend pin, deadline budget and pipeline
            chunking knobs.  Defaults to ``ExecutionPolicy()`` (mode
            ``auto``: the strongest mode whose preconditions the batch
            meets).
        config:
            Overrides the engine's default :class:`AbftConfig`.

        Results come back in request order and are **bitwise identical**
        to sequential :meth:`matmul` calls regardless of the mode chosen —
        modes only trade scheduling overhead against amortisation.  A
        requested batched mode whose preconditions the batch does not meet
        falls down the chain (pipelined → fused → serial), counted in
        ``abft_pipeline_fallbacks_total`` — never silent.
        """
        from .fused import fused_supported, run_fused
        from .pipeline import pipeline_supported, run_pipelined

        cfg = self._resolve_config(config)
        if policy is None:
            policy = ExecutionPolicy()
        elif not isinstance(policy, ExecutionPolicy):
            raise ConfigurationError(
                f"policy must be an ExecutionPolicy, got "
                f"{type(policy).__name__}"
            )
        pairs = []
        for request in requests:
            pair = tuple(request) if not isinstance(request, tuple) else request
            if len(pair) != 2:
                raise ShapeError(
                    f"each request must be an (a, b) pair, got "
                    f"{len(pair)} operands"
                )
            pairs.append(pair)
        if policy.backend is not None:
            cfg = cfg.replace(backend=policy.backend)
        if policy.fusion is not None:
            cfg = cfg.replace(fusion=policy.fusion)
        if policy.exclude_backends:
            merged = dict.fromkeys(
                cfg.exclude_backends + policy.exclude_backends
            )
            cfg = cfg.replace(exclude_backends=tuple(merged))
        self._m_batched.inc()
        if not pairs:
            self._m_exec_mode.labels(mode="serial").inc()
            return []
        a_items = [a for a, _b in pairs]
        b_items = [b for _a, b in pairs]

        mode = policy.mode
        if mode in ("auto", "pipelined"):
            if pipeline_supported(a_items, b_items, cfg):
                mode = "pipelined"
            else:
                if mode == "pipelined":
                    self._m_pipe_fallbacks.labels(reason="unsupported").inc()
                mode = "fused"
        if mode == "fused" and not fused_supported(a_items, b_items, cfg):
            if policy.mode == "fused":
                self._m_pipe_fallbacks.labels(reason="unsupported").inc()
            mode = "serial"
        self._m_exec_mode.labels(mode=mode).inc()
        if mode == "pipelined":
            return run_pipelined(self, a_items, b_items, cfg, policy)
        if mode == "fused":
            return run_fused(self, a_items, b_items, cfg)
        return self._run_serial_batch(pairs, cfg)

    def matmul_many(
        self, a, b, *, config: AbftConfig | None = None
    ) -> list[AbftResult]:
        """Deprecated: use :meth:`execute_batch` with ``mode="serial"``.

        ``a`` and ``b`` each accept a list of matrices, a stacked 3-D array,
        a single matrix, or an :class:`EncodedOperand`; single operands are
        broadcast against the other side's length.  This shim expands the
        legacy operand forms and delegates to :meth:`execute_batch` under
        ``ExecutionPolicy(mode="serial")``.
        """
        warnings.warn(
            "MatmulEngine.matmul_many is deprecated; use "
            "execute_batch(requests, policy=ExecutionPolicy(mode='serial'))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute_batch(
            _legacy_pairs(a, b),
            policy=ExecutionPolicy(mode="serial"),
            config=config,
        )

    def matmul_fused(
        self, a, b, *, config: AbftConfig | None = None
    ) -> list[AbftResult]:
        """Deprecated: use :meth:`execute_batch` with ``mode="fused"``.

        This shim expands the legacy operand forms and delegates to
        :meth:`execute_batch` under ``ExecutionPolicy(mode="fused")``
        (which still falls back to serial execution for batches the fused
        preconditions reject).
        """
        warnings.warn(
            "MatmulEngine.matmul_fused is deprecated; use "
            "execute_batch(requests, policy=ExecutionPolicy(mode='fused'))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.execute_batch(
            _legacy_pairs(a, b),
            policy=ExecutionPolicy(mode="fused"),
            config=config,
        )

    def autotune(
        self,
        m: int,
        n: int,
        q: int,
        *,
        dtype=np.float64,
        config: AbftConfig | None = None,
        force: bool = False,
    ):
        """Run backend/tile timing trials for one call signature.

        Times every available deterministic backend over the candidate
        tile set on operands of the *encoded* GEMM shapes, persists the
        winner to the autotune cache, and returns the
        :class:`~repro.backends.autotune.TunedChoice`.  Subsequent
        ``backend="auto"`` calls with this signature pick the winner up
        through capability negotiation.
        """
        cfg = self._resolve_config(config)
        return self._autotuner.tune(
            m, n, q, dtype=dtype, config=cfg, force=force
        )

    def set_chaos_hook(self, hook) -> None:
        """Install (or clear, with ``None``) the chaos/test-injection seam.

        The hook is invoked from whichever thread executes the work, as
        ``hook(event, *, backend=None, c_fc=None)``:

        * ``event in ("encode", "multiply", "check")`` — fired when a
          pipeline stage completes, on every execution path (serial,
          fused and pipelined).  Sleeping here injects a stage stall; the
          stall is *not* charged to the stage timers, so the pipeline
          cost model keeps seeing real stage costs.  Stage hooks must not
          raise.
        * ``event == "dispatch"`` (``backend=<name>``) — fired just
          before the GEMM stage executes on a compute backend.  An
          exception raised here flows through the engine's never-silent
          numpy fallback exactly like a real backend failure (the numpy
          retry does not re-fire the hook).
        * ``event == "result"`` (``backend=<name>``, ``c_fc=<array>``) —
          fired with the full-checksum GEMM result; mutating ``c_fc`` in
          place emulates a kernel-level fault that the check stage must
          catch.  (On the fused online path the in-loop per-tile checks
          have already run by then, so whenever a chaos hook is
          installed the fused path re-derives the full discrepancy
          grids after this hook fires — bitwise identical in clean
          runs — keeping ``result``-site injections detectable.)
        * ``event == "tile_result"`` (``tile_index=<int>``,
          ``attempt=<int>``, ``c_tile=<array view>``) — fired by the
          fused online path after each tile's GEMM (and after each
          tile recompute, with ``attempt`` incremented); mutating
          ``c_tile`` in place emulates a fault inside the tile loop that
          the *in-loop* check must catch — the early-abort /
          tile-recompute injection site.

        This is the seam :mod:`repro.chaos` drives; it exists so system-
        level fault campaigns never need to monkeypatch engine internals.
        """
        if hook is not None and not callable(hook):
            raise ConfigurationError(
                f"chaos hook must be callable or None, got "
                f"{type(hook).__name__}"
            )
        self._chaos_hook = hook

    def stats(self) -> EngineStats:
        """An immutable snapshot derived from the engine's registry metrics.

        Counts come straight from the registry counters (so the snapshot
        and a Prometheus scrape of :attr:`registry` always agree); the
        plan-cache gauges are refreshed as a side effect.
        """
        hits, misses, evictions = (
            self._plans.hits, self._plans.misses, self._plans.evictions,
        )
        self._g_plans.labels(event="hit").set(hits)
        self._g_plans.labels(event="miss").set(misses)
        self._g_plans.labels(event="eviction").set(evictions)
        self._g_plans.labels(event="cached").set(len(self._plans))
        return EngineStats(
            plan_hits=hits,
            plan_misses=misses,
            plan_evictions=evictions,
            calls=int(self._m_calls.get()),
            batched_calls=int(self._m_batched.get()),
            encode_reuses=int(self._m_reuses.get()),
            detections=int(self._m_detections.get()),
            encode_seconds=self._m_stage["encode"].get(),
            multiply_seconds=self._m_stage["multiply"].get(),
            check_seconds=self._m_stage["check"].get(),
            stage_costs=self._stage_costs(),
        )

    def reset_stats(self) -> None:
        """Zero the engine's metrics (cached plans are kept)."""
        for metric in (self._m_calls, self._m_batched, self._m_reuses,
                       self._m_detections, self._m_exec_mode,
                       self._m_pipe_batches, self._m_pipe_chunks,
                       self._m_pipe_fallbacks, self._g_pipe_bubble,
                       self._m_fused_calls, self._m_fused_tiles,
                       self._m_fused_aborts, self._m_fused_recomputes,
                       self._m_fused_fallbacks):
            metric.reset()
        for stage in self.STAGES:
            self._m_stage[stage].reset()
            self._h_stage[stage].reset()
            self._m_pipe_busy[stage].reset()
            self._g_pipe_occupancy[stage].reset()
        self._plans.hits = 0
        self._plans.misses = 0
        self._plans.evictions = 0

    def clear_plans(self) -> None:
        """Drop every cached execution plan."""
        self._plans.clear()

    @property
    def plan_cache_size(self) -> int:
        """Number of currently cached plans."""
        return len(self._plans)

    def close(self) -> None:
        """Shut the batching thread pool down (the engine stays usable)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "MatmulEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve_config(self, config: AbftConfig | None) -> AbftConfig:
        if config is None:
            return self.config
        if not isinstance(config, AbftConfig):
            raise ConfigurationError(
                f"config must be an AbftConfig, got {type(config).__name__}"
            )
        return config

    def _get_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="abft-engine",
                )
            return self._executor

    def _add_seconds(self, stage: str, elapsed: float) -> None:
        self._m_stage[stage].inc(elapsed)
        self._h_stage[stage].observe(elapsed)
        hook = self._chaos_hook
        if hook is not None:
            # After the timers, so injected stalls never pollute the
            # measured stage costs the pipeline scheduler feeds on.
            hook(stage)

    def _stage_costs(self) -> StageCosts:
        """The measured per-stage costs (the pipeline cost model's seed)."""
        def cost(stage: str) -> StageCost:
            return StageCost(
                seconds=self._m_stage[stage].get(),
                observations=int(self._h_stage[stage].count),
            )

        return StageCosts(
            encode=cost("encode"),
            multiply=cost("multiply"),
            check=cost("check"),
        )

    def _run_serial_batch(self, pairs, cfg: AbftConfig) -> list[AbftResult]:
        """The ``serial`` execution mode: per-pair runs, thread-fanned.

        A raw operand appearing in several pairs is encoded once up front
        — but only when every pairing it participates in resolves to the
        same computation dtype, so results stay bitwise identical to
        sequential :meth:`matmul` calls.
        """
        a_items = [a for a, _b in pairs]
        b_items = [b for _a, b in pairs]
        # The id-dedup below predicts each pair's computation dtype with
        # the historical promotion rule; configs carrying an explicit
        # storage dtype resolve through _resolve_storage_compute instead,
        # so their operands encode inside _run (still once per call).
        sides = (
            ()
            if cfg.dtype is not None
            else (("a", a_items, b_items), ("b", b_items, a_items))
        )
        for side, items, others in sides:
            by_id: dict[int, list[int]] = {}
            for i, item in enumerate(items):
                if not isinstance(item, EncodedOperand):
                    by_id.setdefault(id(item), []).append(i)
            for indices in by_id.values():
                if len(indices) < 2:
                    continue
                pair_dtypes = {
                    _resolve_dtype(
                        _operand_dtype(items[i]), _operand_dtype(others[i])
                    )
                    for i in indices
                }
                if len(pair_dtypes) != 1:
                    continue
                handle = self.encode(
                    items[indices[0]],
                    side=side,
                    config=cfg,
                    dtype=next(iter(pair_dtypes)),
                )
                for i in indices:
                    items[i] = handle
        pairs = list(zip(a_items, b_items))
        if self._max_workers > 1 and len(pairs) > 1:
            executor = self._get_executor()
            return list(
                executor.map(
                    lambda pair: self._run(pair[0], pair[1], cfg), pairs
                )
            )
        return [self._run(x, y, cfg) for x, y in pairs]

    def _encode_array(
        self, arr: np.ndarray, side: str, cfg: AbftConfig
    ) -> EncodedOperand:
        """Encode a dtype-resolved matrix (checksums + scheme preprocessing).

        This is the *unpooled* path behind the public :meth:`encode`: the
        returned handle escapes to user code, so its encoded buffer must
        never come from (or return to) a workspace pool.
        """
        bs = cfg.block_size
        if side == "a":
            padding = (-arr.shape[0]) % bs
            if padding:
                arr = np.pad(arr, ((0, padding), (0, 0)), mode="constant")
            shape = (arr.shape[0] - padding, arr.shape[1])
        else:
            padding = (-arr.shape[1]) % bs
            if padding:
                arr = np.pad(arr, ((0, 0), (0, padding)), mode="constant")
            shape = (arr.shape[0], arr.shape[1] - padding)
        fused = fused_encode(
            arr,
            side,
            bs,
            p=cfg.p if cfg.scheme == "aabft" else None,
            norms=cfg.scheme in ("sea", "adaptive"),
        )
        return EncodedOperand(
            side=side,
            array=fused.encoded,
            layout=fused.layout,
            shape=shape,
            padding=padding,
            config=cfg,
            top_values=fused.top_values,
            top_indices=fused.top_indices,
            norms=fused.norms,
        )

    def _check_handle(
        self, handle: EncodedOperand, side: str, cfg: AbftConfig, dtype: np.dtype
    ) -> None:
        if handle.side != side:
            raise ConfigurationError(
                f"operand encoded for side {handle.side!r} passed as "
                f"side {side!r}"
            )
        if handle.config.block_size != cfg.block_size:
            raise ConfigurationError(
                f"encoded operand uses block_size {handle.config.block_size}, "
                f"call requests {cfg.block_size}"
            )
        if handle.config.scheme != cfg.scheme:
            raise ConfigurationError(
                f"operand encoded for scheme {handle.config.scheme!r}, "
                f"call requests {cfg.scheme!r}"
            )
        if cfg.scheme == "aabft" and handle.config.p != cfg.p:
            raise ConfigurationError(
                f"operand encoded with p={handle.config.p}, call requests "
                f"p={cfg.p}"
            )
        if handle.dtype != dtype:
            raise ConfigurationError(
                f"operand encoded as {handle.dtype}, but the multiplication "
                f"resolves to {dtype}; re-encode with dtype={np.dtype(dtype).name}"
            )

    def _run(self, a, b, cfg: AbftConfig) -> AbftResult:
        # --- resolve operands and the computation dtype -----------------
        a_raw = a if isinstance(a, EncodedOperand) else _as_matrix(a)
        b_raw = b if isinstance(b, EncodedOperand) else _as_matrix(b)
        storage_dtype, dtype = _resolve_storage_compute(
            cfg, _operand_dtype(a_raw), _operand_dtype(b_raw)
        )
        quantize = storage_dtype != dtype
        a_shape = a_raw.shape if isinstance(a_raw, EncodedOperand) else a_raw.shape
        b_shape = b_raw.shape if isinstance(b_raw, EncodedOperand) else b_raw.shape
        if a_shape[1] != b_shape[0]:
            raise ShapeError(
                f"inner dimensions disagree: A is {a_shape}, B is {b_shape}"
            )
        m, n = a_shape
        q = b_shape[1]
        cfg, selection_fallback, fused_fallback = self._negotiate(
            cfg, m, n, q, dtype
        )
        if quantize and cfg.fusion == "fused":
            # The low-precision path quantises the stored result between
            # multiply and check, which the in-loop tile checks would miss.
            self._m_fused_fallbacks.labels(reason="low_precision").inc()
            fused_fallback = (
                "fused online fell back to separate: low-precision storage "
                "quantises the result after the multiply, so checks must "
                "run on the stored bytes"
            )
            cfg = cfg.replace(fusion="separate", fused_tile_blocks=None)
        plan, _hit = self._plans.get(m, n, q, dtype, cfg)

        # --- encode (or reuse) ------------------------------------------
        t0 = time.perf_counter()
        fresh_a = fresh_b = None
        if isinstance(a_raw, EncodedOperand):
            self._check_handle(a_raw, "a", cfg, dtype)
            enc_a = a_raw
            self._m_reuses.inc()
        else:
            enc_a = fresh_a = self._encode_with_plan(
                a_raw.astype(dtype, copy=False), "a", cfg, plan
            )
        if isinstance(b_raw, EncodedOperand):
            self._check_handle(b_raw, "b", cfg, dtype)
            enc_b = b_raw
            self._m_reuses.inc()
        else:
            enc_b = fresh_b = self._encode_with_plan(
                b_raw.astype(dtype, copy=False), "b", cfg, plan
            )
        self._add_seconds("encode", time.perf_counter() - t0)

        # --- fused online multiply+check (one pass over the tiles) -------
        fused_ran = False
        provider = report = c_fc = None
        used_backend = dispatch_fallback = None
        if cfg.fusion == "fused":
            t0 = time.perf_counter()
            provider = self._make_provider(cfg, plan, enc_a, enc_b)
            grids = self._provider_grids(provider, plan)
            grid_seconds = time.perf_counter() - t0  # check-stage work
            if grids is None:
                self._m_fused_fallbacks.labels(reason="no_epsilon_grids").inc()
                fused_fallback = (
                    "fused online fell back to separate: provider has no "
                    "epsilon grids (tolerances must exist before the tiles "
                    "run)"
                )
            else:
                col_eps, row_eps = grids
                t0 = time.perf_counter()
                outcome, used_backend, dispatch_fallback = (
                    self._fused_online_gemm(
                        plan, cfg, enc_a.array, enc_b.array, col_eps, row_eps
                    )
                )
                # The kernel self-times its in-loop checks; what is left
                # of the wall time is the multiply.
                self._add_seconds(
                    "multiply",
                    max(0.0, time.perf_counter() - t0 - outcome.check_seconds),
                )
                if fresh_a is not None:
                    plan.pool.give(fresh_a.array)
                    fresh_a = None
                if fresh_b is not None:
                    plan.pool.give(fresh_b.array)
                    fresh_b = None
                t0 = time.perf_counter()
                report = self._fused_report(outcome, col_eps, row_eps, plan)
                plan.pool.give(col_eps)
                plan.pool.give(row_eps)
                self._add_seconds(
                    "check",
                    grid_seconds
                    + outcome.check_seconds
                    + (time.perf_counter() - t0),
                )
                c_fc = outcome.out
                fused_ran = True

        if not fused_ran:
            # --- multiply (dispatched through the plan's backend) --------
            t0 = time.perf_counter()
            c_fc, used_backend, dispatch_fallback = self._dispatch_gemm(
                plan, enc_a.array, enc_b.array
            )
            if quantize:
                # Simulate low-precision result storage: the data region
                # round-trips through the storage dtype (checksum rows and
                # columns stay in the compute dtype — they accumulate in
                # float32, per the mixed-precision discipline), so the
                # check below sees genuine storage quantisation noise.
                _quantize_data_region(c_fc, plan, storage_dtype)
            self._add_seconds("multiply", time.perf_counter() - t0)
            # Internally encoded buffers are fully consumed by the multiply
            # and never referenced by the result (the provider keeps only
            # top-p / norm arrays), so they recycle.  User-supplied handles
            # are not touched.
            if fresh_a is not None:
                plan.pool.give(fresh_a.array)
            if fresh_b is not None:
                plan.pool.give(fresh_b.array)

            # --- check ---------------------------------------------------
            t0 = time.perf_counter()
            if provider is None:
                provider = self._make_provider(cfg, plan, enc_a, enc_b)
            report = self._check(c_fc, plan, provider)
            self._add_seconds("check", time.perf_counter() - t0)

        c = strip_encoding(
            c_fc, plan.row_layout, plan.col_layout, enc_a.padding, enc_b.padding
        )
        if quantize:
            # Lossless: the data region already round-tripped through the
            # storage dtype, so this cast only changes the container.
            c = c.astype(storage_dtype)
        self._m_calls.inc()
        if report.error_detected:
            self._m_detections.inc()
        return AbftResult(
            c=c,
            c_fc=c_fc,
            report=report,
            row_layout=plan.row_layout,
            col_layout=plan.col_layout,
            provider=provider,
            backend=used_backend,
            backend_fallback=selection_fallback or dispatch_fallback,
            fused=fused_ran,
            fused_fallback=fused_fallback,
        )

    def _negotiate(
        self, cfg: AbftConfig, m: int, n: int, q: int, dtype: np.dtype
    ) -> tuple[AbftConfig, str | None, str | None]:
        """Resolve ``backend="auto"`` / ``fusion="auto"`` for one call.

        Returns the *effective* config — carrying a concrete backend,
        tile and fusion strategy (``"fused"`` or ``"separate"``, never
        ``"auto"``), so it keys the plan cache — plus two never-silent
        fallback texts: the backend-selection fallback (``None`` when the
        requested backend was selected) and the fusion-negotiation
        fallback (``None`` when the requested fusion strategy ran).  A
        rejected backend candidate falls back to ``numpy`` and is counted
        in ``abft_backend_fallbacks_total``; a rejected fused request
        falls back to separate and is counted in
        ``abft_fused_fallbacks_total``.
        """
        selection: BackendSelection = negotiate(
            cfg, m, n, q, dtype,
            registry=self._backends,
            autotuner=self._autotuner,
        )
        fallback_text = None
        if selection.fallback_from is not None:
            self._m_backend_fallbacks.labels(
                backend=selection.fallback_from, reason="selection"
            ).inc()
            fallback_text = (
                f"selection fell back from {selection.fallback_from!r} "
                f"to 'numpy': {selection.fallback_reason}"
            )
        fused_fallback_text = None
        if selection.fusion_fallback_reason is not None:
            self._m_fused_fallbacks.labels(reason="negotiation").inc()
            fused_fallback_text = (
                "fused online fell back to separate: "
                f"{selection.fusion_fallback_reason}"
            )
        fused_tb = (
            selection.fused_tile_blocks if selection.fusion == "fused" else None
        )
        if (
            cfg.backend != selection.backend
            or cfg.gemm_tile != selection.tile
            or cfg.fusion != selection.fusion
            or cfg.fused_tile_blocks != fused_tb
        ):
            cfg = cfg.replace(
                backend=selection.backend,
                gemm_tile=selection.tile,
                fusion=selection.fusion,
                fused_tile_blocks=fused_tb,
            )
        return cfg, fallback_text, fused_fallback_text

    def _dispatch_gemm(
        self, plan: ExecutionPlan, a_arr: np.ndarray, b_arr: np.ndarray
    ) -> tuple[np.ndarray, str, str | None]:
        """Execute the GEMM stage on the plan's backend.

        Returns ``(c_fc, backend_used, fallback_text)``.  A dispatch-time
        backend failure (import error, OOM, failed self-check) retries on
        ``numpy`` with the *same* tile geometry — result bytes stay the
        plan's canonical bytes — and is recorded, never swallowed.
        """
        name = plan.backend_name
        self._m_backend_dispatch.labels(backend=name).inc()
        hook = self._chaos_hook
        try:
            if hook is not None:
                # Chaos seam: a raising hook emulates a backend failure
                # and rides the real never-silent fallback below.
                hook("dispatch", backend=name)
            # Resolve through the engine's registry (plan.backend() uses
            # the process-wide one) so custom registries dispatch too.
            c_fc = self._backends.get(name).matmul(
                a_arr, b_arr, tile=plan.tile, pool=plan.pool
            )
        except Exception as exc:
            if name == "numpy":
                raise
            self._m_backend_fallbacks.labels(
                backend=name, reason="dispatch"
            ).inc()
            c_fc = self._backends.get("numpy").matmul(
                a_arr, b_arr, tile=plan.tile, pool=plan.pool
            )
            if hook is not None:
                hook("result", backend="numpy", c_fc=c_fc)
            return c_fc, "numpy", (
                f"dispatch on {name!r} failed "
                f"({type(exc).__name__}: {exc}); recomputed on 'numpy'"
            )
        if hook is not None:
            hook("result", backend=name, c_fc=c_fc)
        return c_fc, name, None

    def _encode_with_plan(
        self, arr: np.ndarray, side: str, cfg: AbftConfig, plan: ExecutionPlan
    ) -> EncodedOperand:
        """Like :meth:`_encode_array` but allocation-free when warm: padding,
        the encoded buffer and the top-p search workspace all cycle through
        the plan's pool.  The returned handle is engine-internal — the
        caller gives ``handle.array`` back to ``plan.pool`` once the
        multiply has consumed it (it must never escape into results)."""
        if side == "a":
            padded, workspace = plan.pad_a(arr)
            padding, shape = plan.rows_added, (plan.m, plan.n)
        else:
            padded, workspace = plan.pad_b(arr)
            padding, shape = plan.cols_added, (plan.n, plan.q)
        fused = fused_encode(
            padded,
            side,
            cfg.block_size,
            p=cfg.p if cfg.scheme == "aabft" else None,
            norms=cfg.scheme in ("sea", "adaptive"),
            pool=plan.pool,
        )
        plan.release(workspace, side)
        return EncodedOperand(
            side=side,
            array=fused.encoded,
            layout=fused.layout,
            shape=shape,
            padding=padding,
            config=cfg,
            top_values=fused.top_values,
            top_indices=fused.top_indices,
            norms=fused.norms,
        )

    def _make_provider(
        self,
        cfg: AbftConfig,
        plan: ExecutionPlan,
        enc_a: EncodedOperand,
        enc_b: EncodedOperand,
    ):
        if cfg.scheme == "aabft":
            # Array-native path: the stacked top-p data the operands already
            # carry feeds the vectorised grids directly; per-vector TopP
            # objects are only materialised if a scalar re-check asks.
            return AABFTEpsilonProvider.from_arrays(
                scheme=plan.scheme,
                row_values=enc_a.top_values,
                row_indices=enc_a.top_indices,
                col_values=enc_b.top_values,
                col_indices=enc_b.top_indices,
                row_layout=plan.row_layout,
                col_layout=plan.col_layout,
                inner_dim=plan.n,
                epsilon_floor=cfg.epsilon_floor,
            )
        if cfg.scheme in ("sea", "adaptive"):
            provider_cls = (
                SEAEpsilonProvider
                if cfg.scheme == "sea"
                else AdaptiveEpsilonProvider
            )
            return provider_cls(
                scheme=plan.scheme,
                a_row_norms=enc_a.norms,
                b_col_norms=enc_b.norms,
                row_layout=plan.row_layout,
                col_layout=plan.col_layout,
                inner_dim=plan.n,
            )
        return ConstantEpsilonProvider(float(cfg.fixed_epsilon))

    def _check(
        self, c_fc: np.ndarray, plan: ExecutionPlan, provider
    ) -> CheckReport:
        """Vectorised full check; falls back to the scalar path when the
        provider has no array form."""
        grids = None
        epsilon_grids = getattr(provider, "epsilon_grids", None)
        if epsilon_grids is not None:
            try:
                grids = epsilon_grids(
                    plan.row_layout, plan.col_layout, pool=plan.pool
                )
            except TypeError:
                # Third-party providers predating the pool keyword.
                grids = epsilon_grids(plan.row_layout, plan.col_layout)
        if grids is None:
            return check_partitioned(
                c_fc, plan.row_layout, plan.col_layout, provider
            )
        col_eps, row_eps = grids
        col_disc = column_discrepancies(c_fc, plan.row_layout)
        row_disc = row_discrepancies(c_fc, plan.col_layout)
        clean = (
            bool(np.all(col_disc <= col_eps))
            and bool(np.all(row_disc <= row_eps))
            and bool(np.all(np.isfinite(col_disc)))
            and bool(np.all(np.isfinite(row_disc)))
        )
        if not clean:
            # Rare path: delegate to the reference report builder so finding
            # order, located-error intersection etc. match exactly.
            report = build_report(
                col_disc, col_eps, row_disc, row_eps,
                plan.row_layout, plan.col_layout,
            )
        else:
            report = CheckReport(column_disc=col_disc, row_disc=row_disc)
            report.num_checks = col_disc.size + row_disc.size
        # Reports keep only the discrepancy arrays (and scalar epsilons on
        # findings), so the dense tolerance grids recycle.
        plan.pool.give(col_eps)
        plan.pool.give(row_eps)
        return report

    def _provider_grids(self, provider, plan: ExecutionPlan):
        """The provider's dense tolerance grids, or ``None`` without them.

        Factored out of :meth:`_check` because the fused online path needs
        the grids *before* the multiply runs (the per-tile checks consume
        them in-loop).  Same contract: ``pool=`` is offered first, with a
        TypeError fallback for third-party providers predating it.
        """
        epsilon_grids = getattr(provider, "epsilon_grids", None)
        if epsilon_grids is None:
            return None
        try:
            return epsilon_grids(
                plan.row_layout, plan.col_layout, pool=plan.pool
            )
        except TypeError:
            return epsilon_grids(plan.row_layout, plan.col_layout)

    def _fused_online_gemm(
        self,
        plan: ExecutionPlan,
        cfg: AbftConfig,
        a_arr: np.ndarray,
        b_arr: np.ndarray,
        col_eps: np.ndarray,
        row_eps: np.ndarray,
    ) -> tuple[OnlineFusedOutcome, str, str | None]:
        """Run the fused online multiply+check on the plan's backend.

        Returns ``(outcome, backend_used, fallback_text)``.  Mirrors
        :meth:`_dispatch_gemm`'s never-silent contract: a dispatch-time
        failure retries the whole fused call on ``numpy`` with the same
        tile geometry, counted in ``abft_backend_fallbacks_total``.
        """
        name = plan.backend_name
        self._m_backend_dispatch.labels(backend=name).inc()
        hook = self._chaos_hook
        inject_hook = None
        if hook is not None:
            def inject_hook(tile_index, attempt, tile_view):
                hook(
                    "tile_result",
                    tile_index=tile_index,
                    attempt=attempt,
                    c_tile=tile_view,
                )

        def run(backend_name: str) -> OnlineFusedOutcome:
            backend = self._backends.get(backend_name)
            executor = getattr(backend, "tile_executor", lambda: None)()
            return online_fused_matmul(
                a_arr,
                b_arr,
                row_layout=plan.row_layout,
                col_layout=plan.col_layout,
                col_eps=col_eps,
                row_eps=row_eps,
                tile_blocks=cfg.fused_tile_blocks,
                gemm_tile=plan.tile,
                pool=plan.pool,
                executor=executor,
                inject_hook=inject_hook,
            )

        fallback_text = None
        try:
            if hook is not None:
                # Chaos seam: a raising hook emulates a backend failure
                # and rides the real never-silent fallback below.
                hook("dispatch", backend=name)
            outcome = run(name)
        except Exception as exc:
            if name == "numpy":
                raise
            self._m_backend_fallbacks.labels(
                backend=name, reason="dispatch"
            ).inc()
            outcome = run("numpy")
            name = "numpy"
            fallback_text = (
                f"dispatch on {plan.backend_name!r} failed "
                f"({type(exc).__name__}: {exc}); recomputed on 'numpy'"
            )
        self._m_fused_calls.inc()
        self._m_fused_tiles.inc(outcome.tiles_checked)
        if outcome.recomputed_tiles:
            self._m_fused_recomputes.inc(len(outcome.recomputed_tiles))
        if outcome.early_abort:
            self._m_fused_aborts.inc()
        if hook is not None:
            hook("result", backend=name, c_fc=outcome.out)
        return outcome, name, fallback_text

    def _fused_report(
        self,
        outcome: OnlineFusedOutcome,
        col_eps: np.ndarray,
        row_eps: np.ndarray,
        plan: ExecutionPlan,
    ) -> CheckReport:
        """Build the canonical check report from a fused online outcome.

        The clean fast path reuses the kernel's per-tile discrepancy
        accumulators directly — they are bitwise equal to
        :func:`~repro.abft.checking.column_discrepancies` /
        :func:`~repro.abft.checking.row_discrepancies` of the full result.
        After an early abort (tiles past the failure were never checked)
        or whenever a chaos hook is installed (the ``result`` hook may
        have mutated ``c_fc`` after the in-loop checks ran), the full
        grids are recomputed from the final bytes so the report stays the
        separate path's canonical oracle.
        """
        if outcome.early_abort or self._chaos_hook is not None:
            col_disc = column_discrepancies(outcome.out, plan.row_layout)
            row_disc = row_discrepancies(outcome.out, plan.col_layout)
        else:
            col_disc = outcome.col_disc
            row_disc = outcome.row_disc
        clean = (
            bool(np.all(col_disc <= col_eps))
            and bool(np.all(row_disc <= row_eps))
            and bool(np.all(np.isfinite(col_disc)))
            and bool(np.all(np.isfinite(row_disc)))
        )
        if not clean:
            return build_report(
                col_disc, col_eps, row_disc, row_eps,
                plan.row_layout, plan.col_layout,
            )
        report = CheckReport(column_disc=col_disc, row_disc=row_disc)
        report.num_checks = col_disc.size + row_disc.size
        return report


def _quantize_data_region(
    c_fc: np.ndarray, plan: ExecutionPlan, storage_dtype: np.dtype
) -> None:
    """Round-trip the result's data region through the storage dtype.

    Only elements at (data row, data column) positions quantise — they are
    what low-precision hardware would write back; checksum rows/columns
    are the float32-accumulated ABFT side values and keep full compute
    precision.  Mutates ``c_fc`` in place.
    """
    rows = plan.row_layout.all_data_indices()
    cols = plan.col_layout.all_data_indices()
    region = c_fc[np.ix_(rows, cols)]
    c_fc[np.ix_(rows, cols)] = region.astype(storage_dtype).astype(c_fc.dtype)


def _operand_dtype(operand) -> np.dtype:
    if isinstance(operand, EncodedOperand):
        return operand.dtype
    return np.asarray(operand).dtype


def _expand_operand(operand) -> list:
    """Normalise a batched-operand argument to a list of single operands."""
    if isinstance(operand, EncodedOperand):
        return [operand]
    if isinstance(operand, np.ndarray):
        if operand.ndim == 3:
            return [operand[i] for i in range(operand.shape[0])]
        if operand.ndim == 2:
            return [operand]
        raise ShapeError(
            f"batched operands must be 2-D, 3-D or lists, got shape "
            f"{operand.shape}"
        )
    if isinstance(operand, (list, tuple)):
        return list(operand)
    return [_as_matrix(operand)]


def _legacy_pairs(a, b) -> list[tuple]:
    """Expand the legacy two-sided batch arguments into request pairs.

    Implements the ``matmul_many``/``matmul_fused`` operand forms: lists,
    stacked 3-D arrays, single matrices and :class:`EncodedOperand`
    handles, with single operands broadcast against the other side's
    length.  A broadcast raw operand repeats as the *same* object, so the
    batched executors' id-dedup still encodes it exactly once.
    """
    a_items = _expand_operand(a)
    b_items = _expand_operand(b)
    count = max(len(a_items), len(b_items))
    if len(a_items) not in (1, count) or len(b_items) not in (1, count):
        raise ShapeError(
            f"batch lengths disagree: {len(a_items)} left vs "
            f"{len(b_items)} right operands"
        )
    if len(a_items) == 1:
        a_items = a_items * count
    if len(b_items) == 1:
        b_items = b_items * count
    return list(zip(a_items, b_items))


_default_engine: MatmulEngine | None = None
_default_engine_lock = threading.Lock()


def default_engine() -> MatmulEngine:
    """The module-level engine the classic matmul functions route through.

    Created lazily on first use; shared by every
    :func:`~repro.abft.multiply.aabft_matmul` /
    :func:`~repro.abft.multiply.sea_abft_matmul` /
    :func:`~repro.abft.multiply.fixed_abft_matmul` call, so repeated
    same-shape calls amortise their plans even through the classic API.
    """
    global _default_engine
    with _default_engine_lock:
        if _default_engine is None:
            _default_engine = MatmulEngine()
        return _default_engine
