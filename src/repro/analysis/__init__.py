"""Metrics, statistics and table rendering for experiment reports."""

from .io import (
    campaign_to_dict,
    dicts_to_rows,
    load_results,
    rows_to_dicts,
    save_results,
)
from .metrics import (
    DetectionMetrics,
    bound_tightness_ratio,
    confusion_counts,
    detection_metrics,
)
from .stats import bootstrap_ci, geometric_mean, mean_abs, order_of_magnitude_gap
from .tables import format_sci, render_table

__all__ = [
    "DetectionMetrics",
    "bootstrap_ci",
    "campaign_to_dict",
    "dicts_to_rows",
    "bound_tightness_ratio",
    "confusion_counts",
    "detection_metrics",
    "format_sci",
    "geometric_mean",
    "load_results",
    "mean_abs",
    "order_of_magnitude_gap",
    "render_table",
    "rows_to_dicts",
    "save_results",
]
