"""Small statistics helpers shared by experiments and tests."""

from __future__ import annotations

import math

import numpy as np

__all__ = ["geometric_mean", "mean_abs", "order_of_magnitude_gap", "bootstrap_ci"]


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean of strictly positive values."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("geometric mean of an empty array")
    if np.any(arr <= 0.0):
        raise ValueError("geometric mean requires strictly positive values")
    return float(np.exp(np.mean(np.log(arr))))


def mean_abs(values: np.ndarray) -> float:
    """Mean of absolute values (the paper's AVG columns)."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("mean of an empty array")
    return float(np.mean(np.abs(arr)))


def order_of_magnitude_gap(a: float, b: float) -> float:
    """``log10(a / b)`` — how many decades ``a`` exceeds ``b`` by."""
    if a <= 0.0 or b <= 0.0:
        raise ValueError("both values must be positive")
    return math.log10(a / b)


def bootstrap_ci(
    values: np.ndarray,
    rng: np.random.Generator,
    statistic=np.mean,
    num_resamples: int = 1000,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic(values)``."""
    arr = np.asarray(values, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("bootstrap of an empty array")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    stats = np.empty(num_resamples)
    for i in range(num_resamples):
        sample = arr[rng.integers(arr.size, size=arr.size)]
        stats[i] = statistic(sample)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )
