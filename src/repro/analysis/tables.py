"""Plain-text table rendering for experiment reports.

Every experiment driver renders its results through :func:`render_table`, so
the benchmark output looks like the paper's tables and diffs cleanly across
runs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_sci"]


def format_sci(value: float, digits: int = 2) -> str:
    """Format like the paper's tables: ``1.68e-11`` style."""
    if value != value:  # NaN
        return "n/a"
    return f"{value:.{digits}e}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    min_width: int = 10,
) -> str:
    """Render an aligned monospace table.

    Cells are stringified with ``str``; floats should be pre-formatted by the
    caller (e.g. with :func:`format_sci`).
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [max(min_width, len(h)) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
