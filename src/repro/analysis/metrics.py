"""Detection/quality metrics derived from campaigns and bound measurements.

Aggregates the raw records of fault campaigns and bound-quality sweeps into
the quantities the paper reports: detection percentages per operation
(Figure 4), bound tightness ratios (Tables II-IV discussion), and
false-positive/negative accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..faults.campaign import CampaignResult
from ..faults.model import FaultSite

__all__ = [
    "DetectionMetrics",
    "detection_metrics",
    "bound_tightness_ratio",
    "confusion_counts",
]


@dataclass(frozen=True)
class DetectionMetrics:
    """Detection statistics of one scheme over one campaign."""

    scheme: str
    total_injections: int
    critical: int
    detected_critical: int
    detected_noncritical: int

    @property
    def detection_rate(self) -> float:
        """Fraction of critical errors detected (the Figure 4 metric)."""
        if self.critical == 0:
            return float("nan")
        return self.detected_critical / self.critical

    @property
    def false_negatives(self) -> int:
        """Critical errors the scheme missed."""
        return self.critical - self.detected_critical


def detection_metrics(
    result: CampaignResult, scheme: str, site: FaultSite | None = None
) -> DetectionMetrics:
    """Summarise one scheme's behaviour over a campaign's records."""
    records = result.records
    if site is not None:
        records = [r for r in records if r.spec.site is site]
    critical = [r for r in records if r.is_critical]
    noncritical = [r for r in records if not r.is_critical]
    return DetectionMetrics(
        scheme=scheme,
        total_injections=len(records),
        critical=len(critical),
        detected_critical=sum(1 for r in critical if r.detected[scheme]),
        detected_noncritical=sum(1 for r in noncritical if r.detected[scheme]),
    )


def bound_tightness_ratio(bounds: np.ndarray, actual_errors: np.ndarray) -> float:
    """Geometric-mean ratio of bound to actual rounding error.

    The paper's headline quality claim is that A-ABFT bounds are "typically
    two orders of magnitude closer to the exact rounding error" than SEA's;
    this ratio (per scheme) makes that comparison quantitative.  Zero actual
    errors are excluded (they carry no tightness information).
    """
    bounds = np.asarray(bounds, dtype=np.float64).ravel()
    actual = np.abs(np.asarray(actual_errors, dtype=np.float64).ravel())
    if bounds.shape != actual.shape:
        raise ValueError("bounds and errors must have matching shapes")
    mask = actual > 0.0
    if not np.any(mask):
        raise ValueError("all actual errors are zero; ratio undefined")
    ratios = bounds[mask] / actual[mask]
    if np.any(ratios <= 0.0):
        raise ValueError("bounds must be positive where errors are non-zero")
    return float(np.exp(np.mean(np.log(ratios))))


def confusion_counts(
    deltas: np.ndarray,
    detected: np.ndarray,
    critical_threshold: float,
) -> dict[str, int]:
    """Classification confusion counts for a batch of injected errors.

    ``deltas`` are the induced element errors, ``detected`` the per-injection
    detection flags of one scheme, ``critical_threshold`` the 3-sigma ground
    truth boundary.  Returns true/false positive/negative counts where
    "positive" means *flagged by the check*.
    """
    deltas = np.abs(np.asarray(deltas, dtype=np.float64).ravel())
    detected = np.asarray(detected, dtype=bool).ravel()
    if deltas.shape != detected.shape:
        raise ValueError("deltas and detected must have matching shapes")
    critical = deltas > critical_threshold
    return {
        "true_positive": int(np.sum(detected & critical)),
        "false_negative": int(np.sum(~detected & critical)),
        "benign_flagged": int(np.sum(detected & ~critical)),
        "benign_passed": int(np.sum(~detected & ~critical)),
    }
