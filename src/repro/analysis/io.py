"""Persistence of experiment results (JSON round trips).

Long campaigns and full-size sweeps are expensive; this module serialises
their outputs so analyses can be re-run, compared across machines, and
archived next to EXPERIMENTS.md without re-measuring.  Formats are plain
JSON with a ``kind``/``version`` envelope, so files remain inspectable and
diff-able.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..faults.campaign import CampaignResult
from ..faults.model import FaultSite

__all__ = [
    "save_results",
    "load_results",
    "campaign_to_dict",
    "rows_to_dicts",
    "dicts_to_rows",
]

_FORMAT_VERSION = 1


def _row_kinds() -> dict[str, type]:
    # Imported lazily: repro.experiments renders its tables through
    # repro.analysis, so a module-level import here would be circular.
    from ..experiments.bound_quality import BoundQualityRow
    from ..experiments.coverage import CoverageRow
    from ..experiments.figure4 import Figure4Cell
    from ..experiments.table1 import Table1Row

    return {
        "table1": Table1Row,
        "bound_quality": BoundQualityRow,
        "figure4": Figure4Cell,
        "coverage": CoverageRow,
    }


def rows_to_dicts(kind: str, rows: list) -> list[dict[str, Any]]:
    """Serialise a list of experiment-row dataclasses."""
    kinds = _row_kinds()
    if kind not in kinds:
        raise ValueError(f"unknown row kind {kind!r}; expected {sorted(kinds)}")
    out = []
    for row in rows:
        record = dict(vars(row))
        # Enum members and dict-with-float-keys need explicit encoding.
        if kind == "figure4":
            record["site"] = row.site.value
        if kind == "coverage":
            record["coverage"] = {str(k): v for k, v in row.coverage.items()}
        out.append(record)
    return out


def dicts_to_rows(kind: str, records: list[dict[str, Any]]) -> list:
    """Reconstruct experiment-row dataclasses from serialised form."""
    kinds = _row_kinds()
    if kind not in kinds:
        raise ValueError(f"unknown row kind {kind!r}; expected {sorted(kinds)}")
    cls = kinds[kind]
    rows = []
    for record in records:
        record = dict(record)
        if kind == "figure4":
            record["site"] = FaultSite(record["site"])
        if kind == "coverage":
            record["coverage"] = {
                float(k): v for k, v in record["coverage"].items()
            }
        rows.append(cls(**record))
    return rows


def campaign_to_dict(result: CampaignResult) -> dict[str, Any]:
    """Flatten a campaign result (records keep their decision-relevant
    fields; full FaultSpec provenance is preserved textually)."""
    return {
        "config": {
            "n": result.config.n,
            "suite": result.config.suite.name,
            "num_injections": result.config.num_injections,
            "block_size": result.config.block_size,
            "p": result.config.p,
            "omega": result.config.omega,
            "fields": list(result.config.fields),
            "num_flips": result.config.num_flips,
            "fault_model": result.config.fault_model,
            "schemes": list(result.config.schemes),
            "seed": result.config.seed,
        },
        "false_positive_free": result.false_positive_free,
        "records": [
            {
                "site": r.spec.site.value,
                "spec": r.spec.describe(),
                "encoded_row": r.encoded_row,
                "encoded_col": r.encoded_col,
                "delta": r.delta,
                "critical": r.is_critical,
                "detected": r.detected,
            }
            for r in result.records
        ],
        "rates": {
            scheme: result.detection_rate(scheme)
            for scheme in result.config.schemes
        },
    }


def save_results(path: str | Path, kind: str, payload: Any) -> Path:
    """Write one result set to ``path`` with the format envelope.

    ``payload`` is a list of rows (for row kinds) or a
    :class:`~repro.faults.campaign.CampaignResult` (kind ``"campaign"``).
    """
    path = Path(path)
    if kind == "campaign":
        body = campaign_to_dict(payload)
    else:
        body = rows_to_dicts(kind, payload)
    envelope = {"kind": kind, "version": _FORMAT_VERSION, "data": body}
    path.write_text(json.dumps(envelope, indent=2, allow_nan=True))
    return path


def load_results(path: str | Path) -> tuple[str, Any]:
    """Read a result file back; returns ``(kind, payload)``.

    Row kinds reconstruct their dataclasses; campaigns return the plain
    dictionary (the original workload matrices are not stored, so the full
    object cannot be rebuilt — by design).
    """
    path = Path(path)
    envelope = json.loads(path.read_text())
    kind = envelope.get("kind")
    version = envelope.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    if kind == "campaign":
        return kind, envelope["data"]
    return kind, dicts_to_rows(kind, envelope["data"])
