"""Random fault-specification sampling for injection campaigns.

Mirrors the paper's campaign setup (Section VI-C): the routine "randomly
selects a streaming multiprocessor and one of the floating-point operations",
the bit position "is chosen randomly" within the targeted field, and
``kInjection`` determines the point in time of the strike.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..fp.constants import BINARY64, FloatFormat
from ..fp.errorvec import random_vector_for_field
from ..fp.stuckat import stuck_at_vector
from .model import FaultSite, FaultSpec

__all__ = ["FaultSampler", "ALL_SITES"]

ALL_SITES: tuple[FaultSite, ...] = (
    FaultSite.INNER_MUL,
    FaultSite.INNER_ADD,
    FaultSite.MERGE_ADD,
)


@dataclass
class FaultSampler:
    """Draws random :class:`FaultSpec` instances for a campaign.

    Parameters
    ----------
    num_sms:
        SM count of the target device (the SM id is uniform over these).
    inner_dim:
        Inner-product length ``n`` — ``kInjection`` is uniform over it.
    block_rows / block_cols:
        Result-block dimensions bounding the module offsets.
    sites:
        Candidate operations; one is drawn uniformly per fault.
    fields:
        Candidate float fields (``"mantissa"``, ``"exponent"``, ``"sign"``).
    num_flips:
        Bits flipped per fault (1 = single-bit; 3/5 = the paper's
        multi-bit neighbourhood experiments).
    fault_model:
        ``"flip"`` (the paper's transient XOR model, default),
        ``"stuck0"`` or ``"stuck1"`` (permanent stuck-at faults; see
        :mod:`repro.fp.stuckat`).
    """

    num_sms: int
    inner_dim: int
    block_rows: int
    block_cols: int
    sites: tuple[FaultSite, ...] = ALL_SITES
    fields: tuple[str, ...] = ("mantissa",)
    num_flips: int = 1
    fault_model: str = "flip"
    fmt: FloatFormat = field(default_factory=lambda: BINARY64)

    def __post_init__(self) -> None:
        if self.fault_model not in ("flip", "stuck0", "stuck1"):
            raise ValueError(
                f"fault_model must be flip/stuck0/stuck1, got {self.fault_model!r}"
            )
        if self.num_sms < 1:
            raise ValueError("num_sms must be >= 1")
        if self.inner_dim < 1:
            raise ValueError("inner_dim must be >= 1")
        if not self.sites:
            raise ValueError("at least one fault site is required")
        if not self.fields:
            raise ValueError("at least one float field is required")

    def sample(self, rng: np.random.Generator) -> FaultSpec:
        """Draw one fault specification."""
        site = self.sites[int(rng.integers(len(self.sites)))]
        fld = self.fields[int(rng.integers(len(self.fields)))]
        if self.fault_model == "flip":
            vector = random_vector_for_field(fld, self.num_flips, rng, self.fmt)
        else:
            vector = stuck_at_vector(
                fld, int(self.fault_model[-1]), rng, self.num_flips, self.fmt
            )
        return FaultSpec(
            sm_id=int(rng.integers(self.num_sms)),
            site=site,
            module_row=int(rng.integers(self.block_rows)),
            module_col=int(rng.integers(self.block_cols)),
            error_vector=vector,
            k_injection=int(rng.integers(self.inner_dim)),
        )

    def sample_many(self, count: int, rng: np.random.Generator) -> list[FaultSpec]:
        """Draw ``count`` independent fault specifications."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]
