"""Fault injection: specifications, runtime injector, sampling, campaigns."""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    FaultCampaign,
    InjectionRecord,
    PairInjectionRecord,
)
from .injector import FaultActivation, FaultInjector
from .model import FaultSite, FaultSpec
from .sampling import ALL_SITES, FaultSampler

__all__ = [
    "ALL_SITES",
    "CampaignConfig",
    "CampaignResult",
    "FaultActivation",
    "FaultCampaign",
    "FaultInjector",
    "FaultSampler",
    "FaultSite",
    "FaultSpec",
    "InjectionRecord",
    "PairInjectionRecord",
]
